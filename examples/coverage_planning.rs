//! Coverage planning: sweep the deployment knobs for one city.
//!
//! A civil-preparedness office asking "would CityMesh work here, and
//! what does it take?" needs the trade-off surfaces behind the paper's
//! Figure 6: how reachability, deliverability, and transmission
//! overhead respond to AP density, transmission range, and the conduit
//! width `W`. This example sweeps each knob and prints the tables.
//!
//! Run with:
//! ```text
//! cargo run --release --example coverage_planning
//! ```

use citymesh::core::{BuildingGraphParams, CityExperiment, ExperimentConfig};
use citymesh::prelude::*;

fn run(config: ExperimentConfig, map: &CityMap) -> (f64, f64, Option<f64>) {
    let exp = CityExperiment::prepare(map.clone(), config);
    let result = exp.run();
    (
        result.reachability,
        result.deliverability,
        result.median_overhead,
    )
}

fn fmt_overhead(o: Option<f64>) -> String {
    o.map(|v| format!("{v:.1}×")).unwrap_or_else(|| "—".into())
}

fn main() {
    let map = CityArchetype::Cambridge.generate(11);
    println!(
        "== coverage planning for {} ({} buildings) ==\n",
        map.name(),
        map.len()
    );
    let base = ExperimentConfig {
        reachability_pairs: 400,
        delivery_pairs: 25,
        seed: 11,
        ..ExperimentConfig::default()
    };

    println!("-- AP density sweep (range 50 m, W 50 m) --");
    println!(
        "{:>12} {:>12} {:>14} {:>10}",
        "m²/AP", "reachable", "deliverable", "overhead"
    );
    for m2_per_ap in [100.0, 200.0, 400.0, 800.0] {
        let (r, d, o) = run(ExperimentConfig { m2_per_ap, ..base }, &map);
        println!(
            "{m2_per_ap:>12.0} {:>11.1}% {:>13.1}% {:>10}",
            r * 100.0,
            d * 100.0,
            fmt_overhead(o)
        );
    }

    println!("\n-- transmission range sweep (1 AP / 200 m², W = range) --");
    println!(
        "{:>12} {:>12} {:>14} {:>10}",
        "range (m)", "reachable", "deliverable", "overhead"
    );
    for range_m in [30.0, 50.0, 80.0] {
        let cfg = ExperimentConfig {
            range_m,
            conduit_width_m: range_m,
            graph: BuildingGraphParams::for_range(range_m),
            ..base
        };
        let (r, d, o) = run(cfg, &map);
        println!(
            "{range_m:>12.0} {:>11.1}% {:>13.1}% {:>10}",
            r * 100.0,
            d * 100.0,
            fmt_overhead(o)
        );
    }

    println!("\n-- conduit width sweep (range 50 m, 1 AP / 200 m²) --");
    println!(
        "{:>12} {:>14} {:>10}   (wider = more tolerant, more broadcasts)",
        "W (m)", "deliverable", "overhead"
    );
    for conduit_width_m in [25.0, 50.0, 75.0, 100.0] {
        let (_, d, o) = run(
            ExperimentConfig {
                conduit_width_m,
                ..base
            },
            &map,
        );
        println!(
            "{conduit_width_m:>12.0} {:>13.1}% {:>10}",
            d * 100.0,
            fmt_overhead(o)
        );
    }

    println!(
        "\nReading the tables: reachability is a property of the AP fabric \
         (density × range); deliverability is what the building-routing \
         algorithm extracts from it; overhead is the price in duplicate \
         broadcasts. The paper's operating point — 1 AP / 200 m², 50 m range, \
         W = 50 m — sits where deliverability saturates."
    );
}
