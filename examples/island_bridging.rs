//! Island bridging: the paper's §4 fix for fractured cities.
//!
//! Washington D.C.'s park mall, diagonal corridor, and river split the
//! mesh into islands, capping reachability around 50%. The paper
//! proposes that "the addition of a small number of well-placed APs
//! would serve to bridge connectivity between these islands." This
//! example runs that proposal: plan the bridges, deploy the relay
//! huts, and measure reachability before and after.
//!
//! Run with:
//! ```text
//! cargo run --release --example island_bridging
//! ```

use citymesh::core::{
    apply_bridges, extend_placement, plan_bridges, CityExperiment, ExperimentConfig,
};
use citymesh::prelude::*;

fn main() {
    let map = CityArchetype::WashingtonDc.generate(13);
    let config = ExperimentConfig {
        seed: 13,
        reachability_pairs: 600,
        delivery_pairs: 20,
        ..ExperimentConfig::default()
    };

    println!("== island bridging: {} ==\n", map.name());
    let before = CityExperiment::prepare(map.clone(), config);
    let result_before = before.run();
    println!(
        "before: {} islands, reachability {:.1}%, deliverability {:.1}%",
        result_before.components,
        result_before.reachability * 100.0,
        result_before.deliverability * 100.0
    );

    // Plan: attach every secondary island to the main one, relays
    // spaced at 80% of the radio range.
    let plan = plan_bridges(before.ap_graph(), 100, 0.8);
    println!(
        "\nplanned {} bridge(s), {} relay AP(s):",
        plan.bridges.len(),
        plan.relay_count()
    );
    for (i, b) in plan.bridges.iter().enumerate() {
        println!(
            "  bridge {}: {:.0} m gap, {} relays ({:?} → {:?})",
            i + 1,
            b.gap_m,
            b.relays.len(),
            before.ap_graph().position(b.from_ap),
            before.ap_graph().position(b.to_ap),
        );
    }

    // Deploy: relay huts join the map (old building IDs preserved, so
    // devices with cached maps stay compatible); the existing AP
    // placement is extended with one AP per hut.
    let relays = plan.relay_positions();
    let bridged_map = apply_bridges(&map, &relays);
    let aps = extend_placement(before.aps(), &bridged_map, &relays);
    let after = CityExperiment::from_parts(bridged_map, aps, config);
    let result_after = after.run();

    println!(
        "\nafter:  {} islands, reachability {:.1}%, deliverability {:.1}%",
        result_after.components,
        result_after.reachability * 100.0,
        result_after.deliverability * 100.0
    );
    println!(
        "\n{} relay APs raised reachability by {:.1} percentage points — the \
         paper's 'small number of well-placed APs', quantified.",
        plan.relay_count(),
        (result_after.reachability - result_before.reachability) * 100.0
    );
}
