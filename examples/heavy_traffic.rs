//! Heavy traffic: the whole city messages at once.
//!
//! The paper evaluates 50 pairs per city; a real disaster brings six
//! figures of simultaneous flows, skewed toward a few destinations
//! (shelters, hospitals, city hall). This example generates a
//! 20 000-flow hotspot workload with `citymesh-fleet`, runs it through
//! the full routing + delivery simulation on a worker pool, and prints
//! the aggregate distributions — then re-runs it serially to show the
//! engine's determinism guarantee: both runs produce byte-identical
//! aggregates (equal digests), so parallelism never costs
//! reproducibility.
//!
//! Run with:
//! ```text
//! cargo run --release --example heavy_traffic
//! ```

use citymesh::prelude::*;

const SEED: u64 = 2024;
const FLOWS: usize = 20_000;

fn main() {
    let map = CityArchetype::SurveyDowntown.generate(SEED);
    println!("city: {} ({} buildings)", map.name(), map.len());
    let exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed: SEED,
            ..ExperimentConfig::default()
        },
    );

    // Disaster traffic: Zipf-skewed destinations over 8 hotspot
    // buildings (shelters, hospitals, city hall).
    let workload = WorkloadConfig {
        flows: FLOWS,
        model: FlowModel::Hotspot {
            hotspots: 8,
            exponent: 1.1,
            rate_hz: 500.0,
        },
        seed: SEED,
    };
    let flows = generate_flows(exp.map().len(), &workload);
    println!(
        "workload: {FLOWS} flows (hotspot model), spanning {:.1} s",
        flows.last().map(|f| f.arrival_ms / 1e3).unwrap_or(0.0)
    );

    let parallel = run_fleet(
        &exp,
        &flows,
        &FleetConfig {
            workers: 0, // one per CPU
            seed: SEED,
            ..FleetConfig::default()
        },
    );
    println!(
        "\nparallel run ({} workers): {:.0} flows/s, {:.1} s wall",
        parallel.workers,
        parallel.flows_per_sec(),
        parallel.elapsed_secs
    );
    println!(
        "  delivered {}/{} ({:.1} %), route cache {} hits / {} misses",
        parallel.delivered,
        parallel.flows,
        100.0 * parallel.delivery_rate(),
        parallel.cache_hits,
        parallel.cache_misses
    );
    let fmt = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "—".into());
    println!(
        "  latency ms: p50 {}  p90 {}  p99 {}",
        fmt(parallel.latency_ms.quantile(0.5)),
        fmt(parallel.latency_ms.quantile(0.9)),
        fmt(parallel.latency_ms.quantile(0.99))
    );
    println!(
        "  broadcasts: p50 {}  p99 {}   header bits: p50 {}  p90 {}",
        fmt(parallel.broadcasts.quantile(0.5)),
        fmt(parallel.broadcasts.quantile(0.99)),
        fmt(parallel.header_bits.quantile(0.5)),
        fmt(parallel.header_bits.quantile(0.9))
    );

    // The determinism check: a serial run of the same workload must
    // aggregate to exactly the same distributions.
    let serial = run_fleet(
        &exp,
        &flows,
        &FleetConfig {
            workers: 1,
            seed: SEED,
            ..FleetConfig::default()
        },
    );
    println!(
        "\nserial run: {:.0} flows/s, digest {:016x}",
        serial.flows_per_sec(),
        serial.digest()
    );
    println!("parallel digest:          {:016x}", parallel.digest());
    assert_eq!(
        serial.digest(),
        parallel.digest(),
        "parallel aggregation diverged from serial"
    );
    println!("digests match: parallel == serial, bit for bit");
}
