//! OSM import: run CityMesh over real OpenStreetMap footprints.
//!
//! CityMesh's synthetic cities stand in for map data we cannot fetch
//! offline, but the pipeline accepts real extracts directly. This
//! example embeds a small hand-written OSM XML snippet (a city block
//! in the format `osmium extract` produces), parses it with the
//! `citymesh-map` OSM loader, and runs routing over it. Point it at a
//! real file to plan a real city:
//!
//! ```text
//! cargo run --release --example osm_import -- path/to/extract.osm
//! ```

use citymesh::core::{CityExperiment, ExperimentConfig};
use citymesh::map::osm;

/// A 4×3 block of buildings around a courtyard, OSM-style.
fn embedded_snippet() -> String {
    let mut xml = String::from("<?xml version=\"1.0\"?>\n<osm version=\"0.6\">\n");
    let mut node_id = 1;
    let mut ways = String::new();
    let mut way_id = 1000;
    for by in 0..3 {
        for bx in 0..4 {
            // Skip the courtyard in the middle.
            if by == 1 && (bx == 1 || bx == 2) {
                continue;
            }
            // ~30 m buildings on a ~45 m pitch around (42.36, -71.09).
            let lat0 = 42.3600 + by as f64 * 0.00040;
            let lon0 = -71.0900 + bx as f64 * 0.00055;
            let (lat1, lon1) = (lat0 + 0.00027, lon0 + 0.00037);
            let ids: Vec<i64> = (0..4).map(|k| node_id + k).collect();
            for (k, (lat, lon)) in [
                (0, (lat0, lon0)),
                (1, (lat0, lon1)),
                (2, (lat1, lon1)),
                (3, (lat1, lon0)),
            ] {
                xml.push_str(&format!(
                    " <node id=\"{}\" lat=\"{lat:.6}\" lon=\"{lon:.6}\"/>\n",
                    ids[k]
                ));
            }
            node_id += 4;
            ways.push_str(&format!(" <way id=\"{way_id}\">\n"));
            for k in [0, 1, 2, 3, 0] {
                ways.push_str(&format!("  <nd ref=\"{}\"/>\n", ids[k]));
            }
            ways.push_str("  <tag k=\"building\" v=\"yes\"/>\n </way>\n");
            way_id += 1;
        }
    }
    xml.push_str(&ways);
    xml.push_str("</osm>\n");
    xml
}

fn main() {
    let (name, xml) = match std::env::args().nth(1) {
        Some(path) => {
            let xml = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            (path, xml)
        }
        None => ("embedded snippet".to_string(), embedded_snippet()),
    };

    let map =
        osm::load_city("osm-import", &xml).unwrap_or_else(|e| panic!("OSM parse failed: {e}"));
    println!(
        "parsed {name}: {} buildings, extent {:.0} m × {:.0} m",
        map.len(),
        map.bounds().width(),
        map.bounds().height()
    );
    let stats = map.stats();
    println!(
        "median footprint {:.0} m², built fraction {:.0}%\n",
        stats.median_building_area_m2,
        stats.built_fraction * 100.0
    );

    // Run the standard evaluation pipeline on the imported map.
    let config = ExperimentConfig {
        reachability_pairs: 200,
        delivery_pairs: 20,
        seed: 3,
        ..ExperimentConfig::default()
    };
    let exp = CityExperiment::prepare(map, config);
    let result = exp.run();
    println!(
        "reachability {:.0}%, deliverability {:.0}%, islands {}",
        result.reachability * 100.0,
        result.deliverability * 100.0,
        result.components
    );
    if let Some(overhead) = result.median_overhead {
        println!("median transmission overhead {overhead:.1}×");
    }
    if let (Some(med), Some(p90)) = (result.median_route_bits, result.p90_route_bits) {
        println!("compressed route header: median {med} bits, 90%ile {p90} bits");
    }
}
