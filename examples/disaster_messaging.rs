//! Disaster-scenario messaging: the paper's §2 motivating workload.
//!
//! A storm has taken down backhaul across a Washington-D.C.-like city
//! — the archetype the paper highlights because its park mall, river,
//! and a highway corridor fracture the mesh into islands. Residents
//! use CityMesh for exactly the traffic the paper describes: safety
//! check-ins with family, and push-notified urgent messages. The
//! example shows both successful island-internal delivery and honest
//! failures across island boundaries.
//!
//! Run with:
//! ```text
//! cargo run --release --example disaster_messaging
//! ```

use citymesh::prelude::*;

fn main() {
    let map = CityArchetype::WashingtonDc.generate(7);
    println!("== CityMesh disaster messaging: {} ==", map.name());

    let mut net = DfnNetwork::new(map, ExperimentConfig::default(), 7);
    let exp = net.experiment();
    let islands = exp.ap_graph().num_components();
    println!(
        "{} buildings, {} APs — the obstacles fracture the mesh into {} island(s)\n",
        exp.map().len(),
        exp.aps().len(),
        islands
    );

    // A family spread across the city. Mom anchors the NW quarter;
    // dad is picked on *her* island but far away (deliverable), and
    // the kid is picked on a *different* island (honest failure — the
    // paper's bridge-AP motivation).
    let mom_building = net
        .experiment()
        .map()
        .nearest_building(Point::new(150.0, 1350.0))
        .expect("map is non-empty")
        .id;
    let mom_pos = net
        .experiment()
        .map()
        .building(mom_building)
        .unwrap()
        .centroid;
    let same_island_far = net
        .experiment()
        .map()
        .buildings()
        .iter()
        .filter(|b| {
            net.experiment()
                .ap_graph()
                .buildings_reachable(mom_building, b.id)
        })
        .max_by(|a, b| {
            a.centroid
                .dist(mom_pos)
                .partial_cmp(&b.centroid.dist(mom_pos))
                .expect("finite distances")
        })
        .expect("island has buildings")
        .id;
    let other_island = net
        .experiment()
        .map()
        .buildings()
        .iter()
        .find(|b| {
            !net.experiment()
                .ap_graph()
                .buildings_reachable(mom_building, b.id)
        })
        .map(|b| b.id);
    let dad_building = same_island_far;
    let kid_building = other_island.unwrap_or(dad_building);

    let mom = net.register_user([1; 32], mom_building);
    let dad = net.register_user([2; 32], dad_building);
    let kid = net.register_user([3; 32], kid_building);

    println!("mom  @ building {mom_building}");
    println!("dad  @ building {dad_building}");
    println!("kid  @ building {kid_building}\n");

    // Everyone checks in once so postboxes know where to push.
    net.check_mailbox(&mom, mom_building);
    net.check_mailbox(&dad, dad_building);
    net.check_mailbox(&kid, kid_building);

    // Safety check-ins fan out.
    let exchanges: Vec<(&str, u32, &User, &[u8])> = vec![
        (
            "mom → dad",
            mom_building,
            &dad,
            b"power is out but we are fine",
        ),
        (
            "mom → kid",
            mom_building,
            &kid,
            b"stay at school until dark",
        ),
        (
            "kid → mom",
            kid_building,
            &mom,
            b"ok. gym has water + charging",
        ),
        (
            "dad → mom",
            dad_building,
            &mom,
            b"bridge closed, walking north",
        ),
    ];

    let mut receipts = Vec::new();
    for (label, from, to_user, body) in exchanges {
        let receipt = net.send_text(from, &to_user.address(), body);
        println!(
            "{label:<10}  delivered={}  broadcasts={:>4}  header={:>3} bits  latency={}",
            receipt.delivered,
            receipt.broadcasts,
            receipt.route_bits,
            receipt
                .latency
                .map(|t| format!("{:.1} ms", t.as_millis_f64()))
                .unwrap_or_else(|| "—".into()),
        );
        receipts.push((label, receipt));
    }

    println!();
    for (user, name, building) in [
        (&mom, "mom", mom_building),
        (&dad, "dad", dad_building),
        (&kid, "kid", kid_building),
    ] {
        let inbox = net.check_mailbox(user, building);
        for (_, body) in &inbox {
            println!("{name} reads: {}", String::from_utf8_lossy(body));
        }
        if inbox.is_empty() {
            println!("{name}: inbox empty");
        }
    }

    // Where would an urgent push for each user go?
    println!();
    for (user, name) in [(&mom, "mom"), (&dad, "dad"), (&kid, "kid")] {
        match net.push_target(user) {
            Some(b) => println!("urgent pushes for {name} route to building {b}"),
            None => println!("{name} has pushes disabled"),
        }
    }

    let failures = receipts.iter().filter(|(_, r)| !r.delivered).count();
    println!(
        "\n{} of {} messages delivered. {}",
        receipts.len() - failures,
        receipts.len(),
        if failures > 0 {
            "Failures cross island boundaries — the paper's proposed fix is a \
             handful of bridge APs across the park/river gaps (§4)."
        } else {
            "All routes stayed within connected islands this time."
        }
    );
}
