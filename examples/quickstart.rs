//! Quickstart: Alice sends Bob a message across a synthetic downtown.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use citymesh::prelude::*;

fn main() {
    // 1. A city map. In a deployment this comes from OpenStreetMap;
    //    here we generate a deterministic synthetic downtown.
    let map = CityArchetype::SurveyDowntown.generate(42);
    println!(
        "city: {} — {} buildings over {:.0} m × {:.0} m",
        map.name(),
        map.len(),
        map.bounds().width(),
        map.bounds().height()
    );

    // 2. Deploy CityMesh over it: APs are placed inside footprints at
    //    the paper's density (1 AP / 200 m²), and both graphs are built.
    let mut net = DfnNetwork::new(map, ExperimentConfig::default(), 42);
    let exp = net.experiment();
    println!(
        "mesh: {} APs, mean radio degree {:.1}, {} island(s)",
        exp.aps().len(),
        exp.ap_graph().mean_degree(),
        exp.ap_graph().num_components()
    );

    // 3. Bob registers a postbox in building 10 and hands Alice his
    //    address out-of-band (it fits in a QR code).
    let bob = net.register_user([0xB0; 32], 10);
    let address = bob.address();
    println!(
        "bob: postbox in building {}, self-certifying id {}…",
        address.building_id,
        &bob.node_id().short()
    );

    // 4. Alice, across town in building 200, sends a message. The
    //    sender plans a building route from its cached map, compresses
    //    it into conduit waypoints, seals the payload to Bob's key, and
    //    the event simulation carries it AP to AP.
    let receipt = net.send_text(200, &address, b"safe at the library, meet at 6");
    println!(
        "send: delivered={} broadcasts={} waypoints={} header={} bits latency={:?}",
        receipt.delivered,
        receipt.broadcasts,
        receipt.waypoints,
        receipt.route_bits,
        receipt.latency
    );

    // 5. Bob's phone checks in at the postbox and decrypts.
    for (msg_id, body) in net.check_mailbox(&bob, 10) {
        println!(
            "bob received (msg {:x}): {}",
            msg_id,
            String::from_utf8_lossy(&body)
        );
    }
}
