//! # CityMesh — decentralized fallback networks
//!
//! A Rust implementation of **CityMesh** from *"The Case for
//! Decentralized Fallback Networks"* (HotNets '24): city-scale
//! messaging over existing Wi-Fi access points, routed by geospatial
//! *building maps* instead of any distributed routing protocol.
//!
//! ## The idea in one paragraph
//!
//! When disasters or attacks take down ISPs and clouds, a city still
//! contains hundreds of thousands of powered Wi-Fi APs clustered
//! inside buildings. CityMesh turns them into a fallback network with
//! **zero routing state**: a sender plans a *building route* over a
//! graph derived from a cached city map (cubed-distance shortest
//! path), compresses it into a handful of *waypoint buildings* whose
//! connecting `W`-wide *conduits* cover the route, and puts only those
//! waypoint IDs in the packet header. Every AP that hears the packet
//! independently reconstructs the conduits from its own map copy and
//! rebroadcasts iff it lies inside one. Delivery ends at the
//! recipient's *postbox* AP, which stores sealed (end-to-end
//! encrypted) messages until the recipient checks in.
//!
//! ## Quick start
//!
//! ```
//! use citymesh::prelude::*;
//!
//! // A deterministic synthetic downtown (stand-in for an OSM extract).
//! let map = CityArchetype::SurveyDowntown.generate(42);
//! let mut net = DfnNetwork::new(map, ExperimentConfig::default(), 42);
//!
//! // Bob publishes his postbox address out-of-band (e.g. a QR code).
//! let bob = net.register_user([7u8; 32], 10);
//!
//! // Alice, in building 200, sends him a message through the mesh.
//! let receipt = net.send_text(200, &bob.address(), b"meet at the library");
//! assert!(receipt.delivered);
//!
//! // Bob's device checks in at his postbox and decrypts.
//! let inbox = net.check_mailbox(&bob, 10);
//! assert_eq!(inbox[0].1, b"meet at the library");
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`geo`] | points, polygons, conduit rectangles, spatial index |
//! | [`map`] | city model, synthetic city generator, OSM loader |
//! | [`graph`] | Dijkstra / BFS / components / union-find, district-overlay hierarchy |
//! | [`simcore`] | deterministic discrete-event engine, radio models |
//! | [`net`] | packet wire format (bit-packed conduit headers) |
//! | [`crypto`] | self-certifying IDs, X25519 + ChaCha20-Poly1305 |
//! | [`core`] | building routing, conduits, agents, postboxes, sim |
//! | [`fleet`] | parallel heavy-traffic engine, deterministic workloads |
//! | [`telemetry`] | metrics registry, flow tracer, failure postmortems |
//! | [`baselines`] | flooding, greedy geographic, reactive repair, MANET cost models |
//! | [`dynamics`] | churn engine: event timelines, epoch barriers, cache invalidation |
//! | [`stream`] | always-on engine: open-loop arrivals, backpressure, load shedding, priority classes |
//! | [`place`] | deployment optimization: hardened-site placement via greedy / simulated annealing |
//! | [`measure`] | the synthetic §2 wardriving study |
//!
//! The [`DfnNetwork`] type in this crate wires all of it into a
//! whole-network, in-memory harness used by the examples and
//! integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use citymesh_baselines as baselines;
pub use citymesh_core as core;
pub use citymesh_crypto as crypto;
pub use citymesh_dynamics as dynamics;
pub use citymesh_fleet as fleet;
pub use citymesh_geo as geo;
pub use citymesh_graph as graph;
pub use citymesh_map as map;
pub use citymesh_measure as measure;
pub use citymesh_net as net;
pub use citymesh_place as place;
pub use citymesh_simcore as simcore;
pub use citymesh_stream as stream;
pub use citymesh_telemetry as telemetry;

mod network;

pub use network::{DfnNetwork, SendReceipt, User};

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use crate::network::{DfnNetwork, SendReceipt, User};
    pub use citymesh_core::{
        CityExperiment, Deployment, ExperimentConfig, FaultScenario, FaultState, HierParams,
        HierPlanScratch, HierPlanner, HierStats, Postbox, RebroadcastScope, RecoveryStage,
        RetryPolicy,
    };
    pub use citymesh_crypto::{Keypair, NodeId, PostboxAddress};
    pub use citymesh_dynamics::{
        run_churn, ChurnConfig, ChurnEngineConfig, ChurnReport, InvalidationPolicy, Timeline,
    };
    pub use citymesh_fleet::{
        generate_flows, run_fleet, run_fleet_traced, FleetConfig, FleetReport, FleetTelemetry,
        FlowModel, WorkloadConfig,
    };
    pub use citymesh_geo::{Point, Polygon};
    pub use citymesh_map::{generate_metro, CityArchetype, CityMap, MetroParams};
    pub use citymesh_net::CityMeshHeader;
    pub use citymesh_place::{
        Annealer, Evaluator, GreedyPlacer, Metric, Objective, PlacementOptimizer, PlacementResult,
        RandomPlacer, ScenarioSpec, Score,
    };
    pub use citymesh_simcore::{SimRng, SimTime};
    pub use citymesh_stream::{
        generate_stream_flows, run_stream, ArrivalProcess, FlowClass, ShedReason, StreamConfig,
        StreamReport, StreamWorkload,
    };
    pub use citymesh_telemetry::{MetricSet, Postmortem, Rung, TelemetryConfig, TraceConfig};
}
