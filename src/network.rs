//! Whole-network orchestration: the in-memory harness that ties the
//! map, routing, event simulation, crypto, and postboxes into one
//! Alice-to-Bob story (paper §3's four-step workflow).

use std::collections::{HashMap, HashSet};

use citymesh_core::{
    compress_route, plan_route, plan_route_avoiding, postbox_ap, simulate_delivery, CityExperiment,
    DeliveryParams, ExperimentConfig, Postbox,
};
use citymesh_crypto::{Keypair, NodeId, PostboxAddress, SealedMessage};
use citymesh_map::CityMap;
use citymesh_net::CityMeshHeader;
use citymesh_simcore::{split_seed, SimRng, SimTime};

/// A registered CityMesh user: their keypair plus where their postbox
/// lives.
#[derive(Clone, Debug)]
pub struct User {
    keypair: Keypair,
    postbox_building: u32,
}

impl User {
    /// The out-of-band address the user shares (paper §3 step 1:
    /// "his unique public key and the building ID of the building
    /// that contains the desired postbox AP"; fits in a QR code).
    pub fn address(&self) -> PostboxAddress {
        PostboxAddress {
            public_key: self.keypair.public,
            building_id: self.postbox_building,
        }
    }

    /// The user's self-certifying ID.
    pub fn node_id(&self) -> NodeId {
        self.keypair.node_id()
    }

    /// The user's keypair (needed to open sealed messages).
    pub fn keypair(&self) -> &Keypair {
        &self.keypair
    }
}

/// The result of one send through the mesh.
#[derive(Clone, Debug)]
pub struct SendReceipt {
    /// Message ID carried in the header.
    pub msg_id: u64,
    /// Whether a building route could even be planned.
    pub route_found: bool,
    /// Whether the packet reached the destination building and was
    /// deposited in the postbox.
    pub delivered: bool,
    /// Broadcast count in the event simulation.
    pub broadcasts: u64,
    /// Simulated delivery latency.
    pub latency: Option<SimTime>,
    /// Compressed source-route size, bits.
    pub route_bits: usize,
    /// Waypoints after compression.
    pub waypoints: usize,
}

/// An in-memory CityMesh deployment over one city.
///
/// Owns the AP placement, both graphs, one [`Postbox`] per building
/// that hosts one, and a simulation clock that advances with each
/// message sent.
#[derive(Clone, Debug)]
pub struct DfnNetwork {
    exp: CityExperiment,
    postboxes: HashMap<u32, Postbox>,
    users: HashMap<NodeId, u32>,
    rng: SimRng,
    clock: SimTime,
    next_msg_id: u64,
}

impl DfnNetwork {
    /// Builds the deployment: places APs and constructs both graphs.
    pub fn new(map: CityMap, config: ExperimentConfig, seed: u64) -> Self {
        let config = ExperimentConfig { seed, ..config };
        DfnNetwork {
            exp: CityExperiment::prepare(map, config),
            postboxes: HashMap::new(),
            users: HashMap::new(),
            rng: SimRng::new(split_seed(seed, 0xD4A)),
            clock: SimTime::ZERO,
            next_msg_id: 1,
        }
    }

    /// The prepared experiment (map, AP graph, building graph).
    pub fn experiment(&self) -> &CityExperiment {
        &self.exp
    }

    /// Current simulated wall clock.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Registers a user with a postbox in `building`. `entropy` seeds
    /// the keypair; simulations pass deterministic bytes, deployments
    /// pass OS randomness.
    ///
    /// # Panics
    /// Panics when `building` does not exist in the map.
    pub fn register_user(&mut self, entropy: [u8; 32], building: u32) -> User {
        assert!(
            self.exp.map().building(building).is_some(),
            "building {building} not in map"
        );
        let keypair = Keypair::from_entropy(entropy);
        let user = User {
            keypair,
            postbox_building: building,
        };
        self.postboxes
            .entry(building)
            .or_insert_with(Postbox::with_defaults)
            .register(user.node_id());
        self.users.insert(user.node_id(), building);
        user
    }

    /// AAD binding a sealed message to its packet identity: message ID
    /// plus destination building, so a captured ciphertext cannot be
    /// replayed under another identity.
    fn aad(msg_id: u64, dst_building: u32) -> Vec<u8> {
        let mut aad = Vec::with_capacity(12);
        aad.extend_from_slice(&msg_id.to_le_bytes());
        aad.extend_from_slice(&dst_building.to_le_bytes());
        aad
    }

    /// Sends `body` from a device in `from_building` to the postbox in
    /// `to`. Runs the full pipeline: route → compress → seal →
    /// event-simulate → deposit.
    pub fn send_text(
        &mut self,
        from_building: u32,
        to: &PostboxAddress,
        body: &[u8],
    ) -> SendReceipt {
        let msg_id = split_seed(self.exp.config().seed, 0x4D59 ^ self.next_msg_id);
        self.next_msg_id += 1;
        let mut receipt = SendReceipt {
            msg_id,
            route_found: false,
            delivered: false,
            broadcasts: 0,
            latency: None,
            route_bits: 0,
            waypoints: 0,
        };

        // Step 2: plan and compress the building route.
        let Ok(route) = plan_route(self.exp.building_graph(), from_building, to.building_id) else {
            return receipt;
        };
        receipt.route_found = true;
        let compressed = compress_route(
            self.exp.building_graph(),
            &route,
            self.exp.config().conduit_width_m,
        )
        .expect("config width validated at network construction");
        receipt.waypoints = compressed.len();
        let header = CityMeshHeader::new(
            msg_id,
            self.exp.config().conduit_width_m,
            compressed.waypoints,
        );
        receipt.route_bits = header.route_bits();

        // Seal the payload to the recipient (the mesh sees ciphertext).
        let mut entropy = [0u8; 32];
        use rand::RngCore;
        self.rng.fill_bytes(&mut entropy);
        let Some(sealed) =
            SealedMessage::seal(to, entropy, &Self::aad(msg_id, to.building_id), body)
        else {
            return receipt;
        };

        // Step 3: route through the mesh (event simulation).
        let Some(src_ap) = postbox_ap(self.exp.aps(), self.exp.map(), from_building) else {
            return receipt;
        };
        let report = simulate_delivery(
            self.exp.map(),
            self.exp.ap_graph(),
            &header,
            src_ap,
            DeliveryParams {
                scope: self.exp.config().scope,
                ..DeliveryParams::default()
            },
            &mut self.rng,
        );
        receipt.broadcasts = report.broadcasts;
        receipt.latency = report.first_delivery;

        // Step 4: deposit at the destination postbox.
        if report.delivered {
            let arrived = self.clock + report.first_delivery.unwrap_or(SimTime::ZERO);
            if let Some(pb) = self.postboxes.get_mut(&to.building_id) {
                if pb.deposit(to.node_id(), msg_id, sealed, arrived).is_ok() {
                    receipt.delivered = true;
                }
            }
        }
        // Advance the network clock past this exchange.
        self.clock += SimTime::from_secs_f64(1.0);
        receipt
    }

    /// Sends with detour retries: when an attempt's simulated delivery
    /// fails, the failed route's intermediate buildings are excluded
    /// and the route is re-planned around them (paper §1's security
    /// requirement — find a path that avoids bad regions when one
    /// exists). Returns every attempt's receipt; the last one tells
    /// whether the message ultimately arrived.
    pub fn send_with_retry(
        &mut self,
        from_building: u32,
        to: &PostboxAddress,
        body: &[u8],
        max_attempts: usize,
    ) -> Vec<SendReceipt> {
        assert!(max_attempts >= 1, "at least one attempt");
        let mut blocked: HashSet<u32> = HashSet::new();
        let mut receipts = Vec::new();
        for _ in 0..max_attempts {
            let msg_id = split_seed(self.exp.config().seed, 0x4D59 ^ self.next_msg_id);
            self.next_msg_id += 1;
            let mut receipt = SendReceipt {
                msg_id,
                route_found: false,
                delivered: false,
                broadcasts: 0,
                latency: None,
                route_bits: 0,
                waypoints: 0,
            };
            let Ok(route) = plan_route_avoiding(
                self.exp.building_graph(),
                from_building,
                to.building_id,
                &blocked,
            ) else {
                receipts.push(receipt);
                break; // no further detours exist
            };
            receipt.route_found = true;
            let compressed = compress_route(
                self.exp.building_graph(),
                &route,
                self.exp.config().conduit_width_m,
            )
            .expect("config width validated at network construction");
            receipt.waypoints = compressed.len();
            let header = CityMeshHeader::new(
                msg_id,
                self.exp.config().conduit_width_m,
                compressed.waypoints,
            );
            receipt.route_bits = header.route_bits();
            let Some(src_ap) = postbox_ap(self.exp.aps(), self.exp.map(), from_building) else {
                receipts.push(receipt);
                break;
            };
            let report = simulate_delivery(
                self.exp.map(),
                self.exp.ap_graph(),
                &header,
                src_ap,
                DeliveryParams {
                    scope: self.exp.config().scope,
                    ..DeliveryParams::default()
                },
                &mut self.rng,
            );
            receipt.broadcasts = report.broadcasts;
            receipt.latency = report.first_delivery;
            if report.delivered {
                let mut entropy = [0u8; 32];
                use rand::RngCore;
                self.rng.fill_bytes(&mut entropy);
                if let Some(sealed) =
                    SealedMessage::seal(to, entropy, &Self::aad(msg_id, to.building_id), body)
                {
                    let arrived = self.clock + report.first_delivery.unwrap_or(SimTime::ZERO);
                    if let Some(pb) = self.postboxes.get_mut(&to.building_id) {
                        if pb.deposit(to.node_id(), msg_id, sealed, arrived).is_ok() {
                            receipt.delivered = true;
                        }
                    }
                }
                receipts.push(receipt);
                break;
            }
            // Exclude this attempt's interior and try a detour.
            for &b in &route[1..route.len().saturating_sub(1)] {
                blocked.insert(b);
            }
            receipts.push(receipt);
        }
        self.clock += SimTime::from_secs_f64(1.0);
        receipts
    }

    /// A user's device checks in at its postbox from `current_building`
    /// and opens everything pending. Returns `(msg_id, plaintext)`
    /// pairs; messages that fail authentication stay in the postbox.
    pub fn check_mailbox(&mut self, user: &User, current_building: u32) -> Vec<(u64, Vec<u8>)> {
        let Some(pb) = self.postboxes.get_mut(&user.postbox_building) else {
            return Vec::new();
        };
        let dst = user.postbox_building;
        match pb.retrieve_and_open(user.keypair(), current_building, |msg_id| {
            Self::aad(msg_id, dst)
        }) {
            Ok((opened, _failed)) => opened,
            Err(_) => Vec::new(),
        }
    }

    /// Where a push notification for `user` would be routed (their
    /// last check-in building), if pushes are enabled.
    pub fn push_target(&self, user: &User) -> Option<u32> {
        self.postboxes
            .get(&user.postbox_building)?
            .push_target(&user.node_id())
    }

    /// Sends an *urgent* message: deliver to the postbox as usual,
    /// then — if the recipient has pushes enabled — immediately
    /// forward a push notification from the postbox toward their last
    /// known building (paper §3 step 4: the postbox "may also
    /// implement push notifications for the immediate forwarding of
    /// urgent messages").
    ///
    /// Returns the deposit receipt plus, when a push was attempted,
    /// the push's own receipt (a second mesh traversal, postbox →
    /// last-known building).
    pub fn send_urgent(
        &mut self,
        from_building: u32,
        to: &PostboxAddress,
        body: &[u8],
    ) -> (SendReceipt, Option<SendReceipt>) {
        let deposit = self.send_text(from_building, to, body);
        if !deposit.delivered {
            return (deposit, None);
        }
        let Some(target_building) = self
            .postboxes
            .get(&to.building_id)
            .and_then(|pb| pb.push_target(&to.node_id()))
        else {
            return (deposit, None);
        };
        if target_building == to.building_id {
            // The device last checked in at the postbox itself; the
            // deposit already reached it.
            return (deposit, None);
        }

        // The push travels postbox → device as its own CityMesh
        // packet, kind PushNotify. Its payload is only the message ID
        // (the device fetches the sealed body on its next check-in).
        let msg_id = split_seed(self.exp.config().seed, 0x9054 ^ self.next_msg_id);
        self.next_msg_id += 1;
        let mut push = SendReceipt {
            msg_id,
            route_found: false,
            delivered: false,
            broadcasts: 0,
            latency: None,
            route_bits: 0,
            waypoints: 0,
        };
        let Ok(route) = plan_route(self.exp.building_graph(), to.building_id, target_building)
        else {
            return (deposit, Some(push));
        };
        push.route_found = true;
        let compressed = compress_route(
            self.exp.building_graph(),
            &route,
            self.exp.config().conduit_width_m,
        )
        .expect("config width validated at network construction");
        push.waypoints = compressed.len();
        let mut header = CityMeshHeader::new(
            msg_id,
            self.exp.config().conduit_width_m,
            compressed.waypoints,
        );
        header.kind = citymesh_net::MessageKind::PushNotify;
        push.route_bits = header.route_bits();
        let Some(src_ap) = postbox_ap(self.exp.aps(), self.exp.map(), to.building_id) else {
            return (deposit, Some(push));
        };
        let report = simulate_delivery(
            self.exp.map(),
            self.exp.ap_graph(),
            &header,
            src_ap,
            DeliveryParams {
                scope: self.exp.config().scope,
                ..DeliveryParams::default()
            },
            &mut self.rng,
        );
        push.delivered = report.delivered;
        push.broadcasts = report.broadcasts;
        push.latency = report.first_delivery;
        (deposit, Some(push))
    }

    /// Messages currently stored across all postboxes.
    pub fn stored_messages(&self) -> usize {
        self.postboxes.values().map(Postbox::total_messages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_map::CityArchetype;

    fn downtown_net() -> DfnNetwork {
        let map = CityArchetype::SurveyDowntown.generate(42);
        DfnNetwork::new(map, ExperimentConfig::default(), 42)
    }

    #[test]
    fn alice_to_bob_round_trip() {
        let mut net = downtown_net();
        let bob = net.register_user([0xB0; 32], 10);
        let receipt = net.send_text(200, &bob.address(), b"hello bob");
        assert!(receipt.route_found);
        assert!(receipt.delivered, "downtown delivery should succeed");
        assert!(receipt.broadcasts > 0);
        assert!(receipt.latency.is_some());
        assert_eq!(net.stored_messages(), 1);

        let inbox = net.check_mailbox(&bob, 10);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].1, b"hello bob");
        assert_eq!(inbox[0].0, receipt.msg_id);
        // Retrieval acknowledges.
        assert_eq!(net.stored_messages(), 0);
        assert!(net.check_mailbox(&bob, 10).is_empty());
    }

    #[test]
    fn eve_cannot_read_bobs_mail() {
        let mut net = downtown_net();
        let bob = net.register_user([0xB0; 32], 10);
        let eve_keys = Keypair::from_entropy([0xEE; 32]);
        net.send_text(200, &bob.address(), b"secret");
        // Eve registered at the same postbox building cannot open it.
        let eve = User {
            keypair: eve_keys,
            postbox_building: 10,
        };
        let stolen = net.check_mailbox(&eve, 10);
        assert!(stolen.is_empty());
        // Bob still gets his mail.
        assert_eq!(net.check_mailbox(&bob, 10).len(), 1);
    }

    #[test]
    fn push_target_follows_checkins() {
        let mut net = downtown_net();
        let bob = net.register_user([0xB0; 32], 10);
        assert_eq!(net.push_target(&bob), None);
        net.check_mailbox(&bob, 55);
        assert_eq!(net.push_target(&bob), Some(55));
    }

    #[test]
    fn multiple_messages_preserve_order_and_ids() {
        let mut net = downtown_net();
        let bob = net.register_user([0xB0; 32], 10);
        let r1 = net.send_text(200, &bob.address(), b"first");
        let r2 = net.send_text(300, &bob.address(), b"second");
        assert_ne!(r1.msg_id, r2.msg_id);
        let inbox = net.check_mailbox(&bob, 10);
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox[0].1, b"first");
        assert_eq!(inbox[1].1, b"second");
    }

    #[test]
    fn urgent_message_pushes_toward_last_known_building() {
        let mut net = downtown_net();
        let bob = net.register_user([0xB0; 32], 10);
        // Bob last checked in across town with pushes enabled.
        net.check_mailbox(&bob, 400);
        let (deposit, push) = net.send_urgent(200, &bob.address(), b"URGENT: evacuate");
        assert!(deposit.delivered);
        let push = push.expect("push should be attempted");
        assert!(push.route_found);
        assert!(push.delivered, "downtown push should reach building 400");
        assert_ne!(push.msg_id, deposit.msg_id);
        // The sealed body still waits at the postbox.
        assert_eq!(net.check_mailbox(&bob, 400).len(), 1);
    }

    #[test]
    fn urgent_without_checkin_skips_push() {
        let mut net = downtown_net();
        let bob = net.register_user([0xB0; 32], 10);
        let (deposit, push) = net.send_urgent(200, &bob.address(), b"hello?");
        assert!(deposit.delivered);
        assert!(push.is_none(), "no known location, no push");
    }

    #[test]
    fn urgent_to_device_at_postbox_skips_push() {
        let mut net = downtown_net();
        let bob = net.register_user([0xB0; 32], 10);
        net.check_mailbox(&bob, 10); // checked in at the postbox itself
        let (deposit, push) = net.send_urgent(200, &bob.address(), b"here");
        assert!(deposit.delivered);
        assert!(push.is_none());
    }

    #[test]
    #[should_panic(expected = "not in map")]
    fn registering_in_missing_building_panics() {
        let mut net = downtown_net();
        net.register_user([1; 32], u32::MAX);
    }

    #[test]
    fn unregistered_recipient_not_delivered() {
        let mut net = downtown_net();
        // Bob never registered: a postbox may not even exist.
        let ghost = PostboxAddress {
            public_key: Keypair::from_entropy([5; 32]).public,
            building_id: 10,
        };
        let receipt = net.send_text(200, &ghost, b"anyone there?");
        assert!(!receipt.delivered);
        assert_eq!(net.stored_messages(), 0);
    }
}
