//! End-to-end integration: the full Alice → Bob pipeline across every
//! crate — map generation, routing, conduit compression, wire framing,
//! the event simulation, sealed-message crypto, and postboxes.

use bytes::Bytes;
use citymesh::core::{
    compress_route, plan_route, postbox_ap, reconstruct_conduits, simulate_delivery,
    CityExperiment, DeliveryParams, ExperimentConfig,
};
use citymesh::crypto::Keypair;
use citymesh::net::{CityMeshHeader, Packet};
use citymesh::prelude::*;

fn downtown() -> DfnNetwork {
    let map = CityArchetype::SurveyDowntown.generate(99);
    DfnNetwork::new(map, ExperimentConfig::default(), 99)
}

#[test]
fn message_crosses_the_city_and_decrypts() {
    let mut net = downtown();
    let bob = net.register_user([0xB0; 32], 5);
    let far_building = (net.experiment().map().len() - 5) as u32;
    let receipt = net.send_text(far_building, &bob.address(), b"corner to corner");
    assert!(receipt.delivered);
    assert!(receipt.waypoints >= 2, "a cross-city route needs waypoints");
    assert!(receipt.broadcasts > 10, "a cross-city route needs relays");
    let inbox = net.check_mailbox(&bob, 5);
    assert_eq!(inbox.len(), 1);
    assert_eq!(inbox[0].1, b"corner to corner");
}

#[test]
fn payload_survives_wire_framing_end_to_end() {
    // Serialize the exact packet a sender would emit, decode it as a
    // relay would, and verify the header drives identical conduits.
    let map = CityArchetype::SurveyDowntown.generate(7);
    let exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed: 7,
            ..ExperimentConfig::default()
        },
    );
    let route = plan_route(exp.building_graph(), 0, (exp.map().len() - 1) as u32)
        .expect("downtown is connected");
    let compressed = compress_route(exp.building_graph(), &route, 50.0).unwrap();
    let header = CityMeshHeader::new(424242, 50.0, compressed.waypoints.clone());
    let packet = Packet::new(header.clone(), Bytes::from_static(b"sealed payload here"));

    let wire = packet.encode().expect("encodes");
    let decoded = Packet::decode(&wire).expect("decodes");
    assert_eq!(decoded.header, header);

    let sender_conduits = reconstruct_conduits(exp.map(), &header.waypoints, 50.0);
    let relay_conduits = reconstruct_conduits(exp.map(), &decoded.header.waypoints, 50.0);
    assert_eq!(sender_conduits.len(), relay_conduits.len());
    for (a, b) in sender_conduits.iter().zip(&relay_conduits) {
        assert_eq!(a.spine, b.spine);
        assert_eq!(a.width, b.width);
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let mut net = downtown();
        let bob = net.register_user([0xB0; 32], 5);
        let r = net.send_text(100, &bob.address(), b"det");
        (r.delivered, r.broadcasts, r.route_bits, r.latency)
    };
    assert_eq!(run(), run());
}

#[test]
fn tampered_ciphertext_is_rejected_but_stored() {
    // A compromised relay flips payload bits. The postbox (which
    // cannot read the message) still stores it; the recipient's
    // integrity check rejects it.
    let bob_keys = Keypair::from_entropy([0xB0; 32]);
    let addr = PostboxAddress {
        public_key: bob_keys.public,
        building_id: 3,
    };
    let sealed =
        citymesh::crypto::SealedMessage::seal(&addr, [0x11; 32], b"aad", b"the real message")
            .unwrap();
    let mut tampered = sealed.clone();
    tampered.ciphertext[4] ^= 0x40;

    let mut pb = Postbox::with_defaults();
    pb.register(bob_keys.node_id());
    pb.deposit(bob_keys.node_id(), 1, tampered, SimTime::ZERO)
        .unwrap();
    let (opened, failed) = pb
        .retrieve_and_open(&bob_keys, 3, |_| b"aad".to_vec())
        .unwrap();
    assert!(opened.is_empty());
    assert_eq!(failed, vec![1]);

    // The untampered copy arrives later (network retry) and opens.
    pb.deposit(bob_keys.node_id(), 2, sealed, SimTime::ZERO)
        .unwrap();
    let (opened, _) = pb
        .retrieve_and_open(&bob_keys, 3, |_| b"aad".to_vec())
        .unwrap();
    assert_eq!(opened.len(), 1);
    assert_eq!(opened[0].1, b"the real message");
}

#[test]
fn delivery_report_roles_are_consistent_with_counts() {
    let map = CityArchetype::SurveyDowntown.generate(11);
    let exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed: 11,
            ..ExperimentConfig::default()
        },
    );
    let dst = (exp.map().len() / 2) as u32;
    let route = plan_route(exp.building_graph(), 0, dst).unwrap();
    let compressed = compress_route(exp.building_graph(), &route, 50.0).unwrap();
    let header = CityMeshHeader::new(1, 50.0, compressed.waypoints);
    let src_ap = postbox_ap(exp.aps(), exp.map(), 0).unwrap();
    let mut rng = SimRng::new(1);
    let report = simulate_delivery(
        exp.map(),
        exp.ap_graph(),
        &header,
        src_ap,
        DeliveryParams::default(),
        &mut rng,
    );
    assert!(report.delivered);
    // Broadcast count equals the number of APs with the Relayed role:
    // every relay transmits exactly once (duplicate suppression).
    assert_eq!(report.relay_count() as u64, report.broadcasts);
    // Receptions ≥ broadcasts (each broadcast reaches ≥ 0 neighbors,
    // and the mesh is dense).
    assert!(report.receptions > report.broadcasts);
}

#[test]
fn many_users_share_the_network() {
    let mut net = downtown();
    let users: Vec<User> = (0..8u8)
        .map(|i| net.register_user([i + 1; 32], (i as u32) * 20))
        .collect();
    // Everyone messages the next user around the ring.
    let mut delivered = 0;
    for i in 0..users.len() {
        let to = &users[(i + 1) % users.len()];
        let from_building = (i as u32) * 20;
        let r = net.send_text(
            from_building,
            &to.address(),
            format!("hi from {i}").as_bytes(),
        );
        if r.delivered {
            delivered += 1;
        }
    }
    assert!(
        delivered >= 7,
        "downtown ring should mostly deliver, got {delivered}/8"
    );
    // Everyone reads their mail.
    let mut read = 0;
    for (i, u) in users.iter().enumerate() {
        read += net.check_mailbox(u, (i as u32) * 20).len();
    }
    assert_eq!(read, delivered);
}
