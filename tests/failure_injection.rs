//! Failure injection: AP outages and compromised regions.
//!
//! DFNs exist for duress conditions, so the evaluation must cover
//! degraded meshes: random AP loss (power outage patterns) and
//! region-wide loss (a compromised or destroyed neighborhood). These
//! tests exercise the paper's §1 security requirement — delivery
//! should track what the surviving topology permits — and pin the
//! monotone relationship between loss and deliverability.

use citymesh::core::{
    compress_route, plan_route, postbox_ap, simulate_delivery, Ap, ApGraph, BuildingGraph,
    BuildingGraphParams, DeliveryParams,
};
use citymesh::net::CityMeshHeader;
use citymesh::prelude::*;

/// A small faulted experiment with exactly the APs in `kill(aps)`
/// failed, ladder policy active.
fn targeted_experiment(
    seed: u64,
    retry: RetryPolicy,
    kill: impl Fn(&CityExperiment) -> Vec<u32>,
) -> CityExperiment {
    let map = CityArchetype::SurveyDowntown.generate(seed);
    let exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed,
            ..ExperimentConfig::default()
        },
    );
    let failed = kill(&exp);
    let state = citymesh::core::FaultState::with_failed(exp.aps(), exp.map(), &failed, retry);
    exp.with_fault_state(state)
}

fn aps_of_building(exp: &CityExperiment, building: u32) -> Vec<u32> {
    exp.aps()
        .iter()
        .filter(|a| a.building == building)
        .map(|a| a.id)
        .collect()
}

#[test]
fn source_building_fully_failed_fails_cleanly() {
    // Every AP in the source building is dead: the sender has no
    // uplink, so the flow must fail with zero attempts — no RNG draws,
    // no hang, no panic.
    let exp = targeted_experiment(51, RetryPolicy::ladder(), |e| aps_of_building(e, 0));
    let plan = exp.plan_flow(0, (exp.map().len() - 1) as u32);
    assert!(
        plan.src_ap.is_none(),
        "a dark building cannot host the uplink"
    );
    let mut rng = SimRng::new(51);
    let outcome = exp.simulate_flow(&plan, 1, &mut rng);
    assert!(!outcome.delivered);
    assert_eq!(outcome.attempts, 0, "never simulated: no attempts charged");
    assert_eq!(outcome.recovered_by, None);
    assert_eq!(outcome.broadcasts, 0);
}

#[test]
fn destination_building_fully_failed_fails_cleanly() {
    // The destination's APs are all dead: every rung of the ladder
    // runs, every rung fails, and the flow terminates at the attempt
    // cap instead of hanging.
    let dst = 40u32;
    let exp = targeted_experiment(52, RetryPolicy::ladder(), |e| aps_of_building(e, dst));
    let plan = exp.plan_flow(0, dst);
    assert!(plan.route_found());
    let mut rng = SimRng::new(52);
    let outcome = exp.simulate_flow(&plan, 2, &mut rng);
    assert!(
        !outcome.delivered,
        "no live AP can receive at the destination"
    );
    assert_eq!(
        outcome.attempts,
        RetryPolicy::ladder().max_attempts,
        "the ladder must run to its cap and stop"
    );
    assert_eq!(outcome.recovered_by, None);
}

#[test]
fn every_conduit_ap_failed_fails_cleanly() {
    // Kill everything except the source building's own APs: the packet
    // leaves the source and dies immediately. The simulation must
    // terminate (bounded event queue), not spin.
    let src = 0u32;
    let exp = targeted_experiment(53, RetryPolicy::ladder(), |e| {
        e.aps()
            .iter()
            .filter(|a| a.building != src)
            .map(|a| a.id)
            .collect()
    });
    let plan = exp.plan_flow(src, (exp.map().len() / 2) as u32);
    let mut rng = SimRng::new(53);
    let outcome = exp.simulate_flow(&plan, 3, &mut rng);
    assert!(!outcome.delivered);
    assert_eq!(outcome.attempts, RetryPolicy::ladder().max_attempts);
    // Only the source building's handful of APs can ever transmit.
    let live = exp.aps().iter().filter(|a| a.building == src).count() as u64;
    assert!(
        outcome.broadcasts <= outcome.attempts as u64 * live,
        "a dead mesh must not generate broadcast storms ({} broadcasts, {} live APs)",
        outcome.broadcasts,
        live
    );
}

#[test]
fn retry_ladder_recovers_flows_a_single_attempt_loses() {
    // Under 30% i.i.d. AP loss, some flows that fail their first
    // attempt are saved by a later rung — and the outcome says which.
    let map = CityArchetype::SurveyDowntown.generate(54);
    let mut scenario = FaultScenario::iid(0.3);
    scenario.retry = RetryPolicy::ladder();
    let exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed: 54,
            faults: Some(scenario),
            ..ExperimentConfig::default()
        },
    );
    let n = exp.map().len() as u32;
    let mut rng = SimRng::new(54);
    let mut recovered = 0u32;
    for i in 0..120u32 {
        let (src, dst) = ((i * 7) % n, (i * 13 + 5) % n);
        if src == dst {
            continue;
        }
        let plan = exp.plan_flow(src, dst);
        let outcome = exp.simulate_flow(&plan, i as u64, &mut rng);
        if let Some(stage) = outcome.recovered_by {
            assert!(outcome.delivered);
            assert!(outcome.attempts > 1);
            assert!(!stage.label().is_empty());
            recovered += 1;
        }
    }
    assert!(
        recovered > 0,
        "120 flows over a 30%-dead downtown must include ladder recoveries"
    );
}

/// Rebuilds the AP graph with a deterministic `fraction` of APs
/// removed (re-indexing ids), returning the survivors.
fn knock_out(aps: &[Ap], fraction: f64, rng: &mut SimRng) -> Vec<Ap> {
    let mut survivors: Vec<Ap> = aps
        .iter()
        .filter(|_| !rng.chance(fraction))
        .copied()
        .collect();
    for (i, ap) in survivors.iter_mut().enumerate() {
        ap.id = i as u32;
    }
    survivors
}

/// Removes every AP whose position falls inside a circular compromised
/// region.
fn knock_out_region(aps: &[Ap], center: Point, radius: f64) -> Vec<Ap> {
    let mut survivors: Vec<Ap> = aps
        .iter()
        .filter(|a| a.pos.dist(center) > radius)
        .copied()
        .collect();
    for (i, ap) in survivors.iter_mut().enumerate() {
        ap.id = i as u32;
    }
    survivors
}

struct Scenario {
    map: CityMap,
    bg: BuildingGraph,
    aps: Vec<Ap>,
    src: u32,
    dst: u32,
}

fn scenario() -> Scenario {
    let map = CityArchetype::SurveyDowntown.generate(31);
    let mut rng = SimRng::new(31);
    let aps = citymesh::core::place_aps(&map, 150.0, &mut rng);
    let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
    let src = map.nearest_building(Point::new(60.0, 60.0)).unwrap().id;
    let dst = map.nearest_building(Point::new(700.0, 700.0)).unwrap().id;
    Scenario {
        map,
        bg,
        aps,
        src,
        dst,
    }
}

/// Runs one delivery over a given AP subset; returns (delivered,
/// broadcasts).
fn deliver(s: &Scenario, aps: &[Ap], seed: u64) -> (bool, u64) {
    let apg = ApGraph::build(aps, 50.0);
    let Ok(route) = plan_route(&s.bg, s.src, s.dst) else {
        return (false, 0);
    };
    let compressed = compress_route(&s.bg, &route, 50.0).unwrap();
    let header = CityMeshHeader::new(seed, 50.0, compressed.waypoints);
    let Some(src_ap) = postbox_ap(aps, &s.map, s.src) else {
        return (false, 0);
    };
    let mut rng = SimRng::new(seed);
    let report = simulate_delivery(
        &s.map,
        &apg,
        &header,
        src_ap,
        DeliveryParams::default(),
        &mut rng,
    );
    (report.delivered, report.broadcasts)
}

#[test]
fn healthy_mesh_delivers() {
    let s = scenario();
    let (delivered, broadcasts) = deliver(&s, &s.aps, 1);
    assert!(delivered);
    assert!(broadcasts > 0);
}

#[test]
fn deliverability_degrades_monotonically_with_outage() {
    let s = scenario();
    // Delivery success rate over several seeds at increasing loss.
    let rate_at = |loss: f64| -> f64 {
        let mut ok = 0;
        let trials = 8;
        for seed in 0..trials {
            let mut rng = SimRng::new(1000 + seed);
            let survivors = knock_out(&s.aps, loss, &mut rng);
            if deliver(&s, &survivors, seed).0 {
                ok += 1;
            }
        }
        ok as f64 / trials as f64
    };
    let healthy = rate_at(0.0);
    let moderate = rate_at(0.4);
    let severe = rate_at(0.9);
    assert_eq!(healthy, 1.0, "no-loss runs must all deliver");
    assert!(
        moderate >= severe,
        "40% loss ({moderate}) should deliver at least as often as 90% loss ({severe})"
    );
    assert!(
        severe < 0.5,
        "at 90% AP loss the conduit should usually break (got {severe})"
    );
}

#[test]
fn compromised_region_on_the_route_blocks_delivery() {
    let s = scenario();
    // The route is roughly the diagonal; destroy a disc over its
    // midpoint. CityMesh's fixed conduit cannot route around it.
    let mid = Point::new(380.0, 380.0);
    let survivors = knock_out_region(&s.aps, mid, 150.0);
    assert!(survivors.len() < s.aps.len());
    let (delivered, _) = deliver(&s, &survivors, 3);
    assert!(
        !delivered,
        "a destroyed region astride the conduit must break this route"
    );
}

#[test]
fn compromised_region_off_the_route_is_harmless() {
    let s = scenario();
    // Destroy a corner far from the src→dst diagonal.
    let corner = Point::new(700.0, 60.0);
    let survivors = knock_out_region(&s.aps, corner, 120.0);
    assert!(survivors.len() < s.aps.len());
    let (delivered, _) = deliver(&s, &survivors, 4);
    assert!(delivered, "losing an off-conduit corner must not matter");
}

#[test]
fn detour_routing_recovers_from_a_destroyed_region() {
    // The direct conduit dies when a disc astride it is destroyed; a
    // sender that learns of the outage replans around the region
    // (paper §1: find a path avoiding compromised nodes when one
    // exists) and delivery succeeds over the surviving topology.
    let s = scenario();
    let mid = Point::new(380.0, 380.0);
    let radius = 150.0;
    let survivors = knock_out_region(&s.aps, mid, radius);
    let apg = ApGraph::build(&survivors, 50.0);

    // Direct attempt fails (same setup as the blocking test).
    let direct_route = plan_route(&s.bg, s.src, s.dst).unwrap();
    let direct = compress_route(&s.bg, &direct_route, 50.0).unwrap();
    let src_ap = postbox_ap(&survivors, &s.map, s.src).unwrap();
    let mut rng = SimRng::new(77);
    let direct_report = simulate_delivery(
        &s.map,
        &apg,
        &CityMeshHeader::new(1, 50.0, direct.waypoints),
        src_ap,
        DeliveryParams::default(),
        &mut rng,
    );
    assert!(!direct_report.delivered);

    // Retry: exclude every building in the destroyed disc (the sender
    // learned the outage region, e.g. from a failed-probe report).
    let blocked: std::collections::HashSet<u32> = s
        .map
        .buildings()
        .iter()
        .filter(|b| b.centroid.dist(mid) <= radius + 30.0)
        .map(|b| b.id)
        .collect();
    let detour_route = citymesh::core::plan_route_avoiding(&s.bg, s.src, s.dst, &blocked)
        .expect("a detour exists around the disc");
    assert!(
        detour_route.iter().all(|b| !blocked.contains(b)),
        "detour must avoid the destroyed region"
    );
    let detour = compress_route(&s.bg, &detour_route, 50.0).unwrap();
    let detour_report = simulate_delivery(
        &s.map,
        &apg,
        &CityMeshHeader::new(2, 50.0, detour.waypoints),
        src_ap,
        DeliveryParams::default(),
        &mut rng,
    );
    assert!(
        detour_report.delivered,
        "the detour conduit must deliver over the surviving topology"
    );
}

#[test]
fn send_with_retry_in_healthy_network_succeeds_first_attempt() {
    let map = CityArchetype::SurveyDowntown.generate(41);
    let mut net = citymesh::DfnNetwork::new(map, citymesh::core::ExperimentConfig::default(), 41);
    let bob = net.register_user([0xB0; 32], 10);
    let receipts = net.send_with_retry(300, &bob.address(), b"retry me", 3);
    assert_eq!(receipts.len(), 1, "healthy network needs one attempt");
    assert!(receipts[0].delivered);
    assert_eq!(net.check_mailbox(&bob, 10).len(), 1);
}

#[test]
fn reachability_tracks_outage_in_ground_truth() {
    let s = scenario();
    let full = ApGraph::build(&s.aps, 50.0);
    let mut rng = SimRng::new(5);
    let half = knock_out(&s.aps, 0.5, &mut rng);
    let degraded = ApGraph::build(&half, 50.0);
    assert!(degraded.mean_degree() < full.mean_degree());
    assert!(degraded.num_components() >= full.num_components());
}
