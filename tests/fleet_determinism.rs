//! Integration test for the fleet engine's headline invariant:
//! N workers produce byte-identical aggregate results to serial
//! execution for the same root seed.

use citymesh::fleet::{generate_flows, run_fleet, FleetConfig, FlowModel, WorkloadConfig};
use citymesh::prelude::*;

fn prepared_city(seed: u64) -> CityExperiment {
    let map = CityArchetype::SurveyDowntown.generate(seed);
    CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed,
            ..ExperimentConfig::default()
        },
    )
}

#[test]
fn one_worker_equals_eight_workers() {
    let seed = 2024;
    let exp = prepared_city(seed);
    let flows = generate_flows(
        exp.map().len(),
        &WorkloadConfig {
            flows: 400,
            model: FlowModel::Hotspot {
                hotspots: 8,
                exponent: 1.1,
                rate_hz: 200.0,
            },
            seed,
        },
    );

    let serial = run_fleet(
        &exp,
        &flows,
        &FleetConfig {
            workers: 1,
            seed,
            ..FleetConfig::default()
        },
    );
    let parallel = run_fleet(
        &exp,
        &flows,
        &FleetConfig {
            workers: 8,
            seed,
            ..FleetConfig::default()
        },
    );

    // The digest covers every deterministic field; equality means the
    // complete aggregate state (all four histograms bucket-for-bucket,
    // all counters, the span) is identical.
    assert_eq!(serial.digest(), parallel.digest());

    // Spot-check the fields directly so a digest bug can't mask a
    // divergence.
    assert_eq!(serial.flows, parallel.flows);
    assert_eq!(serial.reachable, parallel.reachable);
    assert_eq!(serial.route_found, parallel.route_found);
    assert_eq!(serial.delivered, parallel.delivered);
    assert_eq!(serial.checkins, parallel.checkins);
    assert_eq!(serial.span_ms, parallel.span_ms);
    assert_eq!(
        serial.latency_ms.fingerprint(),
        parallel.latency_ms.fingerprint()
    );
    assert_eq!(
        serial.broadcasts.fingerprint(),
        parallel.broadcasts.fingerprint()
    );
    assert_eq!(serial.hops.fingerprint(), parallel.hops.fingerprint());
    assert_eq!(
        serial.header_bits.fingerprint(),
        parallel.header_bits.fingerprint()
    );
    assert_eq!(serial.latency_ms.mean(), parallel.latency_ms.mean());
    assert_eq!(serial.latency_ms.max(), parallel.latency_ms.max());
}

#[test]
fn determinism_holds_across_worker_counts_and_models() {
    let seed = 7;
    let exp = prepared_city(seed);
    for model in [
        FlowModel::UniformPairs { rate_hz: 100.0 },
        FlowModel::PoissonBatches {
            mean_batch: 6.0,
            rate_hz: 20.0,
        },
        FlowModel::PostboxMix {
            checkin_fraction: 0.4,
            rate_hz: 100.0,
        },
    ] {
        let flows = generate_flows(
            exp.map().len(),
            &WorkloadConfig {
                flows: 150,
                model,
                seed,
            },
        );
        let digests: Vec<u64> = [1usize, 2, 5]
            .iter()
            .map(|&workers| {
                run_fleet(
                    &exp,
                    &flows,
                    &FleetConfig {
                        workers,
                        seed,
                        ..FleetConfig::default()
                    },
                )
                .digest()
            })
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "digests diverged across worker counts for {model:?}: {digests:x?}"
        );
    }
}

#[test]
fn same_city_different_seeds_diverge() {
    let exp = prepared_city(11);
    let mk = |seed: u64| {
        let flows = generate_flows(
            exp.map().len(),
            &WorkloadConfig {
                flows: 100,
                model: FlowModel::UniformPairs { rate_hz: 50.0 },
                seed,
            },
        );
        run_fleet(
            &exp,
            &flows,
            &FleetConfig {
                workers: 2,
                seed,
                ..FleetConfig::default()
            },
        )
        .digest()
    };
    assert_ne!(mk(1), mk(2), "seeds must reach workload and simulation");
}
