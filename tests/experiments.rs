//! Cross-city experiment sanity: the orderings and bands that the
//! paper's evaluation reports must hold in this reproduction. These
//! are the "shape" assertions documented in EXPERIMENTS.md.

use citymesh::baselines::{flood, ManetScale};
use citymesh::core::{postbox_ap, CityExperiment, ExperimentConfig};
use citymesh::prelude::*;

fn config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        reachability_pairs: 250,
        delivery_pairs: 12,
        ..ExperimentConfig::default()
    }
}

#[test]
fn dense_cities_beat_fractured_ones_on_reachability() {
    let ny = CityExperiment::prepare(CityArchetype::NewYork.generate(5), config(5)).run();
    let dc = CityExperiment::prepare(CityArchetype::WashingtonDc.generate(5), config(5)).run();
    assert!(
        ny.reachability > dc.reachability,
        "new york ({}) must out-reach washington-dc ({})",
        ny.reachability,
        dc.reachability
    );
    assert!(
        dc.components > ny.components,
        "DC fractures into more islands"
    );
}

#[test]
fn overhead_is_bounded_and_above_unity() {
    let result = CityExperiment::prepare(CityArchetype::SanFrancisco.generate(6), config(6)).run();
    for o in result.outcomes.iter().filter_map(|o| o.overhead) {
        assert!(o >= 1.0, "overhead below the ideal-unicast bound: {o}");
        assert!(o < 100.0, "overhead implausibly high: {o}");
    }
    let med = result.median_overhead.expect("deliveries happened");
    assert!((1.5..30.0).contains(&med), "median overhead {med}");
}

#[test]
fn citymesh_broadcasts_less_than_flooding_on_long_routes() {
    let exp = CityExperiment::prepare(CityArchetype::Boston.generate(8), config(8)).run();
    // Re-prepare to access the graphs (run() consumed nothing, but we
    // need the experiment object).
    let exp_obj = CityExperiment::prepare(CityArchetype::Boston.generate(8), config(8));
    let mut wins = 0;
    let mut considered = 0;
    for o in exp.outcomes.iter().filter(|o| o.delivered) {
        let Some(src_ap) = postbox_ap(exp_obj.aps(), exp_obj.map(), o.src) else {
            continue;
        };
        let f = flood(exp_obj.ap_graph(), src_ap, o.dst, None);
        assert!(f.delivered, "flooding delivers whenever reachable");
        considered += 1;
        if o.broadcasts < f.broadcasts {
            wins += 1;
        }
    }
    assert!(considered > 0);
    assert!(
        wins * 10 >= considered * 9,
        "CityMesh should out-economize flooding on ≈ all routes ({wins}/{considered})"
    );
}

#[test]
fn header_sizes_scale_with_route_length() {
    let exp = CityExperiment::prepare(CityArchetype::Chicago.generate(9), config(9));
    let result = exp.run();
    // Compare the shortest and longest successfully-routed pairs.
    let mut routed: Vec<_> = result.outcomes.iter().filter(|o| o.route_found).collect();
    routed.sort_by_key(|o| o.route_len);
    if routed.len() >= 2 {
        let short = routed.first().unwrap();
        let long = routed.last().unwrap();
        if long.route_len > 2 * short.route_len {
            assert!(
                long.route_bits >= short.route_bits,
                "longer routes should not need smaller headers"
            );
        }
    }
    // And all headers stay packet-practical (the paper's point).
    for o in &routed {
        assert!(
            o.route_bits <= 1600,
            "route header {} bits > 200 bytes",
            o.route_bits
        );
    }
}

#[test]
fn manet_models_cross_citymesh_at_scale() {
    // At every scale the paper cares about, proactive/reactive control
    // overhead is nonzero and growing; CityMesh's is zero.
    for nodes in [1_000u64, 100_000, 10_000_000] {
        let s = ManetScale::uniform(nodes, 13.0);
        assert!(citymesh::baselines::dsdv_update_cost(s) > nodes);
        assert!(citymesh::baselines::aodv_discovery_cost(s) >= nodes);
        assert_eq!(citymesh::baselines::manet::citymesh_control_cost(s), 0);
    }
}

#[test]
fn survey_and_pipeline_agree_on_density_ordering() {
    // The §2 survey and the §4 pipeline are independent code paths over
    // the same generator; both must rank downtown above river.
    use citymesh::measure::{Survey, SurveyConfig};
    let downtown_map = CityArchetype::SurveyDowntown.generate(10);
    let river_map = CityArchetype::SurveyRiver.generate(10);

    let cfg = SurveyConfig {
        scans: 120,
        seed: 10,
        ..SurveyConfig::default()
    };
    let downtown_median = Survey::run(&downtown_map, &cfg)
        .macs_per_scan_cdf()
        .median()
        .unwrap();
    let river_median = Survey::run(&river_map, &cfg)
        .macs_per_scan_cdf()
        .median()
        .unwrap();
    assert!(downtown_median > river_median);

    let downtown_reach = CityExperiment::prepare(downtown_map, config(10))
        .run()
        .reachability;
    let river_reach = CityExperiment::prepare(river_map, config(10))
        .run()
        .reachability;
    assert!(downtown_reach > river_reach);
}
