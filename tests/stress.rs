//! Scale stress: a full-city deployment under sustained traffic.
//!
//! Complements the per-feature tests with one long soak: many users,
//! many messages, retries, pushes, and mailbox churn on a city-sized
//! topology — asserting global invariants (conservation of messages,
//! determinism, no postbox leaks) rather than single behaviours.

use citymesh::prelude::*;

fn city_net(seed: u64) -> DfnNetwork {
    let map = CityArchetype::Cambridge.generate(seed);
    DfnNetwork::new(map, ExperimentConfig::default(), seed)
}

#[test]
fn soak_many_users_many_messages() {
    let mut net = city_net(1001);
    let n_buildings = net.experiment().map().len() as u32;

    // 20 users spread deterministically across the city.
    let users: Vec<User> = (0..20u32)
        .map(|i| {
            let building = (i * (n_buildings / 20)).min(n_buildings - 1);
            net.register_user([i as u8 + 1; 32], building)
        })
        .collect();
    let home = |i: usize| (i as u32 * (n_buildings / 20)).min(n_buildings - 1);

    // 60 messages around the user ring; latencies feed a histogram.
    let mut latencies = citymesh::simcore::Histogram::for_latency();
    let mut sent = 0usize;
    let mut delivered = 0usize;
    for round in 0..3usize {
        for i in 0..users.len() {
            let to = &users[(i + round + 1) % users.len()];
            let body = format!("round {round} from {i}");
            let r = net.send_text(home(i), &to.address(), body.as_bytes());
            sent += 1;
            if r.delivered {
                delivered += 1;
                latencies.record(r.latency.expect("delivered has latency").as_secs_f64());
            }
        }
    }
    assert_eq!(sent, 60);
    // Latency distribution sanity: city-scale deliveries land in the
    // tens-of-milliseconds band and the tail stays bounded.
    let p50 = latencies.quantile(0.5).expect("deliveries happened");
    let p95 = latencies.quantile(0.95).unwrap();
    assert!((0.001..1.0).contains(&p50), "median latency {p50}s");
    assert!(p95 >= p50 && p95 < 10.0, "p95 latency {p95}s");
    // Cambridge is ~95% reachable; most ring messages should land.
    assert!(delivered >= sent / 2, "only {delivered}/{sent} delivered");
    // Conservation: every delivered message is stored exactly once.
    assert_eq!(net.stored_messages(), delivered);

    // Everyone drains their mailbox; totals must reconcile.
    let mut read = 0usize;
    for (i, u) in users.iter().enumerate() {
        for (_, body) in net.check_mailbox(u, home(i)) {
            assert!(std::str::from_utf8(&body).unwrap().starts_with("round"));
            read += 1;
        }
    }
    assert_eq!(
        read, delivered,
        "mailboxes must hold exactly the delivered set"
    );
    assert_eq!(net.stored_messages(), 0, "drained mailboxes must be empty");
}

#[test]
fn soak_is_deterministic() {
    let run = || {
        let mut net = city_net(2002);
        let a = net.register_user([1; 32], 5);
        let b = net.register_user([2; 32], 400);
        let mut log = Vec::new();
        for i in 0..10 {
            let (from, to) = if i % 2 == 0 { (5, &b) } else { (400, &a) };
            let r = net.send_text(from, &to.address(), b"ping");
            log.push((r.delivered, r.broadcasts, r.route_bits));
        }
        log
    };
    assert_eq!(run(), run());
}

#[test]
fn retry_budget_is_respected_under_impossible_routes() {
    // A recipient on an unreachable island: retries must stop at the
    // budget (or earlier when no detour exists), not spin.
    let map = CityArchetype::Houston.generate(3003); // many islands
    let mut net = DfnNetwork::new(map, ExperimentConfig::default(), 3003);
    // Find a cross-island pair.
    let exp = net.experiment();
    let src = 0u32;
    let Some(dst) =
        (1..exp.map().len() as u32).find(|b| !exp.ap_graph().buildings_reachable(src, *b))
    else {
        return; // this seed produced a connected Houston; nothing to do
    };
    let bob = net.register_user([9; 32], dst);
    let receipts = net.send_with_retry(src, &bob.address(), b"into the void", 4);
    assert!(receipts.len() <= 4);
    assert!(receipts.iter().all(|r| !r.delivered));
    assert_eq!(net.stored_messages(), 0);
}
