//! The real-map path: an OSM XML extract (generated inline in the OSM
//! wire format) flows through the parser, the cache codec, and the
//! full routing pipeline — proving the synthetic generator is not a
//! hidden dependency of any CityMesh component.

use citymesh::core::{CityExperiment, ExperimentConfig};
use citymesh::map::{decode_map, encode_map, osm, DEFAULT_QUANTUM_MM};

/// Builds an OSM XML document for an `nx × ny` grid of ~30 m buildings
/// around Kendall Square coordinates, in the exact shape `osmium
/// extract` emits (nodes first, then closed building ways).
fn osm_grid(nx: usize, ny: usize) -> String {
    let mut xml = String::from("<?xml version=\"1.0\"?>\n<osm version=\"0.6\">\n");
    let mut ways = String::new();
    let mut node_id = 1i64;
    let mut way_id = 10_000i64;
    for by in 0..ny {
        for bx in 0..nx {
            let lat0 = 42.3620 + by as f64 * 0.00042;
            let lon0 = -71.0850 + bx as f64 * 0.00057;
            let (lat1, lon1) = (lat0 + 0.00027, lon0 + 0.00037);
            let ids = [node_id, node_id + 1, node_id + 2, node_id + 3];
            node_id += 4;
            for (k, (lat, lon)) in [
                (0, (lat0, lon0)),
                (1, (lat0, lon1)),
                (2, (lat1, lon1)),
                (3, (lat1, lon0)),
            ] {
                xml.push_str(&format!(
                    " <node id=\"{}\" lat=\"{lat:.7}\" lon=\"{lon:.7}\"/>\n",
                    ids[k]
                ));
            }
            ways.push_str(&format!(" <way id=\"{way_id}\">\n"));
            for k in [0usize, 1, 2, 3, 0] {
                ways.push_str(&format!("  <nd ref=\"{}\"/>\n", ids[k]));
            }
            ways.push_str("  <tag k=\"building\" v=\"yes\"/>\n </way>\n");
            way_id += 1;
        }
    }
    xml.push_str(&ways);
    xml.push_str("</osm>\n");
    xml
}

#[test]
fn osm_extract_runs_the_full_pipeline() {
    let xml = osm_grid(10, 8);
    let map = osm::load_city("kendall", &xml).expect("parses");
    assert_eq!(map.len(), 80);

    let config = ExperimentConfig {
        seed: 5,
        reachability_pairs: 150,
        delivery_pairs: 10,
        ..ExperimentConfig::default()
    };
    let result = CityExperiment::prepare(map, config).run();
    // A tight grid of real-coordinate buildings must be one island
    // with near-total reachability and real deliveries.
    assert!(
        result.reachability > 0.95,
        "reachability {}",
        result.reachability
    );
    assert!(
        result.deliverability > 0.7,
        "deliverability {}",
        result.deliverability
    );
    assert!(result.median_overhead.is_some());
}

#[test]
fn osm_map_survives_the_cache_codec() {
    // Parse → encode → decode → route: the path a deployed AP takes
    // (map shipped as a cache blob, not as XML).
    let xml = osm_grid(6, 6);
    let parsed = osm::load_city("kendall", &xml).unwrap();
    let cached = decode_map(&encode_map(&parsed, DEFAULT_QUANTUM_MM)).unwrap();
    assert_eq!(cached.len(), parsed.len());

    let config = ExperimentConfig {
        seed: 9,
        reachability_pairs: 60,
        delivery_pairs: 5,
        ..ExperimentConfig::default()
    };
    let from_parsed = CityExperiment::prepare(parsed, config).run();
    let from_cache = CityExperiment::prepare(cached, config).run();
    // Same seed over (quantization-identical) maps: identical results.
    assert_eq!(from_parsed.reachability, from_cache.reachability);
    assert_eq!(from_parsed.deliverability, from_cache.deliverability);
}
