//! The event scheduler.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of timestamped events with deterministic FIFO
/// tie-breaking: events scheduled for the same instant pop in the
/// order they were pushed.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    popped: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        self.heap.push(Entry {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event with its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events processed so far (for run statistics).
    pub fn processed(&self) -> u64 {
        self.popped
    }

    /// Empties the queue and resets the sequence and processed
    /// counters, **keeping the heap's allocation** so a reused queue
    /// schedules without touching the allocator.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.popped = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A minimal simulation driver: a clock plus an [`EventQueue`].
///
/// Handlers receive `(&mut Simulation, event)` and may schedule more
/// events relative to [`Simulation::now`]. The loop guards against
/// scheduling into the past, which would silently corrupt causality.
///
/// ```
/// use citymesh_simcore::{SimTime, Simulation};
///
/// struct Tick(u32);
/// let mut sim: Simulation<Tick> = Simulation::new();
/// sim.schedule_in(SimTime::from_millis(1), Tick(0));
/// let mut count = 0;
/// sim.run(|sim, Tick(n)| {
///     count += 1;
///     if n < 2 {
///         sim.schedule_in(SimTime::from_millis(1), Tick(n + 1));
///     }
/// });
/// assert_eq!(count, 3);
/// assert_eq!(sim.now(), SimTime::from_millis(3));
/// ```
#[derive(Debug)]
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: SimTime,
    /// Optional hard stop; events after the horizon are discarded at
    /// pop time.
    horizon: Option<SimTime>,
}

impl<E> Simulation<E> {
    /// Creates a simulation starting at time zero.
    pub fn new() -> Self {
        Simulation {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon: None,
        }
    }

    /// Sets a hard time horizon: events scheduled after it never run.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Replaces the horizon on an existing simulation (`None` removes
    /// it). Companion to [`Simulation::reset`] for reuse across runs.
    pub fn set_horizon(&mut self, horizon: Option<SimTime>) {
        self.horizon = horizon;
    }

    /// Rewinds the clock to zero and discards all pending events while
    /// **retaining the event queue's allocation**. A reset simulation
    /// behaves exactly like a freshly constructed one (the horizon is
    /// kept; change it with [`Simulation::set_horizon`]), so hot loops
    /// can run many back-to-back simulations with zero steady-state
    /// heap traffic.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.now = SimTime::ZERO;
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.queue.processed()
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics when `at` is before the current time: an event in the
    /// past is always a simulation bug, never recoverable.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Runs until the queue drains (or the horizon passes), calling
    /// `handler` for each event in timestamp order.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Simulation<E>, E)) {
        while let Some((t, ev)) = self.queue.pop() {
            if let Some(h) = self.horizon {
                if t > h {
                    // Horizon reached: drop this and everything later.
                    return;
                }
            }
            debug_assert!(t >= self.now, "event queue returned non-monotonic time");
            self.now = t;
            handler(self, ev);
        }
    }

    /// Runs at most `max_events` events; returns how many ran.
    pub fn run_bounded(
        &mut self,
        max_events: u64,
        mut handler: impl FnMut(&mut Simulation<E>, E),
    ) -> u64 {
        let mut n = 0;
        while n < max_events {
            let Some((t, ev)) = self.queue.pop() else {
                break;
            };
            if let Some(h) = self.horizon {
                if t > h {
                    break;
                }
            }
            self.now = t;
            handler(self, ev);
            n += 1;
        }
        n
    }
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(10)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn simulation_advances_clock_and_cascades() {
        #[derive(Debug)]
        enum Ev {
            Ping(u32),
        }
        let mut sim = Simulation::new();
        sim.schedule_in(SimTime::from_millis(1), Ev::Ping(0));
        let mut seen = Vec::new();
        sim.run(|sim, Ev::Ping(k)| {
            seen.push((sim.now(), k));
            if k < 4 {
                sim.schedule_in(SimTime::from_millis(1), Ev::Ping(k + 1));
            }
        });
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[4].0, SimTime::from_millis(5));
        assert_eq!(sim.processed(), 5);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn horizon_stops_processing() {
        let mut sim = Simulation::new().with_horizon(SimTime::from_millis(10));
        for i in 1..=20u64 {
            sim.schedule_at(SimTime::from_millis(i), i);
        }
        let mut count = 0;
        sim.run(|_, _| count += 1);
        assert_eq!(count, 10);
    }

    #[test]
    fn run_bounded_limits_event_count() {
        let mut sim = Simulation::new();
        for i in 0..10u64 {
            sim.schedule_at(SimTime::from_millis(i), i);
        }
        let ran = sim.run_bounded(3, |_, _| {});
        assert_eq!(ran, 3);
        assert_eq!(sim.pending(), 7);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_millis(5), ());
        sim.run(|sim, ()| {
            sim.schedule_at(SimTime::from_millis(1), ());
        });
    }

    #[test]
    fn cleared_queue_is_fresh_but_keeps_capacity() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.push(SimTime::from_millis(i), i);
        }
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.processed(), 0);
        // FIFO tie-breaking restarts from sequence zero.
        q.push(SimTime::from_millis(1), 7);
        q.push(SimTime::from_millis(1), 8);
        assert_eq!(q.pop().map(|(_, e)| e), Some(7));
        assert_eq!(q.pop().map(|(_, e)| e), Some(8));
    }

    #[test]
    fn reset_simulation_matches_fresh_one() {
        let run = |sim: &mut Simulation<u64>| {
            for i in 1..=20u64 {
                sim.schedule_at(SimTime::from_millis(i), i);
            }
            let mut seen = Vec::new();
            sim.run(|sim, e| seen.push((sim.now(), e)));
            seen
        };
        let mut fresh = Simulation::new().with_horizon(SimTime::from_millis(10));
        let expect = run(&mut fresh);

        let mut reused = Simulation::new().with_horizon(SimTime::from_millis(10));
        run(&mut reused); // dirty it
        reused.reset();
        assert_eq!(reused.now(), SimTime::ZERO);
        assert_eq!(reused.pending(), 0);
        assert_eq!(run(&mut reused), expect, "reset run must be identical");
    }

    #[test]
    fn set_horizon_changes_cutoff_on_reuse() {
        let mut sim: Simulation<u64> = Simulation::new().with_horizon(SimTime::from_millis(5));
        for i in 1..=20u64 {
            sim.schedule_at(SimTime::from_millis(i), i);
        }
        let mut count = 0;
        sim.run(|_, _| count += 1);
        assert_eq!(count, 5);
        sim.reset();
        sim.set_horizon(Some(SimTime::from_millis(12)));
        for i in 1..=20u64 {
            sim.schedule_at(SimTime::from_millis(i), i);
        }
        let mut count = 0;
        sim.run(|_, _| count += 1);
        assert_eq!(count, 12);
    }

    #[test]
    fn stress_random_order_pops_sorted() {
        use crate::SimRng;
        let mut rng = SimRng::new(8);
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.push(SimTime::from_nanos(rng.below(1_000_000)), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
