//! Radio propagation models.
//!
//! The paper's simulator connects APs "where the inter-AP distance is
//! below a configurable transmission range" — the classic **unit
//! disk** model ([`UnitDisk`], used for every headline figure). The
//! synthetic measurement study and the fidelity ablations additionally
//! use a **log-distance path loss** model with lognormal shadowing
//! ([`LogDistance`]), the standard empirical model for 2.4 GHz urban
//! propagation, so that per-scan AP counts and BSSID spreads exhibit
//! the variance visible in the paper's Figures 1–2.

use crate::SimRng;

/// A propagation model decides whether a link exists at distance `d`.
pub trait Propagation {
    /// Probability that a frame transmitted at distance `d` meters is
    /// received (deterministic models return 0 or 1).
    fn receive_probability(&self, d: f64) -> f64;

    /// Samples link existence at distance `d`.
    fn link_exists(&self, d: f64, rng: &mut SimRng) -> bool {
        let p = self.receive_probability(d);
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            rng.chance(p)
        }
    }

    /// A conservative upper bound on the distance at which
    /// `receive_probability` can be nonzero. Spatial queries cull
    /// beyond this.
    fn max_range(&self) -> f64;
}

/// Deterministic symmetric cutoff: received iff `d ≤ range`.
///
/// The paper evaluates with `range = 50 m` (§4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UnitDisk {
    /// Cutoff distance, meters.
    pub range: f64,
}

impl UnitDisk {
    /// Creates a unit-disk model with the given cutoff.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite range.
    pub fn new(range: f64) -> Self {
        assert!(
            range.is_finite() && range > 0.0,
            "range must be positive, got {range}"
        );
        UnitDisk { range }
    }
}

impl Propagation for UnitDisk {
    fn receive_probability(&self, d: f64) -> f64 {
        if d <= self.range {
            1.0
        } else {
            0.0
        }
    }

    fn max_range(&self) -> f64 {
        self.range
    }
}

/// Log-distance path loss with lognormal shadowing.
///
/// `PL(d) = PL(d₀) + 10·n·log₁₀(d/d₀) + Xσ`, received when the link
/// budget covers the loss. Defaults are typical for 2.4 GHz Wi-Fi in
/// built-up areas (exponent ≈ 2.7–3.5, σ ≈ 4–8 dB).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogDistance {
    /// Path-loss exponent `n`.
    pub exponent: f64,
    /// Shadowing standard deviation, dB. Zero disables shadowing.
    pub sigma_db: f64,
    /// Path loss at the reference distance (1 m), dB. 40 dB is the
    /// free-space value at 2.4 GHz.
    pub ref_loss_db: f64,
    /// Total link budget, dB: TX power + antenna gains − receiver
    /// sensitivity. 100 dB ≈ 20 dBm TX, −80 dBm sensitivity.
    pub budget_db: f64,
}

impl Default for LogDistance {
    fn default() -> Self {
        LogDistance {
            exponent: 3.0,
            sigma_db: 6.0,
            ref_loss_db: 40.0,
            budget_db: 100.0,
        }
    }
}

impl LogDistance {
    /// A parameterization whose *median* range matches `range` meters:
    /// useful for apples-to-apples comparisons with [`UnitDisk`].
    pub fn with_median_range(range: f64, exponent: f64, sigma_db: f64) -> Self {
        assert!(
            range > 1.0 && range.is_finite(),
            "median range must exceed 1 m"
        );
        // Budget such that mean path loss at `range` exactly exhausts it.
        let ref_loss_db = 40.0;
        let budget_db = ref_loss_db + 10.0 * exponent * range.log10();
        LogDistance {
            exponent,
            sigma_db,
            ref_loss_db,
            budget_db,
        }
    }

    /// Mean path loss at distance `d` meters (no shadowing), dB.
    pub fn mean_path_loss_db(&self, d: f64) -> f64 {
        let d = d.max(1.0); // clamp inside the reference distance
        self.ref_loss_db + 10.0 * self.exponent * d.log10()
    }

    /// The distance at which the mean path loss exhausts the budget.
    pub fn median_range(&self) -> f64 {
        10f64.powf((self.budget_db - self.ref_loss_db) / (10.0 * self.exponent))
    }
}

impl Propagation for LogDistance {
    fn receive_probability(&self, d: f64) -> f64 {
        let margin = self.budget_db - self.mean_path_loss_db(d);
        if self.sigma_db <= 0.0 {
            return if margin >= 0.0 { 1.0 } else { 0.0 };
        }
        // P(X ≤ margin), X ~ N(0, σ²): Φ(margin/σ).
        phi(margin / self.sigma_db)
    }

    fn max_range(&self) -> f64 {
        if self.sigma_db <= 0.0 {
            self.median_range()
        } else {
            // 4σ of shadowing margin ≈ receive probability 3×10⁻⁵.
            10f64.powf(
                (self.budget_db + 4.0 * self.sigma_db - self.ref_loss_db) / (10.0 * self.exponent),
            )
        }
    }
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (max abs error 1.5×10⁻⁷ — far below simulation noise).
fn phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_disk_hard_cutoff() {
        let m = UnitDisk::new(50.0);
        assert_eq!(m.receive_probability(49.999), 1.0);
        assert_eq!(m.receive_probability(50.0), 1.0);
        assert_eq!(m.receive_probability(50.001), 0.0);
        assert_eq!(m.max_range(), 50.0);
        let mut rng = SimRng::new(1);
        assert!(m.link_exists(10.0, &mut rng));
        assert!(!m.link_exists(60.0, &mut rng));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn unit_disk_rejects_zero_range() {
        UnitDisk::new(0.0);
    }

    #[test]
    fn log_distance_median_range_calibration() {
        let m = LogDistance::with_median_range(50.0, 3.0, 6.0);
        assert!((m.median_range() - 50.0).abs() < 1e-9);
        // At the median range, receive probability is exactly 1/2.
        assert!((m.receive_probability(50.0) - 0.5).abs() < 1e-6);
        // Closer in, it climbs; farther out, it falls.
        assert!(m.receive_probability(25.0) > 0.9);
        assert!(m.receive_probability(100.0) < 0.1);
    }

    #[test]
    fn log_distance_monotone_decreasing() {
        let m = LogDistance::default();
        let mut last = 1.0;
        for d in [1.0, 5.0, 20.0, 50.0, 100.0, 300.0, 1000.0] {
            let p = m.receive_probability(d);
            assert!(p <= last + 1e-12, "p({d}) = {p} > {last}");
            last = p;
        }
    }

    #[test]
    fn zero_shadowing_becomes_deterministic() {
        let m = LogDistance {
            sigma_db: 0.0,
            ..LogDistance::with_median_range(50.0, 3.0, 0.0)
        };
        assert_eq!(m.receive_probability(49.0), 1.0);
        assert_eq!(m.receive_probability(51.0), 0.0);
        assert!((m.max_range() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn max_range_bounds_nonzero_probability() {
        let m = LogDistance::default();
        let r = m.max_range();
        assert!(m.receive_probability(r * 1.05) < 1e-4);
    }

    #[test]
    fn shadowing_sampling_matches_probability() {
        let m = LogDistance::with_median_range(50.0, 3.0, 6.0);
        let mut rng = SimRng::new(77);
        let trials = 50_000;
        let hits = (0..trials)
            .filter(|_| m.link_exists(50.0, &mut rng))
            .count();
        let frac = hits as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn erf_reference_values() {
        // Known values of erf to the approximation's accuracy.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
    }
}
