//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A simulation timestamp with nanosecond resolution.
///
/// Integer nanoseconds (not `f64` seconds) so that event ordering is a
/// total order free of floating-point accumulation drift — two runs
/// scheduling the same delays always order events identically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero, the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a timestamp from nanoseconds since simulation start.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a timestamp from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a timestamp from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a timestamp from (possibly fractional) seconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "simulation time must be finite and non-negative, got {secs}"
        );
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start (lossy for display/statistics).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start (lossy).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulation time overflow"))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation time underflow"),
        )
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimTime::from_nanos(250).as_secs_f64(), 2.5e-7);
        assert_eq!(SimTime::from_millis(1500).as_millis_f64(), 1500.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert!(a < b);
        assert!(SimTime::ZERO < a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(13));
        assert_eq!(a - b, SimTime::from_millis(7));
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
        assert_eq!(a.saturating_since(b), SimTime::from_millis(7));
        let mut t = a;
        t += b;
        assert_eq!(t, SimTime::from_millis(13));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panics() {
        SimTime::from_secs_f64(-0.1);
    }
}
