//! Deterministic random number generation.
//!
//! Every stochastic component of a CityMesh experiment (AP placement,
//! source/destination sampling, MAC jitter, shadowing) draws from a
//! [`SimRng`] seeded from the experiment seed via [`split_seed`], so
//! adding randomness consumers to one component never perturbs another
//! (no accidental stream sharing).

use rand::{RngCore, SeedableRng};

/// Derives an independent child seed from `(seed, stream)`.
///
/// Uses the SplitMix64 output function, whose avalanche behaviour makes
/// even adjacent stream ids produce uncorrelated child states. Standard
/// practice for seeding xoshiro-family generators.
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of an independent per-item sub-stream from a root
/// seed, a domain tag, and an item index.
///
/// This is the workhorse of the fleet engine's determinism guarantee:
/// each flow `i` of a workload draws every random decision from
/// `SimRng::new(substream_seed(root, DOMAIN, i))`, so the flow's
/// outcome is a pure function of `(root, i)` — independent of which
/// worker thread executes it, in what order, or alongside which other
/// flows. Two SplitMix64 output rounds ([`split_seed`]) separate the
/// domain and the index, so `(domain, index)` pairs cannot alias the
/// way single-round `domain ^ index` mixing could.
pub fn substream_seed(root: u64, domain: u64, index: u64) -> u64 {
    split_seed(split_seed(root, domain), index)
}

/// A fast, deterministic generator: **xoshiro256++**.
///
/// Implemented in-tree (the `rand` crate's small generators sit behind
/// optional features, and pinning the exact algorithm here guarantees
/// that recorded experiment outputs stay reproducible across `rand`
/// upgrades). Implements [`rand::RngCore`], so all of `rand`'s
/// distribution machinery works on top.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (expanded to the 256-bit
    /// state through SplitMix64, per the xoshiro authors' guidance).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        SimRng { s }
    }

    /// Convenience: a child generator for an independent stream.
    pub fn child(&self, stream: u64) -> SimRng {
        SimRng::new(split_seed(self.s[0] ^ self.s[3], stream))
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo > hi` or either bound is non-finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's method (unbiased).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        let mut x = self.next();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Standard normal deviate (Box–Muller). Used by the log-distance
    /// shadowing model.
    pub fn std_normal(&mut self) -> f64 {
        // Rejection-free polar-less form; u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Bernoulli trial with success probability `p` (clamped to \[0,1\]).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (Floyd's algorithm),
    /// returned in ascending order. `k > n` yields all of `0..n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.below(j as u64 + 1) as usize;
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::new(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_seed_children_are_distinct() {
        let s = 123;
        let mut seen = std::collections::HashSet::new();
        for stream in 0..1000 {
            assert!(seen.insert(split_seed(s, stream)));
        }
    }

    #[test]
    fn uniform_in_unit_interval_and_roughly_uniform() {
        let mut rng = SimRng::new(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_is_in_range_and_covers_values() {
        let mut rng = SimRng::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all values 0..10 should appear");
    }

    #[test]
    fn std_normal_moments() {
        let mut rng = SimRng::new(99);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.std_normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn sample_indices_distinct_sorted_and_bounded() {
        let mut rng = SimRng::new(5);
        for _ in 0..100 {
            let s = rng.sample_indices(50, 10);
            assert_eq!(s.len(), 10);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 50));
        }
        // k > n yields everything.
        assert_eq!(rng.sample_indices(3, 10), vec![0, 1, 2]);
        assert!(rng.sample_indices(0, 5).is_empty());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle matching identity is ~impossible"
        );
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut rng = SimRng::new(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(2);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn substreams_are_distinct_across_indices_and_domains() {
        let mut seen = std::collections::HashSet::new();
        for domain in [0u64, 1, 0xF1EE7] {
            for index in 0..10_000u64 {
                assert!(
                    seen.insert(substream_seed(42, domain, index)),
                    "collision at domain={domain} index={index}"
                );
            }
        }
    }

    #[test]
    fn substream_is_not_plain_xor_aliasing() {
        // With single-round mixing, (domain ^ k, 0) and (domain, k)
        // could collide; the two-round form must keep them apart.
        assert_ne!(substream_seed(7, 3 ^ 5, 0), substream_seed(7, 3, 5));
    }

    #[test]
    fn rng_and_streams_are_shareable_across_threads() {
        // The fleet engine shares worlds and per-flow RNGs across a
        // worker pool; this pins the auto-traits so a regression (an
        // Rc or RefCell creeping into SimRng) fails to compile.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimRng>();
    }

    #[test]
    fn reference_vector_stability() {
        // Pin the output stream: if the generator implementation ever
        // changes, recorded experiment results would silently change;
        // this test makes that loud instead.
        let mut rng = SimRng::new(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = SimRng::new(0);
        let got2: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(got, got2);
        // And the child-stream derivation is stable too.
        assert_eq!(split_seed(0, 0), split_seed(0, 0));
        assert_ne!(split_seed(0, 0), split_seed(0, 1));
    }
}
