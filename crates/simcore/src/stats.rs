//! Lightweight streaming statistics for simulation outputs.
//!
//! Experiments accumulate large numbers of per-message observations
//! (latencies, broadcast counts, hop counts). [`Histogram`] records
//! them in logarithmic buckets with O(1) insertion and bounded memory,
//! supporting approximate quantiles good to its bucket resolution —
//! the right trade for plots whose axes are logarithmic anyway.

/// A log-bucketed histogram over non-negative `f64` samples.
///
/// Buckets grow geometrically from `min_value` by `growth` per bucket;
/// values below `min_value` share an underflow bucket. Quantiles are
/// answered at bucket resolution (relative error ≈ `growth − 1`).
#[derive(Clone, Debug)]
pub struct Histogram {
    min_value: f64,
    inv_log_growth: f64,
    growth: f64,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
    sum: f64,
    max_seen: f64,
}

impl Histogram {
    /// Creates a histogram with buckets starting at `min_value` and
    /// growing by `growth` (> 1) per bucket, e.g. `(1e-3, 1.2)` for
    /// latencies in seconds with ~20 % resolution.
    ///
    /// # Panics
    /// Panics unless `min_value > 0` and `growth > 1`.
    pub fn new(min_value: f64, growth: f64) -> Self {
        assert!(
            min_value > 0.0 && min_value.is_finite(),
            "min_value must be positive"
        );
        assert!(growth > 1.0 && growth.is_finite(), "growth must exceed 1");
        Histogram {
            min_value,
            inv_log_growth: 1.0 / growth.ln(),
            growth,
            counts: Vec::new(),
            underflow: 0,
            total: 0,
            sum: 0.0,
            max_seen: 0.0,
        }
    }

    /// A configuration suited to network latencies in seconds:
    /// 100 µs floor, ~10 % bucket resolution.
    pub fn for_latency() -> Self {
        Histogram::new(1e-4, 1.1)
    }

    /// Records one sample.
    ///
    /// # Panics
    /// Panics on negative or non-finite samples — statistics over NaN
    /// always indicate an upstream bug.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite() && value >= 0.0, "bad sample {value}");
        self.total += 1;
        self.sum += value;
        self.max_seen = self.max_seen.max(value);
        if value < self.min_value {
            self.underflow += 1;
            return;
        }
        let idx = ((value / self.min_value).ln() * self.inv_log_growth) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of all samples (exact), or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// Maximum sample seen (exact), or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max_seen)
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), approximated at bucket
    /// resolution: returns the geometric midpoint of the bucket
    /// containing the target rank. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank among all samples, 1-based.
        let target = ((self.total as f64 * q).ceil() as u64).max(1);
        if target <= self.underflow {
            return Some(self.min_value / 2.0);
        }
        let mut seen = self.underflow;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let lo = self.min_value * self.growth.powi(i as i32);
                let hi = lo * self.growth;
                return Some((lo * hi).sqrt());
            }
        }
        Some(self.max_seen)
    }

    /// A 64-bit digest of the complete histogram state (parameters,
    /// every bucket count, underflow, total, exact sum and max bits).
    ///
    /// Two histograms have equal fingerprints iff they are
    /// bit-identical, which is how the fleet engine proves that a
    /// parallel run aggregated exactly the same distribution as a
    /// serial one.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(self.min_value.to_bits());
        mix(self.growth.to_bits());
        mix(self.underflow);
        mix(self.total);
        mix(self.sum.to_bits());
        mix(self.max_seen.to_bits());
        for &c in &self.counts {
            mix(c);
        }
        h
    }

    /// Merges another histogram with identical parameters.
    ///
    /// # Panics
    /// Panics when parameters differ (the buckets would not align).
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            (self.min_value - other.min_value).abs() < f64::EPSILON
                && (self.growth - other.growth).abs() < f64::EPSILON,
            "histogram parameters differ"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.total += other.total;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new(1.0, 2.0);
        for v in [0.5, 1.0, 2.0, 4.0, 8.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 6);
        assert_eq!(h.max(), Some(100.0));
        let mean = h.mean().unwrap();
        assert!((mean - 115.5 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_at_bucket_resolution() {
        let mut h = Histogram::new(1.0, 1.1);
        // 1000 samples uniform over [1, 101).
        for i in 0..1000 {
            h.record(1.0 + i as f64 * 0.1);
        }
        let median = h.quantile(0.5).unwrap();
        assert!(
            (median / 51.0 - 1.0).abs() < 0.12,
            "median {median} too far from 51"
        );
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 / 100.0 - 1.0).abs() < 0.12, "p99 {p99}");
        // Quantile is monotone.
        assert!(h.quantile(0.1).unwrap() <= h.quantile(0.9).unwrap());
    }

    #[test]
    fn underflow_bucket() {
        let mut h = Histogram::new(1.0, 2.0);
        h.record(0.0);
        h.record(0.001);
        h.record(10.0);
        assert_eq!(h.len(), 3);
        // The 0.33-quantile falls in the underflow bucket.
        assert!(h.quantile(0.33).unwrap() < 1.0);
        assert!(h.quantile(1.0).unwrap() > 1.0);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::for_latency();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = Histogram::new(1.0, 2.0);
        let mut b = Histogram::new(1.0, 2.0);
        for v in [1.0, 2.0, 3.0] {
            a.record(v);
        }
        for v in [50.0, 60.0, 70.0] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.len(), 6);
        assert!(a.quantile(0.25).unwrap() < 10.0);
        assert!(a.quantile(0.9).unwrap() > 30.0);
        assert_eq!(a.max(), Some(70.0));
    }

    #[test]
    fn fingerprint_detects_any_state_difference() {
        let mut a = Histogram::new(1.0, 2.0);
        let mut b = Histogram::new(1.0, 2.0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        for v in [0.5, 3.0, 17.0] {
            a.record(v);
            b.record(v);
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.record(17.0);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Same counts, different parameters → different fingerprint.
        assert_ne!(
            Histogram::new(1.0, 2.0).fingerprint(),
            Histogram::new(1.0, 1.5).fingerprint()
        );
    }

    #[test]
    #[should_panic(expected = "parameters differ")]
    fn merge_rejects_mismatched_params() {
        let mut a = Histogram::new(1.0, 2.0);
        let b = Histogram::new(1.0, 1.5);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "bad sample")]
    fn rejects_nan() {
        Histogram::for_latency().record(f64::NAN);
    }
}
