//! Deterministic discrete-event simulation engine for CityMesh.
//!
//! The paper's preliminary evaluation (§4) drives a SimPy event
//! simulation over a static AP graph. This crate is the Rust
//! equivalent, designed around three requirements:
//!
//! 1. **Determinism** — a run is a pure function of its seed. The event
//!    queue breaks timestamp ties by insertion sequence number, and all
//!    randomness flows through explicitly-seeded generators
//!    ([`SimRng`], [`split_seed`]). Every figure in EXPERIMENTS.md can
//!    be regenerated bit-for-bit.
//! 2. **Scale** — city simulations schedule millions of packet
//!    broadcast events; the scheduler is a flat binary heap over
//!    `(time, seq)` keys with no per-event allocation beyond the event
//!    payload itself.
//! 3. **Explicit radio modeling** — [`radio`] provides the unit-disk
//!    cutoff the paper uses ("symmetric transmission range cutoff of
//!    50 m") plus a log-distance/shadowing model used by the synthetic
//!    measurement study and the fidelity ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
mod event_queue;
pub mod radio;
mod rng;
pub mod stats;
mod time;

pub use digest::Fnv64;
pub use event_queue::{EventQueue, Simulation};
pub use rng::{split_seed, substream_seed, SimRng};
pub use stats::Histogram;
pub use time::SimTime;
