//! The FNV-1a word mixer every CityMesh report digest is built on.
//!
//! Reports across the workspace (fleet, stream, placement) fold their
//! deterministic fields into a 64-bit digest with the same tiny
//! algorithm: FNV-1a's offset basis and prime, applied one `u64` word
//! at a time. [`Fnv64`] is that algorithm, extracted here so the copies
//! stay bit-identical — every digest pinned as a golden value in CI was
//! produced by exactly this mixing order, and swapping a local closure
//! for [`Fnv64`] must never change a single bit.
//!
//! This is a *mixer*, not a cryptographic hash: it spreads structured
//! counter/fingerprint words well enough to make accidental collisions
//! between runs implausible, which is all the determinism checks need.

/// Incremental FNV-1a over 64-bit words.
///
/// ```
/// use citymesh_simcore::Fnv64;
/// let mut h = Fnv64::new();
/// h.mix(42);
/// h.mix(7);
/// assert_ne!(h.value(), Fnv64::new().value());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh mixer at the FNV-1a 64-bit offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one word in: XOR, then multiply by the FNV-1a prime.
    pub fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    /// The digest accumulated so far.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_inline_closure_idiom() {
        // The exact closure the reports used before extraction; the
        // helper must reproduce it word for word.
        let words = [0u64, 1, 42, u64::MAX, 0xdead_beef, 123.456f64.to_bits()];
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for &w in &words {
            mix(w);
        }
        let mut f = Fnv64::new();
        for &w in &words {
            f.mix(w);
        }
        assert_eq!(f.value(), h);
    }

    #[test]
    fn order_matters() {
        let mut a = Fnv64::new();
        a.mix(1);
        a.mix(2);
        let mut b = Fnv64::new();
        b.mix(2);
        b.mix(1);
        assert_ne!(a.value(), b.value());
    }
}
