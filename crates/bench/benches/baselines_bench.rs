//! Baseline benches: per-message cost of flooding and greedy routing
//! against CityMesh's event simulation on the same topology (the §5
//! data-plane comparison).

use citymesh_baselines::{flood, greedy_route, ideal_path, GreedyPolicy};
use citymesh_core::{place_aps, postbox_ap, ApGraph};
use citymesh_geo::Point;
use citymesh_map::CityArchetype;
use citymesh_simcore::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    let map = CityArchetype::SurveyDowntown.generate(1);
    let mut rng = SimRng::new(1);
    let aps = place_aps(&map, 200.0, &mut rng);
    let apg = ApGraph::build(&aps, 50.0);
    let src_b = map.nearest_building(Point::new(60.0, 60.0)).unwrap().id;
    let dst_b = map.nearest_building(Point::new(700.0, 700.0)).unwrap().id;
    let src_ap = postbox_ap(&aps, &map, src_b).unwrap();

    group.bench_function("flood/unbounded", |b| {
        b.iter(|| std::hint::black_box(flood(&apg, src_ap, dst_b, None)))
    });
    group.bench_function("flood/ttl_20", |b| {
        b.iter(|| std::hint::black_box(flood(&apg, src_ap, dst_b, Some(20))))
    });
    group.bench_function("greedy/pure", |b| {
        b.iter(|| std::hint::black_box(greedy_route(&apg, src_ap, dst_b, GreedyPolicy::Pure)))
    });
    group.bench_function("greedy/backtrack", |b| {
        b.iter(|| std::hint::black_box(greedy_route(&apg, src_ap, dst_b, GreedyPolicy::Backtrack)))
    });
    group.bench_function("ideal/bfs_path", |b| {
        b.iter(|| std::hint::black_box(ideal_path(&apg, src_ap, dst_b)))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
