//! Routing benches: the sender-side cost of CityMesh (Figure 6's
//! machinery) — building-graph construction from a map, route
//! planning, and conduit compression — plus the per-AP rebroadcast
//! decision, which is the cost that matters at relay time.

use citymesh_core::{
    compress_route, plan_route, reconstruct_conduits, within_conduits, BuildingGraph,
    BuildingGraphParams,
};
use citymesh_geo::Point;
use citymesh_map::CityArchetype;
use citymesh_net::CityMeshHeader;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_building_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("building_graph");
    group.sample_size(10);
    for arch in [CityArchetype::SurveyDowntown, CityArchetype::Boston] {
        let map = arch.generate(1);
        group.bench_function(format!("build/{}", arch.label()), |b| {
            b.iter(|| {
                std::hint::black_box(BuildingGraph::build(&map, BuildingGraphParams::default()))
            })
        });
    }
    group.finish();
}

fn bench_route_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("route");
    let map = CityArchetype::Boston.generate(1);
    let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
    let src = map.nearest_building(Point::new(100.0, 100.0)).unwrap().id;
    let dst = map.nearest_building(Point::new(1300.0, 1100.0)).unwrap().id;
    group.bench_function("plan/boston_cross_city", |b| {
        b.iter(|| std::hint::black_box(plan_route(&bg, src, dst).unwrap()))
    });
    let route = plan_route(&bg, src, dst).unwrap();
    group.bench_function(format!("compress/{}_buildings", route.len()), |b| {
        b.iter(|| std::hint::black_box(compress_route(&bg, &route, 50.0)))
    });
    group.finish();
}

fn bench_relay_decision(c: &mut Criterion) {
    // The per-packet work of an AP: reconstruct conduits from the
    // header + map, then a point-membership test.
    let mut group = c.benchmark_group("relay");
    let map = CityArchetype::Boston.generate(1);
    let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
    let src = map.nearest_building(Point::new(100.0, 100.0)).unwrap().id;
    let dst = map.nearest_building(Point::new(1300.0, 1100.0)).unwrap().id;
    let route = plan_route(&bg, src, dst).unwrap();
    let compressed = compress_route(&bg, &route, 50.0).unwrap();
    let header = CityMeshHeader::new(1, 50.0, compressed.waypoints);

    group.bench_function("reconstruct_conduits", |b| {
        b.iter(|| std::hint::black_box(reconstruct_conduits(&map, &header.waypoints, 50.0)))
    });
    let conduits = reconstruct_conduits(&map, &header.waypoints, 50.0);
    let probe = Point::new(700.0, 600.0);
    group.bench_function("membership_test", |b| {
        b.iter(|| std::hint::black_box(within_conduits(&conduits, probe)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_building_graph,
    bench_route_planning,
    bench_relay_decision
);
criterion_main!(benches);
