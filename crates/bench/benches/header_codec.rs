//! Wire-format benches backing the §4 header-size claims: encoding and
//! decoding the compressed source-route header and full packets, for
//! both route encodings.

use bytes::Bytes;
use citymesh_net::{BitReader, BitWriter, CityMeshHeader, Packet, RouteEncoding};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn typical_header(waypoints: usize, encoding: RouteEncoding) -> CityMeshHeader {
    // IDs in a ~20k-building city (the paper's "typical city" regime).
    let wps: Vec<u32> = (0..waypoints as u32).map(|i| 9_000 + i * 137).collect();
    let mut h = CityMeshHeader::new(0xABCD_EF01, 50.0, wps);
    h.encoding = encoding;
    h
}

fn bench_header(c: &mut Criterion) {
    let mut group = c.benchmark_group("header");
    for (label, encoding) in [
        ("absolute", RouteEncoding::Absolute),
        ("delta", RouteEncoding::Delta),
    ] {
        for waypoints in [4usize, 10, 30] {
            let h = typical_header(waypoints, encoding);
            group.bench_function(format!("encode/{label}/{waypoints}wp"), |b| {
                b.iter(|| {
                    let mut w = BitWriter::new();
                    h.encode(&mut w).unwrap();
                    std::hint::black_box(w.into_bytes())
                })
            });
            let mut w = BitWriter::new();
            h.encode(&mut w).unwrap();
            let bytes = w.into_bytes();
            group.bench_function(format!("decode/{label}/{waypoints}wp"), |b| {
                b.iter(|| {
                    let mut r = BitReader::new(&bytes);
                    std::hint::black_box(CityMeshHeader::decode(&mut r).unwrap())
                })
            });
        }
    }
    group.finish();
}

fn bench_packet(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet");
    let header = typical_header(10, RouteEncoding::Absolute);
    for payload_len in [64usize, 512, 1400] {
        let packet = Packet::new(header.clone(), Bytes::from(vec![0x5A; payload_len]));
        group.bench_function(format!("encode/{payload_len}B"), |b| {
            b.iter(|| std::hint::black_box(packet.encode().unwrap()))
        });
        let wire = packet.encode().unwrap();
        group.bench_function(format!("decode/{payload_len}B"), |b| {
            b.iter_batched(
                || wire.clone(),
                |w| std::hint::black_box(Packet::decode(&w).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_header, bench_packet);
criterion_main!(benches);
