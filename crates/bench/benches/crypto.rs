//! Crypto primitive benches: the per-message cost of the postbox
//! security layer on commodity (router-class) hardware is what decides
//! whether sealing is deployable; these measure it.

use citymesh_crypto::{
    aead, hmac::hmac_sha256, identity::SealedMessage, sha256, sha512, x25519, Keypair,
    PostboxAddress,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    for len in [64usize, 1024, 16 * 1024] {
        let data = vec![0xA5u8; len];
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_function(format!("sha256/{len}B"), |b| {
            b.iter(|| std::hint::black_box(sha256(&data)))
        });
        group.bench_function(format!("sha512/{len}B"), |b| {
            b.iter(|| std::hint::black_box(sha512(&data)))
        });
        group.bench_function(format!("hmac_sha256/{len}B"), |b| {
            b.iter(|| std::hint::black_box(hmac_sha256(b"key", &data)))
        });
    }
    group.finish();
}

fn bench_aead(c: &mut Criterion) {
    let mut group = c.benchmark_group("aead");
    let key = [7u8; 32];
    let nonce = [9u8; 12];
    for len in [64usize, 1024, 1400] {
        let plaintext = vec![0x42u8; len];
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_function(format!("seal/{len}B"), |b| {
            b.iter(|| std::hint::black_box(aead::seal(&key, &nonce, b"aad", &plaintext)))
        });
        let sealed = aead::seal(&key, &nonce, b"aad", &plaintext);
        group.bench_function(format!("open/{len}B"), |b| {
            b.iter(|| std::hint::black_box(aead::open(&key, &nonce, b"aad", &sealed).unwrap()))
        });
    }
    group.finish();
}

fn bench_x25519(c: &mut Criterion) {
    let mut group = c.benchmark_group("x25519");
    group.sample_size(20);
    let scalar = [0x77u8; 32];
    group.bench_function("scalar_mult_basepoint", |b| {
        b.iter(|| std::hint::black_box(x25519::public_key(&scalar)))
    });
    let bob = Keypair::from_entropy([0xB0; 32]);
    let addr = PostboxAddress {
        public_key: bob.public,
        building_id: 1,
    };
    group.bench_function("seal_message_128B", |b| {
        b.iter(|| {
            std::hint::black_box(
                SealedMessage::seal(&addr, [0x11; 32], b"aad", &[0u8; 128]).unwrap(),
            )
        })
    });
    let sealed = SealedMessage::seal(&addr, [0x11; 32], b"aad", &[0u8; 128]).unwrap();
    group.bench_function("open_message_128B", |b| {
        b.iter(|| std::hint::black_box(sealed.open(&bob, b"aad").unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_hashes, bench_aead, bench_x25519);
criterion_main!(benches);
