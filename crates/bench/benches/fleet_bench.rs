//! Fleet engine benches: workload generation throughput, the route
//! cache under repeated pairs, and end-to-end flow execution at one
//! and several workers (the parallel-speedup measurement behind
//! `figures -- fleet`).

use citymesh_core::{CityExperiment, ExperimentConfig};
use citymesh_fleet::{generate_flows, run_fleet, FleetConfig, FlowModel, WorkloadConfig};
use citymesh_map::CityArchetype;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const SEED: u64 = 2024;
const FLOWS: usize = 1_000;

fn prepared() -> CityExperiment {
    let map = CityArchetype::SurveyDowntown.generate(SEED);
    CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed: SEED,
            ..ExperimentConfig::default()
        },
    )
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet/generate");
    group.throughput(Throughput::Elements(FLOWS as u64));
    for (name, model) in [
        ("uniform", FlowModel::UniformPairs { rate_hz: 500.0 }),
        (
            "hotspot",
            FlowModel::Hotspot {
                hotspots: 8,
                exponent: 1.1,
                rate_hz: 500.0,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(generate_flows(
                    600,
                    &WorkloadConfig {
                        flows: FLOWS,
                        model,
                        seed: SEED,
                    },
                ))
            })
        });
    }
    group.finish();
}

fn bench_fleet_execution(c: &mut Criterion) {
    let exp = prepared();
    let flows = generate_flows(
        exp.map().len(),
        &WorkloadConfig {
            flows: FLOWS,
            model: FlowModel::Hotspot {
                hotspots: 8,
                exponent: 1.1,
                rate_hz: 500.0,
            },
            seed: SEED,
        },
    );
    let mut group = c.benchmark_group("fleet/run");
    group.sample_size(10);
    group.throughput(Throughput::Elements(FLOWS as u64));
    for workers in [1usize, 4] {
        group.bench_function(format!("{FLOWS}flows/{workers}w"), |b| {
            b.iter(|| {
                std::hint::black_box(run_fleet(
                    &exp,
                    &flows,
                    &FleetConfig {
                        workers,
                        seed: SEED,
                        ..FleetConfig::default()
                    },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workload_generation, bench_fleet_execution);
criterion_main!(benches);
