//! Delivery-kernel isolation bench: fresh per-call allocation vs the
//! reusable [`DeliveryScratch`] steady state. The gap between the two
//! is the allocation + zero-init tax the zero-allocation hot path
//! removed; the `scratch_reuse` number is what each fleet worker pays
//! per flow once its scratch has warmed up.

use citymesh_core::{
    compress_route, place_aps, plan_route, postbox_ap, reconstruct_conduits, simulate_delivery,
    simulate_delivery_into, ApGraph, BuildingGraph, BuildingGraphParams, DeliveryParams,
    DeliveryScratch,
};
use citymesh_geo::Point;
use citymesh_map::CityArchetype;
use citymesh_net::CityMeshHeader;
use citymesh_simcore::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_kernel");
    group.sample_size(20);
    let map = CityArchetype::SurveyDowntown.generate(1);
    let mut rng = SimRng::new(1);
    let aps = place_aps(&map, 200.0, &mut rng);
    let apg = ApGraph::build(&aps, 50.0);
    let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
    let src = map.nearest_building(Point::new(60.0, 60.0)).unwrap().id;
    let dst = map.nearest_building(Point::new(700.0, 700.0)).unwrap().id;
    let route = plan_route(&bg, src, dst).unwrap();
    let compressed = compress_route(&bg, &route, 50.0).unwrap();
    let header = CityMeshHeader::new(1, 50.0, compressed.waypoints);
    let conduits = reconstruct_conduits(&map, &header.waypoints, header.conduit_width_m());
    let src_ap = postbox_ap(&aps, &map, src).unwrap();

    group.bench_function("fresh_alloc/downtown_cross_city", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(7);
            std::hint::black_box(simulate_delivery(
                &map,
                &apg,
                &header,
                src_ap,
                DeliveryParams::default(),
                &mut rng,
            ))
        })
    });

    let mut scratch = DeliveryScratch::new();
    group.bench_function("scratch_reuse/downtown_cross_city", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(7);
            let report = simulate_delivery_into(
                &map,
                &apg,
                &header,
                &conduits,
                src_ap,
                DeliveryParams::default(),
                &mut rng,
                &mut scratch,
            );
            std::hint::black_box(report.broadcasts)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
