//! Event-simulation benches: the cost of one Figure-6/Figure-7
//! delivery run and of the supporting AP-fabric construction. These
//! bound how large a city the evaluation pipeline can sweep.

use citymesh_core::{
    compress_route, place_aps, plan_route, postbox_ap, simulate_delivery, ApGraph, BuildingGraph,
    BuildingGraphParams, DeliveryParams,
};
use citymesh_geo::Point;
use citymesh_map::CityArchetype;
use citymesh_net::CityMeshHeader;
use citymesh_simcore::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fabric(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric");
    group.sample_size(10);
    let map = CityArchetype::SurveyDowntown.generate(1);
    group.bench_function("place_aps/downtown", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(1);
            std::hint::black_box(place_aps(&map, 200.0, &mut rng))
        })
    });
    let mut rng = SimRng::new(1);
    let aps = place_aps(&map, 200.0, &mut rng);
    group.bench_function(format!("ap_graph/{}aps", aps.len()), |b| {
        b.iter(|| std::hint::black_box(ApGraph::build(&aps, 50.0)))
    });
    group.finish();
}

fn bench_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("delivery");
    group.sample_size(20);
    let map = CityArchetype::SurveyDowntown.generate(1);
    let mut rng = SimRng::new(1);
    let aps = place_aps(&map, 200.0, &mut rng);
    let apg = ApGraph::build(&aps, 50.0);
    let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
    let src = map.nearest_building(Point::new(60.0, 60.0)).unwrap().id;
    let dst = map.nearest_building(Point::new(700.0, 700.0)).unwrap().id;
    let route = plan_route(&bg, src, dst).unwrap();
    let compressed = compress_route(&bg, &route, 50.0).unwrap();
    let header = CityMeshHeader::new(1, 50.0, compressed.waypoints);
    let src_ap = postbox_ap(&aps, &map, src).unwrap();

    group.bench_function("event_sim/downtown_cross_city", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(7);
            std::hint::black_box(simulate_delivery(
                &map,
                &apg,
                &header,
                src_ap,
                DeliveryParams::default(),
                &mut rng,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fabric, bench_delivery);
criterion_main!(benches);
