//! Geometry microbenches: the inner-loop primitives every simulation
//! second is made of — point-in-polygon, spatial-index range queries,
//! and conduit membership.

use citymesh_geo::{GridIndex, OrientedRect, Point, Polygon, Segment};
use citymesh_simcore::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_polygon(c: &mut Criterion) {
    let mut group = c.benchmark_group("polygon");
    let poly = Polygon::circle(Point::new(0.0, 0.0), 50.0, 16).unwrap();
    let inside = Point::new(10.0, 5.0);
    let outside = Point::new(80.0, 80.0);
    group.bench_function("contains/inside_16gon", |b| {
        b.iter(|| std::hint::black_box(poly.contains(inside)))
    });
    group.bench_function("contains/outside_16gon", |b| {
        b.iter(|| std::hint::black_box(poly.contains(outside)))
    });
    let other = poly.translated(120.0, 0.0);
    group.bench_function("polygon_gap_distance", |b| {
        b.iter(|| std::hint::black_box(poly.dist_to_polygon(&other)))
    });
    group.finish();
}

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_index");
    let mut rng = SimRng::new(3);
    let pts: Vec<Point> = (0..50_000)
        .map(|_| {
            Point::new(
                rng.uniform_range(0.0, 3000.0),
                rng.uniform_range(0.0, 3000.0),
            )
        })
        .collect();
    group.bench_function("build/50k_points", |b| {
        b.iter(|| std::hint::black_box(GridIndex::build(&pts, 50.0)))
    });
    let idx = GridIndex::build(&pts, 50.0);
    let center = Point::new(1500.0, 1500.0);
    group.bench_function("query_circle/r50", |b| {
        b.iter(|| std::hint::black_box(idx.query_circle(center, 50.0)))
    });
    group.bench_function("nearest", |b| {
        b.iter(|| std::hint::black_box(idx.nearest(center)))
    });
    group.finish();
}

fn bench_conduit(c: &mut Criterion) {
    let mut group = c.benchmark_group("conduit");
    let conduit = OrientedRect::new(
        Segment::new(Point::new(0.0, 0.0), Point::new(400.0, 300.0)),
        50.0,
    );
    let near = Point::new(200.0, 160.0);
    let far = Point::new(50.0, 280.0);
    group.bench_function("contains/near_spine", |b| {
        b.iter(|| std::hint::black_box(conduit.contains(near)))
    });
    group.bench_function("contains/far", |b| {
        b.iter(|| std::hint::black_box(conduit.contains(far)))
    });
    group.finish();
}

criterion_group!(benches, bench_polygon, bench_grid, bench_conduit);
criterion_main!(benches);
