//! Survey benches: the cost of regenerating the §2 artifacts (Table 1,
//! Figures 1a/1b/2) from the synthetic wardriving pipeline.

use citymesh_map::CityArchetype;
use citymesh_measure::{Survey, SurveyConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_survey(c: &mut Criterion) {
    let mut group = c.benchmark_group("survey");
    group.sample_size(10);
    let map = CityArchetype::SurveyDowntown.generate(1);
    for scans in [100usize, 400] {
        group.bench_function(format!("run/{scans}_scans"), |b| {
            b.iter(|| {
                let cfg = SurveyConfig {
                    scans,
                    seed: 1,
                    ..SurveyConfig::default()
                };
                std::hint::black_box(Survey::run(&map, &cfg))
            })
        });
    }
    let cfg = SurveyConfig {
        scans: 400,
        seed: 1,
        ..SurveyConfig::default()
    };
    let survey = Survey::run(&map, &cfg);
    group.bench_function("fig1a_macs_cdf", |b| {
        b.iter(|| std::hint::black_box(survey.macs_per_scan_cdf()))
    });
    group.bench_function("fig1b_spread_cdf", |b| {
        b.iter(|| std::hint::black_box(survey.spread_cdf()))
    });
    let edges: Vec<f64> = (0..=8).map(|i| i as f64 * 50.0).collect();
    group.bench_function("fig2_common_by_distance", |b| {
        b.iter(|| std::hint::black_box(survey.common_aps_by_distance(&edges, 20_000)))
    });
    group.finish();
}

criterion_group!(benches, bench_survey);
criterion_main!(benches);
