//! Benches for the deployment-support subsystems: the device map-cache
//! codec (encode/decode of a full city), the island-bridging planner,
//! and GPSR planarization — the operations a real rollout performs
//! once per map update rather than per packet.

use citymesh_baselines::gabriel_adjacency;
use citymesh_core::{place_aps, plan_bridges, ApGraph};
use citymesh_map::{decode_map, encode_map, CityArchetype, DEFAULT_QUANTUM_MM};
use citymesh_simcore::SimRng;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_map_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_codec");
    let map = CityArchetype::Chicago.generate(1); // the largest archetype
    let encoded = encode_map(&map, DEFAULT_QUANTUM_MM);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function(format!("encode/{}_buildings", map.len()), |b| {
        b.iter(|| std::hint::black_box(encode_map(&map, DEFAULT_QUANTUM_MM)))
    });
    group.bench_function(format!("decode/{}_buildings", map.len()), |b| {
        b.iter(|| std::hint::black_box(decode_map(&encoded).unwrap()))
    });
    group.finish();
}

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("planning");
    group.sample_size(10);
    // A fractured city: the planner has real work to do.
    let map = CityArchetype::WashingtonDc.generate(1);
    let mut rng = SimRng::new(1);
    let aps = place_aps(&map, 200.0, &mut rng);
    let apg = ApGraph::build(&aps, 50.0);
    group.bench_function(
        format!("plan_bridges/{}_islands", apg.num_components()),
        |b| b.iter(|| std::hint::black_box(plan_bridges(&apg, 100, 0.8))),
    );
    group.bench_function(format!("gabriel_planarize/{}_aps", apg.len()), |b| {
        b.iter(|| std::hint::black_box(gabriel_adjacency(&apg)))
    });
    group.finish();
}

criterion_group!(benches, bench_map_codec, bench_planning);
criterion_main!(benches);
