//! Whole-pipeline bench: one Figure-6 city evaluation end to end
//! (prepare + reachability + deliverability), the unit of work the
//! eight-city sweep repeats.

use citymesh_core::{CityExperiment, ExperimentConfig};
use citymesh_map::CityArchetype;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let map = CityArchetype::SurveyDowntown.generate(1);
    let config = ExperimentConfig {
        seed: 1,
        reachability_pairs: 200,
        delivery_pairs: 5,
        ..ExperimentConfig::default()
    };
    group.bench_function("prepare/downtown", |b| {
        b.iter(|| std::hint::black_box(CityExperiment::prepare(map.clone(), config)))
    });
    let exp = CityExperiment::prepare(map.clone(), config);
    group.bench_function("run/200reach_5deliver", |b| {
        b.iter(|| std::hint::black_box(exp.run()))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
