//! Secure message plane cost figures (`figures -- crypto`).
//!
//! Measures fleet throughput (flows/sec) on the downtown archetype in
//! three modes over the identical flow set:
//!
//! * **plaintext** — the ordinary pipeline; no sealing anywhere.
//! * **encrypted-cold** — `FleetConfig::encrypted` with the session-key
//!   cache cleared immediately before the timed run, so every pair pays
//!   its X25519 + HKDF derivation inside the measurement.
//! * **encrypted-warm** — the same encrypted run against the
//!   already-warm cache: the steady state, where sealing costs one
//!   ChaCha20-Poly1305 seal + open and two header MACs per flow and the
//!   key schedule is a shard read-lock plus an `Arc` clone.
//!
//! Every run records the fleet report digest. All plaintext digests
//! must agree with each other, all encrypted digests (cold *and* warm)
//! must agree with each other, and both modes must deliver identical
//! flow sets — proving on every CI run that sealing, cache temperature,
//! and worker count never perturb what the simulation decides. The data
//! lands in `BENCH_crypto.json` via [`to_json`].

use std::time::Instant;

use citymesh_core::{CityExperiment, ExperimentConfig};
use citymesh_fleet::{generate_flows, run_fleet, FleetConfig, FlowModel, WorkloadConfig};
use citymesh_map::CityArchetype;

use crate::text::json::Value;

/// How a run treats the message plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CryptoMode {
    /// No sealing: the pre-existing pipeline.
    Plaintext,
    /// Encrypted with an empty session-key cache (derivation on-path).
    EncryptedCold,
    /// Encrypted against the warm cache (the steady state).
    EncryptedWarm,
}

impl CryptoMode {
    /// Stable label used in JSON and tables.
    pub fn label(self) -> &'static str {
        match self {
            CryptoMode::Plaintext => "plaintext",
            CryptoMode::EncryptedCold => "encrypted-cold",
            CryptoMode::EncryptedWarm => "encrypted-warm",
        }
    }
}

/// One measured `(mode, workers)` point.
pub struct CryptoRun {
    /// Message-plane mode.
    pub mode: CryptoMode,
    /// Worker threads used.
    pub workers: usize,
    /// Flows simulated per wall-clock second.
    pub flows_per_sec: f64,
    /// Session keys derived during this run (0 in plaintext and — bar
    /// a rare miss race — in warm runs; one per active pair when cold).
    pub keys_derived: u64,
    /// Fleet report digest of the run.
    pub digest: u64,
}

/// The full crypto-cost sweep.
pub struct CryptoFigures {
    /// City the flows were drawn from.
    pub city: String,
    /// Building count of that city.
    pub buildings: usize,
    /// Flows per run.
    pub flows: usize,
    /// Digest shared by every plaintext run.
    pub plaintext_digest: u64,
    /// Digest shared by every encrypted run, cold or warm.
    pub encrypted_digest: u64,
    /// Every `(mode, workers)` run, in sweep order.
    pub runs: Vec<CryptoRun>,
}

impl CryptoFigures {
    /// Throughput of `(mode, workers)`, or 0 when that run is absent.
    pub fn rate(&self, mode: CryptoMode, workers: usize) -> f64 {
        self.runs
            .iter()
            .find(|r| r.mode == mode && r.workers == workers)
            .map(|r| r.flows_per_sec)
            .unwrap_or(0.0)
    }
}

/// Runs the crypto-cost sweep: for each mode, one run per worker
/// count, over one shared deterministic flow set.
///
/// # Panics
/// Panics if any two same-mode runs disagree on the digest, or if the
/// encrypted runs do not deliver exactly the plaintext flow set — a
/// benchmark must not report throughput for results that are wrong.
pub fn run_crypto_figs(seed: u64, n_flows: usize, worker_counts: &[usize]) -> CryptoFigures {
    let map = CityArchetype::SurveyDowntown.generate(seed);
    let city = map.name().to_string();
    let buildings = map.len();
    let mut exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed,
            ..ExperimentConfig::default()
        },
    );
    exp.enable_encryption();
    let flows = generate_flows(
        exp.map().len(),
        &WorkloadConfig {
            flows: n_flows,
            model: FlowModel::UniformPairs { rate_hz: 200.0 },
            seed,
        },
    );
    let cfg_for = |mode: CryptoMode, workers: usize| FleetConfig {
        workers,
        seed,
        encrypted: mode != CryptoMode::Plaintext,
        ..FleetConfig::default()
    };

    // Unmeasured warm-up: settle the allocator, fault in the lazily
    // built tables, and derive every active pair's session key so the
    // first warm run really is warm.
    let secure = exp.secure_state().expect("encryption enabled").clone();
    run_fleet(
        &exp,
        &flows,
        &cfg_for(CryptoMode::Plaintext, worker_counts[0]),
    );
    run_fleet(
        &exp,
        &flows,
        &cfg_for(CryptoMode::EncryptedWarm, worker_counts[0]),
    );

    let mut runs = Vec::new();
    let mut plaintext = None;
    let mut encrypted: Option<(u64, u64)> = None; // (digest, delivered)
    for mode in [
        CryptoMode::Plaintext,
        CryptoMode::EncryptedCold,
        CryptoMode::EncryptedWarm,
    ] {
        for &workers in worker_counts {
            if mode == CryptoMode::EncryptedCold {
                secure.clear_sessions();
            } else if mode == CryptoMode::EncryptedWarm {
                assert!(
                    secure.sessions() > 0,
                    "warm runs must start with a populated session cache"
                );
            }
            let misses_before = secure.session_misses();
            let start = Instant::now();
            let report = run_fleet(&exp, &flows, &cfg_for(mode, workers));
            let elapsed = start.elapsed().as_secs_f64();
            let digest = report.digest();
            match mode {
                CryptoMode::Plaintext => {
                    let d = *plaintext.get_or_insert((digest, report.delivered));
                    assert_eq!(d, (digest, report.delivered), "plaintext runs disagree");
                }
                CryptoMode::EncryptedCold | CryptoMode::EncryptedWarm => {
                    assert_eq!(report.sealed, flows.len() as u64, "every flow must seal");
                    assert_eq!(report.auth_failures, 0, "honest runs never fail auth");
                    let d = *encrypted.get_or_insert((digest, report.delivered));
                    assert_eq!(
                        d,
                        (digest, report.delivered),
                        "encrypted runs disagree across cache temperature or workers"
                    );
                }
            }
            runs.push(CryptoRun {
                mode,
                workers,
                flows_per_sec: flows.len() as f64 / elapsed.max(1e-9),
                keys_derived: secure.session_misses() - misses_before,
                digest,
            });
        }
    }
    let (plaintext_digest, plain_delivered) = plaintext.expect("plaintext ran");
    let (encrypted_digest, sealed_delivered) = encrypted.expect("encrypted ran");
    assert_eq!(
        plain_delivered, sealed_delivered,
        "sealing must not change which flows deliver"
    );
    CryptoFigures {
        city,
        buildings,
        flows: n_flows,
        plaintext_digest,
        encrypted_digest,
        runs,
    }
}

/// Serializes the sweep for `BENCH_crypto.json`.
pub fn to_json(figs: &CryptoFigures) -> Value {
    Value::Obj(vec![
        ("city".into(), Value::Str(figs.city.clone())),
        ("buildings".into(), Value::Int(figs.buildings as i64)),
        ("flows".into(), Value::Int(figs.flows as i64)),
        (
            "plaintext_digest".into(),
            Value::Str(format!("{:016x}", figs.plaintext_digest)),
        ),
        (
            "encrypted_digest".into(),
            Value::Str(format!("{:016x}", figs.encrypted_digest)),
        ),
        (
            "runs".into(),
            Value::Arr(
                figs.runs
                    .iter()
                    .map(|r| {
                        Value::Obj(vec![
                            ("mode".into(), Value::Str(r.mode.label().into())),
                            ("workers".into(), Value::Int(r.workers as i64)),
                            ("flows_per_sec".into(), Value::Num(r.flows_per_sec)),
                            ("keys_derived".into(), Value::Int(r.keys_derived as i64)),
                            ("digest".into(), Value::Str(format!("{:016x}", r.digest))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_agrees_and_serializes() {
        let figs = run_crypto_figs(7, 96, &[1, 2]);
        assert_eq!(figs.runs.len(), 6, "3 modes × 2 worker counts");
        for r in &figs.runs {
            let expected = match r.mode {
                CryptoMode::Plaintext => figs.plaintext_digest,
                _ => figs.encrypted_digest,
            };
            assert_eq!(r.digest, expected);
        }
        let cold = figs.rate(CryptoMode::EncryptedCold, 1);
        assert!(cold > 0.0, "cold runs must be timed");
        let rendered = to_json(&figs).render();
        assert!(rendered.contains("\"encrypted-warm\""));
        assert!(rendered.contains("\"keys_derived\""));
        assert!(rendered.contains("\"encrypted_digest\""));
    }
}
