//! §2 measurement-study reproductions: Table 1, Figures 1a, 1b, 2.

use citymesh_map::CityArchetype;
use citymesh_measure::{Cdf, DistanceBin, Survey, SurveyConfig, TravelMode};

/// One Table-1 row.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Area label (downtown / campus / residential / river).
    pub area: String,
    /// Number of scans ("# Measurements").
    pub measurements: usize,
    /// Distinct BSSIDs observed ("# Unique APs").
    pub unique_aps: usize,
}

/// A completed survey of all four areas plus the derived figures.
#[derive(Clone, Debug)]
pub struct SurveyFigures {
    /// Per-area surveys in paper order.
    pub surveys: Vec<Survey>,
}

/// Scan counts per area, scaled to the paper's ratios (downtown 2691,
/// campus 726, residential 461, river 550) by `scale` (1.0 = paper
/// size; tests use a smaller scale).
pub fn scan_counts(scale: f64) -> [(CityArchetype, usize, TravelMode); 4] {
    let n = |paper: usize| ((paper as f64 * scale).round() as usize).max(20);
    [
        (CityArchetype::SurveyDowntown, n(2691), TravelMode::Walk),
        (CityArchetype::SurveyCampus, n(726), TravelMode::Walk),
        (
            CityArchetype::SurveyResidential,
            n(461),
            TravelMode::Bicycle,
        ),
        (CityArchetype::SurveyRiver, n(550), TravelMode::Bicycle),
    ]
}

/// Runs the four-area survey.
pub fn run_surveys(seed: u64, scale: f64) -> SurveyFigures {
    let surveys = scan_counts(scale)
        .into_iter()
        .map(|(arch, scans, mode)| {
            let map = arch.generate(seed);
            let cfg = SurveyConfig {
                scans,
                mode,
                seed,
                ..SurveyConfig::default()
            };
            Survey::run(&map, &cfg)
        })
        .collect();
    SurveyFigures { surveys }
}

impl SurveyFigures {
    /// Table 1: per-area measurement and unique-AP counts, plus the
    /// "all" total row the paper includes.
    pub fn table1(&self) -> Vec<Table1Row> {
        let mut rows: Vec<Table1Row> = self
            .surveys
            .iter()
            .map(|s| Table1Row {
                area: s.area.clone(),
                measurements: s.num_scans(),
                unique_aps: s.unique_aps(),
            })
            .collect();
        rows.push(Table1Row {
            area: "all".into(),
            measurements: rows.iter().map(|r| r.measurements).sum(),
            unique_aps: rows.iter().map(|r| r.unique_aps).sum(),
        });
        rows
    }

    /// Figure 1a: per-area CDFs of BSSIDs per scan.
    pub fn fig1a(&self) -> Vec<(String, Cdf)> {
        self.surveys
            .iter()
            .map(|s| (s.area.clone(), s.macs_per_scan_cdf()))
            .collect()
    }

    /// Figure 1b: per-area CDFs of per-BSSID sighting spread.
    pub fn fig1b(&self) -> Vec<(String, Cdf)> {
        self.surveys
            .iter()
            .map(|s| (s.area.clone(), s.spread_cdf()))
            .collect()
    }

    /// Figure 2: co-observed APs vs pair distance, 50 m bins to 400 m,
    /// per area.
    pub fn fig2(&self, max_pairs: usize) -> Vec<(String, Vec<DistanceBin>)> {
        let edges: Vec<f64> = (0..=8).map(|i| i as f64 * 50.0).collect();
        self.surveys
            .iter()
            .map(|s| (s.area.clone(), s.common_aps_by_distance(&edges, max_pairs)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SurveyFigures {
        run_surveys(1, 0.08) // ~215 downtown scans: fast but meaningful
    }

    #[test]
    fn table1_shape_matches_paper() {
        let figs = small();
        let rows = figs.table1();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].area, "downtown");
        assert_eq!(rows[4].area, "all");
        // Paper orderings: downtown has the most measurements and the
        // most unique APs; campus has the fewest unique APs.
        let by_area = |name: &str| rows.iter().find(|r| r.area == name).unwrap();
        assert!(by_area("downtown").unique_aps > by_area("river").unique_aps);
        assert!(by_area("downtown").unique_aps > by_area("campus").unique_aps);
        assert_eq!(
            rows[4].measurements,
            rows[..4].iter().map(|r| r.measurements).sum::<usize>()
        );
    }

    #[test]
    fn fig1a_medians_ordered_like_paper() {
        let figs = small();
        let medians: std::collections::HashMap<String, f64> = figs
            .fig1a()
            .into_iter()
            .map(|(area, cdf)| (area, cdf.median().unwrap()))
            .collect();
        // Paper: downtown median 218 (best), river 60 (worst).
        assert!(medians["downtown"] > medians["river"]);
        assert!(medians["river"] > 1.0, "even the river hears some APs");
    }

    #[test]
    fn fig1b_spreads_in_paper_band() {
        let figs = small();
        for (area, cdf) in figs.fig1b() {
            // At this reduced scan count many BSSIDs are sighted once
            // (spread 0), so check an upper quantile: multi-sighting
            // APs must show transmission-diameter-scale spreads
            // (paper medians: 54–168 m across areas).
            let p75 = cdf.quantile(0.75).unwrap();
            assert!(
                (10.0..400.0).contains(&p75),
                "{area} spread p75 {p75} outside the plausible band"
            );
        }
    }

    #[test]
    fn fig2_bins_decay() {
        let figs = small();
        for (area, bins) in figs.fig2(5_000) {
            assert_eq!(bins.len(), 8);
            let near = bins[0].p50;
            let far = bins[7].p50;
            assert!(
                near >= far,
                "{area}: common APs should not grow with distance ({near} vs {far})"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = small().table1();
        let b = small().table1();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.unique_aps, y.unique_aps);
            assert_eq!(x.measurements, y.measurements);
        }
    }
}
