//! Streaming latency-under-load figures (`figures -- streaming`).
//!
//! Drives the always-on engine ([`citymesh_stream::run_stream`])
//! through an offered-load sweep: a Poisson arrival stream at a
//! multiple of the modeled server fleet's estimated capacity, from
//! deep underload to well past saturation. Two scenarios run the same
//! protocol:
//!
//! * `downtown-flat` — the survey downtown archetype, flat planner;
//! * `metro-hier` — a tiled metropolis with the district-overlay
//!   hierarchical planner ([`StreamConfig::use_hier_planner`]).
//!
//! Capacity is *estimated, not assumed*: an unmeasured underload probe
//! records the modeled mean service time, and
//! `capacity ≈ servers / mean_service` anchors the multiplier axis, so
//! the knee lands near 1.0× by construction and drift in the service
//! model shows up as a shifted knee rather than a silently mislabeled
//! axis. Per point the sweep records p50/p99 sojourn of admitted
//! flows, explicit shed counts (backpressure vs deadline), degradation
//! rung counts, and the stream digest — asserted bit-identical across
//! every swept worker count. The saturation knee — the first
//! multiplier that sheds or blows p99 past 4x the underload baseline —
//! is reported per curve.
//!
//! The data lands in `BENCH_streaming.json` via [`to_json`]; the
//! binary renders one latency/shed chart per scenario via
//! [`curve_svg`].

use std::time::Instant;

use citymesh_core::{CityExperiment, ExperimentConfig, HierParams};
use citymesh_dynamics::{ChurnConfig, Timeline};
use citymesh_map::{generate_metro, CityArchetype, MetroParams};
use citymesh_stream::{
    generate_stream_flows, run_stream, ArrivalProcess, StreamConfig, StreamWorkload,
};
use citymesh_telemetry::TelemetryConfig;

use crate::sweep::SweepTimer;
use crate::text::json::Value;

/// One scenario of the sweep: which world, and how many flows per
/// load point.
pub struct StreamScenario {
    /// Stable label for tables/JSON (`downtown-flat`, `metro-hier`).
    pub label: &'static str,
    /// `None` = the survey downtown archetype with the flat planner;
    /// `Some((tx, ty))` = a tiled metro with the hierarchical planner.
    pub metro_tiles: Option<(usize, usize)>,
    /// Flows offered per load point.
    pub flows: usize,
}

/// One measured offered-load point.
pub struct StreamPoint {
    /// Offered load as a multiple of the estimated capacity.
    pub multiplier: f64,
    /// The Poisson arrival rate actually offered, flows/sec.
    pub rate_hz: f64,
    /// Flows the arrival stream offered.
    pub offered: u64,
    /// Flows admitted and served.
    pub admitted: u64,
    /// Flows shed because a server queue was full.
    pub shed_backpressure: u64,
    /// Flows shed because their queue wait would exceed the deadline.
    pub shed_deadline: u64,
    /// Admitted flows that ran with trace capture shed (rung 1).
    pub degraded_tracing: u64,
    /// Admitted flows that ran with the retry ladder capped (rung 2).
    pub degraded_retry: u64,
    /// Median sojourn (queue wait + service) of admitted flows, ms.
    pub p50_sojourn_ms: f64,
    /// 99th-percentile sojourn of admitted flows, ms.
    pub p99_sojourn_ms: f64,
    /// Worst sojourn of any admitted flow, ms.
    pub max_sojourn_ms: f64,
    /// Deepest any server queue ever got.
    pub max_depth: u64,
    /// Wall-clock processing throughput at the first swept worker
    /// count, offered flows/sec.
    pub flows_per_sec: f64,
    /// [`StreamReport::digest`](citymesh_stream::StreamReport::digest),
    /// asserted equal across all worker counts.
    pub digest: u64,
}

impl StreamPoint {
    /// Total flows shed, either reason.
    pub fn shed(&self) -> u64 {
        self.shed_backpressure + self.shed_deadline
    }

    /// Shed flows as a fraction of offered.
    pub fn shed_rate(&self) -> f64 {
        self.shed() as f64 / self.offered.max(1) as f64
    }
}

/// One scenario's full load curve.
pub struct StreamCurve {
    /// Scenario label.
    pub label: &'static str,
    /// Buildings in the scenario's map.
    pub buildings: usize,
    /// Modeled servers.
    pub servers: usize,
    /// Bounded queue depth per server.
    pub queue_capacity: usize,
    /// Deadline for queue wait, ms.
    pub deadline_ms: f64,
    /// Mean modeled service time from the underload probe, ms.
    pub mean_service_ms: f64,
    /// Estimated saturation rate, flows/sec
    /// (`servers * 1000 / mean_service_ms`).
    pub capacity_hz: f64,
    /// First multiplier that sheds flows or blows p99 sojourn past 4x
    /// the underload baseline — the saturation knee.
    pub knee_multiplier: Option<f64>,
    /// Load points in sweep order (ascending multiplier).
    pub points: Vec<StreamPoint>,
    /// Wall time of this whole curve, ms.
    pub wall_ms: f64,
    /// Process peak RSS after this curve, KiB (0 where unavailable).
    pub peak_rss_kb: u64,
}

/// Both scenarios' curves.
pub struct StreamingFigures {
    /// Curves in scenario order.
    pub curves: Vec<StreamCurve>,
    /// Worker counts every point was digest-checked across.
    pub worker_counts: Vec<usize>,
}

/// The sweep's fixed queueing configuration: small enough queues and a
/// tight enough deadline that a few thousand flows reach shedding
/// steady state past the knee.
fn sweep_config(seed: u64, workers: usize, use_hier: bool) -> StreamConfig {
    StreamConfig {
        workers,
        servers: 4,
        seed,
        use_hier_planner: use_hier,
        queue_capacity: 16,
        deadline_ms: 60.0,
        ..StreamConfig::default()
    }
}

/// Builds one scenario's experiment (and its empty timeline).
fn build_world(seed: u64, scenario: &StreamScenario) -> (CityExperiment, Timeline) {
    let map = match scenario.metro_tiles {
        Some((tx, ty)) => generate_metro(&MetroParams::with_tiles(tx, ty), seed),
        None => CityArchetype::SurveyDowntown.generate(seed),
    };
    let mut exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed,
            ..ExperimentConfig::default()
        },
    );
    if scenario.metro_tiles.is_some() {
        exp.enable_hier(&HierParams::default());
    }
    let timeline = Timeline::materialize(
        &exp,
        &ChurnConfig {
            aftershocks: 0,
            battery_waves: 0,
            crew_repairs: 0,
            ..ChurnConfig::default()
        },
    );
    (exp, timeline)
}

/// Measures the modeled mean service time with an underload probe:
/// unbounded-ish queue, no deadline, so every probe flow is admitted
/// and the service histogram covers the whole sample. The result is a
/// pure function of the seed (service time is modeled, not timed).
fn probe_mean_service_ms(exp: &CityExperiment, timeline: &Timeline, cfg: &StreamConfig) -> f64 {
    let probe_cfg = StreamConfig {
        queue_capacity: 4096,
        deadline_ms: f64::INFINITY,
        ..*cfg
    };
    let flows = generate_stream_flows(
        exp.map().len(),
        &StreamWorkload {
            flows: 256,
            process: ArrivalProcess::Poisson { rate_hz: 200.0 },
            seed: cfg.seed,
        },
    );
    let (report, _) = run_stream(exp, &flows, timeline, &probe_cfg, &TelemetryConfig::off());
    report
        .service_ms
        .mean()
        .unwrap_or(probe_cfg.service.base_ms)
}

/// First multiplier that sheds, or whose p99 sojourn exceeds 4x the
/// first (deep-underload) point's p99.
fn detect_knee(points: &[StreamPoint]) -> Option<f64> {
    let base_p99 = points.first()?.p99_sojourn_ms.max(1e-9);
    points
        .iter()
        .find(|p| p.shed() > 0 || p.p99_sojourn_ms > 4.0 * base_p99)
        .map(|p| p.multiplier)
}

/// Runs the sweep: for each scenario, probes capacity once, then
/// offers `multiplier x capacity` Poisson streams and measures the
/// engine at every worker count.
///
/// # Panics
/// Panics when any two worker counts disagree on a point's digest,
/// when a point's accounting does not balance
/// (`offered == admitted + shed`), or when an admitted flow's sojourn
/// exceeds the deadline-plus-service bound the engine guarantees by
/// construction.
pub fn run_streaming_figs(
    seed: u64,
    scenarios: &[StreamScenario],
    multipliers: &[f64],
    worker_counts: &[usize],
) -> StreamingFigures {
    assert!(!worker_counts.is_empty(), "need at least one worker count");
    let mut curves = Vec::new();
    for scenario in scenarios {
        let curve = SweepTimer::start();
        let (exp, timeline) = build_world(seed, scenario);
        let use_hier = scenario.metro_tiles.is_some();
        let base_cfg = sweep_config(seed, worker_counts[0], use_hier);
        let mean_service_ms = probe_mean_service_ms(&exp, &timeline, &base_cfg);
        let capacity_hz = base_cfg.servers as f64 * 1000.0 / mean_service_ms.max(1e-9);

        let mut points = Vec::new();
        for &multiplier in multipliers {
            let rate_hz = multiplier * capacity_hz;
            let flows = generate_stream_flows(
                exp.map().len(),
                &StreamWorkload {
                    flows: scenario.flows,
                    process: ArrivalProcess::Poisson { rate_hz },
                    seed,
                },
            );
            let mut first: Option<StreamPoint> = None;
            for &w in worker_counts {
                let cfg = StreamConfig {
                    workers: w,
                    ..base_cfg
                };
                let started = Instant::now();
                let (r, _) = run_stream(&exp, &flows, &timeline, &cfg, &TelemetryConfig::off());
                let secs = started.elapsed().as_secs_f64().max(1e-9);
                assert_eq!(
                    r.offered,
                    r.admitted + r.shed(),
                    "{} x{multiplier}: accounting must balance",
                    scenario.label
                );
                // Exact maxima (quantiles are bucket-resolution and
                // can overshoot the true max by the bucket growth).
                let sojourn_max = r.sojourn_ms.max().unwrap_or(0.0);
                let service_max = r.service_ms.max().unwrap_or(0.0);
                assert!(
                    sojourn_max <= cfg.deadline_ms + service_max + 1e-6,
                    "{} x{multiplier}: admitted sojourn {sojourn_max:.3} ms escapes the \
                     deadline+service bound",
                    scenario.label
                );
                match &first {
                    None => {
                        first = Some(StreamPoint {
                            multiplier,
                            rate_hz,
                            offered: r.offered,
                            admitted: r.admitted,
                            shed_backpressure: r.shed_backpressure,
                            shed_deadline: r.shed_deadline,
                            degraded_tracing: r.degraded_tracing,
                            degraded_retry: r.degraded_retry,
                            p50_sojourn_ms: r.sojourn_quantile(0.5).unwrap_or(0.0),
                            p99_sojourn_ms: r.sojourn_quantile(0.99).unwrap_or(0.0),
                            max_sojourn_ms: sojourn_max,
                            max_depth: r.max_depth,
                            flows_per_sec: r.offered as f64 / secs,
                            digest: r.digest(),
                        });
                    }
                    Some(p) => assert_eq!(
                        p.digest,
                        r.digest(),
                        "{} x{multiplier}: digest differs between {} and {w} workers",
                        scenario.label,
                        worker_counts[0]
                    ),
                }
            }
            points.push(first.expect("worker_counts is non-empty"));
        }

        let (wall_ms, peak_rss_kb) = curve.point_stats();
        curves.push(StreamCurve {
            label: scenario.label,
            buildings: exp.map().len(),
            servers: base_cfg.servers,
            queue_capacity: base_cfg.queue_capacity,
            deadline_ms: base_cfg.deadline_ms,
            mean_service_ms,
            capacity_hz,
            knee_multiplier: detect_knee(&points),
            points,
            wall_ms,
            peak_rss_kb,
        });
    }
    StreamingFigures {
        curves,
        worker_counts: worker_counts.to_vec(),
    }
}

/// Serializes the sweep for `BENCH_streaming.json`.
pub fn to_json(figs: &StreamingFigures) -> Value {
    Value::Obj(vec![
        (
            "worker_counts".into(),
            Value::Arr(
                figs.worker_counts
                    .iter()
                    .map(|&w| Value::Int(w as i64))
                    .collect(),
            ),
        ),
        (
            "curves".into(),
            Value::Arr(
                figs.curves
                    .iter()
                    .map(|c| {
                        Value::Obj(vec![
                            ("label".into(), Value::Str(c.label.into())),
                            ("buildings".into(), Value::Int(c.buildings as i64)),
                            ("servers".into(), Value::Int(c.servers as i64)),
                            ("queue_capacity".into(), Value::Int(c.queue_capacity as i64)),
                            ("deadline_ms".into(), Value::Num(c.deadline_ms)),
                            ("mean_service_ms".into(), Value::Num(c.mean_service_ms)),
                            ("capacity_hz".into(), Value::Num(c.capacity_hz)),
                            (
                                "knee_multiplier".into(),
                                c.knee_multiplier.map(Value::Num).unwrap_or(Value::Null),
                            ),
                            ("wall_ms".into(), Value::Num(c.wall_ms)),
                            ("peak_rss_kb".into(), Value::Int(c.peak_rss_kb as i64)),
                            (
                                "points".into(),
                                Value::Arr(
                                    c.points
                                        .iter()
                                        .map(|p| {
                                            Value::Obj(vec![
                                                ("multiplier".into(), Value::Num(p.multiplier)),
                                                ("rate_hz".into(), Value::Num(p.rate_hz)),
                                                ("offered".into(), Value::Int(p.offered as i64)),
                                                ("admitted".into(), Value::Int(p.admitted as i64)),
                                                (
                                                    "shed_backpressure".into(),
                                                    Value::Int(p.shed_backpressure as i64),
                                                ),
                                                (
                                                    "shed_deadline".into(),
                                                    Value::Int(p.shed_deadline as i64),
                                                ),
                                                (
                                                    "degraded_tracing".into(),
                                                    Value::Int(p.degraded_tracing as i64),
                                                ),
                                                (
                                                    "degraded_retry".into(),
                                                    Value::Int(p.degraded_retry as i64),
                                                ),
                                                ("shed_rate".into(), Value::Num(p.shed_rate())),
                                                (
                                                    "p50_sojourn_ms".into(),
                                                    Value::Num(p.p50_sojourn_ms),
                                                ),
                                                (
                                                    "p99_sojourn_ms".into(),
                                                    Value::Num(p.p99_sojourn_ms),
                                                ),
                                                (
                                                    "max_sojourn_ms".into(),
                                                    Value::Num(p.max_sojourn_ms),
                                                ),
                                                (
                                                    "max_depth".into(),
                                                    Value::Int(p.max_depth as i64),
                                                ),
                                                (
                                                    "flows_per_sec".into(),
                                                    Value::Num(p.flows_per_sec),
                                                ),
                                                (
                                                    "digest".into(),
                                                    Value::Str(format!("{:016x}", p.digest)),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One scenario's latency-under-load chart: p50/p99 sojourn (left
/// scale) and shed fraction (scaled to the same height) vs offered
/// load, with a dashed marker at the detected knee.
pub fn curve_svg(curve: &StreamCurve) -> String {
    const W: f64 = 420.0;
    const H: f64 = 280.0;
    const M: f64 = 48.0;
    let xs: Vec<f64> = curve.points.iter().map(|p| p.multiplier).collect();
    let (x0, x1) = (
        xs.iter().copied().fold(f64::MAX, f64::min),
        xs.iter().copied().fold(0.0, f64::max),
    );
    let y1 = curve
        .points
        .iter()
        .map(|p| p.p99_sojourn_ms)
        .fold(0.0, f64::max)
        .max(1e-3);
    let x = |m: f64| M + (m - x0) / (x1 - x0).max(1e-9) * (W - 2.0 * M);
    let y = |v: f64| H - M - (v / y1).clamp(0.0, 1.0) * (H - 2.0 * M);
    let path = |f: &dyn Fn(&StreamPoint) -> f64| {
        curve
            .points
            .iter()
            .map(|p| format!("{:.1},{:.1}", x(p.multiplier), y(f(p))))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let mut s = String::new();
    s.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\" font-size=\"11\">\n"
    ));
    s.push_str(&format!(
        "<text x=\"{}\" y=\"16\" text-anchor=\"middle\" font-size=\"13\">sojourn under load \
         ({})</text>\n",
        W / 2.0,
        curve.label
    ));
    s.push_str(&format!(
        "<line x1=\"{M}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" stroke=\"#444\"/>\n\
         <line x1=\"{M}\" y1=\"{M}\" x2=\"{M}\" y2=\"{0}\" stroke=\"#444\"/>\n",
        H - M,
        W - M
    ));
    for p in &curve.points {
        s.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{}\" text-anchor=\"middle\">{:.2}x</text>\n",
            x(p.multiplier),
            H - M + 14.0,
            p.multiplier
        ));
    }
    s.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{y1:.0} ms</text>\n",
        M - 4.0,
        y(y1) + 4.0
    ));
    if let Some(knee) = curve.knee_multiplier {
        s.push_str(&format!(
            "<line x1=\"{0:.1}\" y1=\"{M}\" x2=\"{0:.1}\" y2=\"{1}\" stroke=\"#999\" \
             stroke-dasharray=\"4 3\"/>\n\
             <text x=\"{0:.1}\" y=\"{2}\" text-anchor=\"middle\" fill=\"#666\">knee</text>\n",
            x(knee),
            H - M,
            M - 6.0
        ));
    }
    s.push_str(&format!(
        "<polyline points=\"{}\" fill=\"none\" stroke=\"#1f77b4\" stroke-width=\"2\"/>\n",
        path(&|p| p.p50_sojourn_ms)
    ));
    s.push_str(&format!(
        "<polyline points=\"{}\" fill=\"none\" stroke=\"#d62728\" stroke-width=\"2\"/>\n",
        path(&|p| p.p99_sojourn_ms)
    ));
    s.push_str(&format!(
        "<polyline points=\"{}\" fill=\"none\" stroke=\"#7f7f7f\" stroke-width=\"1.5\" \
         stroke-dasharray=\"2 3\"/>\n",
        path(&|p| p.shed_rate() * y1)
    ));
    s.push_str(&format!(
        "<text x=\"{0}\" y=\"{1}\" fill=\"#1f77b4\">p50</text>\n\
         <text x=\"{0}\" y=\"{2}\" fill=\"#d62728\">p99</text>\n\
         <text x=\"{0}\" y=\"{3}\" fill=\"#7f7f7f\">shed%</text>\n",
        M + 8.0,
        M + 14.0,
        M + 28.0,
        M + 42.0
    ));
    s.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">offered load (x estimated \
         capacity)</text>\n",
        W / 2.0,
        H - 8.0
    ));
    s.push_str(&format!(
        "<text x=\"14\" y=\"{}\" transform=\"rotate(-90 14 {0})\" text-anchor=\"middle\">sojourn \
         (ms)</text>\n",
        H / 2.0
    ));
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_finds_a_knee_and_serializes() {
        let scenarios = [
            StreamScenario {
                label: "downtown-flat",
                metro_tiles: None,
                flows: 150,
            },
            StreamScenario {
                label: "metro-hier",
                metro_tiles: Some((1, 1)),
                flows: 150,
            },
        ];
        let figs = run_streaming_figs(5, &scenarios, &[0.4, 2.5], &[1, 2]);
        assert_eq!(figs.curves.len(), 2);
        for c in &figs.curves {
            assert!(c.capacity_hz > 0.0 && c.mean_service_ms > 0.0);
            assert_eq!(c.points.len(), 2);
            let under = &c.points[0];
            let over = &c.points[1];
            assert_eq!(under.shed(), 0, "{}: 0.4x must not shed", c.label);
            assert!(over.shed() > 0, "{}: 2.5x must shed explicitly", c.label);
            assert!(
                over.p99_sojourn_ms >= under.p99_sojourn_ms,
                "{}: overload cannot have lower p99 than underload",
                c.label
            );
            assert_eq!(c.knee_multiplier, Some(2.5));
        }
        let rendered = to_json(&figs).render();
        assert!(rendered.contains("\"p99_sojourn_ms\""));
        assert!(rendered.contains("\"knee_multiplier\""));
        assert!(rendered.contains("\"metro-hier\""));
        let svg = curve_svg(&figs.curves[0]);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>\n"));
        assert!(svg.contains("knee"));
    }

    #[test]
    fn knee_detection_prefers_the_first_saturated_point() {
        let p = |multiplier: f64, shed: u64, p99: f64| StreamPoint {
            multiplier,
            rate_hz: 0.0,
            offered: 100,
            admitted: 100 - shed,
            shed_backpressure: shed,
            shed_deadline: 0,
            degraded_tracing: 0,
            degraded_retry: 0,
            p50_sojourn_ms: p99 / 2.0,
            p99_sojourn_ms: p99,
            max_sojourn_ms: p99,
            max_depth: 0,
            flows_per_sec: 0.0,
            digest: 0,
        };
        // Sheds at 2.0x: that's the knee even though p99 jumped later.
        let pts = [p(0.5, 0, 3.0), p(2.0, 10, 9.0), p(3.0, 20, 50.0)];
        assert_eq!(detect_knee(&pts), Some(2.0));
        // No shedding anywhere, but p99 blows past 4x baseline at 1.5x.
        let pts = [p(0.5, 0, 3.0), p(1.5, 0, 20.0)];
        assert_eq!(detect_knee(&pts), Some(1.5));
        // Flat and shed-free: no knee in range.
        let pts = [p(0.5, 0, 3.0), p(0.8, 0, 3.5)];
        assert_eq!(detect_knee(&pts), None);
    }
}
