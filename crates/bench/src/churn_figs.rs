//! Churn sweep (`figures -- churn`).
//!
//! The resilience sweep hurts the world once, before the first flow;
//! this sweep keeps hurting it *during* the run. For each survey
//! archetype it materializes a deterministic event timeline —
//! aftershock discs, battery-drain waves, crew repairs — at increasing
//! churn levels and drives the epoch-barrier engine from
//! `citymesh-dynamics` with all three sender populations: the paper's
//! static plan, the retry ladder, and the Babel/QSPN-style reactive
//! local repair. The data lands in `BENCH_churn.json` via [`to_json`]
//! plus one delivery-vs-churn SVG per archetype via [`curve_svg`].
//!
//! Two claims are checked, not assumed, at every point:
//!
//! 1. **Determinism**: each strategy's churn digest is identical
//!    across every checked worker count — a mutating world must not
//!    cost the engine its "parallel == serial" guarantee.
//! 2. **Incremental invalidation**: evicting only the plans an event
//!    could observably touch is digest-equal to flushing the whole
//!    route cache, while evicting strictly fewer entries in aggregate
//!    (per-point counts are recorded in the JSON).

use citymesh_core::{CityExperiment, ExperimentConfig, FaultScenario};
use citymesh_dynamics::{
    run_churn, ChurnConfig, ChurnEngineConfig, InvalidationPolicy, Strategy, Timeline,
};
use citymesh_fleet::{generate_flows, FlowModel, WorkloadConfig};
use citymesh_telemetry::TelemetryConfig;

use crate::resilience_figs::survey_archetypes;
use crate::text::json::Value;

/// One strategy's outcome at one `(archetype, churn level)` point.
pub struct StrategyResult {
    /// Stable strategy label (`static`, `ladder`, `reactive`).
    pub strategy: &'static str,
    /// Delivered fraction under churn.
    pub delivery_rate: f64,
    /// Flows that needed more than one attempt (ladder) or at least
    /// one repair splice (reactive).
    pub retried: u64,
    /// Retried flows that a later rung / repaired route delivered.
    pub recovered: u64,
    /// Reactive only: local repair splices performed.
    pub repairs: u64,
    /// Churn digest, identical across all checked worker counts and
    /// across both invalidation policies (asserted by
    /// [`run_churn_figs`]).
    pub digest: u64,
    /// Cache entries evicted by incremental (spatial) invalidation.
    pub evicted_incremental: u64,
    /// Cache entries evicted by the full-flush policy on the same
    /// timeline — the replan-cost baseline.
    pub evicted_flush: u64,
    /// Route plans computed (cache misses) under incremental eviction.
    pub planned_incremental: u64,
    /// Route plans computed under full flushes.
    pub planned_flush: u64,
}

/// One churn level of one archetype.
pub struct ChurnPoint {
    /// Scheduled events in the timeline at this level.
    pub events: usize,
    /// Events per simulated second of the workload span.
    pub churn_rate_hz: f64,
    /// Fingerprint of the materialized timeline (times, mechanisms,
    /// and every per-AP health flip) — pins the scenario itself.
    pub timeline_fingerprint: u64,
    /// Total AP health flips the timeline performs.
    pub aps_changed: u64,
    /// One result per strategy, in [`strategies`](crate::churn_figs)
    /// order: static, ladder, reactive.
    pub strategies: Vec<StrategyResult>,
}

/// The churn-degradation curve of one archetype.
pub struct ChurnCurve {
    /// Generated city name.
    pub city: String,
    /// Archetype label (`downtown`, `campus`, …).
    pub archetype: &'static str,
    /// Building count.
    pub buildings: usize,
    /// One point per churn level, in sweep order.
    pub points: Vec<ChurnPoint>,
}

/// All four archetype curves of one churn sweep.
pub struct ChurnFigures {
    /// Root seed of the sweep.
    pub seed: u64,
    /// Flows per point.
    pub flows: usize,
    /// Total incremental evictions over every point with events.
    pub total_evicted_incremental: u64,
    /// Total full-flush evictions over the same points.
    pub total_evicted_flush: u64,
    /// One curve per archetype.
    pub curves: Vec<ChurnCurve>,
}

/// The three sender populations the sweep compares, in report order.
fn strategies() -> [Strategy; 3] {
    [
        Strategy::StaticPlan,
        Strategy::RetryLadder,
        Strategy::ReactiveRepair,
    ]
}

/// Splits a total event budget into the three mechanisms: half
/// aftershocks, a quarter battery waves, the rest crew repairs.
fn event_mix(events: usize) -> (usize, usize, usize) {
    let aftershocks = events.div_ceil(2);
    let battery_waves = events / 4;
    let crew_repairs = events - aftershocks - battery_waves;
    (aftershocks, battery_waves, crew_repairs)
}

/// Runs the sweep: `event_levels` must start at `0` (the churn-free
/// baseline; with an empty timeline the engine degenerates to one
/// epoch and the ladder strategy reproduces the plain fleet digest).
///
/// # Panics
/// Panics if any strategy's digests diverge across `worker_counts`,
/// if incremental and full-flush eviction disagree on any digest, or
/// if — summed over every point that has events — incremental
/// invalidation fails to evict strictly fewer entries than flushing.
pub fn run_churn_figs(
    seed: u64,
    event_levels: &[usize],
    flows: usize,
    worker_counts: &[usize],
) -> ChurnFigures {
    assert!(
        !event_levels.is_empty() && event_levels[0] == 0,
        "sweep starts churn-free"
    );
    let mut curves = Vec::new();
    let mut total_incremental = 0u64;
    let mut total_flush = 0u64;
    for arch in survey_archetypes() {
        let exp = CityExperiment::prepare(
            arch.generate(seed),
            ExperimentConfig {
                seed,
                faults: Some(FaultScenario::district_blackouts(1, 100.0)),
                ..ExperimentConfig::default()
            },
        );
        let workload = generate_flows(
            exp.map().len(),
            &WorkloadConfig {
                flows,
                model: FlowModel::UniformPairs { rate_hz: 200.0 },
                seed,
            },
        );
        let span_ms = workload.last().expect("non-empty workload").arrival_ms;
        let mut points = Vec::new();
        for &events in event_levels {
            let point = run_point(&exp, &workload, seed, events, span_ms, worker_counts);
            if events > 0 {
                for s in &point.strategies {
                    total_incremental += s.evicted_incremental;
                    total_flush += s.evicted_flush;
                }
            }
            points.push(point);
        }
        curves.push(ChurnCurve {
            city: exp.map().name().to_string(),
            archetype: arch.label(),
            buildings: exp.map().len(),
            points,
        });
    }
    assert!(
        total_incremental < total_flush,
        "incremental invalidation must beat a flush in aggregate \
         ({total_incremental} vs {total_flush} evictions)"
    );
    ChurnFigures {
        seed,
        flows,
        total_evicted_incremental: total_incremental,
        total_evicted_flush: total_flush,
        curves,
    }
}

fn run_point(
    exp: &CityExperiment,
    workload: &[citymesh_fleet::FlowSpec],
    seed: u64,
    events: usize,
    span_ms: f64,
    worker_counts: &[usize],
) -> ChurnPoint {
    let (aftershocks, battery_waves, crew_repairs) = event_mix(events);
    let timeline = Timeline::materialize(
        exp,
        &ChurnConfig {
            aftershocks,
            battery_waves,
            crew_repairs,
            horizon_ms: span_ms,
            seed,
            ..ChurnConfig::default()
        },
    );
    let aps_changed: u64 = timeline
        .events()
        .iter()
        .map(|e| e.changes.len() as u64)
        .sum();

    let mut results = Vec::new();
    for strategy in strategies() {
        let cfg = |workers: usize, invalidation: InvalidationPolicy| ChurnEngineConfig {
            workers,
            seed,
            invalidation,
            ..ChurnEngineConfig::default()
        };
        let reports: Vec<_> = worker_counts
            .iter()
            .map(|&workers| {
                run_churn(
                    exp,
                    workload,
                    &timeline,
                    strategy,
                    &cfg(workers, InvalidationPolicy::Incremental),
                    &TelemetryConfig::off(),
                )
                .0
            })
            .collect();
        let digests: Vec<u64> = reports.iter().map(|r| r.digest()).collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "{} under churn: digests diverged across workers {worker_counts:?}: {digests:x?}",
            strategy.label()
        );
        let incremental = &reports[0];

        let (flush, _) = run_churn(
            exp,
            workload,
            &timeline,
            strategy,
            &cfg(worker_counts[0], InvalidationPolicy::FullFlush),
            &TelemetryConfig::off(),
        );
        assert_eq!(
            incremental.digest(),
            flush.digest(),
            "{}: incremental invalidation changed outcomes",
            strategy.label()
        );
        assert!(
            incremental.routes_evicted <= flush.routes_evicted,
            "{}: incremental evicted more than a flush",
            strategy.label()
        );

        results.push(StrategyResult {
            strategy: strategy.label(),
            delivery_rate: incremental.delivery_rate(),
            retried: incremental.retried,
            recovered: incremental.recovered,
            repairs: incremental.repairs,
            digest: incremental.digest(),
            evicted_incremental: incremental.routes_evicted,
            evicted_flush: flush.routes_evicted,
            planned_incremental: incremental.routes_planned,
            planned_flush: flush.routes_planned,
        });
    }

    ChurnPoint {
        events,
        churn_rate_hz: if span_ms > 0.0 {
            events as f64 / (span_ms / 1000.0)
        } else {
            0.0
        },
        timeline_fingerprint: timeline.fingerprint(),
        aps_changed,
        strategies: results,
    }
}

/// Serializes the sweep for `BENCH_churn.json`.
pub fn to_json(figs: &ChurnFigures) -> Value {
    Value::Obj(vec![
        ("seed".into(), Value::Int(figs.seed as i64)),
        ("flows".into(), Value::Int(figs.flows as i64)),
        (
            "total_evicted_incremental".into(),
            Value::Int(figs.total_evicted_incremental as i64),
        ),
        (
            "total_evicted_flush".into(),
            Value::Int(figs.total_evicted_flush as i64),
        ),
        (
            "curves".into(),
            Value::Arr(
                figs.curves
                    .iter()
                    .map(|c| {
                        Value::Obj(vec![
                            ("city".into(), Value::Str(c.city.clone())),
                            ("archetype".into(), Value::Str(c.archetype.into())),
                            ("buildings".into(), Value::Int(c.buildings as i64)),
                            (
                                "points".into(),
                                Value::Arr(c.points.iter().map(point_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn point_json(p: &ChurnPoint) -> Value {
    Value::Obj(vec![
        ("events".into(), Value::Int(p.events as i64)),
        ("churn_rate_hz".into(), Value::Num(p.churn_rate_hz)),
        (
            "timeline_fingerprint".into(),
            Value::Str(format!("{:016x}", p.timeline_fingerprint)),
        ),
        ("aps_changed".into(), Value::Int(p.aps_changed as i64)),
        (
            "strategies".into(),
            Value::Arr(
                p.strategies
                    .iter()
                    .map(|s| {
                        Value::Obj(vec![
                            ("strategy".into(), Value::Str(s.strategy.into())),
                            ("delivery_rate".into(), Value::Num(s.delivery_rate)),
                            ("retried".into(), Value::Int(s.retried as i64)),
                            ("recovered".into(), Value::Int(s.recovered as i64)),
                            ("repairs".into(), Value::Int(s.repairs as i64)),
                            ("digest".into(), Value::Str(format!("{:016x}", s.digest))),
                            (
                                "evicted_incremental".into(),
                                Value::Int(s.evicted_incremental as i64),
                            ),
                            ("evicted_flush".into(), Value::Int(s.evicted_flush as i64)),
                            (
                                "planned_incremental".into(),
                                Value::Int(s.planned_incremental as i64),
                            ),
                            ("planned_flush".into(), Value::Int(s.planned_flush as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders one archetype's delivery-vs-churn curve as a small
/// standalone SVG line chart, one line per strategy.
pub fn curve_svg(curve: &ChurnCurve) -> String {
    const W: f64 = 420.0;
    const H: f64 = 280.0;
    const M: f64 = 40.0; // margin on every side
    let max_events = curve
        .points
        .iter()
        .map(|p| p.events as f64)
        .fold(1.0, f64::max);
    let x = |events: usize| M + events as f64 * (W - 2.0 * M) / max_events;
    let y = |rate: f64| H - M - rate.clamp(0.0, 1.0) * (H - 2.0 * M);
    let path = |idx: usize| {
        curve
            .points
            .iter()
            .map(|p| {
                format!(
                    "{:.1},{:.1}",
                    x(p.events),
                    y(p.strategies[idx].delivery_rate)
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    };
    let series = [
        ("static plan", "#d62728", Some("5,4")),
        ("retry ladder", "#1f77b4", None),
        ("reactive repair", "#2ca02c", None),
    ];
    let mut s = String::new();
    s.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\" font-size=\"11\">\n"
    ));
    s.push_str(&format!(
        "<text x=\"{}\" y=\"16\" text-anchor=\"middle\" font-size=\"13\">{}: delivery vs churn</text>\n",
        W / 2.0,
        curve.archetype
    ));
    s.push_str(&format!(
        "<line x1=\"{M}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" stroke=\"#444\"/>\n\
         <line x1=\"{M}\" y1=\"{M}\" x2=\"{M}\" y2=\"{0}\" stroke=\"#444\"/>\n",
        H - M,
        W - M
    ));
    for tick in [0.0, 0.5, 1.0] {
        s.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{:.1}</text>\n",
            M - 4.0,
            y(tick) + 4.0,
            tick
        ));
    }
    for (idx, (label, color, dash)) in series.iter().enumerate() {
        let dash_attr = dash
            .map(|d| format!(" stroke-dasharray=\"{d}\""))
            .unwrap_or_default();
        s.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"{dash_attr}/>\n",
            path(idx)
        ));
        s.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" fill=\"{color}\">{label}</text>\n",
            W - M - 120.0,
            M + 14.0 * (idx as f64 + 1.0)
        ));
    }
    s.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">scheduled world events</text>\n",
        W / 2.0,
        H - 8.0
    ));
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_mix_exhausts_the_budget() {
        for n in 0..20 {
            let (a, b, r) = event_mix(n);
            assert_eq!(a + b + r, n);
        }
    }

    #[test]
    fn sweep_checks_invariants_and_serializes() {
        let figs = run_churn_figs(9, &[0, 4], 80, &[1, 2]);
        assert_eq!(figs.curves.len(), 4);
        assert!(
            figs.total_evicted_incremental < figs.total_evicted_flush,
            "aggregate incremental advantage is asserted inside the run"
        );
        for c in &figs.curves {
            assert_eq!(c.points.len(), 2);
            let (calm, churned) = (&c.points[0], &c.points[1]);
            assert_eq!(calm.events, 0);
            assert_eq!(calm.aps_changed, 0);
            assert_eq!(churned.events, 4);
            assert_eq!(churned.strategies.len(), 3);
            for s in &churned.strategies {
                assert!(s.evicted_incremental <= s.evicted_flush);
                assert!(s.planned_incremental <= s.planned_flush);
            }
        }
        let rendered = to_json(&figs).render();
        assert!(rendered.contains("\"timeline_fingerprint\""));
        assert!(rendered.contains("\"evicted_flush\""));
        let svg = curve_svg(&figs.curves[1]);
        assert!(svg.starts_with("<svg") && svg.contains("polyline"));
    }
}
