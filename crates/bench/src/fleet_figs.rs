//! Heavy-traffic throughput figures (`figures -- fleet`).
//!
//! Runs the `citymesh-fleet` engine over a hotspot disaster workload
//! at several flow counts and worker counts, verifying at every flow
//! count that all worker counts aggregate to the same digest (the
//! engine's determinism invariant) and reporting flows/sec. The data
//! lands in `BENCH_fleet.json` via [`to_json`].

use citymesh_core::{CityExperiment, ExperimentConfig};
use citymesh_fleet::{
    generate_flows, run_fleet, FleetConfig, FleetReport, FlowModel, WorkloadConfig,
};
use citymesh_map::CityArchetype;

use crate::text::json::Value;

/// One engine run at a `(flow count, worker count)` point.
pub struct FleetRun {
    /// Flows in the workload.
    pub flows: usize,
    /// Worker threads requested.
    pub workers: usize,
    /// The full aggregate report.
    pub report: FleetReport,
}

/// All runs of one fleet benchmark sweep.
pub struct FleetFigures {
    /// City the workload ran against.
    pub city: String,
    /// Building count of that city.
    pub buildings: usize,
    /// Workload model label.
    pub model: &'static str,
    /// Every `(flows, workers)` run, in sweep order.
    pub runs: Vec<FleetRun>,
}

/// Runs the sweep: for each flow count, one run per worker count.
///
/// `warmup` controls whether an unmeasured full-scale run precedes the
/// sweep. Pass `false` (`figures -- fleet --cold`) to measure the
/// process-cold path — the number a disaster-recovery operator
/// actually sees on first launch, and the one the zero-allocation
/// kernel is designed to keep close to the warm figure.
///
/// # Panics
/// Panics if any two worker counts at the same flow count disagree on
/// the aggregate digest — that would falsify the engine's core
/// "parallel == serial" guarantee, and a benchmark must not report
/// throughput for results that are wrong.
pub fn run_fleet_figs(
    seed: u64,
    flow_counts: &[usize],
    worker_counts: &[usize],
    warmup: bool,
) -> FleetFigures {
    let map = CityArchetype::SurveyDowntown.generate(seed);
    let city = map.name().to_string();
    let buildings = map.len();
    let exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed,
            ..ExperimentConfig::default()
        },
    );

    let model = FlowModel::Hotspot {
        hotspots: 8,
        exponent: 1.1,
        rate_hz: 500.0,
    };

    // Warm-up: run the largest workload once, unmeasured. Allocator
    // state (heap size, glibc's adaptive mmap threshold) only settles
    // after a run at full scale; without this, whichever measured run
    // goes first pays the heap-growth syscall churn for everyone
    // after it and reads several times slower than the same
    // configuration measured warm.
    let warm_flows = if warmup {
        flow_counts.iter().copied().max().unwrap_or(0)
    } else {
        0
    };
    if warm_flows > 0 {
        let warm = generate_flows(
            buildings,
            &WorkloadConfig {
                flows: warm_flows,
                model,
                seed,
            },
        );
        run_fleet(
            &exp,
            &warm,
            &FleetConfig {
                workers: 1,
                seed,
                ..FleetConfig::default()
            },
        );
    }

    let mut runs = Vec::new();
    for &flows in flow_counts {
        let specs = generate_flows(buildings, &WorkloadConfig { flows, model, seed });
        let mut digests: Vec<u64> = Vec::new();
        for &workers in worker_counts {
            let report = run_fleet(
                &exp,
                &specs,
                &FleetConfig {
                    workers,
                    seed,
                    ..FleetConfig::default()
                },
            );
            digests.push(report.digest());
            runs.push(FleetRun {
                flows,
                workers,
                report,
            });
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "determinism violated at {flows} flows: digests {digests:x?}"
        );
    }
    FleetFigures {
        city,
        buildings,
        model: model.label(),
        runs,
    }
}

/// Serializes the sweep for `BENCH_fleet.json`.
pub fn to_json(figs: &FleetFigures) -> Value {
    let quant = |h: &citymesh_simcore::stats::Histogram, q: f64| {
        h.quantile(q).map(Value::Num).unwrap_or(Value::Null)
    };
    Value::Obj(vec![
        ("city".into(), Value::Str(figs.city.clone())),
        ("buildings".into(), Value::Int(figs.buildings as i64)),
        ("model".into(), Value::Str(figs.model.into())),
        (
            "runs".into(),
            Value::Arr(
                figs.runs
                    .iter()
                    .map(|r| {
                        Value::Obj(vec![
                            ("flows".into(), Value::Int(r.flows as i64)),
                            ("workers".into(), Value::Int(r.workers as i64)),
                            ("flows_per_sec".into(), Value::Num(r.report.flows_per_sec())),
                            ("elapsed_secs".into(), Value::Num(r.report.elapsed_secs)),
                            ("delivered".into(), Value::Int(r.report.delivered as i64)),
                            ("delivery_rate".into(), Value::Num(r.report.delivery_rate())),
                            ("checkins".into(), Value::Int(r.report.checkins as i64)),
                            ("cache_hits".into(), Value::Int(r.report.cache_hits as i64)),
                            (
                                "cache_misses".into(),
                                Value::Int(r.report.cache_misses as i64),
                            ),
                            (
                                "digest".into(),
                                Value::Str(format!("{:016x}", r.report.digest())),
                            ),
                            ("latency_ms_p50".into(), quant(&r.report.latency_ms, 0.5)),
                            ("latency_ms_p99".into(), quant(&r.report.latency_ms, 0.99)),
                            ("broadcasts_p50".into(), quant(&r.report.broadcasts, 0.5)),
                            ("header_bits_p50".into(), quant(&r.report.header_bits, 0.5)),
                            ("header_bits_p90".into(), quant(&r.report.header_bits, 0.9)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_serializes() {
        let figs = run_fleet_figs(5, &[40], &[1, 2], true);
        assert_eq!(figs.runs.len(), 2);
        assert_eq!(
            figs.runs[0].report.digest(),
            figs.runs[1].report.digest(),
            "run_fleet_figs must have asserted this already"
        );
        let rendered = to_json(&figs).render();
        assert!(rendered.contains("\"flows_per_sec\""));
        assert!(rendered.contains("\"digest\""));
        assert!(rendered.starts_with('{') && rendered.ends_with('}'));
    }
}
