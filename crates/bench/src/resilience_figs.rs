//! Resilience sweep (`figures -- resilience`).
//!
//! The paper's whole premise is a disaster that takes infrastructure
//! down — this sweep measures how gracefully CityMesh degrades when
//! the mesh itself is a casualty. For each survey archetype it
//! materializes i.i.d. AP-failure scenarios at increasing failure
//! probability and runs the fleet engine twice per point: once with
//! the sender's recovery ladder enabled and once with it disabled
//! (single send attempt). The data lands in `BENCH_resilience.json`
//! via [`to_json`] plus one delivery-rate-vs-failed-fraction SVG per
//! archetype via [`curve_svg`].
//!
//! Determinism is checked, not assumed: every ladder run is repeated
//! across the given worker counts and the digests must agree — fault
//! injection must not cost the engine its "parallel == serial"
//! guarantee.

use citymesh_core::{CityExperiment, ExperimentConfig, FaultScenario, RetryPolicy};
use citymesh_fleet::{generate_flows, run_fleet, FleetConfig, FlowModel, WorkloadConfig};
use citymesh_map::CityArchetype;

use crate::text::json::Value;

/// One `(archetype, failure probability)` measurement.
pub struct ResiliencePoint {
    /// Configured i.i.d. per-AP failure probability.
    pub failure_p: f64,
    /// Fraction of APs the scenario actually killed once materialized.
    pub failed_fraction: f64,
    /// Delivered fraction with the recovery ladder enabled.
    pub delivery_rate: f64,
    /// Delivered fraction with a single send attempt (ladder off).
    pub delivery_rate_no_retry: f64,
    /// Ladder runs: flows that needed more than one attempt.
    pub retried: u64,
    /// Ladder runs: retried flows a later rung delivered.
    pub recovered: u64,
    /// Aggregate digest of the ladder run (identical across all
    /// checked worker counts, asserted by [`run_resilience`]).
    pub digest: u64,
    /// Fingerprint of the materialized fault state (which APs are
    /// down/degraded) — pins the scenario itself, not just outcomes.
    pub fault_fingerprint: u64,
}

/// The delivery-degradation curve of one archetype.
pub struct ResilienceCurve {
    /// Generated city name.
    pub city: String,
    /// Archetype label (`downtown`, `campus`, …).
    pub archetype: &'static str,
    /// Building count.
    pub buildings: usize,
    /// One point per failure probability, in sweep order.
    pub points: Vec<ResiliencePoint>,
}

/// All four archetype curves of one sweep.
pub struct ResilienceFigures {
    /// Root seed of the sweep.
    pub seed: u64,
    /// Flows per point.
    pub flows: usize,
    /// One curve per archetype.
    pub curves: Vec<ResilienceCurve>,
}

/// The four §2 survey archetypes, the cities the paper measures.
pub fn survey_archetypes() -> [CityArchetype; 4] {
    [
        CityArchetype::SurveyDowntown,
        CityArchetype::SurveyCampus,
        CityArchetype::SurveyResidential,
        CityArchetype::SurveyRiver,
    ]
}

/// Runs the sweep: `failure_ps` must start at `0.0` (the fault-free
/// baseline every curve is normalized against mentally).
///
/// # Panics
/// Panics if ladder runs disagree on the digest across `worker_counts`
/// (fault injection broke engine determinism) or if a curve fails to
/// degrade monotonically (delivery rate rising by more than a small
/// stochastic slack as more APs die — that would mean the fault state
/// is not actually nested across probabilities).
pub fn run_resilience(
    seed: u64,
    failure_ps: &[f64],
    flows: usize,
    worker_counts: &[usize],
) -> ResilienceFigures {
    assert!(
        !failure_ps.is_empty() && failure_ps[0] == 0.0,
        "sweep starts fault-free"
    );
    let mut curves = Vec::new();
    for arch in survey_archetypes() {
        let mut points = Vec::new();
        for &p in failure_ps {
            points.push(run_point(seed, arch, p, flows, worker_counts));
        }
        // i.i.d. casualties are drawn from per-AP sub-streams, so the
        // failure sets are nested across probabilities and the curve
        // must degrade monotonically up to per-flow retry noise.
        for w in points.windows(2) {
            assert!(
                w[1].delivery_rate <= w[0].delivery_rate + 0.02,
                "{}: delivery rate rose from {:.3} to {:.3} as failures grew",
                arch.label(),
                w[0].delivery_rate,
                w[1].delivery_rate
            );
        }
        let map = arch.generate(seed);
        curves.push(ResilienceCurve {
            city: map.name().to_string(),
            archetype: arch.label(),
            buildings: map.len(),
            points,
        });
    }
    ResilienceFigures {
        seed,
        flows,
        curves,
    }
}

fn run_point(
    seed: u64,
    arch: CityArchetype,
    failure_p: f64,
    flows: usize,
    worker_counts: &[usize],
) -> ResiliencePoint {
    let scenario = |retry: RetryPolicy| {
        let mut s = FaultScenario::iid(failure_p);
        s.retry = retry;
        s
    };
    let prepare = |retry: RetryPolicy| {
        CityExperiment::prepare(
            arch.generate(seed),
            ExperimentConfig {
                seed,
                faults: Some(scenario(retry)),
                ..ExperimentConfig::default()
            },
        )
    };

    let ladder = prepare(RetryPolicy::ladder());
    let workload = generate_flows(
        ladder.map().len(),
        &WorkloadConfig {
            flows,
            model: FlowModel::UniformPairs { rate_hz: 200.0 },
            seed,
        },
    );

    let reports: Vec<_> = worker_counts
        .iter()
        .map(|&workers| {
            run_fleet(
                &ladder,
                &workload,
                &FleetConfig {
                    workers,
                    seed,
                    ..FleetConfig::default()
                },
            )
        })
        .collect();
    let digests: Vec<u64> = reports.iter().map(|r| r.digest()).collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "{} p={failure_p}: fault-injected digests diverged across workers {worker_counts:?}: {digests:x?}",
        arch.label()
    );
    let report = &reports[0];

    let single = prepare(RetryPolicy::none());
    let no_retry = run_fleet(
        &single,
        &workload,
        &FleetConfig {
            workers: worker_counts[0],
            seed,
            ..FleetConfig::default()
        },
    );

    let fault = ladder
        .fault_state()
        .expect("experiment was prepared with a fault scenario");
    ResiliencePoint {
        failure_p,
        failed_fraction: fault.failed_fraction(),
        delivery_rate: report.delivery_rate(),
        delivery_rate_no_retry: no_retry.delivery_rate(),
        retried: report.retried,
        recovered: report.recovered,
        digest: report.digest(),
        fault_fingerprint: fault.fingerprint(),
    }
}

/// Serializes the sweep for `BENCH_resilience.json`.
pub fn to_json(figs: &ResilienceFigures) -> Value {
    Value::Obj(vec![
        ("seed".into(), Value::Int(figs.seed as i64)),
        ("flows".into(), Value::Int(figs.flows as i64)),
        (
            "curves".into(),
            Value::Arr(
                figs.curves
                    .iter()
                    .map(|c| {
                        Value::Obj(vec![
                            ("city".into(), Value::Str(c.city.clone())),
                            ("archetype".into(), Value::Str(c.archetype.into())),
                            ("buildings".into(), Value::Int(c.buildings as i64)),
                            (
                                "points".into(),
                                Value::Arr(c.points.iter().map(point_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn point_json(p: &ResiliencePoint) -> Value {
    Value::Obj(vec![
        ("failure_p".into(), Value::Num(p.failure_p)),
        ("failed_fraction".into(), Value::Num(p.failed_fraction)),
        ("delivery_rate".into(), Value::Num(p.delivery_rate)),
        (
            "delivery_rate_no_retry".into(),
            Value::Num(p.delivery_rate_no_retry),
        ),
        ("retried".into(), Value::Int(p.retried as i64)),
        ("recovered".into(), Value::Int(p.recovered as i64)),
        ("digest".into(), Value::Str(format!("{:016x}", p.digest))),
        (
            "fault_fingerprint".into(),
            Value::Str(format!("{:016x}", p.fault_fingerprint)),
        ),
    ])
}

/// Renders one archetype's delivery-rate-vs-failed-fraction curve as a
/// small standalone SVG line chart: ladder on (solid) vs off (dashed).
pub fn curve_svg(curve: &ResilienceCurve) -> String {
    const W: f64 = 420.0;
    const H: f64 = 280.0;
    const M: f64 = 40.0; // margin on every side
    let x = |frac: f64| M + frac.min(1.0) * (W - 2.0 * M) / 0.5_f64.max(max_frac(curve));
    let y = |rate: f64| H - M - rate.clamp(0.0, 1.0) * (H - 2.0 * M);
    let path = |rates: &dyn Fn(&ResiliencePoint) -> f64| {
        curve
            .points
            .iter()
            .map(|p| format!("{:.1},{:.1}", x(p.failed_fraction), y(rates(p))))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let mut s = String::new();
    s.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\" font-size=\"11\">\n"
    ));
    s.push_str(&format!(
        "<text x=\"{}\" y=\"16\" text-anchor=\"middle\" font-size=\"13\">{}: delivery vs failed APs</text>\n",
        W / 2.0,
        curve.archetype
    ));
    // Axes.
    s.push_str(&format!(
        "<line x1=\"{M}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" stroke=\"#444\"/>\n\
         <line x1=\"{M}\" y1=\"{M}\" x2=\"{M}\" y2=\"{0}\" stroke=\"#444\"/>\n",
        H - M,
        W - M
    ));
    for tick in [0.0, 0.5, 1.0] {
        s.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{:.1}</text>\n",
            M - 4.0,
            y(tick) + 4.0,
            tick
        ));
    }
    s.push_str(&format!(
        "<polyline points=\"{}\" fill=\"none\" stroke=\"#1f77b4\" stroke-width=\"2\"/>\n",
        path(&|p| p.delivery_rate)
    ));
    s.push_str(&format!(
        "<polyline points=\"{}\" fill=\"none\" stroke=\"#d62728\" stroke-width=\"2\" \
         stroke-dasharray=\"5,4\"/>\n",
        path(&|p| p.delivery_rate_no_retry)
    ));
    s.push_str(&format!(
        "<text x=\"{0}\" y=\"{1}\" fill=\"#1f77b4\">retry ladder</text>\n\
         <text x=\"{0}\" y=\"{2}\" fill=\"#d62728\">single attempt</text>\n",
        W - M - 110.0,
        M + 14.0,
        M + 28.0
    ));
    s.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">failed AP fraction</text>\n",
        W / 2.0,
        H - 8.0
    ));
    s.push_str("</svg>\n");
    s
}

fn max_frac(curve: &ResilienceCurve) -> f64 {
    curve
        .points
        .iter()
        .map(|p| p.failed_fraction)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_degrades_and_serializes() {
        let figs = run_resilience(9, &[0.0, 0.3], 60, &[1, 2]);
        assert_eq!(figs.curves.len(), 4);
        for c in &figs.curves {
            assert_eq!(c.points.len(), 2);
            let (clean, hurt) = (&c.points[0], &c.points[1]);
            assert_eq!(clean.failed_fraction, 0.0);
            assert!(
                hurt.failed_fraction > 0.1,
                "{}: 30% i.i.d. must kill APs",
                c.archetype
            );
            assert!(hurt.delivery_rate <= clean.delivery_rate + 0.02);
            assert!(
                hurt.delivery_rate >= hurt.delivery_rate_no_retry,
                "{}: the ladder can only help ({} vs {})",
                c.archetype,
                hurt.delivery_rate,
                hurt.delivery_rate_no_retry
            );
        }
        let rendered = to_json(&figs).render();
        assert!(rendered.contains("\"failed_fraction\""));
        assert!(rendered.contains("\"fault_fingerprint\""));
        let svg = curve_svg(&figs.curves[0]);
        assert!(svg.starts_with("<svg") && svg.contains("polyline"));
    }
}
