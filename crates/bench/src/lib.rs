//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §3 for the index and
//! EXPERIMENTS.md for recorded paper-vs-measured comparisons).
//!
//! Each figure is a pure function from a seed to a data structure, so
//! integration tests can assert on the numbers and the `figures`
//! binary only does formatting. The split per module:
//!
//! * [`survey_figs`] — Table 1, Figure 1a, Figure 1b, Figure 2 (§2).
//! * [`eval_figs`] — Figure 6 (reachability / deliverability /
//!   overhead per city) and the §4 header-size statistics.
//! * [`render`] — Figure 5 and Figure 7 (map renders, SVG + ASCII).
//! * [`scaling`] — the §5 control-overhead scaling comparison and the
//!   flooding-vs-CityMesh transmission comparison.
//! * [`ablation`] — sweeps over the design choices DESIGN.md calls
//!   out: weight exponent, conduit width, AP density, range, and
//!   route encoding.
//! * [`fleet_figs`] — heavy-traffic throughput (flows/sec) and the
//!   parallel-vs-serial determinism check (`BENCH_fleet.json`).
//! * [`planner_figs`] — planner fast-path throughput: live
//!   pre-fast-path baseline vs cold vs warm scratch-reuse planning,
//!   digest-checked bit-identical (`BENCH_planner.json`).
//! * [`resilience_figs`] — graceful degradation under injected AP
//!   failures: delivery rate vs failed fraction per archetype, retry
//!   ladder on vs off (`BENCH_resilience.json`).
//! * [`churn_figs`] — the dynamic-world sweep: delivery rate and
//!   replan cost vs churn level per archetype for static-plan vs
//!   retry-ladder vs reactive-repair senders, with incremental cache
//!   invalidation digest-checked against full flushes
//!   (`BENCH_churn.json`).
//! * [`telemetry_figs`] — the observability layer's zero-perturbation
//!   proof plus per-rung latency/overhead breakdowns and a sample
//!   failure postmortem (`BENCH_telemetry.json`).
//! * [`metro_figs`] — metro-scale hierarchical routing: flat vs
//!   district-overlay planner throughput and per-AP routing-state
//!   size over tiled 100k-building cities (`BENCH_metro.json`).
//! * [`streaming_figs`] — always-on engine latency under load: p50/p99
//!   sojourn, explicit shed counts, and the saturation knee vs offered
//!   load, flat downtown and hierarchical metro
//!   (`BENCH_streaming.json`).
//! * [`placement_figs`] — deployment optimization: random vs greedy vs
//!   annealed hardened-site placement per archetype, healthy and
//!   blackout (`BENCH_placement.json`).
//! * [`crypto_figs`] — secure message plane cost: plaintext vs
//!   encrypted-cold vs encrypted-warm fleet throughput with
//!   digest-checked outcome equality (`BENCH_crypto.json`).
//! * [`sweep`] — shared wall-time/peak-RSS instrumentation every sweep
//!   reports through.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod churn_figs;
pub mod crypto_figs;
pub mod eval_figs;
pub mod fleet_figs;
pub mod metro_figs;
pub mod placement_figs;
pub mod planner_figs;
pub mod render;
pub mod resilience_figs;
pub mod scaling;
pub mod streaming_figs;
pub mod survey_figs;
pub mod sweep;
pub mod telemetry_figs;
pub mod text;
