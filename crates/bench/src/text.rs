//! Plain-text table and CDF rendering for terminal output.

/// Renders a table: `header` row plus `rows`, columns right-aligned to
/// their widest cell (first column left-aligned).
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i == 0 {
                    format!("{c:<width$}", width = widths[i])
                } else {
                    format!("{c:>width$}", width = widths[i])
                }
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    let mut out = fmt_row(&head);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Renders an ASCII CDF: one row per plotted point, bar length
/// proportional to the cumulative fraction.
pub fn ascii_cdf(label: &str, points: &[(f64, f64)], width: usize) -> String {
    let mut out = format!("CDF: {label}\n");
    for (x, f) in points {
        let bar = "#".repeat((f * width as f64).round() as usize);
        out.push_str(&format!("{x:>10.1} | {bar:<width$} {:>5.1}%\n", f * 100.0));
    }
    out
}

/// Renders whisker bins (Figure 2 style): per bin, a `p10 p25 p50 p75
/// max` line.
pub fn whisker_table(bins: &[citymesh_measure::DistanceBin]) -> String {
    let rows: Vec<Vec<String>> = bins
        .iter()
        .map(|b| {
            vec![
                format!("{:.0}–{:.0} m", b.lo_m, b.hi_m),
                b.count.to_string(),
                format!("{:.0}", b.p10),
                format!("{:.0}", b.p25),
                format!("{:.0}", b.p50),
                format!("{:.0}", b.p75),
                format!("{:.0}", b.max),
            ]
        })
        .collect();
    table(
        &["distance bin", "pairs", "p10", "p25", "p50", "p75", "max"],
        &rows,
    )
}

/// A minimal JSON writer for exporting result tables.
///
/// Hand-rolled because `serde_json` is outside the approved offline
/// dependency set; results here are flat records of strings and
/// numbers, which this covers completely.
pub mod json {
    /// A JSON value limited to what result exports need.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// A string (escaped on write).
        Str(String),
        /// A finite number (emitted via `{:?}`; NaN/∞ become null).
        Num(f64),
        /// An integer (kept separate to avoid float formatting).
        Int(i64),
        /// A boolean.
        Bool(bool),
        /// Null.
        Null,
        /// An array of values.
        Arr(Vec<Value>),
        /// An object of ordered key/value pairs.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Serializes to compact JSON.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.write(&mut out);
            out
        }

        fn write(&self, out: &mut String) {
            match self {
                Value::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\r' => out.push_str("\\r"),
                            '\t' => out.push_str("\\t"),
                            c if (c as u32) < 0x20 => {
                                out.push_str(&format!("\\u{:04x}", c as u32));
                            }
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                Value::Num(n) if n.is_finite() => out.push_str(&format!("{n:?}")),
                Value::Num(_) => out.push_str("null"),
                Value::Int(i) => out.push_str(&i.to_string()),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Null => out.push_str("null"),
                Value::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.write(out);
                    }
                    out.push(']');
                }
                Value::Obj(fields) => {
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        Value::Str(k.clone()).write(out);
                        out.push(':');
                        v.write(out);
                    }
                    out.push('}');
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use json::Value;

    #[test]
    fn json_scalars_and_escaping() {
        assert_eq!(Value::Int(42).render(), "42");
        assert_eq!(Value::Num(0.5).render(), "0.5");
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Bool(true).render(), "true");
        assert_eq!(Value::Null.render(), "null");
        assert_eq!(
            Value::Str("a\"b\\c\nd".into()).render(),
            "\"a\\\"b\\\\c\\nd\""
        );
        assert_eq!(Value::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn json_composites() {
        let v = Value::Obj(vec![
            ("city".into(), Value::Str("boston".into())),
            ("reachability".into(), Value::Num(0.97)),
            ("islands".into(), Value::Int(3)),
            (
                "overheads".into(),
                Value::Arr(vec![Value::Num(4.5), Value::Null]),
            ),
        ]);
        assert_eq!(
            v.render(),
            r#"{"city":"boston","reachability":0.97,"islands":3,"overheads":[4.5,null]}"#
        );
    }

    #[test]
    fn table_alignment() {
        let out = table(
            &["city", "aps"],
            &[
                vec!["boston".into(), "26532".into()],
                vec!["dc".into(), "7".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("city"));
        assert!(lines[2].contains("26532"));
        // Right-aligned numeric column.
        assert!(lines[3].trim_end().ends_with('7'));
        // All rows the same width.
        assert_eq!(lines[2].trim_end().len(), lines[0].trim_end().len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        table(&["a", "b"], &[vec!["only one".into()]]);
    }

    #[test]
    fn ascii_cdf_has_bars() {
        let out = ascii_cdf("test", &[(1.0, 0.5), (2.0, 1.0)], 10);
        assert!(out.contains("#####"));
        assert!(out.contains("100.0%"));
    }

    #[test]
    fn whisker_rows_match_bins() {
        let bins = vec![citymesh_measure::DistanceBin {
            lo_m: 0.0,
            hi_m: 50.0,
            count: 3,
            p10: 1.0,
            p25: 2.0,
            p50: 3.0,
            p75: 4.0,
            max: 5.0,
        }];
        let out = whisker_table(&bins);
        assert!(out.contains("0–50 m"));
        assert!(out.contains('5'));
    }
}
