//! Metro-scale hierarchical routing figures (`figures -- metro`).
//!
//! Tiles the eight full-city archetypes into metropolises of growing
//! size ([`citymesh_map::generate_metro`]), builds the flat building
//! graph and the district-overlay hierarchy over each, then measures
//! raw routing-kernel throughput — flat ALT/A* ([`plan_route_into`])
//! vs the hierarchical planner ([`HierPlanner::plan_route_into`]) —
//! over the same deterministic pair sample at several worker counts.
//!
//! Two invariants are asserted, not just reported:
//!
//! * per `(size, mode)`, every worker count folds to the same route
//!   digest — routing is pure, so scheduling must be invisible;
//! * flat and hier agree on how many pairs are routable (the
//!   hierarchy's exactness is proven pathwise by the `hier_props`
//!   proptests; here we keep the cheap structural check).
//!
//! The data lands in `BENCH_metro.json` via [`to_json`]; the binary
//! also renders plans/sec and bytes/AP vs city size as SVG charts via
//! [`throughput_svg`] / [`memory_svg`].

use std::time::Instant;

use citymesh_core::{
    place_aps, plan_route_into, BuildingGraph, BuildingGraphParams, HierParams, HierPlanScratch,
    HierPlanner,
};
use citymesh_graph::PlannerScratch;
use citymesh_map::{generate_metro, MetroParams};
use citymesh_simcore::{substream_seed, SimRng};

use crate::sweep::SweepTimer;
use crate::text::json::Value;

/// Sub-stream domain for metro benchmark pair sampling.
const DOMAIN_METRO_PAIRS: u64 = 0x4D50;

/// Which routing kernel a [`MetroRun`] measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetroMode {
    /// The flat ALT/A* planner over the whole building graph.
    Flat,
    /// The district-overlay hierarchical planner.
    Hier,
}

impl MetroMode {
    /// Stable lowercase label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            MetroMode::Flat => "flat",
            MetroMode::Hier => "hier",
        }
    }
}

/// One measured `(mode, workers)` routing sweep at one city size.
pub struct MetroRun {
    /// Which kernel ran.
    pub mode: MetroMode,
    /// Worker threads used.
    pub workers: usize,
    /// Planned pairs per wall-clock second.
    pub plans_per_sec: f64,
    /// Pairs for which a route exists.
    pub routes_found: usize,
    /// Order-independent FNV fold of every planned route; equal
    /// across worker counts by construction of the kernel.
    pub digest: u64,
}

/// Everything measured at one metro size.
pub struct MetroSize {
    /// Tile grid (x, y) handed to [`MetroParams::with_tiles`].
    pub tiles: (usize, usize),
    /// Buildings in the generated metropolis.
    pub buildings: usize,
    /// APs a default-density placement puts on it.
    pub aps: usize,
    /// Districts the partition produced.
    pub districts: usize,
    /// Border nodes in the overlay graph.
    pub border_nodes: usize,
    /// Sampled src/dst pairs per run.
    pub pairs: usize,
    /// Map synthesis time, ms.
    pub gen_ms: f64,
    /// Building-graph (CSR + landmarks) build time, ms.
    pub graph_ms: f64,
    /// Hierarchy (partition + overlay) build time, ms.
    pub hier_build_ms: f64,
    /// Resident bytes of the flat routing state (CSR graph +
    /// centroids + landmark tables).
    pub graph_bytes: usize,
    /// Additional resident bytes of the hierarchy.
    pub hier_bytes: usize,
    /// Every `(mode, workers)` run, in sweep order.
    pub runs: Vec<MetroRun>,
    /// Wall time of this whole size point, ms.
    pub wall_ms: f64,
    /// Process peak RSS after this size point, KiB (from
    /// `/proc/self/status`; 0 where unavailable).
    pub peak_rss_kb: u64,
}

impl MetroSize {
    /// Flat routing state per AP, bytes.
    pub fn flat_bytes_per_ap(&self) -> f64 {
        self.graph_bytes as f64 / self.aps.max(1) as f64
    }

    /// Flat + hierarchy routing state per AP, bytes.
    pub fn hier_bytes_per_ap(&self) -> f64 {
        (self.graph_bytes + self.hier_bytes) as f64 / self.aps.max(1) as f64
    }

    /// plans/sec of `mode` at the first swept worker count.
    pub fn rate(&self, mode: MetroMode) -> f64 {
        self.runs
            .iter()
            .find(|r| r.mode == mode)
            .map(|r| r.plans_per_sec)
            .unwrap_or(0.0)
    }
}

/// All size points of one metro sweep.
pub struct MetroFigures {
    /// Size points in sweep order (ascending building count).
    pub sizes: Vec<MetroSize>,
}

/// FNV-1a over one pair's outcome, keyed by the pair index so the
/// XOR fold cannot cancel identical routes from different pairs.
fn pair_fingerprint(index: u64, route: &[u32]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(index);
    eat(route.len() as u64);
    for &v in route {
        eat(u64::from(v));
    }
    h
}

/// Draws `pairs` deterministic src/dst samples over `n` buildings.
fn sample_pairs(seed: u64, ordinal: u64, n: usize, pairs: usize) -> Vec<(u32, u32)> {
    let mut rng = SimRng::new(substream_seed(seed, DOMAIN_METRO_PAIRS, ordinal));
    let mut out = Vec::with_capacity(pairs);
    while out.len() < pairs {
        let src = rng.below(n as u64) as u32;
        let dst = rng.below(n as u64) as u32;
        if src != dst {
            out.push((src, dst));
        }
    }
    out
}

/// Plans every pair once with the given kernel across `workers`
/// threads and returns `(plans_per_sec, routes_found, digest)`. The
/// digest XOR-folds per-pair fingerprints, so it cannot depend on
/// which worker planned which pair.
fn run_mode(
    bg: &BuildingGraph,
    hier: Option<&HierPlanner>,
    pairs: &[(u32, u32)],
    workers: usize,
) -> (f64, usize, u64) {
    let workers = workers.max(1).min(pairs.len().max(1));
    let chunk = pairs.len().div_ceil(workers);
    let started = Instant::now();
    let mut found = 0usize;
    let mut digest = 0u64;
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                s.spawn(move |_| {
                    let base = (ci * chunk) as u64;
                    let mut flat_scratch = PlannerScratch::new();
                    let mut hier_scratch = HierPlanScratch::new();
                    let mut route: Vec<u32> = Vec::new();
                    let mut found = 0usize;
                    let mut digest = 0u64;
                    for (i, &(src, dst)) in slice.iter().enumerate() {
                        let ok = match hier {
                            Some(h) => h
                                .plan_route_into(bg, src, dst, &mut hier_scratch, &mut route)
                                .is_ok(),
                            None => {
                                plan_route_into(bg, src, dst, &mut flat_scratch, &mut route).is_ok()
                            }
                        };
                        if ok {
                            found += 1;
                            digest ^= pair_fingerprint(base + i as u64, &route);
                        } else {
                            digest ^= pair_fingerprint(base + i as u64, &[]);
                        }
                    }
                    (found, digest)
                })
            })
            .collect();
        for h in handles {
            let (f, d) = h.join().expect("metro routing worker panicked");
            found += f;
            digest ^= d;
        }
    })
    .expect("metro routing scope panicked");
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    (pairs.len() as f64 / secs, found, digest)
}

/// Runs the sweep: for each `(tiles_x, tiles_y, pairs)` spec, builds
/// the metro world once and measures both kernels at every worker
/// count.
///
/// # Panics
/// Panics when any two worker counts at the same `(size, mode)` point
/// disagree on the digest, or when flat and hier disagree on how many
/// of the sampled pairs are routable.
pub fn run_metro_figs(
    seed: u64,
    specs: &[(usize, usize, usize)],
    worker_counts: &[usize],
) -> MetroFigures {
    let mut sizes = Vec::new();
    for (ordinal, &(tx, ty, pairs)) in specs.iter().enumerate() {
        let point = SweepTimer::start();
        let params = MetroParams::with_tiles(tx, ty);
        let t = Instant::now();
        let map = generate_metro(&params, seed);
        let gen_ms = t.elapsed().as_secs_f64() * 1e3;
        let buildings = map.len();

        let t = Instant::now();
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        let graph_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let planner = HierPlanner::build(&bg, &HierParams::default());
        let hier_build_ms = t.elapsed().as_secs_f64() * 1e3;

        // AP count from placement alone: the full AP mesh graph is
        // deliberately NOT built here (at metro scale its adjacency
        // dwarfs the routing state this sweep is sizing).
        let mut rng = SimRng::new(substream_seed(
            seed,
            DOMAIN_METRO_PAIRS,
            0x1000 + ordinal as u64,
        ));
        let aps = place_aps(&map, 200.0, &mut rng).len();

        let pair_sample = sample_pairs(seed, ordinal as u64, buildings, pairs);
        // Unmeasured warm pass: settles allocator state (and the
        // scratch slabs of this thread) before any timed run, same
        // rationale as the fleet sweep's warm-up.
        let warm = &pair_sample[..pair_sample.len().min(16)];
        run_mode(&bg, None, warm, 1);
        run_mode(&bg, Some(&planner), warm, 1);

        let mut runs = Vec::new();
        for mode in [MetroMode::Flat, MetroMode::Hier] {
            let hier = (mode == MetroMode::Hier).then_some(&planner);
            let mut digests = Vec::new();
            let mut founds = Vec::new();
            for &w in worker_counts {
                let (rate, found, digest) = run_mode(&bg, hier, &pair_sample, w);
                digests.push(digest);
                founds.push(found);
                runs.push(MetroRun {
                    mode,
                    workers: w,
                    plans_per_sec: rate,
                    routes_found: found,
                    digest,
                });
            }
            assert!(
                digests.windows(2).all(|d| d[0] == d[1]),
                "{}x{ty} {}: digests differ across workers: {digests:x?}",
                tx,
                mode.label()
            );
            assert!(
                founds.windows(2).all(|f| f[0] == f[1]),
                "{tx}x{ty} {}: routable counts differ across workers",
                mode.label()
            );
        }
        let flat_found = runs
            .iter()
            .find(|r| r.mode == MetroMode::Flat)
            .map(|r| r.routes_found);
        let hier_found = runs
            .iter()
            .find(|r| r.mode == MetroMode::Hier)
            .map(|r| r.routes_found);
        assert_eq!(
            flat_found, hier_found,
            "{tx}x{ty}: flat and hier disagree on routability"
        );

        let (wall_ms, peak_rss_kb) = point.point_stats();
        sizes.push(MetroSize {
            tiles: (tx, ty),
            buildings,
            aps,
            districts: planner.hierarchy().partition().num_districts(),
            border_nodes: planner.hierarchy().num_border_nodes(),
            pairs,
            gen_ms,
            graph_ms,
            hier_build_ms,
            graph_bytes: bg.memory_bytes(),
            hier_bytes: planner.memory_bytes(),
            runs,
            wall_ms,
            peak_rss_kb,
        });
    }
    MetroFigures { sizes }
}

/// Serializes the sweep for `BENCH_metro.json`.
pub fn to_json(figs: &MetroFigures) -> Value {
    Value::Obj(vec![(
        "sizes".into(),
        Value::Arr(
            figs.sizes
                .iter()
                .map(|s| {
                    Value::Obj(vec![
                        (
                            "tiles".into(),
                            Value::Str(format!("{}x{}", s.tiles.0, s.tiles.1)),
                        ),
                        ("buildings".into(), Value::Int(s.buildings as i64)),
                        ("aps".into(), Value::Int(s.aps as i64)),
                        ("districts".into(), Value::Int(s.districts as i64)),
                        ("border_nodes".into(), Value::Int(s.border_nodes as i64)),
                        ("pairs".into(), Value::Int(s.pairs as i64)),
                        ("gen_ms".into(), Value::Num(s.gen_ms)),
                        ("graph_ms".into(), Value::Num(s.graph_ms)),
                        ("hier_build_ms".into(), Value::Num(s.hier_build_ms)),
                        ("graph_bytes".into(), Value::Int(s.graph_bytes as i64)),
                        ("hier_bytes".into(), Value::Int(s.hier_bytes as i64)),
                        (
                            "flat_bytes_per_ap".into(),
                            Value::Num(s.flat_bytes_per_ap()),
                        ),
                        (
                            "hier_bytes_per_ap".into(),
                            Value::Num(s.hier_bytes_per_ap()),
                        ),
                        ("wall_ms".into(), Value::Num(s.wall_ms)),
                        ("peak_rss_kb".into(), Value::Int(s.peak_rss_kb as i64)),
                        (
                            "runs".into(),
                            Value::Arr(
                                s.runs
                                    .iter()
                                    .map(|r| {
                                        Value::Obj(vec![
                                            ("mode".into(), Value::Str(r.mode.label().into())),
                                            ("workers".into(), Value::Int(r.workers as i64)),
                                            ("plans_per_sec".into(), Value::Num(r.plans_per_sec)),
                                            (
                                                "routes_found".into(),
                                                Value::Int(r.routes_found as i64),
                                            ),
                                            (
                                                "digest".into(),
                                                Value::Str(format!("{:016x}", r.digest)),
                                            ),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Shared scaffold for the two log-x charts.
fn chart_svg(
    title: &str,
    y_label: &str,
    figs: &MetroFigures,
    flat_y: &dyn Fn(&MetroSize) -> f64,
    hier_y: &dyn Fn(&MetroSize) -> f64,
) -> String {
    const W: f64 = 420.0;
    const H: f64 = 280.0;
    const M: f64 = 48.0;
    let xs: Vec<f64> = figs
        .sizes
        .iter()
        .map(|s| (s.buildings.max(1) as f64).log10())
        .collect();
    let ys: Vec<f64> = figs
        .sizes
        .iter()
        .flat_map(|s| [flat_y(s), hier_y(s)])
        .collect();
    let (x0, x1) = (
        xs.iter().copied().fold(f64::MAX, f64::min),
        xs.iter().copied().fold(0.0, f64::max),
    );
    let y1 = ys.iter().copied().fold(0.0, f64::max).max(1.0);
    let x = |b: f64| M + (b - x0) / (x1 - x0).max(1e-9) * (W - 2.0 * M);
    let y = |v: f64| H - M - (v / y1).clamp(0.0, 1.0) * (H - 2.0 * M);
    let path = |f: &dyn Fn(&MetroSize) -> f64| {
        figs.sizes
            .iter()
            .zip(&xs)
            .map(|(s, &lx)| format!("{:.1},{:.1}", x(lx), y(f(s))))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let mut s = String::new();
    s.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\" font-size=\"11\">\n"
    ));
    s.push_str(&format!(
        "<text x=\"{}\" y=\"16\" text-anchor=\"middle\" font-size=\"13\">{title}</text>\n",
        W / 2.0
    ));
    s.push_str(&format!(
        "<line x1=\"{M}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" stroke=\"#444\"/>\n\
         <line x1=\"{M}\" y1=\"{M}\" x2=\"{M}\" y2=\"{0}\" stroke=\"#444\"/>\n",
        H - M,
        W - M
    ));
    for size in &figs.sizes {
        let lx = (size.buildings.max(1) as f64).log10();
        s.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{}\" text-anchor=\"middle\">{}k</text>\n",
            x(lx),
            H - M + 14.0,
            size.buildings / 1000
        ));
    }
    s.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{y1:.0}</text>\n",
        M - 4.0,
        y(y1) + 4.0
    ));
    s.push_str(&format!(
        "<polyline points=\"{}\" fill=\"none\" stroke=\"#d62728\" stroke-width=\"2\"/>\n",
        path(flat_y)
    ));
    s.push_str(&format!(
        "<polyline points=\"{}\" fill=\"none\" stroke=\"#1f77b4\" stroke-width=\"2\"/>\n",
        path(hier_y)
    ));
    s.push_str(&format!(
        "<text x=\"{0}\" y=\"{1}\" fill=\"#d62728\">flat</text>\n\
         <text x=\"{0}\" y=\"{2}\" fill=\"#1f77b4\">hier</text>\n",
        W - M - 50.0,
        M + 14.0,
        M + 28.0
    ));
    s.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">buildings (log scale)</text>\n",
        W / 2.0,
        H - 8.0
    ));
    s.push_str(&format!(
        "<text x=\"14\" y=\"{}\" transform=\"rotate(-90 14 {0})\" text-anchor=\"middle\">{y_label}</text>\n",
        H / 2.0
    ));
    s.push_str("</svg>\n");
    s
}

/// Plans/sec vs city size, flat vs hier (single-worker rates).
pub fn throughput_svg(figs: &MetroFigures) -> String {
    chart_svg(
        "metro routing throughput",
        "plans / sec",
        figs,
        &|s| s.rate(MetroMode::Flat),
        &|s| s.rate(MetroMode::Hier),
    )
}

/// Routing-state bytes per AP vs city size, flat vs flat+hier.
pub fn memory_svg(figs: &MetroFigures) -> String {
    chart_svg(
        "routing state per AP",
        "bytes / AP",
        figs,
        &|s| s.flat_bytes_per_ap(),
        &|s| s.hier_bytes_per_ap(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_runs_and_serializes() {
        let figs = run_metro_figs(5, &[(1, 1, 24)], &[1, 2]);
        assert_eq!(figs.sizes.len(), 1);
        let s = &figs.sizes[0];
        assert!(s.buildings > 200, "one tile must hold a real city");
        assert!(s.aps > 0 && s.districts > 1 && s.border_nodes > 0);
        assert_eq!(s.runs.len(), 4);
        let flat = s.runs.iter().find(|r| r.mode == MetroMode::Flat).unwrap();
        let hier = s.runs.iter().find(|r| r.mode == MetroMode::Hier).unwrap();
        assert!(flat.routes_found > 0);
        assert_eq!(flat.routes_found, hier.routes_found);
        let rendered = to_json(&figs).render();
        assert!(rendered.contains("\"plans_per_sec\""));
        assert!(rendered.contains("\"hier_bytes_per_ap\""));
        let svg = throughput_svg(&figs);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>\n"));
        assert!(memory_svg(&figs).contains("bytes / AP"));
    }

    #[test]
    fn pair_fingerprint_is_index_keyed() {
        let r = [1u32, 2, 3];
        assert_ne!(pair_fingerprint(0, &r), pair_fingerprint(1, &r));
        assert_ne!(pair_fingerprint(0, &r), pair_fingerprint(0, &[1, 2]));
    }
}
