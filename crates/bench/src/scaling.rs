//! §5 scaling comparison: control overhead of classic MANET protocols
//! versus CityMesh's zero, and data-plane cost of flooding versus
//! conduit-scoped rebroadcast.

use citymesh_baselines::{
    aodv_discovery_cost, dsdv_update_cost, flood, gabriel_adjacency, gpsr_route_on, greedy_route,
    olsr_update_cost, GreedyPolicy, ManetScale,
};
use citymesh_core::{CityExperiment, ExperimentConfig};
use citymesh_map::CityArchetype;
use citymesh_simcore::{split_seed, SimRng};

/// One row of the control-overhead scaling table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingRow {
    /// Network size (nodes).
    pub nodes: u64,
    /// DSDV table-entry transmissions per update interval.
    pub dsdv: u64,
    /// OLSR TC transmissions per interval.
    pub olsr: u64,
    /// AODV transmissions per route discovery.
    pub aodv: u64,
    /// CityMesh control transmissions (always zero).
    pub citymesh: u64,
}

/// Control overhead across N = 10²…10⁶ at the paper's mesh density.
pub fn control_scaling() -> Vec<ScalingRow> {
    [100u64, 1_000, 10_000, 100_000, 1_000_000]
        .into_iter()
        .map(|nodes| {
            let scale = ManetScale::uniform(nodes, 13.0);
            ScalingRow {
                nodes,
                dsdv: dsdv_update_cost(scale),
                olsr: olsr_update_cost(scale),
                aodv: aodv_discovery_cost(scale),
                citymesh: 0,
            }
        })
        .collect()
}

/// Data-plane comparison on one concrete city: per routing scheme, the
/// mean broadcasts per delivered message and the delivery rate.
#[derive(Clone, Debug)]
pub struct DataPlaneRow {
    /// Scheme label.
    pub scheme: String,
    /// Delivered fraction of attempted pairs.
    pub delivery_rate: f64,
    /// Mean transmissions per *delivered* message.
    pub mean_tx: f64,
}

/// Runs CityMesh, flooding, and greedy routing over the same pairs of
/// one city and reports their delivery/transmission trade-offs.
pub fn data_plane_comparison(seed: u64, pairs: usize) -> Vec<DataPlaneRow> {
    let map = CityArchetype::Cambridge.generate(seed);
    let config = ExperimentConfig {
        seed,
        reachability_pairs: pairs * 4,
        delivery_pairs: pairs,
        ..ExperimentConfig::default()
    };
    let exp = CityExperiment::prepare(map, config);
    let mut pair_rng = SimRng::new(split_seed(seed, 0x9A195));
    let mut sim_rng = SimRng::new(split_seed(seed, 0xDE11FE7));
    let sampled = exp.sample_pairs(pairs * 4, &mut pair_rng);
    let reachable: Vec<(u32, u32)> = sampled
        .into_iter()
        .filter(|(s, d)| exp.reachable(*s, *d))
        .take(pairs)
        .collect();

    let mut rows = Vec::new();

    // CityMesh.
    let mut delivered = 0usize;
    let mut tx = 0u64;
    for (i, (src, dst)) in reachable.iter().enumerate() {
        let o = exp.run_pair(*src, *dst, split_seed(seed, i as u64), &mut sim_rng);
        if o.delivered {
            delivered += 1;
            tx += o.broadcasts;
        }
    }
    rows.push(DataPlaneRow {
        scheme: "citymesh".into(),
        delivery_rate: delivered as f64 / reachable.len().max(1) as f64,
        mean_tx: if delivered > 0 {
            tx as f64 / delivered as f64
        } else {
            0.0
        },
    });

    // Flooding.
    let mut delivered = 0usize;
    let mut tx = 0u64;
    for (src, dst) in &reachable {
        let Some(src_ap) = citymesh_core::postbox_ap(exp.aps(), exp.map(), *src) else {
            continue;
        };
        let out = flood(exp.ap_graph(), src_ap, *dst, None);
        if out.delivered {
            delivered += 1;
            tx += out.broadcasts;
        }
    }
    rows.push(DataPlaneRow {
        scheme: "flooding".into(),
        delivery_rate: delivered as f64 / reachable.len().max(1) as f64,
        mean_tx: if delivered > 0 {
            tx as f64 / delivered as f64
        } else {
            0.0
        },
    });

    // Full GPSR (greedy + perimeter recovery on the Gabriel graph).
    let planar = gabriel_adjacency(exp.ap_graph());
    let mut delivered = 0usize;
    let mut tx = 0u64;
    for (src, dst) in &reachable {
        let Some(src_ap) = citymesh_core::postbox_ap(exp.aps(), exp.map(), *src) else {
            continue;
        };
        let out = gpsr_route_on(exp.ap_graph(), &planar, src_ap, *dst);
        if out.delivered {
            delivered += 1;
            tx += out.transmissions;
        }
    }
    rows.push(DataPlaneRow {
        scheme: "gpsr".into(),
        delivery_rate: delivered as f64 / reachable.len().max(1) as f64,
        mean_tx: if delivered > 0 {
            tx as f64 / delivered as f64
        } else {
            0.0
        },
    });

    // Greedy geographic (pure, then with backtracking).
    for (label, policy) in [
        ("greedy", GreedyPolicy::Pure),
        ("greedy+backtrack", GreedyPolicy::Backtrack),
    ] {
        let mut delivered = 0usize;
        let mut tx = 0u64;
        for (src, dst) in &reachable {
            let Some(src_ap) = citymesh_core::postbox_ap(exp.aps(), exp.map(), *src) else {
                continue;
            };
            let out = greedy_route(exp.ap_graph(), src_ap, *dst, policy);
            if out.delivered {
                delivered += 1;
                tx += out.transmissions;
            }
        }
        rows.push(DataPlaneRow {
            scheme: label.into(),
            delivery_rate: delivered as f64 / reachable.len().max(1) as f64,
            mean_tx: if delivered > 0 {
                tx as f64 / delivered as f64
            } else {
                0.0
            },
        });
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_scaling_shapes() {
        let rows = control_scaling();
        assert_eq!(rows.len(), 5);
        for w in rows.windows(2) {
            // DSDV grows ~quadratically: 10× nodes ⇒ 100× cost.
            assert_eq!(w[1].dsdv / w[0].dsdv, 100);
            // AODV grows ~linearly.
            let aodv_ratio = w[1].aodv as f64 / w[0].aodv as f64;
            assert!((5.0..20.0).contains(&aodv_ratio), "aodv ratio {aodv_ratio}");
            // CityMesh stays at zero.
            assert_eq!(w[1].citymesh, 0);
        }
        // At a million nodes DSDV ships 10^12 entries per interval.
        assert_eq!(rows[4].dsdv, 1_000_000_000_000);
    }

    #[test]
    fn data_plane_ordering() {
        let rows = data_plane_comparison(5, 12);
        let by = |name: &str| rows.iter().find(|r| r.scheme == name).unwrap();
        let citymesh = by("citymesh");
        let flooding = by("flooding");
        let greedy = by("greedy");
        let rescue = by("greedy+backtrack");

        // Flooding delivers everything reachable.
        assert!((flooding.delivery_rate - 1.0).abs() < 1e-9);
        // CityMesh transmits far less than flooding.
        assert!(
            citymesh.mean_tx < flooding.mean_tx,
            "citymesh {} vs flooding {}",
            citymesh.mean_tx,
            flooding.mean_tx
        );
        // Pure greedy drops some packets at dead ends; backtracking
        // recovers them.
        assert!(greedy.delivery_rate <= rescue.delivery_rate);
        // Greedy (when it works) is cheap — it is unicast.
        assert!(greedy.mean_tx < citymesh.mean_tx);
    }
}
