//! Shared sweep instrumentation: wall time and peak RSS, reported the
//! same way by every sweep.
//!
//! Each heavy sweep used to carry its own `Instant::now()` bookkeeping
//! and a copy of the `/proc/self/status` peak-RSS probe. This module
//! is the single implementation: [`SweepTimer`] wraps the clock and
//! the probe, prints the standard `[sweep …]` footer, and hands size
//! points their `(wall_ms, peak_rss_kb)` pair.

use std::time::Instant;

/// Process peak resident set size in KiB, read from
/// `/proc/self/status` (`VmHWM`). Returns `None` off Linux or when
/// the file is unreadable — callers report 0 rather than failing a
/// benchmark over an observability nicety.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// A running wall clock over one sweep (or one point within it).
#[derive(Clone, Copy, Debug)]
pub struct SweepTimer {
    started: Instant,
}

impl SweepTimer {
    /// Starts the clock.
    pub fn start() -> Self {
        SweepTimer {
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since [`SweepTimer::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Milliseconds elapsed since [`SweepTimer::start`].
    pub fn wall_ms(&self) -> f64 {
        self.elapsed_secs() * 1e3
    }

    /// The `(wall_ms, peak_rss_kb)` pair a sweep point records (RSS 0
    /// where the probe is unavailable).
    pub fn point_stats(&self) -> (f64, u64) {
        (self.wall_ms(), peak_rss_kb().unwrap_or(0))
    }

    /// Prints the standard sweep footer — wall time plus the process
    /// peak RSS so far — so regressions in either are visible from the
    /// log alone.
    pub fn finish(&self, name: &str) {
        let rss = peak_rss_kb()
            .map(|kb| format!("{:.0} MiB", kb as f64 / 1024.0))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "[sweep {name}: {:.1} s wall, peak RSS {rss}]\n",
            self.elapsed_secs()
        );
    }
}
