//! Ablation sweeps over the design choices DESIGN.md §4 calls out:
//! weight exponent, conduit width, AP density, transmission range, and
//! route encoding.

use citymesh_core::{
    compress_route, plan_route, BuildingGraph, BuildingGraphParams, CityExperiment,
    ExperimentConfig, RebroadcastScope,
};
use citymesh_map::{CityArchetype, CityMap};
use citymesh_net::{CityMeshHeader, RouteEncoding};
use citymesh_simcore::{split_seed, SimRng};

/// One sweep point: the knob value plus the resulting metrics.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The knob value (meaning depends on the sweep).
    pub knob: f64,
    /// Deliverability among simulated reachable pairs.
    pub deliverability: f64,
    /// Median overhead among delivered pairs.
    pub median_overhead: Option<f64>,
    /// Median compressed-route bits.
    pub median_route_bits: Option<usize>,
}

fn run_point(map: &CityMap, config: ExperimentConfig, knob: f64) -> SweepPoint {
    let result = CityExperiment::prepare(map.clone(), config).run();
    SweepPoint {
        knob,
        deliverability: result.deliverability,
        median_overhead: result.median_overhead,
        median_route_bits: result.median_route_bits,
    }
}

fn base_config(seed: u64, pairs: usize) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        reachability_pairs: pairs * 5,
        delivery_pairs: pairs,
        ..ExperimentConfig::default()
    }
}

/// Sweep the building-graph weight exponent (paper: cubed).
pub fn sweep_weight_exponent(seed: u64, pairs: usize) -> Vec<SweepPoint> {
    let map = CityArchetype::Cambridge.generate(seed);
    [1.0, 2.0, 3.0, 4.0]
        .into_iter()
        .map(|exp| {
            let config = ExperimentConfig {
                graph: BuildingGraphParams {
                    weight_exponent: exp,
                    ..Default::default()
                },
                ..base_config(seed, pairs)
            };
            run_point(&map, config, exp)
        })
        .collect()
}

/// Sweep the conduit width `W` (paper: 50 m ≈ Wi-Fi range).
pub fn sweep_conduit_width(seed: u64, pairs: usize) -> Vec<SweepPoint> {
    let map = CityArchetype::Cambridge.generate(seed);
    [25.0, 50.0, 75.0, 100.0]
        .into_iter()
        .map(|w| {
            let config = ExperimentConfig {
                conduit_width_m: w,
                ..base_config(seed, pairs)
            };
            run_point(&map, config, w)
        })
        .collect()
}

/// Sweep AP density (paper: 1 AP / 200 m²).
pub fn sweep_ap_density(seed: u64, pairs: usize) -> Vec<SweepPoint> {
    let map = CityArchetype::Cambridge.generate(seed);
    [100.0, 200.0, 400.0, 800.0]
        .into_iter()
        .map(|m2| {
            let config = ExperimentConfig {
                m2_per_ap: m2,
                ..base_config(seed, pairs)
            };
            run_point(&map, config, m2)
        })
        .collect()
}

/// Sweep the transmission range (paper: 50 m), keeping `W = range`.
pub fn sweep_range(seed: u64, pairs: usize) -> Vec<SweepPoint> {
    let map = CityArchetype::Cambridge.generate(seed);
    [30.0, 50.0, 80.0]
        .into_iter()
        .map(|range| {
            let config = ExperimentConfig {
                range_m: range,
                conduit_width_m: range,
                graph: BuildingGraphParams::for_range(range),
                ..base_config(seed, pairs)
            };
            run_point(&map, config, range)
        })
        .collect()
}

/// One row of the rebroadcast-scope ablation.
#[derive(Clone, Debug)]
pub struct ScopeRow {
    /// The policy measured.
    pub scope: RebroadcastScope,
    /// Delivered fraction over the shared pair set.
    pub deliverability: f64,
    /// Total broadcasts summed over the shared pair set (comparable
    /// across scopes because the pairs are identical).
    pub total_broadcasts: u64,
}

/// Sweep per-frame reception loss: the conduit's broadcast redundancy
/// is what absorbs a lossy medium; this measures how much.
pub fn sweep_reception_loss(seed: u64, pairs: usize) -> Vec<SweepPoint> {
    let map = CityArchetype::Cambridge.generate(seed);
    [0.0, 0.1, 0.3, 0.5]
        .into_iter()
        .map(|loss| {
            let config = ExperimentConfig {
                reception_loss: loss,
                ..base_config(seed, pairs)
            };
            run_point(&map, config, loss)
        })
        .collect()
}

/// Rebroadcast-scope ablation: building-level (the paper's overhead
/// accounting) versus AP-position (its proposed reduction). Both
/// policies run over the *same* reachable pairs on the same placement,
/// so broadcast totals compare directly.
pub fn sweep_scope(seed: u64, pairs: usize) -> Vec<ScopeRow> {
    let map = CityArchetype::Cambridge.generate(seed);
    [RebroadcastScope::Building, RebroadcastScope::ApPosition]
        .into_iter()
        .map(|scope| {
            let config = ExperimentConfig {
                scope,
                ..base_config(seed, pairs)
            };
            let exp = CityExperiment::prepare(map.clone(), config);
            let mut pair_rng = SimRng::new(split_seed(seed, 0x5C09E));
            let mut sim_rng = SimRng::new(split_seed(seed, 0x5C09F));
            let sampled = exp.sample_pairs(pairs * 5, &mut pair_rng);
            let reachable: Vec<(u32, u32)> = sampled
                .into_iter()
                .filter(|(s, d)| exp.reachable(*s, *d))
                .take(pairs)
                .collect();
            let mut delivered = 0usize;
            let mut total_broadcasts = 0u64;
            for (i, (src, dst)) in reachable.iter().enumerate() {
                let o = exp.run_pair(*src, *dst, i as u64 + 1, &mut sim_rng);
                if o.delivered {
                    delivered += 1;
                }
                total_broadcasts += o.broadcasts;
            }
            ScopeRow {
                scope,
                deliverability: delivered as f64 / reachable.len().max(1) as f64,
                total_broadcasts,
            }
        })
        .collect()
}

/// Route-encoding comparison on real routes: absolute bit-packing
/// versus delta varbits, plus the uncompressed-route baseline
/// ("waypoint compression off").
#[derive(Clone, Debug)]
pub struct EncodingStats {
    /// Median bits for the absolute fixed-width encoding.
    pub absolute_median_bits: usize,
    /// Median bits for the delta varbit encoding.
    pub delta_median_bits: usize,
    /// Median bits for shipping the *full uncompressed* building route
    /// (absolute encoding, no waypoint compression).
    pub uncompressed_median_bits: usize,
    /// Routes measured.
    pub routes: usize,
}

/// Measures encoding sizes over random routes in one city.
pub fn encoding_comparison(seed: u64, routes: usize) -> EncodingStats {
    let map = CityArchetype::Cambridge.generate(seed);
    let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
    let mut rng = SimRng::new(split_seed(seed, 0xE2C));
    let n = map.len() as u64;

    let mut absolute = Vec::new();
    let mut delta = Vec::new();
    let mut uncompressed = Vec::new();
    let mut guard = 0;
    while absolute.len() < routes && guard < routes * 30 {
        guard += 1;
        let src = rng.below(n) as u32;
        let dst = rng.below(n) as u32;
        if src == dst {
            continue;
        }
        let Ok(route) = plan_route(&bg, src, dst) else {
            continue;
        };
        if route.len() < 3 {
            continue;
        }
        let compressed = compress_route(&bg, &route, 50.0).expect("valid width and route");

        let header = CityMeshHeader::new(1, 50.0, compressed.waypoints.clone());
        absolute.push(header.route_bits());

        let mut d = header.clone();
        d.encoding = RouteEncoding::Delta;
        delta.push(d.route_bits());

        // "Compression off": ship every building on the route. Routes
        // longer than the header's 255-waypoint cap are truncated to
        // keep the measurement defined.
        let full: Vec<u32> = route.iter().copied().take(255).collect();
        let raw = CityMeshHeader::new(1, 50.0, full);
        uncompressed.push(raw.route_bits());
    }

    let med = |v: &mut Vec<usize>| -> usize {
        v.sort_unstable();
        if v.is_empty() {
            0
        } else {
            v[(v.len() - 1) / 2]
        }
    };
    EncodingStats {
        absolute_median_bits: med(&mut absolute),
        delta_median_bits: med(&mut delta),
        uncompressed_median_bits: med(&mut uncompressed),
        routes: absolute.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_conduits_do_not_reduce_deliverability() {
        let points = sweep_conduit_width(1, 8);
        assert_eq!(points.len(), 4);
        let narrow = points[0].deliverability;
        let wide = points[3].deliverability;
        assert!(
            wide >= narrow - 0.15,
            "wider conduits should not hurt delivery: {narrow} → {wide}"
        );
    }

    #[test]
    fn sparser_aps_reduce_deliverability() {
        let points = sweep_ap_density(2, 8);
        let dense = points[0].deliverability;
        let sparse = points[3].deliverability;
        assert!(
            dense >= sparse,
            "1/100 m² ({dense}) should beat 1/800 m² ({sparse})"
        );
    }

    #[test]
    fn ap_scope_cuts_broadcasts() {
        let rows = sweep_scope(3, 8);
        let building = rows
            .iter()
            .find(|r| r.scope == RebroadcastScope::Building)
            .unwrap();
        let position = rows
            .iter()
            .find(|r| r.scope == RebroadcastScope::ApPosition)
            .unwrap();
        // Same pairs, same placement: AP-position relays a subset of
        // what Building relays.
        assert!(
            position.total_broadcasts <= building.total_broadcasts,
            "AP-position scope must not relay more: {} vs {}",
            position.total_broadcasts,
            building.total_broadcasts
        );
        // The narrower relay set cannot deliver more.
        assert!(position.deliverability <= building.deliverability + 1e-9);
    }

    #[test]
    fn compression_beats_uncompressed() {
        let stats = encoding_comparison(4, 25);
        assert!(stats.routes >= 20);
        assert!(
            stats.absolute_median_bits < stats.uncompressed_median_bits,
            "waypoint compression must shrink the header: {} vs {}",
            stats.absolute_median_bits,
            stats.uncompressed_median_bits
        );
        assert!(stats.delta_median_bits > 0);
    }

    #[test]
    fn loss_sweep_degrades_monotonically_ish() {
        let points = sweep_reception_loss(7, 8);
        assert_eq!(points.len(), 4);
        let clean = points[0].deliverability;
        let harsh = points[3].deliverability;
        assert!(
            clean >= harsh,
            "0% loss ({clean}) must beat 50% loss ({harsh})"
        );
        // Moderate loss is largely absorbed by relay redundancy.
        assert!(
            points[1].deliverability >= clean - 0.3,
            "10% loss should be mostly absorbed: {} vs {}",
            points[1].deliverability,
            clean
        );
    }

    #[test]
    fn exponent_sweep_runs() {
        let points = sweep_weight_exponent(5, 6);
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.deliverability));
        }
    }

    #[test]
    fn range_sweep_monotone_deliverability() {
        let points = sweep_range(6, 6);
        assert!(
            points[0].deliverability <= points[2].deliverability + 0.2,
            "80 m range should be at least roughly as good as 30 m"
        );
    }
}
