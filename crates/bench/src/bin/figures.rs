//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release --bin figures -- all          # everything
//! cargo run --release --bin figures -- table1       # one artifact
//! cargo run --release --bin figures -- fig6 --fast  # reduced pair counts
//! ```
//!
//! Artifacts: `table1 fig1a fig1b fig2 fig5 fig6 fig7 headers scaling
//! ablations fleet planner resilience churn telemetry metro
//! streaming placement crypto`. Text goes to stdout; SVGs are written to `figures/`;
//! the fleet sweep writes `BENCH_fleet.json`, the planner sweep
//! `BENCH_planner.json`, the resilience sweep `BENCH_resilience.json`,
//! the churn sweep `BENCH_churn.json`, the telemetry sweep
//! `BENCH_telemetry.json` plus one captured flow trace in
//! `figures/postmortem_sample.json`, the metro sweep
//! `BENCH_metro.json`, the streaming sweep `BENCH_streaming.json`,
//! and the placement sweep `BENCH_placement.json`.
//!
//! The `fleet` artifact takes value flags: `--flows N` runs one flow
//! count instead of the default 1k/10k/100k sweep, `--workers N` one
//! worker count instead of 1/4/8, and `--cold` skips the unmeasured
//! warm-up pass so the recorded throughput includes scratch/cache
//! warm-up costs (the default, warmed numbers measure steady state).
//! The `metro` artifact takes `--smoke`: a CI-sized sweep that also
//! *asserts* the hierarchical planner is at least as fast as the flat
//! one at the largest smoke size. The `streaming` artifact takes
//! `--smoke` too: a CI-sized load sweep that *asserts* the engine
//! sheds explicitly (and keeps accounting balanced) past 2x the
//! estimated capacity on both the flat and the hierarchical scenario.
//! The `placement` artifact takes `--smoke` as well: a downtown-only
//! deployment search that *asserts* the annealed placement does not
//! trail the random baseline on blackout delivery rate and prints the
//! annealed score digest CI pins. The `crypto` artifact writes
//! `BENCH_crypto.json` and under `--smoke` *asserts* that warm
//! encrypted throughput stays within 2x of plaintext at every worker
//! count. Every sweep ends with a `[sweep …]`
//! line reporting its wall time
//! and the process peak RSS so regressions in either are visible from
//! the log alone.

use std::fs;
use std::path::Path;

use citymesh_bench::sweep::SweepTimer;
use citymesh_bench::{
    ablation, churn_figs, crypto_figs, eval_figs, fleet_figs, metro_figs, placement_figs,
    planner_figs, render, resilience_figs, scaling, streaming_figs, survey_figs, telemetry_figs,
    text,
};
use citymesh_core::{
    compress_route, place_aps, plan_route, postbox_ap, simulate_delivery, ApGraph, BuildingGraph,
    BuildingGraphParams, DeliveryParams,
};
use citymesh_map::CityArchetype;
use citymesh_net::CityMeshHeader;
use citymesh_simcore::SimRng;

const SEED: u64 = 2024;

struct Opts {
    fast: bool,
}

impl Opts {
    /// (survey scale, reachability pairs, delivery pairs)
    fn scales(&self) -> (f64, usize, usize) {
        if self.fast {
            (0.1, 200, 10)
        } else {
            (1.0, 1000, 50) // the paper's §4 protocol
        }
    }
}

/// Removes `name <value>` from `args` and returns the parsed value.
fn take_value(args: &mut Vec<String>, name: &str) -> Option<usize> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        args.remove(i);
        return None;
    }
    let v = args.remove(i + 1).parse().ok();
    args.remove(i);
    v
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let flows_override = take_value(&mut args, "--flows");
    let workers_override = take_value(&mut args, "--workers");
    let args = args;
    let fast = args.iter().any(|a| a == "--fast");
    let json = args.iter().any(|a| a == "--json");
    let opts = Opts { fast };
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want =
        |name: &str| targets.is_empty() || targets.contains(&name) || targets.contains(&"all");

    fs::create_dir_all("figures").expect("cannot create figures/");

    let mut survey_cache: Option<survey_figs::SurveyFigures> = None;
    let mut survey = |opts: &Opts| -> survey_figs::SurveyFigures {
        survey_cache
            .get_or_insert_with(|| {
                eprintln!("[running four-area survey…]");
                survey_figs::run_surveys(SEED, opts.scales().0)
            })
            .clone()
    };

    if want("table1") {
        let rows: Vec<Vec<String>> = survey(&opts)
            .table1()
            .into_iter()
            .map(|r| vec![r.area, r.measurements.to_string(), r.unique_aps.to_string()])
            .collect();
        println!("== Table 1: summary of collected (synthetic) survey data ==");
        println!(
            "{}",
            text::table(&["Dataset", "# Measurements", "# Unique APs"], &rows)
        );
    }

    if want("fig1a") {
        println!("== Figure 1a: CDF of MAC addresses seen per measurement ==");
        for (area, cdf) in survey(&opts).fig1a() {
            println!(
                "{}",
                text::ascii_cdf(
                    &format!("{area} (median {:.0})", cdf.median().unwrap_or(0.0)),
                    &cdf.plot_points(12),
                    40
                )
            );
        }
    }

    if want("fig1b") {
        println!("== Figure 1b: CDF of per-BSSID location spread (m) ==");
        for (area, cdf) in survey(&opts).fig1b() {
            println!(
                "{}",
                text::ascii_cdf(
                    &format!("{area} (median {:.0} m)", cdf.median().unwrap_or(0.0)),
                    &cdf.plot_points(12),
                    40
                )
            );
        }
    }

    if want("fig2") {
        println!("== Figure 2: common APs between measurement pairs vs distance ==");
        for (area, bins) in survey(&opts).fig2(if opts.fast { 20_000 } else { 2_000_000 }) {
            println!("-- {area} --\n{}", text::whisker_table(&bins));
        }
    }

    if want("fig5") {
        println!("== Figure 5: downtown section render ==");
        let map = CityArchetype::SurveyDowntown.generate(SEED);
        let mut rng = SimRng::new(SEED);
        let aps = place_aps(&map, 200.0, &mut rng);
        let apg = ApGraph::build(&aps, 50.0);
        let svg = render::fig5_svg(&map, &aps, &apg);
        write_svg("figures/fig5_downtown.svg", &svg);
        println!(
            "{} buildings, {} APs, mean degree {:.1} — figures/fig5_downtown.svg\n",
            map.len(),
            aps.len(),
            apg.mean_degree()
        );
    }

    if want("fig6") {
        let (_, rpairs, dpairs) = opts.scales();
        eprintln!("[running the eight-city evaluation: {rpairs} reachability / {dpairs} delivery pairs per city…]");
        let fig6 = eval_figs::run_fig6(SEED, rpairs, dpairs);
        println!("== Figure 6: reachability, deliverability, transmission overhead ==");
        let rows: Vec<Vec<String>> = fig6
            .cities
            .iter()
            .map(|c| {
                vec![
                    c.city.clone(),
                    c.buildings.to_string(),
                    c.aps.to_string(),
                    c.components.to_string(),
                    format!("{:.1}%", c.reachability * 100.0),
                    format!("{:.1}%", c.deliverability * 100.0),
                    c.median_overhead
                        .map(|o| format!("{o:.1}x"))
                        .unwrap_or_else(|| "-".into()),
                    c.median_latency_ms
                        .map(|l| format!("{l:.0} ms"))
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        println!(
            "{}",
            text::table(
                &[
                    "city",
                    "buildings",
                    "APs",
                    "islands",
                    "reachable",
                    "deliverable",
                    "overhead",
                    "latency"
                ],
                &rows
            )
        );
        if let Some(pooled) = fig6.pooled_median_overhead() {
            println!("pooled median transmission overhead: {pooled:.1}x  (paper: ~13x)\n");
        }
        if json {
            let doc = citymesh_bench::text::json::Value::Arr(
                fig6.cities
                    .iter()
                    .map(|c| {
                        citymesh_bench::text::json::Value::Obj(vec![
                            (
                                "city".into(),
                                citymesh_bench::text::json::Value::Str(c.city.clone()),
                            ),
                            (
                                "buildings".into(),
                                citymesh_bench::text::json::Value::Int(c.buildings as i64),
                            ),
                            (
                                "aps".into(),
                                citymesh_bench::text::json::Value::Int(c.aps as i64),
                            ),
                            (
                                "islands".into(),
                                citymesh_bench::text::json::Value::Int(c.components as i64),
                            ),
                            (
                                "reachability".into(),
                                citymesh_bench::text::json::Value::Num(c.reachability),
                            ),
                            (
                                "deliverability".into(),
                                citymesh_bench::text::json::Value::Num(c.deliverability),
                            ),
                            (
                                "median_overhead".into(),
                                c.median_overhead
                                    .map(citymesh_bench::text::json::Value::Num)
                                    .unwrap_or(citymesh_bench::text::json::Value::Null),
                            ),
                        ])
                    })
                    .collect(),
            );
            fs::write("figures/fig6.json", doc.render()).expect("write fig6.json");
            println!("wrote figures/fig6.json\n");
        }
        if want("headers") {
            print_headers(&fig6);
        }
    } else if want("headers") {
        let (_, rpairs, dpairs) = opts.scales();
        let fig6 = eval_figs::run_fig6(SEED, rpairs, dpairs);
        print_headers(&fig6);
    }

    if want("fig7") {
        println!("== Figure 7: one simulated delivery ==");
        let map = CityArchetype::SurveyDowntown.generate(SEED);
        let mut rng = SimRng::new(SEED);
        let aps = place_aps(&map, 200.0, &mut rng);
        let apg = ApGraph::build(&aps, 50.0);
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        // A corner-to-corner pair for a long, interesting route.
        let src = map
            .nearest_building(citymesh_geo::Point::new(50.0, 50.0))
            .expect("non-empty map")
            .id;
        let dst = map
            .nearest_building(citymesh_geo::Point::new(700.0, 700.0))
            .expect("non-empty map")
            .id;
        let route = plan_route(&bg, src, dst).expect("downtown is connected");
        let compressed = compress_route(&bg, &route, 50.0).expect("valid width and route");
        let header = CityMeshHeader::new(7, 50.0, compressed.waypoints.clone());
        let src_ap = postbox_ap(&aps, &map, src).expect("source building has APs");
        let report = simulate_delivery(
            &map,
            &apg,
            &header,
            src_ap,
            DeliveryParams::default(),
            &mut rng,
        );
        let svg = render::fig7_svg(&map, &apg, &header, &report);
        write_svg("figures/fig7_delivery.svg", &svg);
        println!(
            "route {} buildings → {} waypoints; delivered={}, {} broadcasts, {} relays — figures/fig7_delivery.svg",
            route.len(),
            compressed.len(),
            report.delivered,
            report.broadcasts,
            report.relay_count()
        );
        println!("{}\n", render::ascii_map(&map, &route, 72));
    }

    if want("mapsize") {
        // The §2 premise quantified: how big is the on-device map
        // cache a phone or AP must hold?
        println!("== device map-cache size (10 mm quantization) ==");
        let mut rows = Vec::new();
        for arch in CityArchetype::cities() {
            let map = arch.generate(SEED);
            let bytes = citymesh_map::encode_map(&map, citymesh_map::DEFAULT_QUANTUM_MM);
            rows.push(vec![
                arch.label().to_string(),
                map.len().to_string(),
                format!("{:.1} KiB", bytes.len() as f64 / 1024.0),
                format!("{:.1}", bytes.len() as f64 / map.len() as f64),
            ]);
        }
        println!(
            "{}",
            text::table(
                &["city", "buildings", "cache size", "bytes/building"],
                &rows
            )
        );
        println!(
            "At these rates a 500k-building metropolis caches in ~15 MB — \
             \"today's devices can easily cache\" it, as §2 claims.\n"
        );
    }

    if want("headers-large") {
        let routes = if opts.fast { 30 } else { 150 };
        eprintln!("[generating a 3.6 km metropolitan map and routing {routes} pairs…]");
        let h = eval_figs::header_stats_at_scale(SEED, routes);
        println!("== §4 header statistics at metropolitan scale (~17k buildings) ==");
        println!(
            "{} routes: median {} bits, 90%ile {} bits, median {} waypoints  (paper: 175 / 225 bits)\n",
            h.routes, h.median_bits, h.p90_bits, h.median_waypoints
        );
    }

    if want("scaling") {
        println!("== §5 scaling: control transmissions per interval/discovery ==");
        let rows: Vec<Vec<String>> = scaling::control_scaling()
            .into_iter()
            .map(|r| {
                vec![
                    r.nodes.to_string(),
                    r.dsdv.to_string(),
                    r.olsr.to_string(),
                    r.aodv.to_string(),
                    r.citymesh.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            text::table(
                &["nodes", "DSDV", "OLSR", "AODV/discovery", "CityMesh"],
                &rows
            )
        );

        println!("== data plane: delivery rate and mean transmissions per scheme ==");
        let pairs = if opts.fast { 12 } else { 40 };
        let rows: Vec<Vec<String>> = scaling::data_plane_comparison(SEED, pairs)
            .into_iter()
            .map(|r| {
                vec![
                    r.scheme,
                    format!("{:.0}%", r.delivery_rate * 100.0),
                    format!("{:.1}", r.mean_tx),
                ]
            })
            .collect();
        println!(
            "{}",
            text::table(&["scheme", "delivered", "mean tx"], &rows)
        );
    }

    if want("ablations") {
        let pairs = if opts.fast { 8 } else { 25 };
        println!("== ablations (Cambridge archetype) ==");
        let sweep_table = |name: &str, points: &[ablation::SweepPoint]| {
            let rows: Vec<Vec<String>> = points
                .iter()
                .map(|p| {
                    vec![
                        format!("{:.0}", p.knob),
                        format!("{:.1}%", p.deliverability * 100.0),
                        p.median_overhead
                            .map(|o| format!("{o:.1}x"))
                            .unwrap_or_else(|| "-".into()),
                        p.median_route_bits
                            .map(|b| b.to_string())
                            .unwrap_or_else(|| "-".into()),
                    ]
                })
                .collect();
            println!(
                "-- {name} --\n{}",
                text::table(&["value", "deliverable", "overhead", "route bits"], &rows)
            );
        };
        sweep_table(
            "weight exponent (paper: 3)",
            &ablation::sweep_weight_exponent(SEED, pairs),
        );
        sweep_table(
            "conduit width W, m (paper: 50)",
            &ablation::sweep_conduit_width(SEED, pairs),
        );
        sweep_table(
            "AP density, m²/AP (paper: 200)",
            &ablation::sweep_ap_density(SEED, pairs),
        );
        sweep_table(
            "transmission range, m (paper: 50)",
            &ablation::sweep_range(SEED, pairs),
        );
        let loss_points = ablation::sweep_reception_loss(SEED, pairs);
        let rows: Vec<Vec<String>> = loss_points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}%", p.knob * 100.0),
                    format!("{:.1}%", p.deliverability * 100.0),
                    p.median_overhead
                        .map(|o| format!("{o:.1}x"))
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        println!(
            "-- per-frame reception loss (redundancy robustness) --\n{}",
            text::table(&["loss", "deliverable", "overhead"], &rows)
        );

        let rows: Vec<Vec<String>> = ablation::sweep_scope(SEED, pairs)
            .into_iter()
            .map(|r| {
                vec![
                    format!("{:?}", r.scope),
                    format!("{:.1}%", r.deliverability * 100.0),
                    r.total_broadcasts.to_string(),
                ]
            })
            .collect();
        println!(
            "-- rebroadcast scope (same pairs, same placement) --\n{}",
            text::table(&["scope", "deliverable", "total broadcasts"], &rows)
        );

        let enc = ablation::encoding_comparison(SEED, if opts.fast { 25 } else { 100 });
        println!(
            "-- route encoding (median bits over {} routes) --",
            enc.routes
        );
        println!(
            "{}",
            text::table(
                &["encoding", "median bits"],
                &[
                    vec![
                        "absolute (paper)".into(),
                        enc.absolute_median_bits.to_string()
                    ],
                    vec!["delta varbits".into(), enc.delta_median_bits.to_string()],
                    vec![
                        "uncompressed route".into(),
                        enc.uncompressed_median_bits.to_string()
                    ],
                ]
            )
        );
    }

    if want("fleet") {
        let sweep = SweepTimer::start();
        let flow_counts: Vec<usize> = match flows_override {
            Some(n) => vec![n],
            None if opts.fast => vec![500, 2_000],
            None => vec![1_000, 10_000, 100_000],
        };
        let worker_counts: Vec<usize> = match workers_override {
            Some(w) => vec![w.max(1)],
            None => vec![1, 4, 8],
        };
        let cold = args.iter().any(|a| a == "--cold");
        eprintln!(
            "[running the fleet heavy-traffic sweep: flows {flow_counts:?} × workers {worker_counts:?}{}…]",
            if cold { ", cold (no warm-up)" } else { "" }
        );
        let figs = fleet_figs::run_fleet_figs(SEED, &flow_counts, &worker_counts, !cold);
        println!(
            "== fleet: heavy-traffic throughput ({}, {} buildings, {} workload) ==",
            figs.city, figs.buildings, figs.model
        );
        let rows: Vec<Vec<String>> = figs
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.flows.to_string(),
                    r.workers.to_string(),
                    format!("{:.0}", r.report.flows_per_sec()),
                    format!("{:.1}%", r.report.delivery_rate() * 100.0),
                    format!(
                        "{:.0}%",
                        100.0 * r.report.cache_hits as f64
                            / (r.report.cache_hits + r.report.cache_misses).max(1) as f64
                    ),
                    format!("{:016x}", r.report.digest()),
                ]
            })
            .collect();
        println!(
            "{}",
            text::table(
                &[
                    "flows",
                    "workers",
                    "flows/s",
                    "delivered",
                    "cache hits",
                    "digest"
                ],
                &rows
            )
        );
        println!("all worker counts agree on every digest: parallel == serial, bit for bit\n");
        fs::write("BENCH_fleet.json", fleet_figs::to_json(&figs).render())
            .expect("write BENCH_fleet.json");
        println!("wrote BENCH_fleet.json");
        sweep.finish("fleet");
    }

    if want("planner") {
        let sweep = SweepTimer::start();
        let pairs = match flows_override {
            Some(n) => n,
            None if opts.fast => 1_500,
            None => 4_000,
        };
        let worker_counts: Vec<usize> = match workers_override {
            Some(w) => vec![w.max(1)],
            None => vec![1, 4, 8],
        };
        eprintln!(
            "[running the planner fast-path sweep: {pairs} pairs × workers {worker_counts:?} \
             × baseline/cold/warm…]"
        );
        let figs = planner_figs::run_planner_figs(SEED, pairs, &worker_counts);
        println!(
            "== planner: fast-path throughput ({}, {} buildings, {} pairs) ==",
            figs.city, figs.buildings, figs.pairs
        );
        let rows: Vec<Vec<String>> = figs
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.mode.label().to_string(),
                    r.workers.to_string(),
                    format!("{:.0}", r.plans_per_sec),
                    format!("{:016x}", r.digest),
                ]
            })
            .collect();
        println!(
            "{}",
            text::table(&["mode", "workers", "plans/s", "digest"], &rows)
        );
        let rate = |mode: planner_figs::PlannerMode| {
            figs.runs
                .iter()
                .find(|r| r.mode == mode && r.workers == worker_counts[0])
                .map(|r| r.plans_per_sec)
                .unwrap_or(0.0)
        };
        let base = rate(planner_figs::PlannerMode::Baseline);
        let warm = rate(planner_figs::PlannerMode::Warm);
        println!(
            "all modes and worker counts agree on every digest: fast path == baseline, bit for bit"
        );
        println!(
            "warm fast path: {:.1}x the pre-fast-path baseline at {} worker(s)\n",
            if base > 0.0 { warm / base } else { 0.0 },
            worker_counts[0]
        );
        fs::write("BENCH_planner.json", planner_figs::to_json(&figs).render())
            .expect("write BENCH_planner.json");
        println!("wrote BENCH_planner.json");
        sweep.finish("planner");
    }

    if want("resilience") {
        let sweep = SweepTimer::start();
        // Failure probabilities swept per archetype; flows per point.
        let failure_ps = [0.0, 0.1, 0.2, 0.3, 0.4];
        let flows = flows_override.unwrap_or(if opts.fast { 150 } else { 500 });
        let worker_counts: Vec<usize> = match workers_override {
            Some(w) => vec![w.max(1)],
            None => vec![1, 4, 8],
        };
        eprintln!(
            "[running the resilience sweep: failure p {failure_ps:?} × 4 archetypes, \
             {flows} flows/point, workers {worker_counts:?}…]"
        );
        let figs = resilience_figs::run_resilience(SEED, &failure_ps, flows, &worker_counts);
        println!("== resilience: delivery under injected AP failures ==");
        for curve in &figs.curves {
            let rows: Vec<Vec<String>> = curve
                .points
                .iter()
                .map(|p| {
                    vec![
                        format!("{:.0}%", p.failure_p * 100.0),
                        format!("{:.1}%", p.failed_fraction * 100.0),
                        format!("{:.1}%", p.delivery_rate * 100.0),
                        format!("{:.1}%", p.delivery_rate_no_retry * 100.0),
                        p.retried.to_string(),
                        p.recovered.to_string(),
                        format!("{:016x}", p.digest),
                    ]
                })
                .collect();
            println!(
                "-- {} ({} buildings) --\n{}",
                curve.archetype,
                curve.buildings,
                text::table(
                    &[
                        "fail p",
                        "APs down",
                        "ladder",
                        "single",
                        "retried",
                        "recovered",
                        "digest"
                    ],
                    &rows
                )
            );
            let path = format!("figures/resilience_{}.svg", curve.archetype);
            write_svg(&path, &resilience_figs::curve_svg(curve));
            println!("wrote {path}");
        }
        println!("every curve degrades monotonically; all worker counts agree on every digest\n");
        fs::write(
            "BENCH_resilience.json",
            resilience_figs::to_json(&figs).render(),
        )
        .expect("write BENCH_resilience.json");
        println!("wrote BENCH_resilience.json");
        sweep.finish("resilience");
    }

    if want("churn") {
        let sweep = SweepTimer::start();
        // Total scheduled events per point; mechanism mix is fixed
        // inside the sweep (half aftershocks, a quarter battery waves,
        // the rest crew repairs).
        let event_levels = [0usize, 2, 4, 8];
        let flows = flows_override.unwrap_or(if opts.fast { 150 } else { 400 });
        let worker_counts: Vec<usize> = match workers_override {
            Some(w) => vec![w.max(1)],
            None => vec![1, 4, 8],
        };
        eprintln!(
            "[running the churn sweep: events {event_levels:?} × 4 archetypes × 3 strategies, \
             {flows} flows/point, workers {worker_counts:?}…]"
        );
        let figs = churn_figs::run_churn_figs(SEED, &event_levels, flows, &worker_counts);
        println!("== churn: delivery and replan cost under a mutating world ==");
        for curve in &figs.curves {
            let rows: Vec<Vec<String>> = curve
                .points
                .iter()
                .flat_map(|p| {
                    p.strategies.iter().map(move |s| {
                        vec![
                            p.events.to_string(),
                            format!("{:.1}", p.churn_rate_hz),
                            s.strategy.to_string(),
                            format!("{:.1}%", s.delivery_rate * 100.0),
                            s.recovered.to_string(),
                            format!("{}/{}", s.evicted_incremental, s.evicted_flush),
                            format!("{}/{}", s.planned_incremental, s.planned_flush),
                            format!("{:016x}", s.digest),
                        ]
                    })
                })
                .collect();
            println!(
                "-- {} ({} buildings) --\n{}",
                curve.archetype,
                curve.buildings,
                text::table(
                    &[
                        "events",
                        "rate/s",
                        "strategy",
                        "delivered",
                        "recovered",
                        "evict inc/flush",
                        "plan inc/flush",
                        "digest"
                    ],
                    &rows
                )
            );
            let path = format!("figures/churn_{}.svg", curve.archetype);
            write_svg(&path, &churn_figs::curve_svg(curve));
            println!("wrote {path}");
        }
        println!(
            "all worker counts and both invalidation policies agree on every digest; \
             incremental eviction cost {} entries vs {} for full flushes\n",
            figs.total_evicted_incremental, figs.total_evicted_flush
        );
        fs::write("BENCH_churn.json", churn_figs::to_json(&figs).render())
            .expect("write BENCH_churn.json");
        println!("wrote BENCH_churn.json");
        sweep.finish("churn");
    }

    if want("telemetry") {
        let sweep = SweepTimer::start();
        let flows = flows_override.unwrap_or(if opts.fast { 150 } else { 500 });
        let worker_counts: Vec<usize> = match workers_override {
            Some(w) => vec![w.max(1)],
            None => vec![1, 4, 8],
        };
        eprintln!(
            "[running the telemetry sweep: {flows} flows, traced at workers {worker_counts:?}…]"
        );
        let figs = telemetry_figs::run_telemetry(SEED, flows, 0.25, &worker_counts);
        println!(
            "== telemetry: zero-perturbation proof + per-rung breakdown ({}, {} buildings) ==",
            figs.city, figs.buildings
        );
        println!(
            "healthy digest {:016x} — identical with tracing off and on",
            figs.healthy_digest
        );
        println!(
            "faulted digest {:016x} (p={:.2}) — identical across workers {worker_counts:?}, \
             traced and untraced; metric fingerprint {:016x}",
            figs.faulted_digest, figs.failure_p, figs.metrics_fingerprint
        );
        let rows: Vec<Vec<String>> = figs
            .rungs
            .iter()
            .map(|r| {
                vec![
                    r.rung.to_string(),
                    r.deliveries.to_string(),
                    r.latency_ms_p50
                        .map(|l| format!("{l:.1} ms"))
                        .unwrap_or_else(|| "-".into()),
                    r.latency_ms_p90
                        .map(|l| format!("{l:.1} ms"))
                        .unwrap_or_else(|| "-".into()),
                    r.mean_overhead
                        .map(|o| format!("{o:.1}x"))
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        println!(
            "{}",
            text::table(
                &["rung", "deliveries", "lat p50", "lat p90", "overhead"],
                &rows
            )
        );
        let rows: Vec<Vec<String>> = figs
            .counters
            .iter()
            .map(|&(name, v)| vec![name.to_string(), v.to_string()])
            .collect();
        println!("{}", text::table(&["counter", "value"], &rows));
        println!(
            "{} postmortems captured ({} ring evictions, high water {})",
            figs.postmortems, figs.trace_dropped, figs.ring_high_water
        );
        if let Some(sample) = &figs.sample_postmortem {
            fs::write("figures/postmortem_sample.json", sample)
                .expect("write figures/postmortem_sample.json");
            println!("wrote figures/postmortem_sample.json");
        }
        fs::write(
            "BENCH_telemetry.json",
            telemetry_figs::to_json(&figs).render(),
        )
        .expect("write BENCH_telemetry.json");
        println!("wrote BENCH_telemetry.json");
        sweep.finish("telemetry");
    }

    if want("metro") {
        let sweep = SweepTimer::start();
        let smoke = args.iter().any(|a| a == "--smoke");
        // (tiles_x, tiles_y, sampled pairs). Pair counts shrink as the
        // flat planner's per-query cost grows with city size.
        // The smoke's largest size is 4x4 (~22k buildings), safely past
        // the flat/hier crossover (up to ~12k buildings the two
        // planners trade within noise) so the hier >= flat gate below
        // cannot flake: the full sweep measures hier at 5.4x there.
        let specs: Vec<(usize, usize, usize)> = if smoke {
            vec![(1, 1, 48), (4, 4, 24)]
        } else if opts.fast {
            vec![(2, 2, 128), (4, 4, 64)]
        } else {
            vec![(2, 2, 256), (4, 4, 128), (7, 7, 96), (10, 10, 64)]
        };
        let worker_counts: Vec<usize> = match workers_override {
            Some(w) => vec![w.max(1)],
            None => vec![1, 4, 8],
        };
        eprintln!(
            "[running the metro hierarchical-routing sweep: tiles {:?} × flat/hier × workers {worker_counts:?}…]",
            specs.iter().map(|s| format!("{}x{}", s.0, s.1)).collect::<Vec<_>>()
        );
        let figs = metro_figs::run_metro_figs(SEED, &specs, &worker_counts);
        println!("== metro: flat vs district-overlay hierarchical routing ==");
        let rows: Vec<Vec<String>> = figs
            .sizes
            .iter()
            .flat_map(|s| {
                s.runs.iter().map(move |r| {
                    vec![
                        format!("{}x{}", s.tiles.0, s.tiles.1),
                        s.buildings.to_string(),
                        s.districts.to_string(),
                        r.mode.label().to_string(),
                        r.workers.to_string(),
                        format!("{:.0}", r.plans_per_sec),
                        format!("{:016x}", r.digest),
                    ]
                })
            })
            .collect();
        println!(
            "{}",
            text::table(
                &[
                    "tiles",
                    "buildings",
                    "districts",
                    "mode",
                    "workers",
                    "plans/s",
                    "digest"
                ],
                &rows
            )
        );
        let rows: Vec<Vec<String>> = figs
            .sizes
            .iter()
            .map(|s| {
                vec![
                    format!("{}x{}", s.tiles.0, s.tiles.1),
                    s.buildings.to_string(),
                    s.aps.to_string(),
                    format!("{:.1}", s.flat_bytes_per_ap()),
                    format!("{:.1}", s.hier_bytes_per_ap()),
                    format!("{:.0}", s.gen_ms),
                    format!("{:.0}", s.graph_ms),
                    format!("{:.0}", s.hier_build_ms),
                ]
            })
            .collect();
        println!(
            "{}",
            text::table(
                &[
                    "tiles",
                    "buildings",
                    "APs",
                    "flat B/AP",
                    "hier B/AP",
                    "gen ms",
                    "graph ms",
                    "hier ms"
                ],
                &rows
            )
        );
        if let Some(largest) = figs.sizes.last() {
            let flat = largest.rate(metro_figs::MetroMode::Flat);
            let hier = largest.rate(metro_figs::MetroMode::Hier);
            println!(
                "largest city ({} buildings): hier {:.1}x the flat planner at {} worker(s)",
                largest.buildings,
                if flat > 0.0 { hier / flat } else { 0.0 },
                worker_counts[0]
            );
            if smoke {
                assert!(
                    hier >= flat,
                    "smoke gate: hier ({hier:.0}/s) must not be slower than flat ({flat:.0}/s) \
                     at the largest smoke size"
                );
                println!("smoke gate passed: hier >= flat at the largest smoke size");
            }
        }
        println!("all worker counts agree on every digest; flat and hier agree on routability\n");
        write_svg(
            "figures/metro_throughput.svg",
            &metro_figs::throughput_svg(&figs),
        );
        write_svg("figures/metro_memory.svg", &metro_figs::memory_svg(&figs));
        println!("wrote figures/metro_throughput.svg and figures/metro_memory.svg");
        fs::write("BENCH_metro.json", metro_figs::to_json(&figs).render())
            .expect("write BENCH_metro.json");
        println!("wrote BENCH_metro.json");
        sweep.finish("metro");
    }

    if want("streaming") {
        let sweep = SweepTimer::start();
        let smoke = args.iter().any(|a| a == "--smoke");
        // Offered load as multiples of the per-scenario estimated
        // capacity; flow counts keep overload points long enough to
        // reach shedding steady state.
        let (multipliers, flat_flows, metro_flows, tiles): (
            Vec<f64>,
            usize,
            usize,
            (usize, usize),
        ) = if smoke {
            (vec![0.4, 2.5], 400, 300, (1, 1))
        } else if opts.fast {
            (vec![0.25, 0.75, 1.5, 3.0], 1_500, 800, (2, 2))
        } else {
            (
                vec![0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0],
                4_000,
                1_500,
                (2, 2),
            )
        };
        let flat_flows = flows_override.unwrap_or(flat_flows);
        let metro_flows = flows_override.unwrap_or(metro_flows);
        let worker_counts: Vec<usize> = match workers_override {
            Some(w) => vec![w.max(1)],
            None => vec![1, 4, 8],
        };
        let scenarios = [
            streaming_figs::StreamScenario {
                label: "downtown-flat",
                metro_tiles: None,
                flows: flat_flows,
            },
            streaming_figs::StreamScenario {
                label: "metro-hier",
                metro_tiles: Some(tiles),
                flows: metro_flows,
            },
        ];
        eprintln!(
            "[running the streaming latency-under-load sweep: load {multipliers:?} x capacity, \
             downtown {flat_flows} / metro-{}x{} {metro_flows} flows per point, \
             workers {worker_counts:?}…]",
            tiles.0, tiles.1
        );
        let figs =
            streaming_figs::run_streaming_figs(SEED, &scenarios, &multipliers, &worker_counts);
        println!(
            "== streaming: sojourn, shedding, and the saturation knee under open-loop load =="
        );
        for curve in &figs.curves {
            let rows: Vec<Vec<String>> = curve
                .points
                .iter()
                .map(|p| {
                    vec![
                        format!("{:.2}x", p.multiplier),
                        format!("{:.0}", p.rate_hz),
                        p.offered.to_string(),
                        format!("{:.1}%", p.shed_rate() * 100.0),
                        format!("{}/{}", p.shed_backpressure, p.shed_deadline),
                        format!("{}/{}", p.degraded_tracing, p.degraded_retry),
                        format!("{:.2}", p.p50_sojourn_ms),
                        format!("{:.2}", p.p99_sojourn_ms),
                        p.max_depth.to_string(),
                        format!("{:016x}", p.digest),
                    ]
                })
                .collect();
            println!(
                "-- {} ({} buildings, {} servers x {} queue, {:.0} ms deadline, \
                 capacity ~{:.0}/s) --\n{}",
                curve.label,
                curve.buildings,
                curve.servers,
                curve.queue_capacity,
                curve.deadline_ms,
                curve.capacity_hz,
                text::table(
                    &[
                        "load", "rate/s", "offered", "shed", "bp/ddl", "rung1/2", "p50 ms",
                        "p99 ms", "depth", "digest"
                    ],
                    &rows
                )
            );
            match curve.knee_multiplier {
                Some(k) => println!("saturation knee at {k:.2}x estimated capacity"),
                None => println!("no saturation knee inside the swept range"),
            }
            let path = format!("figures/streaming_{}.svg", curve.label);
            write_svg(&path, &streaming_figs::curve_svg(curve));
            println!("wrote {path}");
            if smoke {
                let over = curve.points.last().expect("sweep has points");
                assert!(
                    over.multiplier >= 2.0 && over.shed() > 0,
                    "smoke gate: {} must shed explicitly at {:.1}x capacity",
                    curve.label,
                    over.multiplier
                );
                assert_eq!(
                    over.offered,
                    over.admitted + over.shed(),
                    "smoke gate: {} accounting must balance under overload",
                    curve.label
                );
                println!(
                    "smoke gate passed: shed {} of {} offered at {:.1}x, accounting balanced",
                    over.shed(),
                    over.offered,
                    over.multiplier
                );
            }
        }
        println!(
            "all worker counts agree on every digest; every shed flow is counted, \
             p99 stays inside the deadline+service bound\n"
        );
        fs::write(
            "BENCH_streaming.json",
            streaming_figs::to_json(&figs).render(),
        )
        .expect("write BENCH_streaming.json");
        println!("wrote BENCH_streaming.json");
        sweep.finish("streaming");
    }

    if want("crypto") {
        let sweep = SweepTimer::start();
        let smoke = args.iter().any(|a| a == "--smoke");
        let flows = flows_override.unwrap_or(if smoke {
            400
        } else if opts.fast {
            1_000
        } else {
            10_000
        });
        let worker_counts: Vec<usize> = match workers_override {
            Some(w) => vec![w.max(1)],
            None => vec![1, 4, 8],
        };
        eprintln!(
            "[running the secure-message-plane sweep: {flows} flows × workers {worker_counts:?} \
             × plaintext/encrypted-cold/encrypted-warm…]"
        );
        let figs = crypto_figs::run_crypto_figs(SEED, flows, &worker_counts);
        println!(
            "== crypto: secure message plane cost ({}, {} buildings, {} flows) ==",
            figs.city, figs.buildings, figs.flows
        );
        let rows: Vec<Vec<String>> = figs
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.mode.label().to_string(),
                    r.workers.to_string(),
                    format!("{:.0}", r.flows_per_sec),
                    r.keys_derived.to_string(),
                    format!("{:016x}", r.digest),
                ]
            })
            .collect();
        println!(
            "{}",
            text::table(
                &["mode", "workers", "flows/s", "keys derived", "digest"],
                &rows
            )
        );
        let plain = figs.rate(crypto_figs::CryptoMode::Plaintext, worker_counts[0]);
        let warm = figs.rate(crypto_figs::CryptoMode::EncryptedWarm, worker_counts[0]);
        println!(
            "all plaintext digests agree; all encrypted digests agree across cache \
             temperature and workers; both modes deliver the same flow set"
        );
        println!(
            "warm encrypted: {:.2}x plaintext throughput at {} worker(s) \
             (encrypted-downtown digest {:016x})\n",
            if plain > 0.0 { warm / plain } else { 0.0 },
            worker_counts[0],
            figs.encrypted_digest
        );
        if smoke {
            for &w in &worker_counts {
                let plain = figs.rate(crypto_figs::CryptoMode::Plaintext, w);
                let warm = figs.rate(crypto_figs::CryptoMode::EncryptedWarm, w);
                assert!(
                    warm >= 0.5 * plain,
                    "smoke gate: warm encrypted throughput ({warm:.0}/s) must stay within \
                     2x of plaintext ({plain:.0}/s) at {w} worker(s)"
                );
            }
            println!(
                "smoke gate passed: warm encrypted within 2x of plaintext at every worker count"
            );
        }
        fs::write("BENCH_crypto.json", crypto_figs::to_json(&figs).render())
            .expect("write BENCH_crypto.json");
        println!("wrote BENCH_crypto.json");
        sweep.finish("crypto");
    }

    if want("placement") {
        let sweep = SweepTimer::start();
        let smoke = args.iter().any(|a| a == "--smoke");
        let cfg = if smoke {
            placement_figs::PlacementSweepConfig::smoke()
        } else if opts.fast {
            placement_figs::PlacementSweepConfig {
                flows: 200,
                anneal_iters: 24,
                ..placement_figs::PlacementSweepConfig::full()
            }
        } else {
            placement_figs::PlacementSweepConfig::full()
        };
        eprintln!(
            "[running the placement sweep: {} archetype(s), k={}, {} flows/eval, \
             {} anneal iters, digest checks at {:?} workers…]",
            cfg.archetypes.len(),
            cfg.k,
            cfg.flows,
            cfg.anneal_iters,
            cfg.worker_checks
        );
        let figs = placement_figs::run_placement_figs(SEED, &cfg);
        println!("== placement: hardened-site deployment, random vs greedy vs annealed ==");
        for row in &figs.rows {
            let rows: Vec<Vec<String>> = row
                .cells
                .iter()
                .map(|c| {
                    vec![
                        c.strategy.to_string(),
                        c.sites
                            .iter()
                            .map(|s| s.to_string())
                            .collect::<Vec<_>>()
                            .join(","),
                        format!("{:.3}", c.healthy_delivery),
                        format!("{:.3}", c.blackout_delivery),
                        format!("{:.1}", c.blackout_p99_ms),
                        c.evaluations.to_string(),
                        format!("{}/{}", c.accepted_moves, c.proposed_moves),
                        format!("{:016x}", c.digest),
                    ]
                })
                .collect();
            println!(
                "-- {} ({} buildings, {} candidates, k={}, {} evals, {} routes evicted) --\n{}",
                row.label,
                row.buildings,
                row.candidates,
                row.k,
                row.evaluations,
                row.routes_evicted,
                text::table(
                    &[
                        "strategy",
                        "sites",
                        "healthy",
                        "blackout",
                        "bo p99 ms",
                        "evals",
                        "acc/prop",
                        "digest"
                    ],
                    &rows
                )
            );
            println!(
                "blackout delivery gap, annealed - random: {:+.3}",
                row.blackout_gap()
            );
        }
        let wins = figs.archetypes_where_annealed_beats_random();
        println!(
            "annealed beats random on blackout delivery in {wins} of {} archetype(s); \
             every annealed digest reproduced at {:?} workers\n",
            figs.rows.len(),
            figs.worker_checks
        );
        if !smoke && figs.rows.len() >= 4 {
            assert!(
                wins >= 3,
                "placement gate: annealed must beat random on blackout delivery \
                 in at least 3 of {} archetypes, got {wins}",
                figs.rows.len()
            );
        }
        if smoke {
            let row = figs.rows.first().expect("smoke sweeps downtown");
            let annealed = row.cell("annealed").expect("annealed ran");
            let random = row.cell("random").expect("random ran");
            assert!(
                annealed.blackout_delivery >= random.blackout_delivery,
                "smoke gate: annealed blackout delivery {:.3} must not trail random {:.3}",
                annealed.blackout_delivery,
                random.blackout_delivery
            );
            println!(
                "smoke gate passed: annealed blackout delivery {:.3} >= random {:.3}; \
                 annealed-downtown digest {:016x}",
                annealed.blackout_delivery, random.blackout_delivery, annealed.digest
            );
        }
        write_svg(
            "figures/placement_blackout.svg",
            &placement_figs::placement_svg(&figs),
        );
        println!("wrote figures/placement_blackout.svg");
        fs::write(
            "BENCH_placement.json",
            placement_figs::to_json(&figs).render(),
        )
        .expect("write BENCH_placement.json");
        println!("wrote BENCH_placement.json");
        sweep.finish("placement");
    }
}

fn print_headers(fig6: &eval_figs::Fig6) {
    if let Some(h) = fig6.header_stats() {
        println!("== §4 header statistics: compressed source-route size ==");
        println!(
            "{} routes: median {} bits, 90%ile {} bits, median {} waypoints  (paper: 175 / 225 bits)\n",
            h.routes, h.median_bits, h.p90_bits, h.median_waypoints
        );
    }
}

fn write_svg(path: &str, svg: &str) {
    fs::write(Path::new(path), svg).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}
