//! Planner fast-path throughput figures (`figures -- planner`).
//!
//! Measures route-planning throughput (plans/sec) on the downtown
//! archetype in three modes over the identical pair set:
//!
//! * **baseline** — a faithful re-implementation of the pre-fast-path
//!   planner: full allocating Dijkstra per route, per-plan linear
//!   postbox scan, full BFS for the ideal hop count, fresh vectors
//!   everywhere. Measured live so the speedup is relative to *this*
//!   machine, not to a number recorded on different hardware.
//! * **cold** — the shipped allocating entry point
//!   ([`CityExperiment::plan_flow`]), which wraps the fast kernels in
//!   one-shot scratch buffers.
//! * **warm** — [`CityExperiment::plan_flow_into`] against per-worker
//!   reused scratch: the goal-directed A* + landmark heuristic,
//!   precomputed postbox tables, early-exit BFS, and zero steady-state
//!   allocations.
//!
//! Every `(mode, workers)` run folds each plan into an order-independent
//! FNV-1a digest; all digests must agree, which proves on every CI run
//! that the A* + spatial fast path returns plans bit-identical to the
//! Dijkstra/linear-scan baseline. The data lands in
//! `BENCH_planner.json` via [`to_json`].

use std::collections::VecDeque;
use std::time::Instant;

use citymesh_core::{
    compress_route, postbox_ap, reconstruct_conduits, CityExperiment, ExperimentConfig,
    PlanScratch, PlannedFlow,
};
use citymesh_map::CityArchetype;
use citymesh_net::CityMeshHeader;
use citymesh_simcore::SimRng;

use crate::text::json::Value;

/// How a run plans each pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlannerMode {
    /// Pre-fast-path planner, re-implemented allocate-per-call.
    Baseline,
    /// Shipped allocating wrapper over the fast kernels.
    Cold,
    /// Fast kernels against reused per-worker scratch.
    Warm,
}

impl PlannerMode {
    /// Stable label used in JSON and tables.
    pub fn label(self) -> &'static str {
        match self {
            PlannerMode::Baseline => "baseline",
            PlannerMode::Cold => "cold",
            PlannerMode::Warm => "warm",
        }
    }
}

/// One measured `(mode, workers)` point.
pub struct PlannerRun {
    /// Planning mode.
    pub mode: PlannerMode,
    /// Worker threads used.
    pub workers: usize,
    /// Pairs planned per wall-clock second.
    pub plans_per_sec: f64,
    /// Order-independent digest over every produced plan.
    pub digest: u64,
}

/// The full planner sweep.
pub struct PlannerFigures {
    /// City the pairs were drawn from.
    pub city: String,
    /// Building count of that city.
    pub buildings: usize,
    /// Pairs planned per run.
    pub pairs: usize,
    /// Every `(mode, workers)` run, in sweep order.
    pub runs: Vec<PlannerRun>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes the observable planning outputs of one pair. XOR-folding
/// these per-pair hashes is order-independent, so the sweep digest is
/// invariant under worker count and work sharding.
fn plan_digest(plan: &PlannedFlow) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(h, plan.src as u64);
    h = fnv1a(h, plan.dst as u64);
    h = fnv1a(h, plan.reachable as u64);
    h = fnv1a(h, plan.route_len as u64);
    h = fnv1a(h, plan.route_bits as u64);
    for &w in &plan.waypoints {
        h = fnv1a(h, w as u64);
    }
    h = fnv1a(h, plan.src_ap.map_or(u64::MAX, u64::from));
    h = fnv1a(h, plan.ideal_hops.unwrap_or(u64::MAX));
    h = fnv1a(h, plan.conduits.len() as u64);
    h
}

/// The pre-fast-path planner: every step allocates and scans exactly
/// as `plan_flow` did before the scratch kernels, landmark heuristic,
/// postbox tables, and bucket index existed. Field-for-field it must
/// produce the same plan the fast path does — [`run_planner_figs`]
/// asserts that through the digests.
fn baseline_plan(exp: &CityExperiment, src: u32, dst: u32) -> PlannedFlow {
    let mut plan = PlannedFlow::empty(src, dst);
    let apg = exp.ap_graph();

    // Reachability by materialized AP lists + pairwise probes.
    let src_aps = apg.aps_in_building(src);
    let dst_aps = apg.aps_in_building(dst);
    plan.reachable = src_aps
        .iter()
        .any(|&a| dst_aps.iter().any(|&b| apg.reachable(a, b)));

    // Full allocating Dijkstra for the route.
    let bg = exp.building_graph();
    let route = if src == dst {
        Some(vec![src])
    } else {
        citymesh_graph::dijkstra_path(bg.graph(), src, dst)
    };
    let Some(route) = route else {
        return plan;
    };
    plan.route_len = route.len();

    let width = exp.config().conduit_width_m;
    let compressed = compress_route(bg, &route, width).expect("width validated; route non-empty");
    plan.waypoints = compressed.waypoints;
    let header = CityMeshHeader::new(0, width, plan.waypoints.clone());
    plan.route_bits = header.route_bits();

    // Per-plan linear scan for the postbox AP.
    plan.src_ap = postbox_ap(exp.aps(), exp.map(), src);

    // Full BFS over the AP graph for the ideal hop count.
    if let Some(src_ap) = plan.src_ap {
        let g = apg.graph();
        let mut dist: Vec<u64> = vec![u64::MAX; g.num_vertices()];
        let mut queue = VecDeque::new();
        dist[src_ap as usize] = 0;
        queue.push_back(src_ap);
        while let Some(u) = queue.pop_front() {
            for e in g.neighbors(u) {
                if dist[e.to as usize] == u64::MAX {
                    dist[e.to as usize] = dist[u as usize] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        plan.ideal_hops = dst_aps
            .iter()
            .map(|&a| dist[a as usize])
            .filter(|&d| d != u64::MAX)
            .min();
    }

    plan.conduits = reconstruct_conduits(exp.map(), &header.waypoints, header.conduit_width_m());
    plan
}

/// Plans every pair in `chunk` and XOR-folds the per-pair digests.
fn plan_chunk(exp: &CityExperiment, chunk: &[(u32, u32)], mode: PlannerMode) -> u64 {
    let mut acc = 0u64;
    match mode {
        PlannerMode::Baseline => {
            for &(src, dst) in chunk {
                acc ^= plan_digest(&baseline_plan(exp, src, dst));
            }
        }
        PlannerMode::Cold => {
            for &(src, dst) in chunk {
                acc ^= plan_digest(&exp.plan_flow(src, dst));
            }
        }
        PlannerMode::Warm => {
            let mut scratch = PlanScratch::new();
            let mut plan = PlannedFlow::empty(0, 0);
            for &(src, dst) in chunk {
                exp.plan_flow_into(src, dst, &mut scratch, &mut plan);
                acc ^= plan_digest(&plan);
            }
        }
    }
    acc
}

/// One timed `(mode, workers)` run over `pairs`.
fn run_mode(
    exp: &CityExperiment,
    pairs: &[(u32, u32)],
    mode: PlannerMode,
    workers: usize,
) -> PlannerRun {
    let chunk = pairs.len().div_ceil(workers.max(1));
    let start = Instant::now();
    let digest = std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .chunks(chunk.max(1))
            .map(|c| s.spawn(move || plan_chunk(exp, c, mode)))
            .collect();
        handles
            .into_iter()
            .fold(0u64, |acc, h| acc ^ h.join().expect("planner worker"))
    });
    let elapsed = start.elapsed().as_secs_f64();
    PlannerRun {
        mode,
        workers,
        plans_per_sec: pairs.len() as f64 / elapsed.max(1e-9),
        digest,
    }
}

/// Runs the planner sweep: for each mode, one run per worker count,
/// over one shared deterministic pair set.
///
/// # Panics
/// Panics if any two runs disagree on the digest — the fast path would
/// then not be bit-identical to the baseline planner (or a worker
/// count would be perturbing plans), and a benchmark must not report
/// throughput for results that are wrong.
pub fn run_planner_figs(seed: u64, n_pairs: usize, worker_counts: &[usize]) -> PlannerFigures {
    let map = CityArchetype::SurveyDowntown.generate(seed);
    let city = map.name().to_string();
    let buildings = map.len();
    let exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed,
            ..ExperimentConfig::default()
        },
    );
    let mut rng = SimRng::new(seed ^ 0x504C_414E);
    let pairs: Vec<(u32, u32)> = (0..n_pairs)
        .map(|_| {
            (
                rng.below(buildings as u64) as u32,
                rng.below(buildings as u64) as u32,
            )
        })
        .collect();

    // Unmeasured warm-up: settle the allocator and fault in every
    // lazily-touched table before the first timed run.
    plan_chunk(&exp, &pairs[..pairs.len().min(500)], PlannerMode::Warm);

    let mut runs = Vec::new();
    for mode in [PlannerMode::Baseline, PlannerMode::Cold, PlannerMode::Warm] {
        for &workers in worker_counts {
            runs.push(run_mode(&exp, &pairs, mode, workers));
        }
    }
    let digests: Vec<u64> = runs.iter().map(|r| r.digest).collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "planner modes disagree: digests {digests:x?}"
    );
    PlannerFigures {
        city,
        buildings,
        pairs: n_pairs,
        runs,
    }
}

/// Serializes the sweep for `BENCH_planner.json`.
pub fn to_json(figs: &PlannerFigures) -> Value {
    Value::Obj(vec![
        ("city".into(), Value::Str(figs.city.clone())),
        ("buildings".into(), Value::Int(figs.buildings as i64)),
        ("pairs".into(), Value::Int(figs.pairs as i64)),
        (
            "runs".into(),
            Value::Arr(
                figs.runs
                    .iter()
                    .map(|r| {
                        Value::Obj(vec![
                            ("mode".into(), Value::Str(r.mode.label().into())),
                            ("workers".into(), Value::Int(r.workers as i64)),
                            ("plans_per_sec".into(), Value::Num(r.plans_per_sec)),
                            ("digest".into(), Value::Str(format!("{:016x}", r.digest))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_agrees_across_modes_and_serializes() {
        let figs = run_planner_figs(7, 64, &[1, 2]);
        assert_eq!(figs.runs.len(), 6, "3 modes × 2 worker counts");
        let first = figs.runs[0].digest;
        assert!(
            figs.runs.iter().all(|r| r.digest == first),
            "run_planner_figs must have asserted digest agreement"
        );
        let rendered = to_json(&figs).render();
        assert!(rendered.contains("\"plans_per_sec\""));
        assert!(rendered.contains("\"baseline\""));
        assert!(rendered.contains("\"warm\""));
    }
}
