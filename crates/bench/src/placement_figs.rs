//! Deployment-optimization sweep: where should the hardened
//! relay/postbox sites go?
//!
//! For each survey archetype the sweep builds one [`Evaluator`] over a
//! healthy world and a district-blackout world, then runs the three
//! placement strategies of `citymesh-place` — uniform random (the
//! baseline any optimizer must beat), the greedy k-median
//! constructive, and Metropolis simulated annealing — under the same
//! site budget and the same seeded workload. The headline comparison
//! is **blackout delivery rate**: hardened sites earn their budget
//! when the lights are out, not when the mesh is healthy.
//!
//! Determinism is load-bearing twice over: every strategy is a pure
//! function of `(seed, k)`, and after the anneal the winning
//! deployment is re-scored through *fresh* evaluators at several
//! fleet worker counts — the sweep asserts all of them reproduce the
//! anneal's score digest bit-for-bit.
//!
//! The data lands in `BENCH_placement.json` via [`to_json`]; the
//! binary renders the per-archetype strategy comparison via
//! [`placement_svg`].

use citymesh_core::{ExperimentConfig, FaultScenario};
use citymesh_fleet::FlowModel;
use citymesh_map::CityArchetype;
use citymesh_place::{
    Annealer, Evaluator, GreedyPlacer, Metric, Objective, PlacementOptimizer, RandomPlacer,
    ScenarioSpec, Score,
};

use crate::sweep::SweepTimer;
use crate::text::json::Value;

/// Knobs of one placement sweep.
#[derive(Clone, Debug)]
pub struct PlacementSweepConfig {
    /// Archetypes to optimize over.
    pub archetypes: Vec<CityArchetype>,
    /// Hardened sites per deployment (the budget).
    pub k: usize,
    /// Flows per evaluation, per scenario world.
    pub flows: usize,
    /// Annealer proposal iterations.
    pub anneal_iters: usize,
    /// Districts darkened by the blackout scenario.
    pub blackout_districts: usize,
    /// Blackout district radius, metres.
    pub blackout_radius_m: f64,
    /// Fleet worker counts the annealed winner is re-scored at (all
    /// must reproduce the same score digest).
    pub worker_checks: Vec<usize>,
}

impl PlacementSweepConfig {
    /// The full four-archetype sweep.
    pub fn full() -> Self {
        PlacementSweepConfig {
            archetypes: CityArchetype::survey_areas().to_vec(),
            k: 4,
            flows: 320,
            anneal_iters: 40,
            blackout_districts: 2,
            blackout_radius_m: 150.0,
            worker_checks: vec![1, 4, 8],
        }
    }

    /// The CI smoke sweep: downtown only, a short anneal.
    pub fn smoke() -> Self {
        PlacementSweepConfig {
            archetypes: vec![CityArchetype::SurveyDowntown],
            flows: 160,
            anneal_iters: 10,
            ..PlacementSweepConfig::full()
        }
    }
}

/// One strategy's result on one archetype.
#[derive(Clone, Debug)]
pub struct PlacementCell {
    /// Strategy label (`random`, `greedy`, `annealed`).
    pub strategy: &'static str,
    /// The chosen site buildings, ascending.
    pub sites: Vec<u32>,
    /// Scalar objective value (mean delivery rate; higher is better).
    pub value: f64,
    /// Delivery rate in the healthy world.
    pub healthy_delivery: f64,
    /// Delivery rate in the blackout world.
    pub blackout_delivery: f64,
    /// p99 first-delivery latency in the blackout world, ms.
    pub blackout_p99_ms: f64,
    /// Full fleet evaluations this strategy spent.
    pub evaluations: u64,
    /// Annealer proposals evaluated (0 for the constructives).
    pub proposed_moves: u64,
    /// Annealer proposals accepted (0 for the constructives).
    pub accepted_moves: u64,
    /// The deterministic score digest.
    pub digest: u64,
}

/// One archetype's strategy comparison.
#[derive(Clone, Debug)]
pub struct PlacementRow {
    /// Archetype label.
    pub label: &'static str,
    /// Buildings in the map.
    pub buildings: usize,
    /// Candidate site buildings (those owning at least one AP).
    pub candidates: usize,
    /// Site budget.
    pub k: usize,
    /// Strategy results, in `random, greedy, annealed` order.
    pub cells: Vec<PlacementCell>,
    /// Cached routes evicted by incremental invalidation across the
    /// whole archetype's search.
    pub routes_evicted: u64,
    /// Total fleet evaluations across the whole archetype's search.
    pub evaluations: u64,
    /// Wall time of this archetype, ms.
    pub wall_ms: f64,
    /// Process peak RSS after this archetype, KiB (0 where
    /// unavailable).
    pub peak_rss_kb: u64,
}

impl PlacementRow {
    /// The cell for `strategy`, if the sweep ran it.
    pub fn cell(&self, strategy: &str) -> Option<&PlacementCell> {
        self.cells.iter().find(|c| c.strategy == strategy)
    }

    /// Annealed minus random blackout delivery rate — the headline
    /// "did the optimizer earn its budget" gap.
    pub fn blackout_gap(&self) -> f64 {
        let annealed = self.cell("annealed").map(|c| c.blackout_delivery);
        let random = self.cell("random").map(|c| c.blackout_delivery);
        annealed.unwrap_or(0.0) - random.unwrap_or(0.0)
    }
}

/// All archetypes of one placement sweep.
pub struct PlacementFigures {
    /// Per-archetype comparisons, in sweep order.
    pub rows: Vec<PlacementRow>,
    /// Worker counts every annealed winner's digest was verified at.
    pub worker_checks: Vec<usize>,
}

impl PlacementFigures {
    /// Archetypes where annealed strictly beats random on blackout
    /// delivery rate.
    pub fn archetypes_where_annealed_beats_random(&self) -> usize {
        self.rows.iter().filter(|r| r.blackout_gap() > 0.0).count()
    }
}

fn world_field(score: &Score, label: &str, f: impl Fn(&citymesh_place::WorldScore) -> f64) -> f64 {
    score
        .worlds
        .iter()
        .find(|w| w.label == label)
        .map(f)
        .unwrap_or(0.0)
}

fn evaluator(
    archetype: CityArchetype,
    seed: u64,
    cfg: &PlacementSweepConfig,
    workers: usize,
) -> Evaluator {
    Evaluator::new(
        archetype.generate(seed),
        ExperimentConfig {
            seed,
            ..ExperimentConfig::default()
        },
        &[
            ScenarioSpec::healthy(),
            ScenarioSpec::faulted(
                "blackout",
                FaultScenario::district_blackouts(cfg.blackout_districts, cfg.blackout_radius_m),
            ),
        ],
        Objective {
            metric: Metric::DeliveryRate,
            flows: cfg.flows,
            model: FlowModel::UniformPairs { rate_hz: 200.0 },
            seed,
            workers,
        },
    )
    .expect("placement sweep objective is well-formed")
}

/// Runs the sweep.
///
/// # Panics
/// Panics when the annealed winner's score digest fails to reproduce
/// at any checked worker count — the subsystem's determinism headline.
pub fn run_placement_figs(seed: u64, cfg: &PlacementSweepConfig) -> PlacementFigures {
    let mut rows = Vec::new();
    for &archetype in &cfg.archetypes {
        let timer = SweepTimer::start();
        let mut ev = evaluator(
            archetype,
            seed,
            cfg,
            cfg.worker_checks.first().copied().unwrap_or(1),
        );
        let annealer = Annealer {
            iters: cfg.anneal_iters,
            ..Annealer::default()
        };
        let strategies: [&dyn PlacementOptimizer; 3] = [&RandomPlacer, &GreedyPlacer, &annealer];
        let mut cells = Vec::new();
        for strategy in strategies {
            let r = strategy
                .optimize(&mut ev, cfg.k, seed)
                .expect("placement sweep k fits every archetype");
            cells.push(PlacementCell {
                strategy: strategy.name(),
                sites: r.deployment.sites().to_vec(),
                value: r.score.value,
                healthy_delivery: world_field(&r.score, "healthy", |w| w.delivery_rate),
                blackout_delivery: world_field(&r.score, "blackout", |w| w.delivery_rate),
                blackout_p99_ms: world_field(&r.score, "blackout", |w| w.p99_latency_ms),
                evaluations: r.evaluations,
                proposed_moves: r.proposed_moves,
                accepted_moves: r.accepted_moves,
                digest: r.score.digest,
            });
        }
        // Determinism gate: the annealed winner, re-scored through a
        // fresh evaluator at every checked worker count, must
        // reproduce the exact score digest the search recorded.
        let annealed = cells.last().expect("three strategies ran");
        let winner = citymesh_place::Deployment::new(annealed.sites.clone(), cfg.k)
            .expect("recorded sites form a valid deployment");
        for &w in &cfg.worker_checks {
            let fresh = evaluator(archetype, seed, cfg, w).score(&winner);
            assert_eq!(
                fresh.digest,
                annealed.digest,
                "{}: annealed score digest must reproduce at {w} workers",
                archetype.label()
            );
        }
        let (wall_ms, peak_rss_kb) = timer.point_stats();
        rows.push(PlacementRow {
            label: archetype.label(),
            buildings: ev.map().len(),
            candidates: ev.candidates().len(),
            k: cfg.k,
            cells,
            routes_evicted: ev.routes_evicted(),
            evaluations: ev.evaluations(),
            wall_ms,
            peak_rss_kb,
        });
    }
    PlacementFigures {
        rows,
        worker_checks: cfg.worker_checks.clone(),
    }
}

/// Serializes the sweep for `BENCH_placement.json`.
pub fn to_json(figs: &PlacementFigures) -> Value {
    Value::Obj(vec![
        (
            "worker_checks".into(),
            Value::Arr(
                figs.worker_checks
                    .iter()
                    .map(|&w| Value::Int(w as i64))
                    .collect(),
            ),
        ),
        (
            "rows".into(),
            Value::Arr(
                figs.rows
                    .iter()
                    .map(|r| {
                        Value::Obj(vec![
                            ("label".into(), Value::Str(r.label.into())),
                            ("buildings".into(), Value::Int(r.buildings as i64)),
                            ("candidates".into(), Value::Int(r.candidates as i64)),
                            ("k".into(), Value::Int(r.k as i64)),
                            ("blackout_gap".into(), Value::Num(r.blackout_gap())),
                            ("routes_evicted".into(), Value::Int(r.routes_evicted as i64)),
                            ("evaluations".into(), Value::Int(r.evaluations as i64)),
                            ("wall_ms".into(), Value::Num(r.wall_ms)),
                            ("peak_rss_kb".into(), Value::Int(r.peak_rss_kb as i64)),
                            (
                                "strategies".into(),
                                Value::Arr(
                                    r.cells
                                        .iter()
                                        .map(|c| {
                                            Value::Obj(vec![
                                                ("strategy".into(), Value::Str(c.strategy.into())),
                                                (
                                                    "sites".into(),
                                                    Value::Arr(
                                                        c.sites
                                                            .iter()
                                                            .map(|&s| Value::Int(s as i64))
                                                            .collect(),
                                                    ),
                                                ),
                                                ("value".into(), Value::Num(c.value)),
                                                (
                                                    "healthy_delivery".into(),
                                                    Value::Num(c.healthy_delivery),
                                                ),
                                                (
                                                    "blackout_delivery".into(),
                                                    Value::Num(c.blackout_delivery),
                                                ),
                                                (
                                                    "blackout_p99_ms".into(),
                                                    Value::Num(c.blackout_p99_ms),
                                                ),
                                                (
                                                    "evaluations".into(),
                                                    Value::Int(c.evaluations as i64),
                                                ),
                                                (
                                                    "proposed_moves".into(),
                                                    Value::Int(c.proposed_moves as i64),
                                                ),
                                                (
                                                    "accepted_moves".into(),
                                                    Value::Int(c.accepted_moves as i64),
                                                ),
                                                (
                                                    "digest".into(),
                                                    Value::Str(format!("{:016x}", c.digest)),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Grouped bars of blackout delivery rate per archetype × strategy,
/// with the healthy-world rate of the annealed deployment as a dashed
/// reference line per group.
pub fn placement_svg(figs: &PlacementFigures) -> String {
    const W: f64 = 460.0;
    const H: f64 = 280.0;
    const M: f64 = 48.0;
    const COLORS: [&str; 3] = ["#bbbbbb", "#6699cc", "#cc3333"];
    let groups = figs.rows.len().max(1) as f64;
    let group_w = (W - 2.0 * M) / groups;
    let bar_w = group_w / 4.0;
    let y = |v: f64| H - M - v.clamp(0.0, 1.0) * (H - 2.0 * M);
    let mut s = String::new();
    s.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\" font-size=\"11\">\n"
    ));
    s.push_str(&format!(
        "<text x=\"{}\" y=\"16\" text-anchor=\"middle\" font-size=\"13\">blackout delivery \
         rate by placement strategy</text>\n",
        W / 2.0
    ));
    s.push_str(&format!(
        "<line x1=\"{M}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" stroke=\"#444\"/>\n\
         <line x1=\"{M}\" y1=\"{M}\" x2=\"{M}\" y2=\"{0}\" stroke=\"#444\"/>\n",
        H - M,
        W - M
    ));
    for tick in [0.0, 0.25, 0.5, 0.75, 1.0] {
        s.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{tick:.2}</text>\n",
            M - 4.0,
            y(tick) + 4.0
        ));
    }
    for (g, row) in figs.rows.iter().enumerate() {
        let gx = M + g as f64 * group_w;
        for (i, cell) in row.cells.iter().enumerate() {
            let x = gx + (i as f64 + 0.5) * bar_w;
            let top = y(cell.blackout_delivery);
            s.push_str(&format!(
                "<rect x=\"{x:.1}\" y=\"{top:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                 fill=\"{}\"><title>{} {}: blackout {:.3}</title></rect>\n",
                bar_w * 0.9,
                (H - M) - top,
                COLORS[i.min(COLORS.len() - 1)],
                row.label,
                cell.strategy,
                cell.blackout_delivery
            ));
        }
        if let Some(annealed) = row.cell("annealed") {
            let hy = y(annealed.healthy_delivery);
            s.push_str(&format!(
                "<line x1=\"{:.1}\" y1=\"{hy:.1}\" x2=\"{:.1}\" y2=\"{hy:.1}\" \
                 stroke=\"#338833\" stroke-dasharray=\"3,2\"/>\n",
                gx + 0.25 * bar_w,
                gx + 3.65 * bar_w
            ));
        }
        s.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
            gx + group_w / 2.0,
            H - M + 14.0,
            row.label
        ));
    }
    for (i, name) in ["random", "greedy", "annealed"].iter().enumerate() {
        let lx = M + i as f64 * 90.0;
        s.push_str(&format!(
            "<rect x=\"{lx:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{}\"/>\n\
             <text x=\"{:.1}\" y=\"{:.1}\">{name}</text>\n",
            H - 18.0,
            COLORS[i],
            lx + 14.0,
            H - 9.0
        ));
    }
    s.push_str("</svg>\n");
    s
}
