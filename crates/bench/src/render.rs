//! Map renders: Figure 5 (footprints + AP fabric) and Figure 7 (one
//! delivery with its conduit membership), as SVG and terminal ASCII.

use citymesh_core::{reconstruct_conduits, Ap, ApGraph, ApRole, DeliveryReport};
use citymesh_geo::{Point, Rect};
use citymesh_map::CityMap;
use citymesh_net::CityMeshHeader;

/// Builds the Figure-5 SVG: building footprints in red, APs as white
/// dots, gray links between APs within range (the paper renders a
/// downtown section exactly this way).
pub fn fig5_svg(map: &CityMap, aps: &[Ap], apg: &ApGraph) -> String {
    let mut svg = SvgCanvas::new(map.bounds());
    svg.comment("Figure 5: downtown section, footprints + AP mesh");
    for b in map.buildings() {
        svg.polygon(b.footprint.ring(), "#b03030", "#802020", 0.5);
    }
    // Links first so dots draw on top.
    for ap in aps {
        for e in apg.graph().neighbors(ap.id) {
            if e.to > ap.id {
                svg.line(ap.pos, apg.position(e.to), "#9a9a9a", 0.4);
            }
        }
    }
    for ap in aps {
        svg.circle(ap.pos, 1.6, "#ffffff", "#555555");
    }
    svg.finish()
}

/// Builds the Figure-7 SVG: the chosen building route in green, APs
/// colored by role — light blue for relays (inside the conduit), red
/// for heard-but-silent, light gray for untouched — and the conduit
/// outlines.
pub fn fig7_svg(
    map: &CityMap,
    apg: &ApGraph,
    header: &CityMeshHeader,
    report: &DeliveryReport,
) -> String {
    let mut svg = SvgCanvas::new(map.bounds());
    svg.comment("Figure 7: one simulated delivery");
    for b in map.buildings() {
        svg.polygon(b.footprint.ring(), "#d8d8d8", "#bbbbbb", 0.3);
    }
    let conduits = reconstruct_conduits(map, &header.waypoints, header.conduit_width_m());
    for c in &conduits {
        svg.polygon(&c.corners(), "none", "#30a030", 1.0);
    }
    // Route spine.
    let spine: Vec<Point> = header
        .waypoints
        .iter()
        .map(|w| map.building(*w).expect("valid waypoint").centroid)
        .collect();
    svg.polyline(&spine, "#108010", 2.0);

    for id in 0..apg.len() as u32 {
        let (fill, r) = match report.roles[id as usize] {
            ApRole::Relayed => ("#58b8e8", 2.2),
            ApRole::HeardOnly => ("#d04040", 1.8),
            ApRole::Silent => ("#eeeeee", 1.0),
        };
        svg.circle(apg.position(id), r, fill, "none");
    }
    svg.finish()
}

/// A compact terminal render: buildings as `#`, the route as `*`.
/// Width is in character cells; aspect ratio follows the map.
pub fn ascii_map(map: &CityMap, route: &[u32], width: usize) -> String {
    let bounds = map.bounds();
    let width = width.max(10);
    let height =
        ((bounds.height() / bounds.width().max(1.0)) * width as f64 * 0.5).round() as usize;
    let height = height.clamp(5, 200);
    let mut grid = vec![vec![' '; width]; height];
    let cell = |p: Point| -> (usize, usize) {
        let cx =
            ((p.x - bounds.min.x) / bounds.width().max(1e-9) * (width - 1) as f64).round() as usize;
        let cy = ((p.y - bounds.min.y) / bounds.height().max(1e-9) * (height - 1) as f64).round()
            as usize;
        (cx.min(width - 1), (height - 1) - cy.min(height - 1))
    };
    for b in map.buildings() {
        let (cx, cy) = cell(b.centroid);
        grid[cy][cx] = '#';
    }
    for id in route {
        if let Some(b) = map.building(*id) {
            let (cx, cy) = cell(b.centroid);
            grid[cy][cx] = '*';
        }
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Minimal SVG document builder with a y-flip (map y grows north, SVG
/// y grows down).
struct SvgCanvas {
    bounds: Rect,
    body: String,
}

impl SvgCanvas {
    fn new(bounds: Rect) -> Self {
        SvgCanvas {
            bounds,
            body: String::new(),
        }
    }

    fn tx(&self, p: Point) -> (f64, f64) {
        (p.x - self.bounds.min.x, self.bounds.max.y - p.y)
    }

    fn comment(&mut self, text: &str) {
        self.body.push_str(&format!("<!-- {text} -->\n"));
    }

    fn polygon(&mut self, ring: &[Point], fill: &str, stroke: &str, stroke_w: f64) {
        let pts: Vec<String> = ring
            .iter()
            .map(|p| {
                let (x, y) = self.tx(*p);
                format!("{x:.1},{y:.1}")
            })
            .collect();
        self.body.push_str(&format!(
            "<polygon points=\"{}\" fill=\"{fill}\" stroke=\"{stroke}\" stroke-width=\"{stroke_w}\"/>\n",
            pts.join(" ")
        ));
    }

    fn polyline(&mut self, pts: &[Point], stroke: &str, stroke_w: f64) {
        let pts: Vec<String> = pts
            .iter()
            .map(|p| {
                let (x, y) = self.tx(*p);
                format!("{x:.1},{y:.1}")
            })
            .collect();
        self.body.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{stroke}\" stroke-width=\"{stroke_w}\"/>\n",
            pts.join(" ")
        ));
    }

    fn line(&mut self, a: Point, b: Point, stroke: &str, stroke_w: f64) {
        let (x1, y1) = self.tx(a);
        let (x2, y2) = self.tx(b);
        self.body.push_str(&format!(
            "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" stroke=\"{stroke}\" stroke-width=\"{stroke_w}\"/>\n"
        ));
    }

    fn circle(&mut self, center: Point, r: f64, fill: &str, stroke: &str) {
        let (cx, cy) = self.tx(center);
        self.body.push_str(&format!(
            "<circle cx=\"{cx:.1}\" cy=\"{cy:.1}\" r=\"{r:.1}\" fill=\"{fill}\" stroke=\"{stroke}\" stroke-width=\"0.3\"/>\n"
        ));
    }

    fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {:.0} {:.0}\" \
             width=\"1000\">\n<rect width=\"100%\" height=\"100%\" fill=\"#fafafa\"/>\n{}</svg>\n",
            self.bounds.width(),
            self.bounds.height(),
            self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_core::{
        compress_route, place_aps, plan_route, postbox_ap, simulate_delivery, BuildingGraph,
        BuildingGraphParams, DeliveryParams,
    };
    use citymesh_map::CityArchetype;
    use citymesh_simcore::SimRng;

    fn setup() -> (CityMap, Vec<Ap>, ApGraph) {
        let map = CityArchetype::SurveyDowntown.generate(2);
        let mut rng = SimRng::new(2);
        let aps = place_aps(&map, 200.0, &mut rng);
        let apg = ApGraph::build(&aps, 50.0);
        (map, aps, apg)
    }

    #[test]
    fn fig5_svg_is_well_formed() {
        let (map, aps, apg) = setup();
        let svg = fig5_svg(&map, &aps, &apg);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), aps.len());
        assert!(svg.matches("<polygon").count() >= map.len());
        assert!(svg.contains("<line"), "AP links must render");
    }

    #[test]
    fn fig7_svg_colors_roles() {
        let (map, aps, apg) = setup();
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        let route = plan_route(&bg, 0, (map.len() - 1) as u32).unwrap();
        let compressed = compress_route(&bg, &route, 50.0).expect("valid width and route");
        let header = CityMeshHeader::new(1, 50.0, compressed.waypoints);
        let src = postbox_ap(&aps, &map, 0).unwrap();
        let mut rng = SimRng::new(3);
        let report = simulate_delivery(
            &map,
            &apg,
            &header,
            src,
            DeliveryParams::default(),
            &mut rng,
        );
        let svg = fig7_svg(&map, &apg, &header, &report);
        assert!(svg.contains("#58b8e8"), "relays rendered");
        assert!(svg.contains("<polyline"), "route spine rendered");
        assert_eq!(svg.matches("<circle").count(), apg.len());
    }

    #[test]
    fn ascii_map_marks_route() {
        let (map, _, _) = setup();
        let out = ascii_map(&map, &[0, 5, 10], 60);
        assert!(out.contains('#'));
        assert!(out.contains('*'));
        let widths: std::collections::HashSet<usize> = out.lines().map(|l| l.len()).collect();
        assert_eq!(widths.len(), 1, "all rows equal width");
    }
}
