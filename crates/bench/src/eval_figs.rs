//! §4 evaluation reproductions: Figure 6 and the header statistics.

use citymesh_core::{
    compress_route, plan_route, BuildingGraph, BuildingGraphParams, CityExperiment, CityResult,
    ExperimentConfig,
};
use citymesh_map::{synth, CityArchetype, CityParams};
use citymesh_net::CityMeshHeader;
use citymesh_simcore::{split_seed, SimRng};

/// Figure-6 data: one [`CityResult`] per city archetype.
#[derive(Clone, Debug)]
pub struct Fig6 {
    /// Per-city results, in [`CityArchetype::cities`] order.
    pub cities: Vec<CityResult>,
}

/// The §4 aggregate header statistics across all cities.
#[derive(Clone, Debug, PartialEq)]
pub struct HeaderStats {
    /// Median compressed-route size, bits (paper: 175).
    pub median_bits: usize,
    /// 90th-percentile size, bits (paper: 225).
    pub p90_bits: usize,
    /// Median waypoint count behind those sizes.
    pub median_waypoints: usize,
    /// Number of routes in the sample.
    pub routes: usize,
}

/// The experiment configuration used for the headline figures, scaled
/// by `(reachability_pairs, delivery_pairs)`.
pub fn paper_config(
    seed: u64,
    reachability_pairs: usize,
    delivery_pairs: usize,
) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        reachability_pairs,
        delivery_pairs,
        ..ExperimentConfig::default()
    }
}

/// Runs Figure 6 across the eight city archetypes, one thread per
/// city (each city run is independent and deterministic in the seed,
/// so parallelism cannot change any number). With
/// `reachability_pairs = 1000, delivery_pairs = 50` this is the
/// paper's exact protocol; tests pass smaller numbers.
pub fn run_fig6(seed: u64, reachability_pairs: usize, delivery_pairs: usize) -> Fig6 {
    let config = paper_config(seed, reachability_pairs, delivery_pairs);
    let archetypes = CityArchetype::cities();
    let mut cities: Vec<Option<CityResult>> = (0..archetypes.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (slot, arch) in cities.iter_mut().zip(archetypes) {
            scope.spawn(move |_| {
                *slot = Some(CityExperiment::prepare(arch.generate(seed), config).run());
            });
        }
    })
    .expect("city worker panicked");
    Fig6 {
        cities: cities
            .into_iter()
            .map(|c| c.expect("every slot filled"))
            .collect(),
    }
}

impl Fig6 {
    /// Pools every successful route across cities and computes the §4
    /// header statistics.
    pub fn header_stats(&self) -> Option<HeaderStats> {
        let mut bits: Vec<usize> = Vec::new();
        let mut waypoints: Vec<usize> = Vec::new();
        for city in &self.cities {
            for o in &city.outcomes {
                if o.route_found {
                    bits.push(o.route_bits);
                    waypoints.push(o.waypoints);
                }
            }
        }
        if bits.is_empty() {
            return None;
        }
        bits.sort_unstable();
        waypoints.sort_unstable();
        let q = |v: &[usize], f: f64| v[((v.len() - 1) as f64 * f).round() as usize];
        Some(HeaderStats {
            median_bits: q(&bits, 0.5),
            p90_bits: q(&bits, 0.9),
            median_waypoints: q(&waypoints, 0.5),
            routes: bits.len(),
        })
    }

    /// Median transmission overhead pooled across cities (paper: ~13×).
    pub fn pooled_median_overhead(&self) -> Option<f64> {
        let mut all: Vec<f64> = self
            .cities
            .iter()
            .flat_map(|c| c.outcomes.iter().filter_map(|o| o.overhead))
            .collect();
        if all.is_empty() {
            return None;
        }
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite overheads"));
        Some(all[(all.len() - 1) / 2])
    }
}

/// The §4 header claim at the paper's true city scale.
///
/// Our Figure-6 archetypes span 1.5 km and hold ~1–2k buildings, which
/// yields 11-bit IDs and ~85-bit medians. The paper's cities hold tens
/// of thousands of buildings over several kilometers: this experiment
/// generates a metropolitan-scale map (~20k+ buildings, 15-bit IDs)
/// and measures the same statistic, where the absolute-encoding cost
/// formula lands on the paper's numbers (median 175 / 90%ile 225).
pub fn header_stats_at_scale(seed: u64, routes: usize) -> HeaderStats {
    let params = CityParams {
        name: "metropolis".into(),
        width_m: 3600.0,
        height_m: 3600.0,
        ..CityArchetype::NewYork.params()
    };
    let map = synth::generate(&params, seed);
    let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
    let mut rng = SimRng::new(split_seed(seed, 0x1A26E));
    let n = map.len() as u64;

    let mut bits = Vec::new();
    let mut waypoints = Vec::new();
    let mut guard = 0;
    while bits.len() < routes && guard < routes * 20 {
        guard += 1;
        let src = rng.below(n) as u32;
        let dst = rng.below(n) as u32;
        if src == dst {
            continue;
        }
        let Ok(route) = plan_route(&bg, src, dst) else {
            continue;
        };
        let compressed = compress_route(&bg, &route, 50.0).expect("valid width and route");
        let header = CityMeshHeader::new(1, 50.0, compressed.waypoints.clone());
        bits.push(header.route_bits());
        waypoints.push(compressed.len());
    }
    bits.sort_unstable();
    waypoints.sort_unstable();
    let q = |v: &[usize], f: f64| {
        if v.is_empty() {
            0
        } else {
            v[((v.len() - 1) as f64 * f).round() as usize]
        }
    };
    HeaderStats {
        median_bits: q(&bits, 0.5),
        p90_bits: q(&bits, 0.9),
        median_waypoints: q(&waypoints, 0.5),
        routes: bits.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fig6() -> Fig6 {
        run_fig6(3, 150, 8)
    }

    #[test]
    fn eight_cities_with_sane_metrics() {
        let f = small_fig6();
        assert_eq!(f.cities.len(), 8);
        for c in &f.cities {
            assert!(c.buildings > 300, "{}: {} buildings", c.city, c.buildings);
            assert!(
                c.aps > c.buildings,
                "{}: APs should outnumber buildings",
                c.city
            );
            assert!(
                (0.0..=1.0).contains(&c.reachability),
                "{} reachability {}",
                c.city,
                c.reachability
            );
            assert!((0.0..=1.0).contains(&c.deliverability));
        }
    }

    #[test]
    fn most_cities_have_high_deliverability() {
        // Paper: "most cities surveyed having high deliverability".
        let f = small_fig6();
        let high = f.cities.iter().filter(|c| c.deliverability >= 0.75).count();
        assert!(high >= 5, "only {high}/8 cities had deliverability ≥ 75%");
    }

    #[test]
    fn dc_fractures_more_than_chicago() {
        // Paper: obstacles "fracture some cities, like Washington
        // D.C., into multiple islands".
        let f = small_fig6();
        let by_name = |n: &str| f.cities.iter().find(|c| c.city == n).unwrap();
        let dc = by_name("washington-dc");
        let chicago = by_name("chicago");
        assert!(dc.components > chicago.components);
        assert!(dc.reachability < chicago.reachability);
    }

    #[test]
    fn header_stats_in_paper_ballpark() {
        let f = small_fig6();
        let h = f.header_stats().expect("routes were found");
        assert!(h.routes > 20);
        // Paper: 175 / 225 bits. Same order of magnitude required
        // (absolute values depend on city size via id width).
        assert!(
            (40..=400).contains(&h.median_bits),
            "median bits {}",
            h.median_bits
        );
        assert!(h.p90_bits >= h.median_bits);
        assert!(h.median_waypoints >= 2);
    }

    #[test]
    fn metropolitan_header_stats_match_paper() {
        // At the paper's city scale the absolute numbers, not just the
        // shape, should land near 175/225 bits.
        let h = header_stats_at_scale(3, 15);
        assert!(h.routes >= 10);
        assert!(
            (110..=260).contains(&h.median_bits),
            "metropolitan median bits {} too far from the paper's 175",
            h.median_bits
        );
        assert!(h.p90_bits >= h.median_bits);
    }

    #[test]
    fn pooled_overhead_in_paper_ballpark() {
        let f = small_fig6();
        let overhead = f.pooled_median_overhead().expect("some deliveries");
        // Paper: 13×. Anything in the high-single-digit to tens band
        // preserves the claim's shape.
        assert!(
            (2.0..40.0).contains(&overhead),
            "pooled overhead {overhead}"
        );
    }
}
