//! Telemetry sweep (`figures -- telemetry`).
//!
//! The observability layer's contract is "measure everything, perturb
//! nothing", and this sweep is where that contract is demonstrated on
//! real workloads rather than unit fixtures. Two phases:
//!
//! 1. **Healthy**: the exact fleet-smoke recipe (downtown hotspot
//!    workload) runs once plain and once fully traced; the aggregate
//!    digests must be bit-identical. At the CI smoke's `(seed, flows)`
//!    this digest is the pinned golden 500-flow digest, so the check
//!    proves tracing cannot move a pinned result.
//! 2. **Faulted**: the same workload against a 25% i.i.d. AP-casualty
//!    scenario with the retry ladder on, traced at every worker count.
//!    Digests, metric fingerprints, and postmortem sets must agree
//!    across worker counts and with the untraced faulted run.
//!
//! The per-rung latency/overhead breakdown — what each extra ladder
//! rung buys and what it costs — lands in `BENCH_telemetry.json` via
//! [`to_json`]; one captured flow trace is exported separately by the
//! `figures` binary as `figures/postmortem_sample.json`.

use citymesh_core::{CityExperiment, ExperimentConfig, FaultScenario, RetryPolicy};
use citymesh_fleet::{
    generate_flows, run_fleet, run_fleet_traced, FleetConfig, FlowModel, WorkloadConfig,
};
use citymesh_map::CityArchetype;
use citymesh_telemetry::{
    metrics as tm, rung_delivery_counter, rung_latency_histogram, rung_overhead_histogram,
    Postmortem, Rung, TelemetryConfig,
};

use crate::text::json::Value;

/// Trace sampling period used by the sweep: every 16th flow plus every
/// failure/retry. Dense enough that the healthy phase exercises the
/// ring on ordinary flows, sparse enough that capture stays far from
/// dominating a 500-flow run.
pub const SAMPLE_EVERY: u64 = 16;

/// Per-rung delivery statistics from the faulted run's metric registry.
pub struct RungStats {
    /// Rung label (`first`, `resend`, `widen`, `replan`).
    pub rung: &'static str,
    /// Flows this rung delivered.
    pub deliveries: u64,
    /// Median end-to-end latency of those deliveries, ms.
    pub latency_ms_p50: Option<f64>,
    /// 90th-percentile latency of those deliveries, ms.
    pub latency_ms_p90: Option<f64>,
    /// Mean transmission overhead (broadcasts / ideal hops).
    pub mean_overhead: Option<f64>,
}

/// Everything one telemetry sweep measures.
pub struct TelemetryFigures {
    /// Root seed of the sweep.
    pub seed: u64,
    /// Generated city name.
    pub city: String,
    /// Building count.
    pub buildings: usize,
    /// Flows in the workload.
    pub flows: usize,
    /// Trace sampling period ([`SAMPLE_EVERY`]).
    pub sample_every: u64,
    /// Healthy-phase digest, identical plain vs traced (the golden
    /// 500-flow digest at the CI smoke's seed and flow count).
    pub healthy_digest: u64,
    /// Configured i.i.d. AP-failure probability of the faulted phase.
    pub failure_p: f64,
    /// Faulted-phase digest, identical across worker counts and
    /// identical plain vs traced.
    pub faulted_digest: u64,
    /// Fingerprint of the materialized casualty map.
    pub fault_fingerprint: u64,
    /// Fingerprint of the merged metric registry (faulted run),
    /// identical across worker counts.
    pub metrics_fingerprint: u64,
    /// Every counter of the faulted run, registry order.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-rung breakdown of the faulted run.
    pub rungs: Vec<RungStats>,
    /// Postmortem traces the faulted run captured.
    pub postmortems: usize,
    /// Trace events evicted from full rings (faulted run).
    pub trace_dropped: u64,
    /// Highest ring occupancy any tracer reached (faulted run).
    pub ring_high_water: u64,
    /// One exported postmortem, rendered JSON: an exhausted flow when
    /// the scenario produced one, else a ladder-recovered flow.
    pub sample_postmortem: Option<String>,
}

/// Runs the sweep at one `(seed, flows, failure_p)` point.
///
/// # Panics
/// Panics if telemetry breaks any determinism invariant: the traced
/// healthy digest diverging from the plain one, traced faulted runs
/// disagreeing with each other or with the untraced faulted run
/// across `worker_counts`, or metric fingerprints / postmortem sets
/// varying with worker count. A benchmark that measures a perturbed
/// system must not report at all.
pub fn run_telemetry(
    seed: u64,
    flows: usize,
    failure_p: f64,
    worker_counts: &[usize],
) -> TelemetryFigures {
    assert!(!worker_counts.is_empty(), "need at least one worker count");
    let map = CityArchetype::SurveyDowntown.generate(seed);
    let city = map.name().to_string();
    let buildings = map.len();
    // The fleet smoke's exact workload recipe: at (seed 2024, 500
    // flows) the healthy digest below is CI's pinned golden digest.
    let model = FlowModel::Hotspot {
        hotspots: 8,
        exponent: 1.1,
        rate_hz: 500.0,
    };
    let workload = generate_flows(buildings, &WorkloadConfig { flows, model, seed });
    let tel = TelemetryConfig::full(SAMPLE_EVERY);

    // Phase 1 — healthy: tracing on vs off, same digest.
    let exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed,
            ..ExperimentConfig::default()
        },
    );
    let base_cfg = FleetConfig {
        workers: worker_counts[0],
        seed,
        ..FleetConfig::default()
    };
    let plain = run_fleet(&exp, &workload, &base_cfg);
    let (traced, _) = run_fleet_traced(&exp, &workload, &base_cfg, &tel);
    assert_eq!(
        plain.digest(),
        traced.digest(),
        "tracing perturbed the healthy digest: {:016x} != {:016x}",
        traced.digest(),
        plain.digest()
    );
    let healthy_digest = plain.digest();

    // Phase 2 — faulted: casualty scenario + retry ladder, traced at
    // every worker count.
    let mut scenario = FaultScenario::iid(failure_p);
    scenario.retry = RetryPolicy::ladder();
    let fexp = CityExperiment::prepare(
        CityArchetype::SurveyDowntown.generate(seed),
        ExperimentConfig {
            seed,
            faults: Some(scenario),
            ..ExperimentConfig::default()
        },
    );
    let plain_faulted = run_fleet(&fexp, &workload, &base_cfg);
    let mut runs: Vec<_> = worker_counts
        .iter()
        .map(|&workers| {
            let (report, telem) = run_fleet_traced(
                &fexp,
                &workload,
                &FleetConfig {
                    workers,
                    seed,
                    ..FleetConfig::default()
                },
                &tel,
            );
            (workers, report, telem.expect("telemetry was requested"))
        })
        .collect();
    for (workers, report, telem) in &runs {
        assert_eq!(
            report.digest(),
            plain_faulted.digest(),
            "tracing perturbed the faulted digest at {workers} workers"
        );
        assert_eq!(
            telem.metrics.fingerprint(),
            runs[0].2.metrics.fingerprint(),
            "metric fingerprint diverged at {workers} workers"
        );
        assert_eq!(
            telem.postmortems, runs[0].2.postmortems,
            "postmortem set diverged at {workers} workers"
        );
    }
    let (_, report, telem) = runs.swap_remove(0);
    let m = &telem.metrics;
    assert_eq!(
        m.counter(tm::FLOWS),
        flows as u64,
        "every flow is counted exactly once"
    );
    assert_eq!(
        m.counter(tm::DELIVERED) + m.counter(tm::FAILED),
        m.counter(tm::FLOWS),
        "delivered + failed covers every flow"
    );
    assert_eq!(
        m.counter(tm::POSTMORTEMS),
        telem.postmortems.len() as u64,
        "postmortem counter matches captured traces"
    );

    let counters = vec![
        ("flows_total", m.counter(tm::FLOWS)),
        ("delivered_total", m.counter(tm::DELIVERED)),
        ("failed_total", m.counter(tm::FAILED)),
        ("retried_total", m.counter(tm::RETRIED)),
        ("recovered_total", m.counter(tm::RECOVERED)),
        ("attempts_total", m.counter(tm::ATTEMPTS)),
        ("broadcasts_total", m.counter(tm::BROADCASTS)),
        ("exhausted_total", m.counter(tm::EXHAUSTED)),
        ("unroutable_total", m.counter(tm::UNROUTABLE)),
        ("postmortems_total", m.counter(tm::POSTMORTEMS)),
        ("trace_dropped_total", m.counter(tm::TRACE_DROPPED)),
    ];
    let rungs = Rung::ALL
        .iter()
        .map(|&rung| RungStats {
            rung: rung.label(),
            deliveries: m.counter(rung_delivery_counter(rung)),
            latency_ms_p50: m
                .histo_quantile(rung_latency_histogram(rung), 0.5)
                .map(|us| us as f64 / 1_000.0),
            latency_ms_p90: m
                .histo_quantile(rung_latency_histogram(rung), 0.9)
                .map(|us| us as f64 / 1_000.0),
            mean_overhead: m
                .histo_mean(rung_overhead_histogram(rung))
                .map(|milli| milli / 1_000.0),
        })
        .collect();

    // The exported sample: the most interesting complete trace — an
    // exhausted flow if the scenario produced one, else a recovery.
    // Complete (nothing evicted) beats low flow id.
    let pick = |pred: &dyn Fn(&Postmortem) -> bool| {
        telem
            .postmortems
            .iter()
            .filter(|p| pred(p))
            .min_by_key(|p| (p.dropped_events, p.key))
    };
    let sample_postmortem = pick(&|p| !p.summary.delivered && p.summary.attempts > 0)
        .or_else(|| pick(&|p| p.summary.recovered_by.is_some()))
        .or_else(|| telem.postmortems.first())
        .map(Postmortem::to_json);

    let fault = fexp
        .fault_state()
        .expect("experiment was prepared with a fault scenario");
    TelemetryFigures {
        seed,
        city,
        buildings,
        flows,
        sample_every: SAMPLE_EVERY,
        healthy_digest,
        failure_p,
        faulted_digest: report.digest(),
        fault_fingerprint: fault.fingerprint(),
        metrics_fingerprint: m.fingerprint(),
        counters,
        rungs,
        postmortems: telem.postmortems.len(),
        trace_dropped: m.counter(tm::TRACE_DROPPED),
        ring_high_water: m.gauge(tm::TRACE_HIGH_WATER),
        sample_postmortem,
    }
}

/// Serializes the sweep for `BENCH_telemetry.json`.
pub fn to_json(figs: &TelemetryFigures) -> Value {
    let opt_num = |v: Option<f64>| v.map(Value::Num).unwrap_or(Value::Null);
    Value::Obj(vec![
        ("seed".into(), Value::Int(figs.seed as i64)),
        ("city".into(), Value::Str(figs.city.clone())),
        ("buildings".into(), Value::Int(figs.buildings as i64)),
        ("flows".into(), Value::Int(figs.flows as i64)),
        ("sample_every".into(), Value::Int(figs.sample_every as i64)),
        (
            "healthy_digest".into(),
            Value::Str(format!("{:016x}", figs.healthy_digest)),
        ),
        ("failure_p".into(), Value::Num(figs.failure_p)),
        (
            "faulted_digest".into(),
            Value::Str(format!("{:016x}", figs.faulted_digest)),
        ),
        (
            "fault_fingerprint".into(),
            Value::Str(format!("{:016x}", figs.fault_fingerprint)),
        ),
        (
            "metrics_fingerprint".into(),
            Value::Str(format!("{:016x}", figs.metrics_fingerprint)),
        ),
        (
            "counters".into(),
            Value::Obj(
                figs.counters
                    .iter()
                    .map(|&(name, v)| (name.into(), Value::Int(v as i64)))
                    .collect(),
            ),
        ),
        (
            "rungs".into(),
            Value::Arr(
                figs.rungs
                    .iter()
                    .map(|r| {
                        Value::Obj(vec![
                            ("rung".into(), Value::Str(r.rung.into())),
                            ("deliveries".into(), Value::Int(r.deliveries as i64)),
                            ("latency_ms_p50".into(), opt_num(r.latency_ms_p50)),
                            ("latency_ms_p90".into(), opt_num(r.latency_ms_p90)),
                            ("mean_overhead".into(), opt_num(r.mean_overhead)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("postmortems".into(), Value::Int(figs.postmortems as i64)),
        (
            "trace_dropped".into(),
            Value::Int(figs.trace_dropped as i64),
        ),
        (
            "ring_high_water".into(),
            Value::Int(figs.ring_high_water as i64),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_invariant_and_serializes() {
        let figs = run_telemetry(7, 60, 0.3, &[1, 2]);
        assert_eq!(figs.flows, 60);
        assert_eq!(figs.rungs.len(), 4);
        let total: u64 = figs.rungs.iter().map(|r| r.deliveries).sum();
        let delivered = figs
            .counters
            .iter()
            .find(|(n, _)| *n == "delivered_total")
            .map(|&(_, v)| v)
            .expect("delivered counter present");
        assert_eq!(total, delivered, "rung deliveries partition deliveries");
        assert!(figs.postmortems > 0, "a 30% casualty run captures traces");
        let sample = figs.sample_postmortem.as_deref().expect("sample exported");
        assert!(sample.contains("\"outcome\":\""));
        assert!(sample.contains("\"events\":["));
        let rendered = to_json(&figs).render();
        assert!(rendered.contains("\"healthy_digest\""));
        assert!(rendered.contains("\"metrics_fingerprint\""));
        assert!(rendered.contains("\"rungs\""));
        assert!(rendered.starts_with('{') && rendered.ends_with('}'));
    }
}
