//! Analytic control-overhead models for classic MANET protocols.
//!
//! The paper's scaling argument (§5) is qualitative: proactive
//! protocols ship routing tables that grow with N, reactive protocols
//! flood route requests, and either way control traffic crowds out
//! data at city scale — while CityMesh's control traffic is exactly
//! zero (all shared state is the offline map). These closed-form
//! models put numbers on that argument for the scaling bench. They are
//! first-order textbook models (per-interval message counts, not
//! byte-accurate protocol traces); the *shape* — linear / quadratic
//! growth versus a flat zero — is what the comparison needs.

/// A network scale point for the models.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ManetScale {
    /// Number of nodes.
    pub nodes: u64,
    /// Mean neighbor count (radio degree).
    pub mean_degree: f64,
    /// Network diameter in hops (flood depth).
    pub diameter: u64,
}

impl ManetScale {
    /// A scale estimate for a uniform disk deployment: N nodes, degree
    /// from density, diameter ≈ √N / √degree network hops.
    pub fn uniform(nodes: u64, mean_degree: f64) -> Self {
        assert!(mean_degree > 0.0, "degree must be positive");
        let diameter = ((nodes as f64).sqrt() / mean_degree.sqrt()).ceil().max(1.0) as u64 * 2;
        ManetScale {
            nodes,
            mean_degree,
            diameter,
        }
    }
}

/// DSDV-style proactive cost: every node periodically broadcasts its
/// full routing table (N entries) to its neighbors. Returns
/// **table-entry transmissions per update interval** across the whole
/// network: `N nodes × N entries` broadcast once each (each broadcast
/// reaches `degree` neighbors but is a single transmission).
///
/// Grows as **O(N²)** in entries shipped — the core reason the paper
/// rules proactive protocols out at "many millions of nodes".
pub fn dsdv_update_cost(scale: ManetScale) -> u64 {
    scale.nodes.saturating_mul(scale.nodes)
}

/// OLSR-style proactive cost with multipoint relays: topology control
/// messages are flooded only by the MPR subset (≈ `N / degree`
/// relays), each carrying the selector set. Per interval:
/// `N TC originators × (N / degree) relays`.
///
/// Better constants than DSDV, still **O(N²/degree)**.
pub fn olsr_update_cost(scale: ManetScale) -> u64 {
    let relays = (scale.nodes as f64 / scale.mean_degree).ceil() as u64;
    scale.nodes.saturating_mul(relays.max(1))
}

/// AODV-style reactive cost for **one** route discovery: the route
/// request floods the network (every node rebroadcasts once — N
/// transmissions) and the reply unicasts back along ≤ diameter hops.
///
/// Per discovery the cost is **O(N)**; a city where everyone opens a
/// conversation pays `O(N)` floods *per flow*, which is the "burst of
/// control packets … quickly wasting the bandwidth" the paper
/// describes.
pub fn aodv_discovery_cost(scale: ManetScale) -> u64 {
    scale.nodes.saturating_add(scale.diameter)
}

/// CityMesh's control-plane cost at any scale, for symmetric tables:
/// no keepalives, no beacons, no tables, no discovery. (The map is
/// distributed offline, before the outage.)
pub fn citymesh_control_cost(_scale: ManetScale) -> u64 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_scale_construction() {
        let s = ManetScale::uniform(10_000, 25.0);
        assert_eq!(s.nodes, 10_000);
        assert!(s.diameter >= 2);
        // Diameter shrinks with density.
        let dense = ManetScale::uniform(10_000, 100.0);
        assert!(dense.diameter <= s.diameter);
    }

    #[test]
    fn dsdv_is_quadratic() {
        let small = dsdv_update_cost(ManetScale::uniform(1_000, 20.0));
        let large = dsdv_update_cost(ManetScale::uniform(10_000, 20.0));
        assert_eq!(small, 1_000_000);
        assert_eq!(large, 100_000_000);
        assert_eq!(large / small, 100, "10× nodes ⇒ 100× cost");
    }

    #[test]
    fn olsr_beats_dsdv_but_still_superlinear() {
        let s = ManetScale::uniform(10_000, 20.0);
        assert!(olsr_update_cost(s) < dsdv_update_cost(s));
        let s10 = ManetScale::uniform(100_000, 20.0);
        let ratio = olsr_update_cost(s10) as f64 / olsr_update_cost(s) as f64;
        assert!(
            ratio > 50.0,
            "OLSR should grow ~quadratically, grew {ratio}×"
        );
    }

    #[test]
    fn aodv_is_linear_per_discovery() {
        let small = aodv_discovery_cost(ManetScale::uniform(1_000, 20.0));
        let large = aodv_discovery_cost(ManetScale::uniform(100_000, 20.0));
        let ratio = large as f64 / small as f64;
        assert!(
            (80.0..120.0).contains(&ratio),
            "expected ~100×, got {ratio}×"
        );
    }

    #[test]
    fn citymesh_is_zero_at_every_scale() {
        for n in [100u64, 10_000, 1_000_000, 100_000_000] {
            assert_eq!(citymesh_control_cost(ManetScale::uniform(n, 25.0)), 0);
        }
    }

    #[test]
    fn no_overflow_at_extreme_scale() {
        let huge = ManetScale::uniform(u64::MAX / 2, 25.0);
        // Saturates instead of wrapping.
        assert_eq!(dsdv_update_cost(huge), u64::MAX);
    }
}
