//! GPSR-style greedy + perimeter (face) routing.
//!
//! The geographic-routing baseline the paper's §5 actually cites:
//! greedy forwarding with *perimeter mode* recovery on a planarized
//! connectivity graph (Karp & Kung, MobiCom '00). We planarize with
//! the **Gabriel graph** test (an edge survives iff no witness node
//! lies strictly inside the circle whose diameter is the edge) and
//! recover with the standard face traversal, returning to greedy as
//! soon as the packet is closer to the destination than where
//! perimeter mode began.
//!
//! The point of carrying this baseline is the paper's critique: the
//! machinery below needs accurate per-node positions and per-neighbor
//! state at every hop, and face traversal degrades when positions are
//! noisy — all of which CityMesh's map-based conduits avoid. Here the
//! baseline gets perfect positions, so its numbers are an upper bound
//! on its real behaviour.

use citymesh_core::ApGraph;

/// Result of a GPSR routing attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct GpsrOutcome {
    /// Whether an AP of the destination building was reached.
    pub delivered: bool,
    /// Forwarding transmissions used.
    pub transmissions: u64,
    /// How many times the packet entered perimeter mode.
    pub perimeter_entries: u64,
}

/// Computes the Gabriel subgraph adjacency of `apg`: for each node,
/// the surviving neighbor list. O(Σ deg²) — each edge is tested
/// against the union of its endpoints' neighbors.
pub fn gabriel_adjacency(apg: &ApGraph) -> Vec<Vec<u32>> {
    let n = apg.len();
    let mut out = vec![Vec::new(); n];
    for u in 0..n as u32 {
        let pu = apg.position(u);
        'edges: for e in apg.graph().neighbors(u) {
            let v = e.to;
            if v < u {
                continue; // handle each undirected edge once
            }
            let pv = apg.position(v);
            let mid = pu.midpoint(pv);
            let r2 = pu.dist2(pv) / 4.0;
            // Witness search among both endpoints' neighbors (any
            // witness inside the diameter circle is adjacent to at
            // least one endpoint in a unit-disk graph).
            for f in apg
                .graph()
                .neighbors(u)
                .iter()
                .chain(apg.graph().neighbors(v))
            {
                let w = f.to;
                if w == u || w == v {
                    continue;
                }
                if apg.position(w).dist2(mid) < r2 - 1e-9 {
                    continue 'edges; // removed by the Gabriel test
                }
            }
            out[u as usize].push(v);
            out[v as usize].push(u);
        }
    }
    // Deterministic neighbor order for the angular sweeps below.
    for list in &mut out {
        list.sort_unstable();
        list.dedup();
    }
    out
}

/// Routes from `src_ap` toward `dst_building` with GPSR.
pub fn gpsr_route(apg: &ApGraph, src_ap: u32, dst_building: u32) -> GpsrOutcome {
    assert!((src_ap as usize) < apg.len(), "source AP out of range");
    let planar = gabriel_adjacency(apg);
    gpsr_route_on(apg, &planar, src_ap, dst_building)
}

/// Like [`gpsr_route`] but reusing a precomputed Gabriel adjacency
/// (planarization is per-topology, not per-packet).
pub fn gpsr_route_on(
    apg: &ApGraph,
    planar: &[Vec<u32>],
    src_ap: u32,
    dst_building: u32,
) -> GpsrOutcome {
    let mut outcome = GpsrOutcome {
        delivered: false,
        transmissions: 0,
        perimeter_entries: 0,
    };
    let dst_aps = apg.aps_in_building(dst_building);
    let Some(&target_ap) = dst_aps.first() else {
        return outcome;
    };
    let target = apg.position(target_ap);
    let arrived = |ap: u32| apg.building_of(ap) == dst_building;

    if arrived(src_ap) {
        outcome.delivered = true;
        return outcome;
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        Greedy,
        /// Perimeter mode remembers where it began (`entry_dist` to
        /// the target) and the first directed planar edge taken, to
        /// detect a completed (hence hopeless) face loop.
        Perimeter {
            entry_dist: f64,
            first_edge: (u32, u32),
        },
    }

    let mut mode = Mode::Greedy;
    let mut current = src_ap;
    let mut prev: Option<u32> = None;
    // Generous budget: every directed planar edge at most twice.
    let budget: u64 = planar.iter().map(|l| l.len() as u64).sum::<u64>() * 2 + 16;

    while outcome.transmissions < budget {
        if arrived(current) {
            outcome.delivered = true;
            return outcome;
        }
        match mode {
            Mode::Greedy => {
                let d_cur = apg.position(current).dist(target);
                // Full-graph greedy step.
                let mut best: Option<(u32, f64)> = None;
                for e in apg.graph().neighbors(current) {
                    let d = apg.position(e.to).dist(target);
                    if d < d_cur && best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((e.to, d));
                    }
                }
                match best {
                    Some((next, _)) => {
                        prev = Some(current);
                        current = next;
                        outcome.transmissions += 1;
                    }
                    None => {
                        // Local minimum: enter perimeter mode on the
                        // planar graph, starting with the first edge
                        // counterclockwise from the direction to the
                        // target.
                        outcome.perimeter_entries += 1;
                        let to_target = (target - apg.position(current)).angle();
                        let Some(next) = next_ccw(apg, planar, current, to_target) else {
                            return outcome; // isolated in the planar graph
                        };
                        mode = Mode::Perimeter {
                            entry_dist: d_cur,
                            first_edge: (current, next),
                        };
                        prev = Some(current);
                        current = next;
                        outcome.transmissions += 1;
                    }
                }
            }
            Mode::Perimeter {
                entry_dist,
                first_edge,
            } => {
                if apg.position(current).dist(target) < entry_dist {
                    // Progress made: back to greedy.
                    mode = Mode::Greedy;
                    continue;
                }
                // Right-hand rule: next edge is the first one
                // counterclockwise from the reverse of the arrival
                // edge.
                let from = prev.expect("perimeter mode always has a predecessor");
                let back_angle = (apg.position(from) - apg.position(current)).angle();
                let Some(next) = next_ccw(apg, planar, current, back_angle) else {
                    return outcome;
                };
                if (current, next) == first_edge {
                    // Completed the face without progress: the
                    // destination is unreachable from this face.
                    return outcome;
                }
                prev = Some(current);
                current = next;
                outcome.transmissions += 1;
            }
        }
    }
    outcome
}

/// The planar neighbor of `v` whose edge angle is the first strictly
/// counterclockwise from `from_angle` (wrapping), i.e. the smallest
/// positive angular difference. Returns the `from_angle` edge itself
/// only when it is the sole edge.
fn next_ccw(apg: &ApGraph, planar: &[Vec<u32>], v: u32, from_angle: f64) -> Option<u32> {
    let pv = apg.position(v);
    let mut best: Option<(f64, u32)> = None;
    for &w in &planar[v as usize] {
        let a = (apg.position(w) - pv).angle();
        let mut delta = a - from_angle;
        while delta <= 1e-12 {
            delta += std::f64::consts::TAU;
        }
        if best.is_none_or(|(bd, _)| delta < bd) {
            best = Some((delta, w));
        }
    }
    best.map(|(_, w)| w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_core::{place_aps, Ap, ApGraph};
    use citymesh_geo::Point;
    use citymesh_map::CityArchetype;
    use citymesh_simcore::SimRng;

    fn ap(id: u32, x: f64, y: f64, building: u32) -> Ap {
        Ap {
            id,
            pos: Point::new(x, y),
            building,
        }
    }

    /// A concave void between the greedy dead end and the target: the
    /// straight-line corridor toward the target ends at a local
    /// minimum, and the only way onward is an arc over the top that
    /// initially moves *away* from the target.
    ///
    /// ```text
    ///            3 — 4 — 5
    ///            |        \ 6
    ///  0 — 1 — 2 (stuck)     \ 7
    ///                          target(8)
    /// ```
    fn u_trap() -> ApGraph {
        let coords = [
            (0.0, 80.0),    // 0 src
            (40.0, 80.0),   // 1
            (80.0, 80.0),   // 2 local minimum
            (80.0, 120.0),  // 3 arc
            (120.0, 135.0), // 4
            (160.0, 135.0), // 5
            (195.0, 120.0), // 6
            (215.0, 95.0),  // 7
            (240.0, 80.0),  // 8 target
        ];
        let aps: Vec<Ap> = coords
            .iter()
            .enumerate()
            .map(|(i, (x, y))| ap(i as u32, *x, *y, i as u32))
            .collect();
        ApGraph::build(&aps, 50.0)
    }

    #[test]
    fn gabriel_graph_is_subgraph_and_connected() {
        let map = CityArchetype::SurveyDowntown.generate(4);
        let mut rng = SimRng::new(4);
        let aps = place_aps(&map, 200.0, &mut rng);
        let apg = ApGraph::build(&aps, 50.0);
        let planar = gabriel_adjacency(&apg);
        let planar_edges: usize = planar.iter().map(Vec::len).sum::<usize>() / 2;
        assert!(planar_edges > 0);
        assert!(
            planar_edges < apg.graph().num_edges(),
            "planarization must remove crossing edges"
        );
        // Every planar edge exists in the original graph.
        for (u, list) in planar.iter().enumerate() {
            for &v in list {
                assert!(apg.graph().has_edge(u as u32, v));
            }
        }
        // Gabriel planarization preserves connectivity of unit-disk
        // graphs: same number of components via a quick union-find.
        let mut uf = citymesh_graph::UnionFind::new(apg.len());
        for (u, list) in planar.iter().enumerate() {
            for &v in list {
                uf.union(u as u32, v);
            }
        }
        assert_eq!(uf.num_components(), apg.num_components());
    }

    #[test]
    fn straight_line_stays_greedy() {
        let aps: Vec<Ap> = (0..5).map(|i| ap(i, i as f64 * 40.0, 0.0, i)).collect();
        let g = ApGraph::build(&aps, 50.0);
        let out = gpsr_route(&g, 0, 4);
        assert!(out.delivered);
        assert_eq!(out.transmissions, 4);
        assert_eq!(out.perimeter_entries, 0);
    }

    #[test]
    fn perimeter_mode_escapes_the_trap() {
        let g = u_trap();
        // Sanity: the trap actually traps pure greedy.
        let greedy = crate::greedy_route(&g, 0, 8, crate::GreedyPolicy::Pure);
        assert!(!greedy.delivered, "trap must defeat pure greedy");
        // GPSR recovers via the face walk.
        let out = gpsr_route(&g, 0, 8);
        assert!(out.delivered, "perimeter mode must recover");
        assert!(out.perimeter_entries >= 1);
        let ideal = g.ideal_hops_to_building(0, 8).unwrap();
        assert!(out.transmissions >= ideal);
    }

    #[test]
    fn disconnected_terminates_undelivered() {
        let aps = vec![ap(0, 0.0, 0.0, 0), ap(1, 500.0, 0.0, 1)];
        let g = ApGraph::build(&aps, 50.0);
        let out = gpsr_route(&g, 0, 1);
        assert!(!out.delivered);
        // Termination is by face-loop detection or isolation, well
        // under the budget.
        assert!(out.transmissions < 10);
    }

    #[test]
    fn same_building_is_free() {
        let g = u_trap();
        let out = gpsr_route(&g, 2, 2);
        assert!(out.delivered);
        assert_eq!(out.transmissions, 0);
    }

    #[test]
    fn city_scale_delivery_rate_is_high() {
        let map = CityArchetype::SurveyDowntown.generate(8);
        let mut rng = SimRng::new(8);
        let aps = place_aps(&map, 200.0, &mut rng);
        let apg = ApGraph::build(&aps, 50.0);
        let planar = gabriel_adjacency(&apg);
        let mut delivered = 0;
        let mut attempted = 0;
        for k in 0..30u64 {
            let src = rng.below(apg.len() as u64) as u32;
            let dst_b = apg.building_of(rng.below(apg.len() as u64) as u32);
            if !apg.buildings_reachable(apg.building_of(src), dst_b) {
                continue;
            }
            attempted += 1;
            if gpsr_route_on(&apg, &planar, src, dst_b).delivered {
                delivered += 1;
            }
            let _ = k;
        }
        assert!(attempted > 10);
        // GPSR with perfect positions on a connected dense mesh should
        // deliver the vast majority.
        assert!(
            delivered * 10 >= attempted * 8,
            "GPSR delivered only {delivered}/{attempted}"
        );
    }
}
