//! Greedy geographic forwarding (GPSR-style greedy mode).
//!
//! Each hop forwards to the neighbor geographically closest to the
//! destination; the packet fails at a *local minimum* — a node with no
//! neighbor closer than itself. The paper's critique (§5): recovering
//! from such dead ends needs perimeter/face machinery that degrades
//! with imprecise indoor positions and per-neighbor beaconing. We
//! implement greedy plus an explicit backtracking escape so the bench
//! can quantify both the failure rate of pure greedy and the path
//! stretch of the rescue.
//!
//! Positions come from the AP placement — i.e. this baseline gets
//! *perfect* location information and per-neighbor state for free,
//! a strictly generous comparison for it.

use citymesh_core::ApGraph;
use citymesh_geo::Point;

/// Dead-end handling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GreedyPolicy {
    /// Fail at the first local minimum (pure greedy).
    Pure,
    /// Depth-first backtracking at local minima: mark the stuck node
    /// visited, step back, and try the next-best neighbor. Guarantees
    /// delivery within a connected component at the cost of long
    /// detours — a stand-in for perimeter-mode recovery.
    Backtrack,
}

/// Result of a greedy routing attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct GreedyOutcome {
    /// Whether the packet reached an AP of the destination building.
    pub delivered: bool,
    /// Transmissions made (forwarding steps, including detours).
    pub transmissions: u64,
    /// The node where pure greedy got stuck, when it did.
    pub stuck_at: Option<u32>,
}

/// Routes greedily from `src_ap` toward the centroid-closest AP of
/// `dst_building`.
pub fn greedy_route(
    apg: &ApGraph,
    src_ap: u32,
    dst_building: u32,
    policy: GreedyPolicy,
) -> GreedyOutcome {
    assert!((src_ap as usize) < apg.len(), "source AP out of range");
    // Destination target point: nearest AP in the destination building
    // (geographic routing needs a coordinate for the destination; the
    // paper's GLS-style location services would provide it).
    let dst_aps = apg.aps_in_building(dst_building);
    let Some(&target_ap) = dst_aps.first() else {
        return GreedyOutcome {
            delivered: false,
            transmissions: 0,
            stuck_at: None,
        };
    };
    let target: Point = apg.position(target_ap);

    let arrived = |ap: u32| -> bool { apg.building_of(ap) == dst_building };

    if arrived(src_ap) {
        return GreedyOutcome {
            delivered: true,
            transmissions: 0,
            stuck_at: None,
        };
    }

    let mut visited = vec![false; apg.len()];
    visited[src_ap as usize] = true;
    let mut stack = vec![src_ap];
    let mut transmissions = 0u64;
    let mut first_stuck: Option<u32> = None;
    // Transmission budget: in the worst case backtracking touches every
    // edge twice; 4×N is a generous cap that still halts runaways.
    let budget = (apg.len() as u64) * 4 + 16;

    while let Some(&current) = stack.last() {
        if transmissions > budget {
            break;
        }
        // Choose the unvisited neighbor closest to the target, but
        // only if it improves on the current distance (greedy rule).
        let current_d = apg.position(current).dist(target);
        let mut best: Option<(u32, f64)> = None;
        for e in apg.graph().neighbors(current) {
            if visited[e.to as usize] {
                continue;
            }
            let d = apg.position(e.to).dist(target);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((e.to, d));
            }
        }
        match best {
            Some((next, d)) if d < current_d || policy == GreedyPolicy::Backtrack => {
                // Backtrack mode explores even non-improving neighbors,
                // which is what makes it complete.
                visited[next as usize] = true;
                transmissions += 1;
                if arrived(next) {
                    return GreedyOutcome {
                        delivered: true,
                        transmissions,
                        stuck_at: first_stuck,
                    };
                }
                if d >= current_d && first_stuck.is_none() {
                    first_stuck = Some(current);
                }
                stack.push(next);
            }
            _ => {
                // Local minimum (or exhausted neighbors).
                if first_stuck.is_none() {
                    first_stuck = Some(current);
                }
                if policy == GreedyPolicy::Pure {
                    return GreedyOutcome {
                        delivered: false,
                        transmissions,
                        stuck_at: first_stuck,
                    };
                }
                stack.pop();
                if !stack.is_empty() {
                    transmissions += 1; // stepping back is a real transmission
                }
            }
        }
    }

    GreedyOutcome {
        delivered: false,
        transmissions,
        stuck_at: first_stuck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_core::Ap;

    fn ap(id: u32, x: f64, y: f64, building: u32) -> Ap {
        Ap {
            id,
            pos: Point::new(x, y),
            building,
        }
    }

    /// A straight line: greedy trivially succeeds.
    fn line() -> ApGraph {
        let aps: Vec<Ap> = (0..6).map(|i| ap(i, i as f64 * 40.0, 0.0, i)).collect();
        ApGraph::build(&aps, 50.0)
    }

    /// A C-shaped void: the greedy path walks into the dead end.
    ///
    /// ```text
    ///   src → a → deadend        target is east of the dead end but
    ///        ↓                   only reachable around the south arm
    ///        b → c → target
    /// ```
    fn c_trap() -> ApGraph {
        let aps = vec![
            ap(0, 0.0, 40.0, 0),  // src
            ap(1, 40.0, 40.0, 1), // a — junction
            ap(2, 80.0, 60.0, 2), // dead end: looks closest, leads nowhere
            ap(3, 0.0, 0.0, 3),   // unused west spur
            ap(4, 40.0, 0.0, 4),  // the detour south of the void
            ap(5, 80.0, 0.0, 5),
            ap(6, 120.0, 0.0, 6),
            ap(7, 160.0, 20.0, 7), // target building, east of dead end
        ];
        ApGraph::build(&aps, 50.0)
    }

    #[test]
    fn line_delivery() {
        let g = line();
        let out = greedy_route(&g, 0, 5, GreedyPolicy::Pure);
        assert!(out.delivered);
        assert_eq!(out.transmissions, 5);
        assert_eq!(out.stuck_at, None);
    }

    #[test]
    fn same_building_needs_no_transmission() {
        let g = line();
        let out = greedy_route(&g, 3, 3, GreedyPolicy::Pure);
        assert!(out.delivered);
        assert_eq!(out.transmissions, 0);
    }

    #[test]
    fn pure_greedy_dies_in_the_trap() {
        let g = c_trap();
        let out = greedy_route(&g, 0, 7, GreedyPolicy::Pure);
        assert!(!out.delivered, "pure greedy must fail at the dead end");
        assert_eq!(out.stuck_at, Some(2), "stuck at the dead-end AP");
    }

    #[test]
    fn backtracking_escapes_the_trap() {
        let g = c_trap();
        let out = greedy_route(&g, 0, 7, GreedyPolicy::Backtrack);
        assert!(out.delivered);
        // Detour costs more than the ideal path (stretch).
        let ideal = g.ideal_hops_to_building(0, 7).unwrap();
        assert!(
            out.transmissions > ideal,
            "{} vs ideal {}",
            out.transmissions,
            ideal
        );
        assert!(out.stuck_at.is_some());
    }

    #[test]
    fn disconnected_fails_both_policies() {
        let aps = vec![ap(0, 0.0, 0.0, 0), ap(1, 500.0, 0.0, 1)];
        let g = ApGraph::build(&aps, 50.0);
        for policy in [GreedyPolicy::Pure, GreedyPolicy::Backtrack] {
            let out = greedy_route(&g, 0, 1, policy);
            assert!(!out.delivered, "{policy:?}");
        }
    }

    #[test]
    fn missing_destination_building() {
        let g = line();
        let out = greedy_route(&g, 0, 99, GreedyPolicy::Backtrack);
        assert!(!out.delivered);
        assert_eq!(out.transmissions, 0);
    }
}
