//! Baseline routing algorithms and MANET cost models.
//!
//! The paper's related-work argument (§5) is that existing approaches
//! fail at city scale for different reasons: flooding for transmission
//! cost, proactive/reactive MANET protocols for control-traffic cost,
//! and geographic routing for dead-end fragility when positions are
//! imprecise. This crate makes those arguments *measurable*:
//!
//! * [`flooding`] — global and TTL-scoped flooding over the true AP
//!   graph: the delivery-guarantee upper bound and the transmission
//!   cost to beat.
//! * [`greedy`] — greedy geographic forwarding (with and without a
//!   backtracking escape): the stateless-per-node baseline whose
//!   dead-end failures motivate building routing.
//! * [`face`] — full GPSR: greedy + perimeter-mode recovery over a
//!   Gabriel-planarized graph, the §5 geographic-routing baseline
//!   with its dead-end machinery actually implemented.
//! * [`manet`] — closed-form control-overhead models for DSDV-style
//!   proactive and AODV-style reactive protocols, used in the N-sweep
//!   scaling comparison (CityMesh's control traffic is identically
//!   zero).
//! * [`ideal`] — the BFS ideal-unicast path: the lower bound that
//!   anchors the paper's overhead metric.
//! * [`reactive`] — Babel/QSPN-style reactive local repair: on a
//!   failure notification, splice a detour around the first dark
//!   building instead of re-planning end-to-end — the churn
//!   benchmarks' reactive strategy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod face;
pub mod flooding;
pub mod greedy;
pub mod ideal;
pub mod manet;
pub mod reactive;

pub use face::{gabriel_adjacency, gpsr_route, gpsr_route_on, GpsrOutcome};
pub use flooding::{flood, FloodOutcome};
pub use greedy::{greedy_route, GreedyOutcome, GreedyPolicy};
pub use ideal::{ideal_path, IdealPath};
pub use manet::{aodv_discovery_cost, dsdv_update_cost, olsr_update_cost, ManetScale};
pub use reactive::{deliver_with_local_repair, RepairOutcome};
