//! Flooding baselines.
//!
//! Flooding delivers whenever delivery is possible at all, so it is
//! the deliverability ceiling; its transmission count is what naive
//! broadcast costs and what CityMesh's conduits are meant to undercut
//! on long routes.

use std::collections::VecDeque;

use citymesh_core::ApGraph;

/// Outcome of one flood.
#[derive(Clone, Debug, PartialEq)]
pub struct FloodOutcome {
    /// Whether any AP of the destination building was reached.
    pub delivered: bool,
    /// Total broadcasts (every AP transmits at most once).
    pub broadcasts: u64,
    /// Hops at which the destination was first reached.
    pub delivery_hops: Option<u64>,
    /// Number of distinct APs that received the packet.
    pub reached: usize,
}

/// Floods from `src_ap` toward `dst_building` with an optional TTL
/// (`None` = unbounded, classic flooding).
///
/// Every AP rebroadcasts exactly once (perfect duplicate suppression),
/// so the broadcast count equals the number of APs reached within the
/// TTL — the best case for flooding; a real MAC would add collisions
/// and retries on top.
pub fn flood(apg: &ApGraph, src_ap: u32, dst_building: u32, ttl: Option<u64>) -> FloodOutcome {
    assert!((src_ap as usize) < apg.len(), "source AP out of range");
    let n = apg.len();
    let mut hops: Vec<Option<u64>> = vec![None; n];
    hops[src_ap as usize] = Some(0);
    let mut queue = VecDeque::from([src_ap]);
    let mut broadcasts = 0u64;
    let mut delivery_hops: Option<u64> = None;

    if apg.building_of(src_ap) == dst_building {
        delivery_hops = Some(0);
    }

    while let Some(ap) = queue.pop_front() {
        let h = hops[ap as usize].expect("queued APs have hop counts");
        if let Some(limit) = ttl {
            if h >= limit {
                continue; // TTL exhausted: receive but do not relay
            }
        }
        broadcasts += 1;
        for e in apg.graph().neighbors(ap) {
            let rx = e.to as usize;
            if hops[rx].is_none() {
                hops[rx] = Some(h + 1);
                if apg.building_of(e.to) == dst_building && delivery_hops.is_none() {
                    delivery_hops = Some(h + 1);
                }
                queue.push_back(e.to);
            }
        }
    }

    FloodOutcome {
        delivered: delivery_hops.is_some(),
        broadcasts,
        delivery_hops,
        reached: hops.iter().filter(|h| h.is_some()).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_core::{place_aps, Ap, ApGraph};
    use citymesh_geo::Point;
    use citymesh_simcore::SimRng;

    fn ap(id: u32, x: f64, building: u32) -> Ap {
        Ap {
            id,
            pos: Point::new(x, 0.0),
            building,
        }
    }

    /// A line of 6 APs, 40 m apart, one per building.
    fn line() -> ApGraph {
        let aps: Vec<Ap> = (0..6).map(|i| ap(i, i as f64 * 40.0, i)).collect();
        ApGraph::build(&aps, 50.0)
    }

    #[test]
    fn unbounded_flood_reaches_everything() {
        let g = line();
        let out = flood(&g, 0, 5, None);
        assert!(out.delivered);
        assert_eq!(out.delivery_hops, Some(5));
        assert_eq!(out.reached, 6);
        assert_eq!(out.broadcasts, 6, "every AP transmits once");
    }

    #[test]
    fn ttl_scopes_the_flood() {
        let g = line();
        let out = flood(&g, 0, 5, Some(3));
        assert!(!out.delivered, "destination is 5 hops away, TTL 3");
        // APs at hops 0–2 transmit; the hop-3 AP receives but stays
        // quiet, so the packet reaches exactly TTL + 1 nodes.
        assert_eq!(out.broadcasts, 3);
        assert_eq!(out.reached, 4);
        let exact = flood(&g, 0, 5, Some(5));
        assert!(exact.delivered);
    }

    #[test]
    fn same_building_is_immediate() {
        let g = line();
        let out = flood(&g, 2, 2, Some(0));
        assert!(out.delivered);
        assert_eq!(out.delivery_hops, Some(0));
    }

    #[test]
    fn disconnected_flood_fails() {
        let aps = vec![ap(0, 0.0, 0), ap(1, 500.0, 1)];
        let g = ApGraph::build(&aps, 50.0);
        let out = flood(&g, 0, 1, None);
        assert!(!out.delivered);
        assert_eq!(out.reached, 1);
        assert_eq!(out.broadcasts, 1);
    }

    #[test]
    fn flood_cost_scales_with_component_not_route() {
        // In a real city, flooding pays for the whole component even
        // for a short route.
        let map = citymesh_map::CityArchetype::SurveyDowntown.generate(1);
        let mut rng = SimRng::new(1);
        let aps = place_aps(&map, 200.0, &mut rng);
        let g = ApGraph::build(&aps, 50.0);
        // Short route: two adjacent buildings.
        let src = aps
            .iter()
            .find(|a| a.building == 0)
            .expect("building 0 has an AP")
            .id;
        let out = flood(&g, src, 1, None);
        assert!(out.delivered);
        assert!(
            out.broadcasts as usize > g.len() / 2,
            "flood covers most of the component ({} of {})",
            out.broadcasts,
            g.len()
        );
    }
}
