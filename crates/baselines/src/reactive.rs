//! Reactive local-repair delivery: the Babel/QSPN-style baseline.
//!
//! Distance-vector protocols built for churn — Babel (RFC 8966) and
//! Netsukuku's QSPN among them — do not re-run end-to-end route
//! discovery when a link dies. The node that *notices* the failure
//! repairs the route locally: it splices a detour from the last good
//! hop around the dead segment and rejoins the old path downstream,
//! falling back to a full re-discovery only when no local splice
//! exists. This module transplants that repair discipline onto
//! CityMesh's building routes, giving the churn benchmarks a reactive
//! strategy to weigh against the paper's static plan and the
//! retry-ladder's end-to-end replan rung:
//!
//! * **static plan** — resend over the original conduits and hope;
//! * **retry ladder** — widen, then replan the whole route over the
//!   surviving graph (an end-to-end re-discovery);
//! * **reactive repair (this module)** — on each failure
//!   notification, find the first building on the route that has gone
//!   dark, splice a local detour from the preceding building to the
//!   first live building downstream, keep the rest of the route, and
//!   retry. The *replan cost* — how many buildings get recomputed —
//!   is proportional to the damage, not the route length.
//!
//! The failure signal itself is the sender's delivery timeout (one
//! horizon of latency per failed attempt, exactly like the ladder),
//! and "which building died" comes from the materialized fault
//! state's blocked set: the same knowledge the ladder's replan rung
//! consumes, used surgically instead of wholesale.

use citymesh_core::{
    compress_route, plan_route, plan_route_avoiding, reconstruct_conduits,
    simulate_delivery_faulted, CityExperiment, DeliveryParams, DeliveryScratch, FaultState,
    OverheadOutcome, PairOutcome, PlannedFlow, RecoveryStage,
};
use citymesh_net::CityMeshHeader;
use citymesh_simcore::{SimRng, SimTime};

/// One flow delivered with reactive local repair, plus the repair
/// bill: how often the route was patched and how much of it was
/// recomputed. The [`PairOutcome`] is aggregate-compatible with the
/// fleet engine's, so churn reports fold reactive flows with
/// [`citymesh_fleet::FleetReport::absorb_outcome`]-style machinery
/// and compare digests across strategies.
///
/// [`citymesh_fleet::FleetReport::absorb_outcome`]:
/// https://docs.rs/citymesh-fleet
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// The flow outcome, shaped exactly like the pipeline's.
    pub outcome: PairOutcome,
    /// Local splices performed (the repair succeeded around the first
    /// dark building).
    pub repairs: u64,
    /// Full end-to-end replans performed when no local splice existed
    /// (the Babel fallback to route re-discovery).
    pub full_replans: u64,
    /// Buildings recomputed across all repairs — the reactive
    /// strategy's *replan cost*, comparable against a full replan's
    /// route length.
    pub replanned_buildings: u64,
}

/// Delivers one planned flow with Babel/QSPN-style reactive repair:
/// send, and on every timeout patch the route *locally* around the
/// first dark building before retrying, up to `max_attempts` total
/// sends.
///
/// Mirrors [`CityExperiment::simulate_flow_with`]'s accounting —
/// horizon-latency penalty per failed attempt, overhead against
/// ideal-unicast hops, `recovered_by` labeling (a repaired delivery
/// reports [`RecoveryStage::Replan`], an unrepaired retry
/// [`RecoveryStage::Resend`]) — so outcomes aggregate on the same
/// footing as the static and ladder strategies. Unlike the pipeline's
/// hot path this allocates per attempt (header, conduits); the churn
/// engine's zero-alloc guarantee covers only the static/ladder loop.
///
/// Determinism: the repair consults only the materialized fault
/// state's blocked set (no RNG), and the delivery draws come from the
/// caller's per-flow sub-stream, so outcomes are independent of
/// worker scheduling exactly like the fleet engine's.
pub fn deliver_with_local_repair(
    exp: &CityExperiment,
    plan: &PlannedFlow,
    msg_id: u64,
    max_attempts: u32,
    rng: &mut SimRng,
    scratch: &mut DeliveryScratch,
) -> RepairOutcome {
    let mut result = RepairOutcome {
        outcome: PairOutcome {
            src: plan.src,
            dst: plan.dst,
            reachable: plan.reachable,
            route_found: plan.route_found(),
            route_len: plan.route_len,
            waypoints: plan.waypoints.len(),
            route_bits: plan.route_bits,
            delivered: false,
            broadcasts: 0,
            latency: None,
            ideal_hops: plan.ideal_hops,
            overhead: None,
            attempts: 0,
            recovered_by: None,
            sealed: false,
            opened: false,
            auth_failed: false,
        },
        repairs: 0,
        full_replans: 0,
        replanned_buildings: 0,
    };
    if !plan.route_found() {
        return result;
    }
    let Some(src_ap) = plan.src_ap else {
        return result;
    };
    // The working route: the plan's uncompressed primary route when
    // the world kept it (any fault scenario does), re-derived from
    // the building graph otherwise.
    let mut route: Vec<u32> = if plan.primary_route().is_empty() {
        match plan_route(exp.building_graph(), plan.src, plan.dst) {
            Ok(r) => r,
            Err(_) => return result,
        }
    } else {
        plan.primary_route().to_vec()
    };
    let faults = exp.fault_state();
    let width = exp.config().conduit_width_m;
    let params = DeliveryParams {
        scope: exp.config().scope,
        reception_loss: exp.config().reception_loss,
        ..DeliveryParams::default()
    };
    let max_attempts = max_attempts.max(1);
    let mut attempts = 0u32;
    let mut total_broadcasts = 0u64;
    let mut penalty = SimTime::ZERO;
    let mut repaired = false;
    loop {
        attempts += 1;
        let Ok(compressed) = compress_route(exp.building_graph(), &route, width) else {
            break;
        };
        let header = CityMeshHeader::new(msg_id, width, compressed.waypoints);
        let conduits = reconstruct_conduits(exp.map(), &header.waypoints, header.conduit_width_m());
        let (delivered, first_delivery, broadcasts) = {
            let report = simulate_delivery_faulted(
                exp.map(),
                exp.ap_graph(),
                &header,
                &conduits,
                src_ap,
                params,
                faults,
                rng,
                scratch,
            );
            (report.delivered, report.first_delivery, report.broadcasts)
        };
        total_broadcasts += broadcasts;
        if delivered {
            result.outcome.delivered = true;
            result.outcome.latency = first_delivery.map(|t| penalty + t);
            if attempts > 1 {
                result.outcome.recovered_by = Some(if repaired {
                    RecoveryStage::Replan
                } else {
                    RecoveryStage::Resend
                });
            }
            break;
        }
        if attempts >= max_attempts {
            break;
        }
        // The sender learns of failure at its timeout, exactly like
        // the ladder: one full horizon of latency per failed attempt.
        penalty += params.horizon;
        if let Some(f) = faults {
            if let Some(patched) = repair_locally(exp, &route, f, &mut result) {
                route = patched;
                repaired = true;
            }
        }
    }
    result.outcome.attempts = attempts;
    result.outcome.broadcasts = total_broadcasts;
    result.outcome.overhead =
        OverheadOutcome::measure(result.outcome.delivered, total_broadcasts, plan.ideal_hops)
            .value();
    result
}

/// One Babel-style repair step: locate the first dark building on
/// `route`, splice a detour from the building before it to the first
/// live building after it, and keep everything else. Falls back to a
/// full avoid-replan when no local splice exists; returns `None` when
/// the route has no dark building (the failure was stochastic loss —
/// a plain resend is the right response) or no repair is possible.
fn repair_locally(
    exp: &CityExperiment,
    route: &[u32],
    faults: &FaultState,
    stats: &mut RepairOutcome,
) -> Option<Vec<u32>> {
    let blocked = faults.blocked_buildings();
    if blocked.is_empty() {
        return None;
    }
    let first_dark = route.iter().position(|b| blocked.contains(b))?;
    if first_dark == 0 {
        // The source building itself went dark mid-run; no local
        // anchor exists to repair from.
        return None;
    }
    let anchor = first_dark - 1;
    let rejoin = (first_dark + 1..route.len()).find(|&k| !blocked.contains(&route[k]));
    if let Some(rejoin) = rejoin {
        if let Ok(segment) =
            plan_route_avoiding(exp.building_graph(), route[anchor], route[rejoin], blocked)
        {
            stats.repairs += 1;
            stats.replanned_buildings += segment.len() as u64;
            let mut patched = Vec::with_capacity(anchor + segment.len() + route.len() - rejoin - 1);
            patched.extend_from_slice(&route[..anchor]);
            patched.extend_from_slice(&segment);
            patched.extend_from_slice(&route[rejoin + 1..]);
            return Some(patched);
        }
    }
    // No local splice (the damage reaches the route's tail, or the
    // detour endpoints are disconnected): fall back to re-discovery,
    // like a distance-vector node whose feasible-successor set is
    // empty.
    let full = plan_route_avoiding(
        exp.building_graph(),
        route[0],
        *route.last().expect("routes are non-empty"),
        blocked,
    )
    .ok()?;
    if full == route {
        return None;
    }
    stats.full_replans += 1;
    stats.replanned_buildings += full.len() as u64;
    Some(full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_core::{ExperimentConfig, FaultScenario, RetryPolicy};
    use citymesh_map::CityArchetype;
    use citymesh_simcore::substream_seed;

    fn faulted_world(seed: u64, p: f64) -> CityExperiment {
        let map = CityArchetype::SurveyDowntown.generate(seed);
        let mut scenario = FaultScenario::iid(p);
        scenario.retry = RetryPolicy::none();
        CityExperiment::prepare(
            map,
            ExperimentConfig {
                seed,
                faults: Some(scenario),
                ..ExperimentConfig::default()
            },
        )
    }

    fn deliver(
        exp: &CityExperiment,
        src: u32,
        dst: u32,
        seed: u64,
        max_attempts: u32,
    ) -> RepairOutcome {
        let plan = exp.plan_flow(src, dst);
        let mut rng = SimRng::new(substream_seed(seed, 0x51D3, 1));
        let mut scratch = DeliveryScratch::new();
        deliver_with_local_repair(
            exp,
            &plan,
            substream_seed(seed, 0x3564, 1),
            max_attempts,
            &mut rng,
            &mut scratch,
        )
    }

    #[test]
    fn healthy_single_attempt_matches_the_pipeline() {
        // With no dark buildings and one attempt allowed, reactive
        // delivery is exactly the pipeline's first send: same RNG
        // stream, same conduits, same outcome.
        let map = CityArchetype::SurveyDowntown.generate(21);
        let scenario = FaultScenario {
            retry: RetryPolicy::none(),
            ..FaultScenario::default()
        };
        let exp = CityExperiment::prepare(
            map,
            ExperimentConfig {
                seed: 21,
                faults: Some(scenario),
                ..ExperimentConfig::default()
            },
        );
        let (src, dst) = (5, 180);
        let plan = exp.plan_flow(src, dst);
        let msg_id = substream_seed(21, 0x3564, 0);
        let mut rng_a = SimRng::new(substream_seed(21, 0x51D3, 0));
        let baseline = exp.simulate_flow(&plan, msg_id, &mut rng_a);
        let mut rng_b = SimRng::new(substream_seed(21, 0x51D3, 0));
        let mut scratch = DeliveryScratch::new();
        let reactive = deliver_with_local_repair(&exp, &plan, msg_id, 1, &mut rng_b, &mut scratch);
        assert_eq!(reactive.outcome, baseline);
        assert_eq!(reactive.repairs, 0);
        assert_eq!(reactive.replanned_buildings, 0);
    }

    fn zero_stats() -> RepairOutcome {
        RepairOutcome {
            outcome: PairOutcome {
                src: 0,
                dst: 0,
                reachable: false,
                route_found: false,
                route_len: 0,
                waypoints: 0,
                route_bits: 0,
                delivered: false,
                broadcasts: 0,
                latency: None,
                ideal_hops: None,
                overhead: None,
                attempts: 0,
                recovered_by: None,
                sealed: false,
                opened: false,
                auth_failed: false,
            },
            repairs: 0,
            full_replans: 0,
            replanned_buildings: 0,
        }
    }

    #[test]
    fn repair_splices_around_the_first_dark_building() {
        let exp = faulted_world(22, 0.0);
        // Find a pair with a long route, then kill a mid-route
        // building's APs so the repair has something to do.
        let plan = (0..exp.map().len() as u32)
            .map(|d| exp.plan_flow(3, d))
            .find(|p| p.route_found() && p.primary_route().len() >= 6)
            .expect("downtown has long routes");
        let route = plan.primary_route().to_vec();
        let victim = route[route.len() / 2];
        let kill: Vec<(u32, citymesh_core::ApHealth)> = exp
            .aps()
            .iter()
            .filter(|a| a.building == victim)
            .map(|a| (a.id, citymesh_core::ApHealth::Failed))
            .collect();
        let mut exp = exp;
        exp.apply_world_event(&kill);
        let faults = exp.fault_state().unwrap();
        assert!(faults.building_blocked(victim));

        let mut stats = zero_stats();
        let patched = repair_locally(&exp, &route, faults, &mut stats)
            .expect("a mid-route casualty must be repairable");
        assert!(
            !patched.contains(&victim),
            "the patched route must avoid the dark building"
        );
        assert_eq!(patched[0], route[0], "repair must keep the source");
        assert_eq!(
            patched.last(),
            route.last(),
            "repair must keep the destination"
        );
        assert_eq!(
            stats.repairs + stats.full_replans,
            1,
            "exactly one repair action"
        );
        assert!(stats.replanned_buildings > 0);

        // A route with no dark building on it is not repaired: the
        // right response to stochastic loss is a plain resend.
        let mut noop = zero_stats();
        assert!(repair_locally(&exp, &patched, faults, &mut noop).is_none());
        assert_eq!(noop.repairs + noop.full_replans, 0);
    }

    #[test]
    fn repair_is_deterministic_and_bounded() {
        let exp = faulted_world(23, 0.35);
        let a = deliver(&exp, 2, 150, 23, 5);
        let b = deliver(&exp, 2, 150, 23, 5);
        assert_eq!(a.outcome, b.outcome, "same streams, same outcome");
        assert_eq!(a.repairs, b.repairs);
        assert!(a.outcome.attempts >= 1 && a.outcome.attempts <= 5);
    }

    #[test]
    fn repairs_fire_under_blackouts_and_label_recoveries() {
        // District blackouts darken whole buildings (i.i.d. loss
        // rarely kills every AP of one), so routes through the discs
        // must fail, get patched, and often deliver on the repair.
        // The radius is deliberately moderate: catastrophic discs
        // (160 m+) also strand the *detours* — the conduits skirting
        // the disc edge lose too many relay APs — and then no repair
        // strategy wins, the ladder's replan rung included.
        let map = CityArchetype::SurveyDowntown.generate(24);
        let mut scenario = FaultScenario::district_blackouts(2, 120.0);
        scenario.retry = RetryPolicy::none();
        let exp = CityExperiment::prepare(
            map,
            ExperimentConfig {
                seed: 24,
                faults: Some(scenario),
                ..ExperimentConfig::default()
            },
        );
        assert!(
            !exp.fault_state().unwrap().blocked_buildings().is_empty(),
            "blackouts must darken some buildings"
        );
        let mut repairs = 0u64;
        let mut repaired_buildings = 0u64;
        let mut recovered_by_repair = 0u64;
        for src in [2u32, 30, 75] {
            for dst in 100..220u32 {
                let r = deliver(&exp, src, dst, 24, 4);
                repairs += r.repairs + r.full_replans;
                repaired_buildings += r.replanned_buildings;
                if r.outcome.delivered && r.outcome.recovered_by == Some(RecoveryStage::Replan) {
                    recovered_by_repair += 1;
                }
            }
        }
        assert!(repairs > 0, "blackouts must trigger some repairs");
        assert!(
            repaired_buildings > 0,
            "repairs must recompute some buildings"
        );
        assert!(
            recovered_by_repair > 0,
            "some deliveries must be won by a repaired route"
        );
    }
}
