//! The ideal-unicast baseline.
//!
//! A hop-minimal path over the true AP graph, computed with global
//! knowledge no deployable protocol has. The paper uses its length as
//! the denominator of the transmission-overhead metric ("the absolute
//! best case as it does not account for link-layer retransmissions",
//! §4).

use citymesh_core::ApGraph;
use citymesh_graph::bfs;

/// An ideal path and its cost.
#[derive(Clone, Debug, PartialEq)]
pub struct IdealPath {
    /// AP ids from source to the first-reached destination-building AP.
    pub path: Vec<u32>,
    /// Number of transmissions = hops = `path.len() - 1`.
    pub hops: u64,
}

/// Computes the hop-minimal path from `src_ap` to the nearest AP of
/// `dst_building`, or `None` when unreachable.
pub fn ideal_path(apg: &ApGraph, src_ap: u32, dst_building: u32) -> Option<IdealPath> {
    assert!((src_ap as usize) < apg.len(), "source AP out of range");
    let result = bfs(apg.graph(), src_ap);
    let best = apg
        .aps_in_building(dst_building)
        .into_iter()
        .filter(|ap| result.dist[*ap as usize].is_finite())
        .min_by(|a, b| {
            result.dist[*a as usize]
                .partial_cmp(&result.dist[*b as usize])
                .expect("finite distances")
        })?;
    let path = result.path_to(best).expect("filtered to reachable");
    let hops = (path.len() - 1) as u64;
    Some(IdealPath { path, hops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_core::Ap;
    use citymesh_geo::Point;

    fn ap(id: u32, x: f64, building: u32) -> Ap {
        Ap {
            id,
            pos: Point::new(x, 0.0),
            building,
        }
    }

    fn line() -> ApGraph {
        let aps: Vec<Ap> = (0..6).map(|i| ap(i, i as f64 * 40.0, i)).collect();
        ApGraph::build(&aps, 50.0)
    }

    #[test]
    fn straight_line_path() {
        let g = line();
        let p = ideal_path(&g, 0, 5).unwrap();
        assert_eq!(p.path, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(p.hops, 5);
    }

    #[test]
    fn same_building_zero_hops() {
        let g = line();
        let p = ideal_path(&g, 2, 2).unwrap();
        assert_eq!(p.hops, 0);
        assert_eq!(p.path, vec![2]);
    }

    #[test]
    fn picks_nearest_destination_ap() {
        // Destination building 9 has APs at both ends of the line.
        let aps = vec![
            ap(0, 0.0, 9),
            ap(1, 40.0, 1),
            ap(2, 80.0, 2),
            ap(3, 120.0, 9),
        ];
        let g = ApGraph::build(&aps, 50.0);
        let p = ideal_path(&g, 1, 9).unwrap();
        assert_eq!(p.hops, 1, "AP0 is one hop away; AP3 is two");
        assert_eq!(*p.path.last().unwrap(), 0);
    }

    #[test]
    fn unreachable_is_none() {
        let aps = vec![ap(0, 0.0, 0), ap(1, 500.0, 1)];
        let g = ApGraph::build(&aps, 50.0);
        assert!(ideal_path(&g, 0, 1).is_none());
        assert!(ideal_path(&g, 0, 42).is_none());
    }

    #[test]
    fn agrees_with_apgraph_helper() {
        let g = line();
        for dst in 0..6u32 {
            let hops = ideal_path(&g, 0, dst).map(|p| p.hops);
            assert_eq!(hops, g.ideal_hops_to_building(0, dst));
        }
    }
}
