//! Axis-aligned and oriented rectangles.
//!
//! [`Rect`] is the workhorse bounding box. [`OrientedRect`] models the
//! paper's *conduit*: a rectangle of length `L` (the distance between
//! two consecutive waypoint buildings) and width `W` (a protocol
//! parameter comparable to the Wi-Fi range), laid along the route
//! direction. An AP rebroadcasts a packet iff its location falls inside
//! one of the route's conduits (paper §3 step 3).

use crate::{Point, Segment, Vec2, EPS};

/// An axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rect from two opposite corners (in any order).
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The smallest rect containing every point in `pts`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding(pts: impl IntoIterator<Item = Point>) -> Option<Self> {
        let mut it = pts.into_iter();
        let first = it.next()?;
        let mut r = Rect {
            min: first,
            max: first,
        };
        for p in it {
            r.expand_to(p);
        }
        Some(r)
    }

    /// Grows the rect (in place) to contain `p`.
    pub fn expand_to(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Returns a copy grown outward by `margin` meters on every side.
    pub fn inflated(&self, margin: f64) -> Rect {
        Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Width along x, meters.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y, meters.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area, square meters.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether the two rects overlap (touching edges count).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// The smallest rect containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Distance from `p` to the rect (zero if inside).
    pub fn dist_to_point(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// The four corners in counterclockwise order starting at `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }
}

/// A rectangle oriented along an arbitrary axis — the paper's *conduit*.
///
/// Defined by a spine segment (waypoint centroid → next waypoint
/// centroid) and a width `w`. A point is inside iff its distance to the
/// spine, measured perpendicular, is ≤ `w/2` and its projection falls
/// within the spine extent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrientedRect {
    /// The spine the rectangle is laid along.
    pub spine: Segment,
    /// Full width, meters (the paper's `W`).
    pub width: f64,
}

impl OrientedRect {
    /// Creates a conduit over `spine` with total width `width`.
    pub fn new(spine: Segment, width: f64) -> Self {
        debug_assert!(width >= 0.0, "conduit width must be non-negative");
        OrientedRect { spine, width }
    }

    /// Length of the spine (the paper's `L`), meters.
    #[inline]
    pub fn len(&self) -> f64 {
        self.spine.len()
    }

    /// Whether `p` lies inside or on the boundary.
    ///
    /// A degenerate spine (both waypoints identical) behaves as a disc
    /// of radius `width / 2` — consistent with "cover everything within
    /// `W` of the route".
    pub fn contains(&self, p: Point) -> bool {
        self.spine.dist_to_point(p) <= self.width / 2.0 + EPS
    }

    /// Axis-aligned bounding box (for coarse spatial-index culling).
    pub fn bbox(&self) -> Rect {
        let r = self.width / 2.0;
        Rect::from_corners(self.spine.a, self.spine.b).inflated(r)
    }

    /// The four corners, counterclockwise, for rendering. Degenerate
    /// spines return a square of side `width` centered on the point.
    pub fn corners(&self) -> [Point; 4] {
        let half = self.width / 2.0;
        match self.spine.dir().normalized() {
            Some(d) => {
                let n = d.perp() * half;
                [
                    self.spine.a - n,
                    self.spine.b - n,
                    self.spine.b + n,
                    self.spine.a + n,
                ]
            }
            None => {
                let c = self.spine.a;
                [
                    c + Vec2::new(-half, -half),
                    c + Vec2::new(half, -half),
                    c + Vec2::new(half, half),
                    c + Vec2::new(-half, half),
                ]
            }
        }
    }

    /// Area, square meters (rectangle part; the `contains` predicate
    /// additionally covers rounded end caps).
    pub fn area(&self) -> f64 {
        self.len() * self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_from_corners_normalizes_order() {
        let r = Rect::from_corners(Point::new(5.0, -1.0), Point::new(1.0, 7.0));
        assert_eq!(r.min, Point::new(1.0, -1.0));
        assert_eq!(r.max, Point::new(5.0, 7.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 8.0);
        assert_eq!(r.area(), 32.0);
    }

    #[test]
    fn rect_bounding_of_points() {
        let pts = [
            Point::new(1.0, 1.0),
            Point::new(-2.0, 5.0),
            Point::new(3.0, 0.0),
        ];
        let r = Rect::bounding(pts).unwrap();
        assert_eq!(r.min, Point::new(-2.0, 0.0));
        assert_eq!(r.max, Point::new(3.0, 5.0));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn rect_contains_boundary_and_interior() {
        let r = Rect::from_corners(Point::ORIGIN, Point::new(10.0, 10.0));
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(!r.contains(Point::new(10.1, 5.0)));
    }

    #[test]
    fn rect_intersection_cases() {
        let a = Rect::from_corners(Point::ORIGIN, Point::new(10.0, 10.0));
        let b = Rect::from_corners(Point::new(5.0, 5.0), Point::new(15.0, 15.0));
        let c = Rect::from_corners(Point::new(11.0, 0.0), Point::new(20.0, 10.0));
        let d = Rect::from_corners(Point::new(10.0, 0.0), Point::new(20.0, 10.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&d)); // touching edge
    }

    #[test]
    fn rect_distance_zero_inside_and_euclidean_outside() {
        let r = Rect::from_corners(Point::ORIGIN, Point::new(10.0, 10.0));
        assert_eq!(r.dist_to_point(Point::new(3.0, 3.0)), 0.0);
        assert_eq!(r.dist_to_point(Point::new(13.0, 14.0)), 5.0); // corner
        assert_eq!(r.dist_to_point(Point::new(5.0, -2.0)), 2.0); // edge
    }

    #[test]
    fn conduit_contains_points_near_spine() {
        let spine = Segment::new(Point::ORIGIN, Point::new(100.0, 0.0));
        let c = OrientedRect::new(spine, 50.0);
        assert!(c.contains(Point::new(50.0, 24.9)));
        assert!(c.contains(Point::new(50.0, -24.9)));
        assert!(!c.contains(Point::new(50.0, 25.5)));
        // End caps are rounded: within W/2 of the endpoint counts.
        assert!(c.contains(Point::new(-10.0, 0.0)));
        assert!(!c.contains(Point::new(-26.0, 0.0)));
    }

    #[test]
    fn conduit_rotated_45_degrees() {
        let spine = Segment::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let c = OrientedRect::new(spine, 20.0);
        // Point exactly on the spine midline.
        assert!(c.contains(Point::new(50.0, 50.0)));
        // 9 m perpendicular off the midline (inside; half-width 10).
        let off = Vec2::new(-1.0, 1.0).normalized().unwrap() * 9.0;
        assert!(c.contains(Point::new(50.0, 50.0) + off));
        // 11 m perpendicular (outside).
        let far = Vec2::new(-1.0, 1.0).normalized().unwrap() * 11.0;
        assert!(!c.contains(Point::new(50.0, 50.0) + far));
    }

    #[test]
    fn conduit_degenerate_spine_is_disc() {
        let p = Point::new(5.0, 5.0);
        let c = OrientedRect::new(Segment::new(p, p), 10.0);
        assert!(c.contains(Point::new(5.0, 9.9)));
        assert!(!c.contains(Point::new(5.0, 10.5)));
        assert_eq!(c.corners().len(), 4);
    }

    #[test]
    fn conduit_bbox_covers_all_corners() {
        let spine = Segment::new(Point::new(0.0, 0.0), Point::new(60.0, 80.0));
        let c = OrientedRect::new(spine, 30.0);
        let bb = c.bbox();
        for corner in c.corners() {
            assert!(bb.contains(corner), "bbox {bb:?} missing corner {corner:?}");
        }
    }
}
