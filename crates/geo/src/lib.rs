//! Planar geometry for CityMesh.
//!
//! CityMesh routes packets through a city by reasoning about *building
//! footprints* on a 2D plane. This crate provides the geometric
//! vocabulary used everywhere else in the workspace:
//!
//! * [`Point`] / [`Vec2`] — positions and displacements in a local
//!   tangent plane, in **meters**.
//! * [`Segment`] — line segments with distance / projection queries.
//! * [`Rect`] — axis-aligned boxes (bounding boxes, coarse culling).
//! * [`OrientedRect`] — arbitrarily-rotated rectangles. These model the
//!   paper's *conduits*: rectangles of length `L` and width `W` laid
//!   over a building route (paper §3, Figure 4).
//! * [`Polygon`] — simple polygons for building footprints, with area,
//!   centroid, point-in-polygon, and distance queries.
//! * [`GridIndex`] — a uniform-grid spatial index for "all APs within
//!   `r` meters" queries over hundreds of thousands of points.
//! * [`Projection`] — equirectangular lat/lon ⇄ local-meter conversion,
//!   used when loading real OpenStreetMap extracts.
//!
//! All computation is `f64`. Coordinates are expected to stay within a
//! city-scale window (tens of kilometers), where an equirectangular
//! local projection is accurate to well under Wi-Fi range error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod hull;
mod point;
mod polygon;
mod proj;
mod rect;
mod segment;

pub use grid::GridIndex;
pub use hull::convex_hull;
pub use point::{Point, Vec2};
pub use polygon::Polygon;
pub use proj::{LatLon, Projection};
pub use rect::{OrientedRect, Rect};
pub use segment::Segment;

/// Comparison tolerance, in meters, used by geometric predicates.
///
/// One micrometer: far below construction- or GPS-scale noise, far above
/// `f64` rounding error at city-scale magnitudes (~1e-10 m at 10 km).
pub const EPS: f64 = 1e-6;

/// Returns `true` when `a` and `b` differ by at most [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}
