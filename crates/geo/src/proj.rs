//! Equirectangular projection between WGS-84 lat/lon and local meters.
//!
//! City-scale extents (≲ 30 km) make the equirectangular approximation
//! accurate to centimeters — negligible against Wi-Fi range (~50 m) and
//! GPS error (~5 m). This is how OSM building footprints are brought
//! into the simulation plane.

use crate::Point;

/// Mean Earth radius, meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 coordinate in degrees.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatLon {
    /// Latitude, degrees, positive north. Must be in `[-90, 90]`.
    pub lat: f64,
    /// Longitude, degrees, positive east. Must be in `[-180, 180]`.
    pub lon: f64,
}

impl LatLon {
    /// Creates a coordinate, returning `None` when out of range or
    /// non-finite.
    pub fn new(lat: f64, lon: f64) -> Option<Self> {
        if lat.is_finite()
            && lon.is_finite()
            && (-90.0..=90.0).contains(&lat)
            && (-180.0..=180.0).contains(&lon)
        {
            Some(LatLon { lat, lon })
        } else {
            None
        }
    }

    /// Great-circle distance to `other` using the haversine formula,
    /// meters. Used in tests to bound projection error.
    pub fn haversine_dist(self, other: LatLon) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }
}

/// An equirectangular projection anchored at a reference coordinate.
///
/// `project` maps the anchor to the local origin; x grows east, y grows
/// north. `unproject` inverts it exactly (up to float rounding).
#[derive(Clone, Copy, Debug)]
pub struct Projection {
    origin: LatLon,
    /// Meters per degree of longitude at the anchor latitude.
    m_per_deg_lon: f64,
    /// Meters per degree of latitude.
    m_per_deg_lat: f64,
}

impl Projection {
    /// Creates a projection anchored at `origin` (typically the
    /// centroid of the city's bounding box).
    pub fn new(origin: LatLon) -> Self {
        let m_per_deg_lat = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
        let m_per_deg_lon = m_per_deg_lat * origin.lat.to_radians().cos();
        Projection {
            origin,
            m_per_deg_lon,
            m_per_deg_lat,
        }
    }

    /// The anchor coordinate (maps to the local origin).
    pub fn origin(&self) -> LatLon {
        self.origin
    }

    /// Projects a lat/lon into local meters.
    pub fn project(&self, ll: LatLon) -> Point {
        Point::new(
            (ll.lon - self.origin.lon) * self.m_per_deg_lon,
            (ll.lat - self.origin.lat) * self.m_per_deg_lat,
        )
    }

    /// Inverse of [`Projection::project`].
    pub fn unproject(&self, p: Point) -> LatLon {
        LatLon {
            lat: self.origin.lat + p.y / self.m_per_deg_lat,
            lon: self.origin.lon + p.x / self.m_per_deg_lon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOSTON: LatLon = LatLon {
        lat: 42.3601,
        lon: -71.0589,
    };

    #[test]
    fn latlon_validation() {
        assert!(LatLon::new(42.0, -71.0).is_some());
        assert!(LatLon::new(91.0, 0.0).is_none());
        assert!(LatLon::new(0.0, 181.0).is_none());
        assert!(LatLon::new(f64::NAN, 0.0).is_none());
    }

    #[test]
    fn origin_projects_to_origin() {
        let proj = Projection::new(BOSTON);
        let p = proj.project(BOSTON);
        assert!(p.dist(Point::ORIGIN) < 1e-9);
    }

    #[test]
    fn project_unproject_round_trip() {
        let proj = Projection::new(BOSTON);
        let ll = LatLon::new(42.3736, -71.1097).unwrap(); // Cambridge
        let back = proj.unproject(proj.project(ll));
        assert!((back.lat - ll.lat).abs() < 1e-12);
        assert!((back.lon - ll.lon).abs() < 1e-12);
    }

    #[test]
    fn axes_orientation() {
        let proj = Projection::new(BOSTON);
        let north = proj.project(LatLon::new(BOSTON.lat + 0.01, BOSTON.lon).unwrap());
        let east = proj.project(LatLon::new(BOSTON.lat, BOSTON.lon + 0.01).unwrap());
        assert!(north.y > 0.0 && north.x.abs() < 1e-9);
        assert!(east.x > 0.0 && east.y.abs() < 1e-9);
    }

    #[test]
    fn projection_matches_haversine_at_city_scale() {
        let proj = Projection::new(BOSTON);
        // MIT campus → downtown Boston, a few km.
        let a = LatLon::new(42.3601, -71.0942).unwrap();
        let b = LatLon::new(42.3554, -71.0605).unwrap();
        let planar = proj.project(a).dist(proj.project(b));
        let sphere = a.haversine_dist(b);
        // Error well under 1 m over ~3 km.
        assert!(
            (planar - sphere).abs() < 1.0,
            "planar={planar} sphere={sphere}"
        );
    }

    #[test]
    fn one_degree_latitude_is_about_111_km() {
        let proj = Projection::new(LatLon::new(0.0, 0.0).unwrap());
        let p = proj.project(LatLon::new(1.0, 0.0).unwrap());
        assert!((p.y - 111_194.9).abs() < 10.0);
    }
}
