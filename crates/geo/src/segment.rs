//! Line segments and their distance / projection queries.

use crate::{Point, Vec2, EPS};

/// A directed line segment from `a` to `b`.
///
/// The direction matters for conduit construction: conduits extend from
/// one waypoint *toward* the next (paper §3, Figure 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates the segment `a → b`.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length, meters.
    #[inline]
    pub fn len(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Returns `true` if the endpoints coincide (within [`EPS`]).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.len() <= EPS
    }

    /// Displacement from `a` to `b`.
    #[inline]
    pub fn dir(&self) -> Vec2 {
        self.b - self.a
    }

    /// The parameter `t ∈ [0, 1]` of the point on the segment closest
    /// to `p`. Degenerate segments return `0`.
    pub fn project_clamped(&self, p: Point) -> f64 {
        let d = self.dir();
        let n2 = d.norm2();
        if n2 <= EPS * EPS {
            return 0.0;
        }
        ((p - self.a).dot(d) / n2).clamp(0.0, 1.0)
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        self.a.lerp(self.b, self.project_clamped(p))
    }

    /// Distance from `p` to the segment, meters.
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).dist(p)
    }

    /// Point at parameter `t` (`0` = `a`, `1` = `b`; not clamped).
    #[inline]
    pub fn point_at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Tests whether this segment properly or improperly intersects
    /// `other` (shared endpoints and touching count as intersection).
    pub fn intersects(&self, other: &Segment) -> bool {
        // Standard orientation test with collinear special cases.
        let d1 = orient(other.a, other.b, self.a);
        let d2 = orient(other.a, other.b, self.b);
        let d3 = orient(self.a, self.b, other.a);
        let d4 = orient(self.a, self.b, other.b);

        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1.abs() <= EPS && on_segment(other.a, other.b, self.a))
            || (d2.abs() <= EPS && on_segment(other.a, other.b, self.b))
            || (d3.abs() <= EPS && on_segment(self.a, self.b, other.a))
            || (d4.abs() <= EPS && on_segment(self.a, self.b, other.b))
    }

    /// Minimum distance between two segments, meters. Zero if they
    /// intersect.
    pub fn dist_to_segment(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        let mut best = self.dist_to_point(other.a);
        best = best.min(self.dist_to_point(other.b));
        best = best.min(other.dist_to_point(self.a));
        best.min(other.dist_to_point(self.b))
    }
}

/// Twice the signed area of triangle `(a, b, c)`; positive when `c` is
/// left of `a → b`.
#[inline]
fn orient(a: Point, b: Point, c: Point) -> f64 {
    (b - a).cross(c - a)
}

/// Whether `p` (already known collinear with `a..b`) lies within the
/// segment's bounding box.
#[inline]
fn on_segment(a: Point, b: Point, p: Point) -> bool {
    p.x >= a.x.min(b.x) - EPS
        && p.x <= a.x.max(b.x) + EPS
        && p.y >= a.y.min(b.y) - EPS
        && p.y <= a.y.max(b.y) + EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn length_and_degeneracy() {
        assert_eq!(seg(0.0, 0.0, 3.0, 4.0).len(), 5.0);
        assert!(seg(1.0, 1.0, 1.0, 1.0).is_degenerate());
        assert!(!seg(0.0, 0.0, 0.1, 0.0).is_degenerate());
    }

    #[test]
    fn projection_interior_and_clamped() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.project_clamped(Point::new(4.0, 5.0)), 0.4);
        assert_eq!(s.project_clamped(Point::new(-3.0, 1.0)), 0.0);
        assert_eq!(s.project_clamped(Point::new(30.0, 1.0)), 1.0);
    }

    #[test]
    fn closest_point_and_distance() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.closest_point(Point::new(4.0, 5.0)), Point::new(4.0, 0.0));
        assert_eq!(s.dist_to_point(Point::new(4.0, 5.0)), 5.0);
        // Beyond the end: distance is to endpoint, not the infinite line.
        assert_eq!(s.dist_to_point(Point::new(13.0, 4.0)), 5.0);
    }

    #[test]
    fn degenerate_segment_distance_is_point_distance() {
        let s = seg(2.0, 2.0, 2.0, 2.0);
        assert_eq!(s.dist_to_point(Point::new(5.0, 6.0)), 5.0);
        assert_eq!(s.project_clamped(Point::new(5.0, 6.0)), 0.0);
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = seg(0.0, 0.0, 10.0, 10.0);
        let s2 = seg(0.0, 10.0, 10.0, 0.0);
        assert!(s1.intersects(&s2));
        assert_eq!(s1.dist_to_segment(&s2), 0.0);
    }

    #[test]
    fn touching_at_endpoint_counts_as_intersection() {
        let s1 = seg(0.0, 0.0, 5.0, 5.0);
        let s2 = seg(5.0, 5.0, 9.0, 0.0);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn collinear_overlapping_and_disjoint() {
        let s1 = seg(0.0, 0.0, 5.0, 0.0);
        let s2 = seg(3.0, 0.0, 8.0, 0.0);
        let s3 = seg(6.0, 0.0, 9.0, 0.0);
        assert!(s1.intersects(&s2));
        assert!(!s1.intersects(&s3));
        assert!((s1.dist_to_segment(&s3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_segments_distance() {
        let s1 = seg(0.0, 0.0, 10.0, 0.0);
        let s2 = seg(0.0, 3.0, 10.0, 3.0);
        assert!(!s1.intersects(&s2));
        assert_eq!(s1.dist_to_segment(&s2), 3.0);
    }
}
