//! Simple polygons — the representation of building footprints.

use crate::{Point, Rect, Segment, EPS};

/// A simple (non-self-intersecting) polygon given by its boundary ring.
///
/// The ring is stored without a repeated closing vertex. Vertices may
/// be in clockwise or counterclockwise order; area and centroid are
/// computed sign-correctly either way. Building footprints extracted
/// from OpenStreetMap or produced by the synthetic generator are
/// `Polygon`s.
///
/// ```
/// use citymesh_geo::{Point, Polygon};
///
/// let footprint = Polygon::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(20.0, 0.0),
///     Point::new(20.0, 10.0),
///     Point::new(0.0, 10.0),
/// ]).expect("a valid ring");
/// assert_eq!(footprint.area(), 200.0);
/// assert_eq!(footprint.centroid(), Point::new(10.0, 5.0));
/// assert!(footprint.contains(Point::new(3.0, 3.0)));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Polygon {
    ring: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from its boundary ring.
    ///
    /// Returns `None` when fewer than 3 vertices are supplied or any
    /// coordinate is non-finite. A trailing vertex equal to the first
    /// is dropped (OSM ways close their rings explicitly).
    pub fn new(mut ring: Vec<Point>) -> Option<Self> {
        if ring.len() >= 2 && ring.first() == ring.last() {
            ring.pop();
        }
        if ring.len() < 3 || ring.iter().any(|p| !p.is_finite()) {
            return None;
        }
        Some(Polygon { ring })
    }

    /// An axis-aligned rectangle as a polygon (common for synthetic
    /// buildings).
    pub fn rect(r: Rect) -> Self {
        Polygon {
            ring: r.corners().to_vec(),
        }
    }

    /// A regular `n`-gon approximating a circle (used for towers,
    /// gas holders, and rounded synthetic buildings).
    pub fn circle(center: Point, radius: f64, n: usize) -> Option<Self> {
        if n < 3 || radius <= 0.0 {
            return None;
        }
        let ring = (0..n)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / n as f64;
                Point::new(center.x + radius * a.cos(), center.y + radius * a.sin())
            })
            .collect();
        Some(Polygon { ring })
    }

    /// The boundary vertices (no repeated closing vertex).
    #[inline]
    pub fn ring(&self) -> &[Point] {
        &self.ring
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Always `false`: construction guarantees ≥ 3 vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterator over boundary edges, each as a [`Segment`].
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.ring.len();
        (0..n).map(move |i| Segment::new(self.ring[i], self.ring[(i + 1) % n]))
    }

    /// Signed area via the shoelace formula: positive for
    /// counterclockwise rings.
    pub fn signed_area(&self) -> f64 {
        let n = self.ring.len();
        let mut acc = 0.0;
        for i in 0..n {
            let p = self.ring[i];
            let q = self.ring[(i + 1) % n];
            acc += p.x * q.y - q.x * p.y;
        }
        acc / 2.0
    }

    /// Absolute area, square meters.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Boundary length, meters.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.len()).sum()
    }

    /// Area centroid.
    ///
    /// Falls back to the vertex mean for (near-)degenerate polygons
    /// whose area is ~0, so every building always has a usable anchor
    /// point for routing.
    pub fn centroid(&self) -> Point {
        let a = self.signed_area();
        if a.abs() <= EPS {
            let n = self.ring.len() as f64;
            let (sx, sy) = self
                .ring
                .iter()
                .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
            return Point::new(sx / n, sy / n);
        }
        let n = self.ring.len();
        let (mut cx, mut cy) = (0.0, 0.0);
        for i in 0..n {
            let p = self.ring[i];
            let q = self.ring[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        Rect::bounding(self.ring.iter().copied()).expect("polygon has at least 3 vertices")
    }

    /// Point-in-polygon test (ray casting). Points on the boundary are
    /// reported inside.
    pub fn contains(&self, p: Point) -> bool {
        // Boundary check first: ray casting is unreliable exactly on edges.
        if self.edges().any(|e| e.dist_to_point(p) <= EPS) {
            return true;
        }
        let n = self.ring.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let pi = self.ring[i];
            let pj = self.ring[j];
            if (pi.y > p.y) != (pj.y > p.y) {
                let x_cross = pj.x + (p.y - pj.y) / (pi.y - pj.y) * (pi.x - pj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Distance from `p` to the polygon: zero inside, else distance to
    /// the nearest boundary edge.
    pub fn dist_to_point(&self, p: Point) -> f64 {
        if self.contains(p) {
            return 0.0;
        }
        self.edges()
            .map(|e| e.dist_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Minimum boundary-to-boundary distance between two polygons
    /// (zero when they touch, overlap, or one contains the other).
    ///
    /// Used by the building-graph builder: two buildings are predicted
    /// to have AP connectivity when this gap is below a threshold
    /// derived from the Wi-Fi transmission range.
    pub fn dist_to_polygon(&self, other: &Polygon) -> f64 {
        if self.contains(other.ring[0]) || other.contains(self.ring[0]) {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for e in self.edges() {
            for f in other.edges() {
                best = best.min(e.dist_to_segment(&f));
                if best == 0.0 {
                    return 0.0;
                }
            }
        }
        best
    }

    /// Translates every vertex by `(dx, dy)` meters.
    pub fn translated(&self, dx: f64, dy: f64) -> Polygon {
        Polygon {
            ring: self
                .ring
                .iter()
                .map(|p| Point::new(p.x + dx, p.y + dy))
                .collect(),
        }
    }

    /// Rotates every vertex by `angle` radians about `pivot`.
    pub fn rotated(&self, pivot: Point, angle: f64) -> Polygon {
        let (s, c) = angle.sin_cos();
        Polygon {
            ring: self
                .ring
                .iter()
                .map(|p| {
                    let v = *p - pivot;
                    Point::new(pivot.x + v.x * c - v.y * s, pivot.y + v.x * s + v.y * c)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(Polygon::new(vec![]).is_none());
        assert!(Polygon::new(vec![Point::ORIGIN, Point::new(1.0, 0.0)]).is_none());
        assert!(Polygon::new(vec![
            Point::ORIGIN,
            Point::new(1.0, 0.0),
            Point::new(f64::NAN, 1.0),
        ])
        .is_none());
    }

    #[test]
    fn closed_ring_input_drops_duplicate() {
        let p = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0), // OSM-style explicit closure
        ])
        .unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn area_sign_tracks_winding() {
        let ccw = unit_square();
        assert_eq!(ccw.signed_area(), 1.0);
        let cw = Polygon::new(ccw.ring().iter().rev().copied().collect()).unwrap();
        assert_eq!(cw.signed_area(), -1.0);
        assert_eq!(cw.area(), 1.0);
    }

    #[test]
    fn centroid_of_square_and_triangle() {
        assert_eq!(unit_square().centroid(), Point::new(0.5, 0.5));
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 3.0),
        ])
        .unwrap();
        assert_eq!(tri.centroid(), Point::new(1.0, 1.0));
    }

    #[test]
    fn perimeter_of_square() {
        assert_eq!(unit_square().perimeter(), 4.0);
    }

    #[test]
    fn contains_interior_boundary_exterior() {
        let sq = unit_square();
        assert!(sq.contains(Point::new(0.5, 0.5)));
        assert!(sq.contains(Point::new(0.0, 0.5))); // edge
        assert!(sq.contains(Point::new(1.0, 1.0))); // vertex
        assert!(!sq.contains(Point::new(1.5, 0.5)));
        assert!(!sq.contains(Point::new(-0.001, 0.5)));
    }

    #[test]
    fn contains_concave_polygon() {
        // L-shape: the notch at (1.5, 1.5) is outside.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap();
        assert!(l.contains(Point::new(0.5, 1.5)));
        assert!(l.contains(Point::new(1.5, 0.5)));
        assert!(!l.contains(Point::new(1.5, 1.5)));
        assert_eq!(l.area(), 3.0);
    }

    #[test]
    fn distance_to_point() {
        let sq = unit_square();
        assert_eq!(sq.dist_to_point(Point::new(0.5, 0.5)), 0.0);
        assert_eq!(sq.dist_to_point(Point::new(2.0, 0.5)), 1.0);
        assert!((sq.dist_to_point(Point::new(2.0, 2.0)) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn polygon_gap_distance() {
        let a = unit_square();
        let b = a.translated(3.0, 0.0);
        assert_eq!(a.dist_to_polygon(&b), 2.0);
        let touching = a.translated(1.0, 0.0);
        assert_eq!(a.dist_to_polygon(&touching), 0.0);
        let overlapping = a.translated(0.5, 0.5);
        assert_eq!(a.dist_to_polygon(&overlapping), 0.0);
    }

    #[test]
    fn nested_polygons_have_zero_distance() {
        let outer = Polygon::rect(Rect::from_corners(
            Point::new(-5.0, -5.0),
            Point::new(5.0, 5.0),
        ));
        let inner = unit_square();
        assert_eq!(outer.dist_to_polygon(&inner), 0.0);
        assert_eq!(inner.dist_to_polygon(&outer), 0.0);
    }

    #[test]
    fn circle_approximation() {
        let c = Polygon::circle(Point::new(10.0, 10.0), 5.0, 64).unwrap();
        let expected = std::f64::consts::PI * 25.0;
        assert!((c.area() - expected).abs() / expected < 0.01);
        let cen = c.centroid();
        assert!(cen.dist(Point::new(10.0, 10.0)) < 1e-9);
        assert!(Polygon::circle(Point::ORIGIN, 5.0, 2).is_none());
        assert!(Polygon::circle(Point::ORIGIN, -1.0, 16).is_none());
    }

    #[test]
    fn rotation_preserves_area_and_centroid_distance() {
        let sq = unit_square();
        let rot = sq.rotated(Point::ORIGIN, 1.0);
        assert!((rot.area() - 1.0).abs() < 1e-12);
        let d0 = sq.centroid().dist(Point::ORIGIN);
        let d1 = rot.centroid().dist(Point::ORIGIN);
        assert!((d0 - d1).abs() < 1e-12);
    }
}
