//! Convex hull (Andrew's monotone chain).

use crate::{Point, EPS};

/// Computes the convex hull of `pts`, returned in counterclockwise
/// order starting from the lowest-leftmost point. Collinear points on
/// hull edges are dropped.
///
/// Degenerate inputs (fewer than 3 distinct points, or all collinear)
/// return the extreme points found, which may be fewer than 3.
///
/// Used by the measurement crate to summarize the sighting region of a
/// BSSID and by the map generator to merge footprint clusters.
pub fn convex_hull(pts: &[Point]) -> Vec<Point> {
    let mut v: Vec<Point> = pts.iter().copied().filter(|p| p.is_finite()).collect();
    v.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.y.partial_cmp(&b.y).unwrap())
    });
    v.dedup_by(|a, b| a.dist(*b) <= EPS);
    let n = v.len();
    if n < 3 {
        return v;
    }

    let cross = |o: Point, a: Point, b: Point| (a - o).cross(b - o);

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &v {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= EPS {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in v.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= EPS
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point repeats the first
    hull
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Polygon;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0), // interior
            Point::new(1.0, 3.0), // interior
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        let poly = Polygon::new(h).unwrap();
        assert_eq!(poly.area(), 16.0);
        assert!(poly.signed_area() > 0.0, "hull must be counterclockwise");
    }

    #[test]
    fn hull_drops_collinear_boundary_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0), // collinear on bottom edge
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn hull_of_degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::new(1.0, 1.0)]).len(), 1);
        // Duplicates collapse.
        assert_eq!(
            convex_hull(&[Point::new(1.0, 1.0), Point::new(1.0, 1.0)]).len(),
            1
        );
        // All collinear: returns the sorted distinct points.
        let line = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ];
        let h = convex_hull(&line);
        assert!(h.len() <= 3 && h.len() >= 2);
    }

    #[test]
    fn hull_contains_all_input_points() {
        // A pseudo-random deterministic scatter.
        let mut pts = Vec::new();
        let mut s = 42u64;
        for _ in 0..200 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 33) % 1000) as f64 / 10.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((s >> 33) % 1000) as f64 / 10.0;
            pts.push(Point::new(x, y));
        }
        let h = convex_hull(&pts);
        assert!(h.len() >= 3);
        let poly = Polygon::new(h).unwrap();
        for p in &pts {
            assert!(
                poly.dist_to_point(*p) < 1e-9,
                "hull must contain every input point, missing {p:?}"
            );
        }
    }
}
