//! Uniform-grid spatial index.
//!
//! CityMesh simulations place 10⁴–10⁶ APs on a city plane and need fast
//! "who hears this broadcast" queries (all points within the radio
//! range `r`). A uniform bucket grid with cell size ≈ `r` answers these
//! in O(points in 3×3 cells) which is near-optimal for the roughly
//! uniform densities produced by building-constrained placement.

use crate::{Point, Rect};

/// A spatial index mapping `u32` item ids to fixed positions.
///
/// Build once with [`GridIndex::build`], then query circles/rects. The
/// index is immutable after construction — simulation topology is
/// static for the duration of a run (APs do not move).
///
/// ```
/// use citymesh_geo::{GridIndex, Point};
///
/// let aps = vec![Point::new(0.0, 0.0), Point::new(40.0, 0.0), Point::new(500.0, 0.0)];
/// let index = GridIndex::build(&aps, 50.0);
/// // Who hears a broadcast from the first AP at 50 m range?
/// let heard = index.query_circle(aps[0], 50.0);
/// assert_eq!(heard, vec![0, 1]);
/// ```
#[derive(Clone, Debug)]
pub struct GridIndex {
    bounds: Rect,
    cell: f64,
    nx: usize,
    ny: usize,
    /// CSR layout: `starts[c]..starts[c+1]` indexes into `items`.
    starts: Vec<u32>,
    items: Vec<u32>,
    positions: Vec<Point>,
}

impl GridIndex {
    /// Builds an index over `positions`; item ids are the indices into
    /// the slice. `cell_size` should be close to the typical query
    /// radius (the Wi-Fi range, e.g. 50 m).
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive or any position
    /// is non-finite.
    pub fn build(positions: &[Point], cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell_size must be positive");
        assert!(
            positions.iter().all(|p| p.is_finite()),
            "positions must be finite"
        );
        let bounds = Rect::bounding(positions.iter().copied()).unwrap_or(Rect {
            min: Point::ORIGIN,
            max: Point::ORIGIN,
        });
        let nx = ((bounds.width() / cell_size).ceil() as usize).max(1);
        let ny = ((bounds.height() / cell_size).ceil() as usize).max(1);

        // Counting sort into CSR buckets.
        let ncells = nx * ny;
        let mut counts = vec![0u32; ncells + 1];
        let cell_of = |p: Point| -> usize {
            let cx = (((p.x - bounds.min.x) / cell_size) as usize).min(nx - 1);
            let cy = (((p.y - bounds.min.y) / cell_size) as usize).min(ny - 1);
            cy * nx + cx
        };
        for p in positions {
            counts[cell_of(*p) + 1] += 1;
        }
        for i in 1..=ncells {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut items = vec![0u32; positions.len()];
        for (i, p) in positions.iter().enumerate() {
            let c = cell_of(*p);
            items[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        GridIndex {
            bounds,
            cell: cell_size,
            nx,
            ny,
            starts,
            items,
            positions: positions.to_vec(),
        }
    }

    /// Number of indexed items.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Heap bytes held by the index (capacity, not length) — feeds
    /// the metro sweep's memory accounting.
    pub fn memory_bytes(&self) -> usize {
        self.starts.capacity() * std::mem::size_of::<u32>()
            + self.items.capacity() * std::mem::size_of::<u32>()
            + self.positions.capacity() * std::mem::size_of::<Point>()
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of item `id`.
    #[inline]
    pub fn position(&self, id: u32) -> Point {
        self.positions[id as usize]
    }

    /// Calls `f(id, pos)` for every item within `radius` of `center`
    /// (inclusive).
    pub fn for_each_in_circle(&self, center: Point, radius: f64, mut f: impl FnMut(u32, Point)) {
        if self.positions.is_empty() || radius < 0.0 {
            return;
        }
        let r2 = radius * radius;
        self.for_each_cell_overlapping(
            Rect::from_corners(center, center).inflated(radius),
            |id, pos| {
                if center.dist2(pos) <= r2 {
                    f(id, pos);
                }
            },
        );
    }

    /// Collects ids of every item within `radius` of `center`.
    pub fn query_circle(&self, center: Point, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_in_circle(center, radius, |id, _| out.push(id));
        out
    }

    /// Calls `f(id, pos)` for every item inside `rect` (boundary
    /// inclusive) without allocating — the alloc-free core of
    /// [`query_rect`](Self::query_rect), sized O(items in cells
    /// overlapping `rect`). Visit order follows the bucket layout
    /// (row-major cells, insertion order within a cell), so callers
    /// needing a canonical order must impose it themselves.
    pub fn for_each_in_rect(&self, rect: Rect, mut f: impl FnMut(u32, Point)) {
        self.for_each_cell_overlapping(rect, |id, pos| {
            if rect.contains(pos) {
                f(id, pos);
            }
        });
    }

    /// Collects ids of every item inside `rect` (boundary inclusive).
    pub fn query_rect(&self, rect: Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_in_rect(rect, |id, _| out.push(id));
        out
    }

    /// The id and distance of the item nearest to `p`, or `None` when
    /// the index is empty. Ties break toward the lower id.
    pub fn nearest(&self, p: Point) -> Option<(u32, f64)> {
        if self.positions.is_empty() {
            return None;
        }
        // Expanding ring search over cells, in units of the cell size.
        // Once the search radius covers the distance from `p` to the
        // far corner of the extent, every item has been examined.
        let mut radius = self.cell;
        let diag = self.bounds.width().hypot(self.bounds.height());
        let max_span = self.bounds.dist_to_point(p) + diag + self.cell;
        loop {
            let mut best: Option<(u32, f64)> = None;
            self.for_each_in_circle(p, radius, |id, pos| {
                let d = p.dist(pos);
                match best {
                    Some((bid, bd)) if d > bd || (d == bd && id > bid) => {}
                    _ => best = Some((id, d)),
                }
            });
            if let Some(hit) = best {
                return Some(hit);
            }
            if radius > max_span {
                // All items examined (radius covers the whole extent).
                return None;
            }
            radius *= 2.0;
        }
    }

    fn for_each_cell_overlapping(&self, rect: Rect, mut f: impl FnMut(u32, Point)) {
        if self.positions.is_empty() || !rect.intersects(&self.bounds) {
            return;
        }
        let cx0 = (((rect.min.x - self.bounds.min.x) / self.cell).floor() as isize).max(0) as usize;
        let cy0 = (((rect.min.y - self.bounds.min.y) / self.cell).floor() as isize).max(0) as usize;
        let cx1 = ((((rect.max.x - self.bounds.min.x) / self.cell).floor() as isize).max(0)
            as usize)
            .min(self.nx - 1);
        let cy1 = ((((rect.max.y - self.bounds.min.y) / self.cell).floor() as isize).max(0)
            as usize)
            .min(self.ny - 1);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let c = cy * self.nx + cx;
                let lo = self.starts[c] as usize;
                let hi = self.starts[c + 1] as usize;
                for &id in &self.items[lo..hi] {
                    f(id, self.positions[id as usize]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_of_points() -> (Vec<Point>, GridIndex) {
        // 10×10 lattice with 10 m spacing.
        let mut pts = Vec::new();
        for y in 0..10 {
            for x in 0..10 {
                pts.push(Point::new(x as f64 * 10.0, y as f64 * 10.0));
            }
        }
        let idx = GridIndex::build(&pts, 25.0);
        (pts, idx)
    }

    #[test]
    fn circle_query_matches_brute_force() {
        let (pts, idx) = grid_of_points();
        for (center, radius) in [
            (Point::new(45.0, 45.0), 15.0),
            (Point::new(0.0, 0.0), 10.0),
            (Point::new(95.0, 5.0), 30.0),
            (Point::new(-50.0, -50.0), 20.0), // fully outside
            (Point::new(50.0, 50.0), 500.0),  // covers everything
        ] {
            let mut expect: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| center.dist(**p) <= radius)
                .map(|(i, _)| i as u32)
                .collect();
            let mut got = idx.query_circle(center, radius);
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "center={center:?} r={radius}");
        }
    }

    #[test]
    fn rect_query_matches_brute_force() {
        let (pts, idx) = grid_of_points();
        let rect = Rect::from_corners(Point::new(15.0, 15.0), Point::new(60.0, 40.0));
        let mut expect: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains(**p))
            .map(|(i, _)| i as u32)
            .collect();
        let mut got = idx.query_rect(rect);
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn for_each_in_rect_passes_matching_positions() {
        let (pts, idx) = grid_of_points();
        let rect = Rect::from_corners(Point::new(0.0, 0.0), Point::new(25.0, 25.0));
        let mut seen = 0usize;
        idx.for_each_in_rect(rect, |id, pos| {
            assert_eq!(pos, pts[id as usize]);
            assert!(rect.contains(pos));
            seen += 1;
        });
        assert_eq!(seen, 9); // 3×3 lattice corner
    }

    #[test]
    fn boundary_radius_is_inclusive() {
        let pts = [Point::new(0.0, 0.0), Point::new(50.0, 0.0)];
        let idx = GridIndex::build(&pts, 50.0);
        let got = idx.query_circle(Point::new(0.0, 0.0), 50.0);
        assert_eq!(got.len(), 2, "point at exactly r must be included");
    }

    #[test]
    fn nearest_finds_closest_point() {
        let (_, idx) = grid_of_points();
        let (id, d) = idx.nearest(Point::new(42.0, 38.0)).unwrap();
        assert_eq!(idx.position(id), Point::new(40.0, 40.0));
        assert!((d - (2.0f64 * 2.0 + 2.0 * 2.0).sqrt()).abs() < 1e-12);
        // Far away still terminates and finds something.
        let (_, d_far) = idx.nearest(Point::new(1e5, 1e5)).unwrap();
        assert!(d_far > 0.0);
    }

    #[test]
    fn empty_and_single_item_index() {
        let idx = GridIndex::build(&[], 10.0);
        assert!(idx.is_empty());
        assert!(idx.nearest(Point::ORIGIN).is_none());
        assert!(idx.query_circle(Point::ORIGIN, 100.0).is_empty());

        let one = GridIndex::build(&[Point::new(3.0, 4.0)], 10.0);
        assert_eq!(one.len(), 1);
        assert_eq!(one.nearest(Point::ORIGIN), Some((0, 5.0)));
    }

    #[test]
    fn identical_positions_all_returned() {
        let p = Point::new(7.0, 7.0);
        let idx = GridIndex::build(&[p, p, p], 10.0);
        let got = idx.query_circle(p, 0.0);
        assert_eq!(got.len(), 3);
    }

    #[test]
    #[should_panic(expected = "cell_size")]
    fn zero_cell_size_panics() {
        GridIndex::build(&[Point::ORIGIN], 0.0);
    }
}
