//! Points and vectors in the local tangent plane (meters).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A position in the local tangent plane, in meters.
///
/// `x` grows eastward, `y` grows northward. Positions are produced
/// either by the synthetic city generator or by projecting lat/lon
/// through [`crate::Projection`].
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting, meters.
    pub x: f64,
    /// Northing, meters.
    pub y: f64,
}

/// A displacement between two [`Point`]s, in meters.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Easting component, meters.
    pub x: f64,
    /// Northing component, meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from easting/northing meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin of the local plane.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to `other`, meters.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`. Avoids the `sqrt` when
    /// only comparisons are needed (hot path in radio-range queries).
    #[inline]
    pub fn dist2(self, other: Point) -> f64 {
        (self - other).norm2()
    }

    /// Linear interpolation: `t = 0` yields `self`, `t = 1` yields `other`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Interprets the point as a displacement from the origin.
    #[inline]
    pub fn to_vec(self) -> Vec2 {
        Vec2 {
            x: self.x,
            y: self.y,
        }
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    /// Creates a vector from easting/northing components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// The zero displacement.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Euclidean length, meters.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z-component of the 3D cross product).
    ///
    /// Positive when `other` is counterclockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction, or `None` for (near-)zero
    /// vectors where the direction is undefined.
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n <= crate::EPS {
            None
        } else {
            Some(self / n)
        }
    }

    /// Rotates 90° counterclockwise. Used to construct conduit walls
    /// perpendicular to the route direction.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2 {
            x: -self.y,
            y: self.x,
        }
    }

    /// Angle from the +x axis, radians in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Unit vector at `angle` radians from the +x axis.
    #[inline]
    pub fn from_angle(angle: f64) -> Vec2 {
        Vec2 {
            x: angle.cos(),
            y: angle.sin(),
        }
    }

    /// Interprets the displacement as a point offset from the origin.
    #[inline]
    pub fn to_point(self) -> Point {
        Point {
            x: self.x,
            y: self.y,
        }
    }
}

impl Sub for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vec2) -> Point {
        Point {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point {
        Point {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vec2> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2 {
            x: self.x * rhs,
            y: self.y * rhs,
        }
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2 {
            x: self.x / rhs,
            y: self.y / rhs,
        }
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2 {
            x: -self.x,
            y: -self.y,
        }
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Debug for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.3}, {:.3}>", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_positive() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(b.dist(a), 5.0);
        assert_eq!(a.dist2(b), 25.0);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(5.0, 10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(3.0, 6.0));
    }

    #[test]
    fn cross_sign_indicates_orientation() {
        let east = Vec2::new(1.0, 0.0);
        let north = Vec2::new(0.0, 1.0);
        assert!(east.cross(north) > 0.0); // ccw
        assert!(north.cross(east) < 0.0); // cw
        assert_eq!(east.cross(east), 0.0); // parallel
    }

    #[test]
    fn perp_is_ccw_rotation() {
        let v = Vec2::new(2.0, 1.0);
        let p = v.perp();
        assert_eq!(v.dot(p), 0.0);
        assert!(v.cross(p) > 0.0);
        assert_eq!(p.norm(), v.norm());
    }

    #[test]
    fn normalized_zero_vector_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        let u = Vec2::new(0.0, 3.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert_eq!(u, Vec2::new(0.0, 1.0));
    }

    #[test]
    fn angle_round_trip() {
        for deg in [-179, -90, -45, 0, 30, 90, 179] {
            let a = (deg as f64).to_radians();
            let v = Vec2::from_angle(a);
            assert!((v.angle() - a).abs() < 1e-12, "deg={deg}");
        }
    }

    #[test]
    fn arithmetic_identities() {
        let p = Point::new(10.0, -2.0);
        let v = Vec2::new(1.5, 2.5);
        assert_eq!((p + v) - v, p);
        assert_eq!((p + v) - p, v);
        let mut q = p;
        q += v;
        q -= v;
        assert_eq!(q, p);
        assert_eq!(-v + v, Vec2::ZERO);
        assert_eq!(v * 2.0 / 2.0, v);
    }
}
