//! Property-based tests for the geometry crate.

use citymesh_geo::{convex_hull, GridIndex, OrientedRect, Point, Polygon, Rect, Segment};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    // City-scale coordinates.
    -20_000.0..20_000.0f64
}

fn point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

/// A random simple (convex) polygon: hull of ≥ 3 scattered points.
fn convex_polygon() -> impl Strategy<Value = Polygon> {
    proptest::collection::vec(point(), 3..40).prop_filter_map("degenerate hull", |pts| {
        let h = convex_hull(&pts);
        if h.len() >= 3 {
            Polygon::new(h)
        } else {
            None
        }
    })
}

proptest! {
    #[test]
    fn polygon_area_invariant_under_translation(poly in convex_polygon(), dx in -1e4..1e4f64, dy in -1e4..1e4f64) {
        let moved = poly.translated(dx, dy);
        prop_assert!((poly.area() - moved.area()).abs() <= 1e-6 * (1.0 + poly.area()));
    }

    #[test]
    fn polygon_centroid_translates_with_polygon(poly in convex_polygon(), dx in -1e4..1e4f64, dy in -1e4..1e4f64) {
        let c0 = poly.centroid();
        let c1 = poly.translated(dx, dy).centroid();
        prop_assert!((c1.x - (c0.x + dx)).abs() < 1e-4);
        prop_assert!((c1.y - (c0.y + dy)).abs() < 1e-4);
    }

    #[test]
    fn polygon_area_invariant_under_rotation(poly in convex_polygon(), angle in 0.0..std::f64::consts::TAU) {
        let rotated = poly.rotated(poly.centroid(), angle);
        prop_assert!((poly.area() - rotated.area()).abs() <= 1e-5 * (1.0 + poly.area()));
    }

    #[test]
    fn centroid_of_convex_polygon_is_inside(poly in convex_polygon()) {
        prop_assert!(poly.dist_to_point(poly.centroid()) < 1e-6);
    }

    #[test]
    fn hull_is_idempotent(pts in proptest::collection::vec(point(), 3..60)) {
        let h1 = convex_hull(&pts);
        let h2 = convex_hull(&h1);
        prop_assert_eq!(h1.len(), h2.len());
    }

    #[test]
    fn segment_distance_symmetric(a in point(), b in point(), c in point(), d in point()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        let d12 = s1.dist_to_segment(&s2);
        let d21 = s2.dist_to_segment(&s1);
        prop_assert!((d12 - d21).abs() < 1e-6);
    }

    #[test]
    fn segment_closest_point_is_on_segment(a in point(), b in point(), p in point()) {
        let s = Segment::new(a, b);
        let q = s.closest_point(p);
        // q must be within the segment's bounding box (inflated for rounding).
        let bb = Rect::from_corners(a, b).inflated(1e-6);
        prop_assert!(bb.contains(q));
        // And no endpoint is closer than q.
        let dq = p.dist(q);
        prop_assert!(dq <= p.dist(a) + 1e-9);
        prop_assert!(dq <= p.dist(b) + 1e-9);
    }

    #[test]
    fn conduit_contains_spine_samples(a in point(), b in point(), w in 1.0..200.0f64, t in 0.0..1.0f64) {
        let conduit = OrientedRect::new(Segment::new(a, b), w);
        prop_assert!(conduit.contains(Segment::new(a, b).point_at(t)));
    }

    #[test]
    fn conduit_bbox_conservative(a in point(), b in point(), w in 1.0..200.0f64, p in point()) {
        let conduit = OrientedRect::new(Segment::new(a, b), w);
        if conduit.contains(p) {
            prop_assert!(conduit.bbox().contains(p));
        }
    }

    #[test]
    fn grid_circle_query_matches_brute_force(
        pts in proptest::collection::vec(point(), 1..200),
        center in point(),
        radius in 0.0..5_000.0f64,
    ) {
        let idx = GridIndex::build(&pts, 100.0);
        let mut got = idx.query_circle(center, radius);
        got.sort_unstable();
        let mut expect: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| center.dist(**p) <= radius)
            .map(|(i, _)| i as u32)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn grid_nearest_matches_brute_force(
        pts in proptest::collection::vec(point(), 1..200),
        q in point(),
    ) {
        let idx = GridIndex::build(&pts, 100.0);
        let (_, got_d) = idx.nearest(q).expect("non-empty index");
        let want_d = pts.iter().map(|p| q.dist(*p)).fold(f64::INFINITY, f64::min);
        prop_assert!((got_d - want_d).abs() < 1e-9);
    }

    #[test]
    fn rect_union_contains_both(a1 in point(), a2 in point(), b1 in point(), b2 in point()) {
        let ra = Rect::from_corners(a1, a2);
        let rb = Rect::from_corners(b1, b2);
        let u = ra.union(&rb);
        for c in ra.corners().into_iter().chain(rb.corners()) {
            prop_assert!(u.contains(c));
        }
    }
}
