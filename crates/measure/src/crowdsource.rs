//! Crowdsourced survey simulation — the paper's footnote-1 argument.
//!
//! The paper collects its own data because "AP survey databases, like
//! wigle.net, are sporadically collected via crowdsourcing and thus
//! are non-uniform, and often lack precise locations." This module
//! makes that methodological claim testable: it simulates a
//! wigle-style crowd of contributors — short walks clustered around
//! personal hotspots, with sloppier positioning — and produces the
//! same [`Survey`] structure the systematic survey does, so the two
//! collection methods can be compared artifact for artifact.

use citymesh_geo::Point;
use citymesh_map::CityMap;
use citymesh_simcore::radio::Propagation;
use citymesh_simcore::{split_seed, SimRng};

use crate::survey::{Scan, Survey, SurveyConfig};

/// Crowdsourcing parameters layered on a base [`SurveyConfig`] (radio
/// and BSSID density are shared so differences come from *collection*,
/// not physics).
#[derive(Clone, Copy, Debug)]
pub struct CrowdsourceConfig {
    /// Number of contributors; total scans are split among them.
    pub contributors: usize,
    /// Radius of each contributor's activity cluster, meters (their
    /// commute/neighborhood bubble).
    pub cluster_radius_m: f64,
    /// Reported-position noise σ, meters — crowdsourced locations are
    /// phone-positioning artifacts, far worse than a survey GPS.
    pub location_noise_m: f64,
}

impl Default for CrowdsourceConfig {
    fn default() -> Self {
        CrowdsourceConfig {
            contributors: 12,
            cluster_radius_m: 120.0,
            location_noise_m: 25.0,
        }
    }
}

/// Runs a crowdsourced collection over `map`: contributors random-walk
/// inside personal clusters centered at random hotspots, scanning at
/// the same cadence and radio as the systematic survey in `base`.
pub fn run_crowdsourced(map: &CityMap, base: &SurveyConfig, crowd: &CrowdsourceConfig) -> Survey {
    assert!(crowd.contributors > 0, "need at least one contributor");
    assert!(
        crowd.cluster_radius_m > 0.0,
        "cluster radius must be positive"
    );

    // Plant the same BSSID field the systematic survey would see by
    // delegating to it with zero scans... placement is coupled to the
    // survey run, so replicate the planting here with the same seed
    // stream to keep the field identical across collection methods.
    let reference = Survey::run(map, &SurveyConfig { scans: 1, ..*base });
    let bssids = reference.bssids.clone();
    let index = citymesh_geo::GridIndex::build(&bssids, base.radio.max_range().max(1.0));

    let mut rng = SimRng::new(split_seed(base.seed, 0xC20D));
    let bounds = map.bounds();
    let max_range = base.radio.max_range();

    let scans_each = (base.scans / crowd.contributors).max(1);
    let mut scans: Vec<Scan> = Vec::with_capacity(scans_each * crowd.contributors);
    let mut t = 0.0;
    for _ in 0..crowd.contributors {
        // A personal hotspot somewhere in the city.
        let center = Point::new(
            rng.uniform_range(bounds.min.x, bounds.max.x),
            rng.uniform_range(bounds.min.y, bounds.max.y),
        );
        let mut pos = center;
        for _ in 0..scans_each {
            let hz = rng.uniform_range(base.min_hz, base.max_hz);
            t += 1.0 / hz;
            // Random walk with a pull back toward the hotspot.
            let step = base.mode.speed() / hz;
            let drift = (center - pos) * 0.1;
            let angle = rng.uniform_range(0.0, std::f64::consts::TAU);
            pos = pos + citymesh_geo::Vec2::from_angle(angle) * step + drift;
            // Clamp inside the cluster and the map.
            let off = pos - center;
            if off.norm() > crowd.cluster_radius_m {
                pos = center + off.normalized().expect("nonzero") * crowd.cluster_radius_m;
            }
            pos = Point::new(
                pos.x.clamp(bounds.min.x, bounds.max.x),
                pos.y.clamp(bounds.min.y, bounds.max.y),
            );

            let mut heard = Vec::new();
            index.for_each_in_circle(pos, max_range, |id, bpos| {
                if base.radio.link_exists(pos.dist(bpos), &mut rng) {
                    heard.push(id);
                }
            });
            heard.sort_unstable();
            let reported = Point::new(
                pos.x + crowd.location_noise_m * rng.std_normal(),
                pos.y + crowd.location_noise_m * rng.std_normal(),
            );
            scans.push(Scan {
                pos: reported,
                t_s: t,
                heard,
            });
        }
    }

    Survey {
        area: format!("{}-crowdsourced", map.name()),
        scans,
        bssids,
    }
}

/// Fraction of `cell_m`-sized map cells visited by at least one scan —
/// the uniformity metric behind "sporadically collected … non-uniform".
pub fn coverage_fraction(survey: &Survey, map: &CityMap, cell_m: f64) -> f64 {
    assert!(cell_m > 0.0, "cell size must be positive");
    let bounds = map.bounds();
    let nx = ((bounds.width() / cell_m).ceil() as usize).max(1);
    let ny = ((bounds.height() / cell_m).ceil() as usize).max(1);
    let mut visited = vec![false; nx * ny];
    for scan in &survey.scans {
        let cx = (((scan.pos.x - bounds.min.x) / cell_m) as isize).clamp(0, nx as isize - 1);
        let cy = (((scan.pos.y - bounds.min.y) / cell_m) as isize).clamp(0, ny as isize - 1);
        visited[cy as usize * nx + cx as usize] = true;
    }
    visited.iter().filter(|v| **v).count() as f64 / (nx * ny) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_map::CityArchetype;

    fn setup() -> (CityMap, SurveyConfig) {
        let map = CityArchetype::SurveyDowntown.generate(21);
        let cfg = SurveyConfig {
            scans: 240,
            seed: 21,
            ..SurveyConfig::default()
        };
        (map, cfg)
    }

    #[test]
    fn crowdsourced_run_is_deterministic() {
        let (map, cfg) = setup();
        let crowd = CrowdsourceConfig::default();
        let a = run_crowdsourced(&map, &cfg, &crowd);
        let b = run_crowdsourced(&map, &cfg, &crowd);
        assert_eq!(a.num_scans(), b.num_scans());
        assert_eq!(a.unique_aps(), b.unique_aps());
    }

    #[test]
    fn crowdsourcing_is_less_uniform_than_a_systematic_survey() {
        // The paper's claim: same scan budget, same radio — but
        // clustered contributors cover far less of the city. Uses a
        // paper-scale scan budget (the boustrophedon needs enough path
        // length to sweep every row of the area).
        let (map, mut cfg) = setup();
        cfg.scans = 1500;
        let systematic = Survey::run(&map, &cfg);
        let crowd = run_crowdsourced(&map, &cfg, &CrowdsourceConfig::default());
        let sys_cov = coverage_fraction(&systematic, &map, 100.0);
        let crowd_cov = coverage_fraction(&crowd, &map, 100.0);
        assert!(
            sys_cov > 1.5 * crowd_cov,
            "systematic {sys_cov:.2} should dwarf crowdsourced {crowd_cov:.2}"
        );
        // And discovers fewer unique APs for the same effort.
        assert!(
            systematic.unique_aps() > crowd.unique_aps(),
            "systematic {} vs crowdsourced {}",
            systematic.unique_aps(),
            crowd.unique_aps()
        );
    }

    #[test]
    fn location_noise_inflates_spread_estimates() {
        // "often lack precise locations": per-BSSID spread estimates
        // grow with reported-position noise even though the radio
        // field is identical.
        let (map, cfg) = setup();
        let tight = run_crowdsourced(
            &map,
            &cfg,
            &CrowdsourceConfig {
                location_noise_m: 1.0,
                ..CrowdsourceConfig::default()
            },
        );
        let sloppy = run_crowdsourced(
            &map,
            &cfg,
            &CrowdsourceConfig {
                location_noise_m: 60.0,
                ..CrowdsourceConfig::default()
            },
        );
        let m_tight = tight.spread_cdf().quantile(0.75).unwrap();
        let m_sloppy = sloppy.spread_cdf().quantile(0.75).unwrap();
        assert!(
            m_sloppy > m_tight,
            "noisier positions must inflate spreads: {m_tight} vs {m_sloppy}"
        );
    }

    #[test]
    fn scans_stay_inside_the_map() {
        let (map, cfg) = setup();
        let crowd = run_crowdsourced(&map, &cfg, &CrowdsourceConfig::default());
        // True positions are clamped; reported ones may stray by the
        // noise, so allow that much slack.
        let bounds = map.bounds().inflated(5.0 * 25.0);
        for s in &crowd.scans {
            assert!(bounds.contains(s.pos), "scan at {:?} escaped", s.pos);
        }
    }

    #[test]
    fn coverage_fraction_bounds() {
        let (map, cfg) = setup();
        let s = Survey::run(&map, &cfg);
        let f = coverage_fraction(&s, &map, 100.0);
        assert!(f > 0.0 && f <= 1.0);
        // One-cell grid is trivially covered.
        assert_eq!(coverage_fraction(&s, &map, 1e6), 1.0);
    }
}
