//! Synthetic reproduction of the paper's §2 measurement study.
//!
//! The paper's feasibility argument rests on a wardriving survey of
//! four Boston-area environments (downtown, campus, residential,
//! river): walk or bicycle through each, scan for AP beacons at
//! 0.2–0.4 Hz, record `(GPS position, BSSID list)` per scan. From
//! that: Table 1 (measurement/AP counts), Figure 1a (CDF of BSSIDs per
//! scan), Figure 1b (CDF of per-BSSID sighting spread), and Figure 2
//! (co-observed APs versus scan-pair distance).
//!
//! We cannot re-walk Boston, so [`survey`] simulates the survey over
//! the synthetic area archetypes: a boustrophedon trajectory sampled
//! at the paper's rates, with beacon reception drawn from a
//! log-distance/shadowing radio model. BSSIDs are modeled per *radio*:
//! one physical AP advertises several BSSIDs (multi-SSID is why
//! wardriving sees tens of thousands of "APs" in a one-hour walk), so
//! the generator plants BSSID radios denser than routing APs.
//! [`stats`] holds the CDF/percentile machinery the figures share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crowdsource;
pub mod stats;
pub mod survey;

pub use crowdsource::{coverage_fraction, run_crowdsourced, CrowdsourceConfig};
pub use stats::{Cdf, DistanceBin};
pub use survey::{Scan, Survey, SurveyConfig, TravelMode};
