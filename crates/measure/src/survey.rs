//! The simulated wardriving survey.

use citymesh_geo::Point;
use citymesh_map::CityMap;
use citymesh_simcore::radio::{LogDistance, Propagation};
use citymesh_simcore::{split_seed, SimRng};

use crate::stats::{bin_by_distance, Cdf, DistanceBin};

/// How the surveyor moves (paper §2: "walking or bicycling").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TravelMode {
    /// ≈ 1.4 m/s.
    Walk,
    /// ≈ 4.0 m/s.
    Bicycle,
}

impl TravelMode {
    /// Travel speed, m/s.
    pub fn speed(self) -> f64 {
        match self {
            TravelMode::Walk => 1.4,
            TravelMode::Bicycle => 4.0,
        }
    }
}

/// Survey parameters.
#[derive(Clone, Copy, Debug)]
pub struct SurveyConfig {
    /// Movement mode.
    pub mode: TravelMode,
    /// Number of scans to record.
    pub scans: usize,
    /// Scan frequency, Hz (paper: 0.2–0.4; each scan interval is drawn
    /// uniformly from this band).
    pub min_hz: f64,
    /// Upper scan frequency, Hz.
    pub max_hz: f64,
    /// Square meters of footprint per advertised BSSID. Wardriving
    /// counts BSSIDs, and one physical AP advertises several, so this
    /// sits well below the routing density (default 40 ≈ 5 BSSIDs per
    /// 200 m² physical AP).
    pub m2_per_bssid: f64,
    /// GPS error (σ of a 2-D normal), meters.
    pub gps_sigma_m: f64,
    /// Radio model for beacon reception.
    pub radio: LogDistance,
    /// Random seed.
    pub seed: u64,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig {
            mode: TravelMode::Walk,
            scans: 500,
            min_hz: 0.2,
            max_hz: 0.4,
            m2_per_bssid: 20.0,
            gps_sigma_m: 4.0,
            // Median decode range 50 m with a steep urban exponent:
            // the paper's observed per-BSSID spreads (54–168 m, i.e.
            // transmission radii 27–84 m) pin the decode range well
            // below free-space; the high per-scan MAC counts are then
            // explained by density, not range.
            radio: LogDistance::with_median_range(50.0, 3.5, 5.0),
            seed: 0,
        }
    }
}

/// One scan: where the surveyor stood and which BSSIDs they heard.
#[derive(Clone, Debug)]
pub struct Scan {
    /// Reported (GPS-noised) position.
    pub pos: Point,
    /// Time since survey start, seconds.
    pub t_s: f64,
    /// Indices (into the survey's BSSID table) heard in this scan.
    pub heard: Vec<u32>,
}

/// A completed survey of one area.
#[derive(Clone, Debug)]
pub struct Survey {
    /// Area name (from the map).
    pub area: String,
    /// All scans in time order.
    pub scans: Vec<Scan>,
    /// True BSSID positions (not visible to the analysis, which only
    /// uses sighting locations — but kept for validation).
    pub bssids: Vec<Point>,
}

impl Survey {
    /// Runs the survey over `map`: plants BSSID radios inside
    /// footprints, drives a boustrophedon trajectory across the area,
    /// and records beacon receptions per scan.
    ///
    /// ```
    /// use citymesh_map::CityArchetype;
    /// use citymesh_measure::{Survey, SurveyConfig};
    ///
    /// let map = CityArchetype::SurveyDowntown.generate(1);
    /// let cfg = SurveyConfig { scans: 50, seed: 1, ..SurveyConfig::default() };
    /// let survey = Survey::run(&map, &cfg);
    /// assert_eq!(survey.num_scans(), 50);
    /// assert!(survey.unique_aps() > 100, "downtown is BSSID-dense");
    /// ```
    pub fn run(map: &CityMap, cfg: &SurveyConfig) -> Survey {
        assert!(cfg.scans > 0, "a survey needs at least one scan");
        assert!(
            cfg.min_hz > 0.0 && cfg.min_hz <= cfg.max_hz,
            "scan frequency band invalid"
        );
        let mut place_rng = SimRng::new(split_seed(cfg.seed, 0xB551D));
        let mut radio_rng = SimRng::new(split_seed(cfg.seed, 0x3AD10));
        let mut gps_rng = SimRng::new(split_seed(cfg.seed, 0x6E5));

        // Plant BSSIDs uniformly inside footprints.
        let mut bssids = Vec::new();
        for b in map.buildings() {
            let expected = b.area / cfg.m2_per_bssid;
            let mut n = expected.floor() as usize;
            if place_rng.chance(expected - expected.floor()) {
                n += 1;
            }
            let bbox = b.footprint.bbox();
            for _ in 0..n.max(1) {
                let mut pos = b.centroid;
                for _ in 0..64 {
                    let cand = Point::new(
                        place_rng.uniform_range(bbox.min.x, bbox.max.x),
                        place_rng.uniform_range(bbox.min.y, bbox.max.y),
                    );
                    if b.footprint.contains(cand) {
                        pos = cand;
                        break;
                    }
                }
                bssids.push(pos);
            }
        }
        let index = citymesh_geo::GridIndex::build(&bssids, cfg.radio.max_range().max(1.0));

        // Boustrophedon trajectory over the map bounds: rows spaced so
        // the requested number of scans roughly covers the area once.
        let bounds = map.bounds();
        let speed = cfg.mode.speed();
        let mean_period = 2.0 / (cfg.min_hz + cfg.max_hz);
        let total_path = cfg.scans as f64 * speed * mean_period;
        let rows = ((total_path / bounds.width().max(1.0)).ceil() as usize).clamp(1, 200);
        let row_spacing = bounds.height() / rows as f64;

        let pos_at = |s: f64| -> Point {
            // Arc-length position along the lawnmower path.
            let row_len = bounds.width();
            let row = ((s / row_len) as usize).min(rows - 1);
            let along = s - row as f64 * row_len;
            let x = if row.is_multiple_of(2) {
                bounds.min.x + along
            } else {
                bounds.max.x - along
            };
            let y = bounds.min.y + (row as f64 + 0.5) * row_spacing;
            Point::new(x.clamp(bounds.min.x, bounds.max.x), y)
        };

        let mut scans = Vec::with_capacity(cfg.scans);
        let mut t = 0.0;
        let mut dist = 0.0;
        let max_range = cfg.radio.max_range();
        for _ in 0..cfg.scans {
            let hz = radio_rng.uniform_range(cfg.min_hz, cfg.max_hz);
            t += 1.0 / hz;
            dist += speed / hz;
            // Wrap around if the path is exhausted (re-walk the area).
            let path_len = rows as f64 * bounds.width();
            let true_pos = pos_at(dist % path_len.max(1.0));
            let mut heard = Vec::new();
            index.for_each_in_circle(true_pos, max_range, |id, bpos| {
                if cfg.radio.link_exists(true_pos.dist(bpos), &mut radio_rng) {
                    heard.push(id);
                }
            });
            heard.sort_unstable();
            let gps = Point::new(
                true_pos.x + cfg.gps_sigma_m * gps_rng.std_normal(),
                true_pos.y + cfg.gps_sigma_m * gps_rng.std_normal(),
            );
            scans.push(Scan {
                pos: gps,
                t_s: t,
                heard,
            });
        }

        Survey {
            area: map.name().to_string(),
            scans,
            bssids,
        }
    }

    /// Number of scans (Table 1 "# Measurements").
    pub fn num_scans(&self) -> usize {
        self.scans.len()
    }

    /// Number of distinct BSSIDs ever heard (Table 1 "# Unique APs").
    pub fn unique_aps(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for s in &self.scans {
            seen.extend(s.heard.iter().copied());
        }
        seen.len()
    }

    /// Figure 1a: the CDF of BSSIDs heard per scan.
    pub fn macs_per_scan_cdf(&self) -> Cdf {
        Cdf::new(self.scans.iter().map(|s| s.heard.len() as f64).collect())
    }

    /// Figure 1b: the CDF of per-BSSID sighting spread (max pairwise
    /// distance among the scan positions where it was heard). BSSIDs
    /// sighted once have spread 0, as in the paper's definition.
    pub fn spread_cdf(&self) -> Cdf {
        let mut sightings: std::collections::HashMap<u32, Vec<Point>> =
            std::collections::HashMap::new();
        for s in &self.scans {
            for id in &s.heard {
                sightings.entry(*id).or_default().push(s.pos);
            }
        }
        let spreads = sightings
            .values()
            .map(|pts| {
                let mut max = 0.0f64;
                for i in 0..pts.len() {
                    for j in i + 1..pts.len() {
                        max = max.max(pts[i].dist(pts[j]));
                    }
                }
                max
            })
            .collect();
        Cdf::new(spreads)
    }

    /// Figure 2: for every scan pair, the distance between them and
    /// the number of co-observed BSSIDs, binned by distance with
    /// whisker percentiles. `max_pairs` caps the quadratic pair count
    /// by deterministic subsampling of scans.
    pub fn common_aps_by_distance(&self, edges: &[f64], max_pairs: usize) -> Vec<DistanceBin> {
        // Subsample scans so pairs ≲ max_pairs.
        let n = self.scans.len();
        let need = ((2.0 * max_pairs as f64).sqrt().ceil() as usize).max(2);
        let step = (n / need.min(n)).max(1);
        let sample: Vec<&Scan> = self.scans.iter().step_by(step).collect();

        let sets: Vec<std::collections::HashSet<u32>> = sample
            .iter()
            .map(|s| s.heard.iter().copied().collect())
            .collect();
        let mut pairs = Vec::new();
        for i in 0..sample.len() {
            for j in i + 1..sample.len() {
                let d = sample[i].pos.dist(sample[j].pos);
                let common = sets[i].intersection(&sets[j]).count();
                pairs.push((d, common as f64));
            }
        }
        bin_by_distance(&pairs, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_map::CityArchetype;

    fn quick_cfg(seed: u64) -> SurveyConfig {
        SurveyConfig {
            scans: 150,
            seed,
            ..SurveyConfig::default()
        }
    }

    fn downtown_survey(seed: u64) -> Survey {
        let map = CityArchetype::SurveyDowntown.generate(seed);
        Survey::run(&map, &quick_cfg(seed))
    }

    #[test]
    fn survey_is_deterministic() {
        let a = downtown_survey(1);
        let b = downtown_survey(1);
        assert_eq!(a.num_scans(), b.num_scans());
        assert_eq!(a.unique_aps(), b.unique_aps());
        for (x, y) in a.scans.iter().zip(&b.scans) {
            assert_eq!(x.heard, y.heard);
            assert_eq!(x.pos, y.pos);
        }
    }

    #[test]
    fn scan_cadence_matches_config() {
        let s = downtown_survey(2);
        assert_eq!(s.num_scans(), 150);
        // Inter-scan periods must lie in [1/0.4, 1/0.2] = [2.5, 5] s.
        let mut last = 0.0;
        for scan in &s.scans {
            let dt = scan.t_s - last;
            assert!((2.5..=5.0).contains(&dt), "period {dt}");
            last = scan.t_s;
        }
    }

    #[test]
    fn downtown_hears_many_aps_per_scan() {
        let s = downtown_survey(3);
        let cdf = s.macs_per_scan_cdf();
        let median = cdf.median().unwrap();
        assert!(
            median > 30.0,
            "downtown median BSSIDs per scan should be large, got {median}"
        );
        assert!(s.unique_aps() > 500, "unique APs {}", s.unique_aps());
    }

    #[test]
    fn density_ordering_downtown_vs_river() {
        // Paper Figure 1a: downtown median 218, river median 60 —
        // downtown well above river.
        let downtown = downtown_survey(4).macs_per_scan_cdf().median().unwrap();
        let river_map = CityArchetype::SurveyRiver.generate(4);
        let river = Survey::run(&river_map, &quick_cfg(4))
            .macs_per_scan_cdf()
            .median()
            .unwrap();
        assert!(
            downtown > 1.5 * river,
            "downtown ({downtown}) should dominate river ({river})"
        );
    }

    #[test]
    fn spreads_are_plausible_transmission_diameters() {
        let s = downtown_survey(5);
        let cdf = s.spread_cdf();
        let median = cdf.median().unwrap();
        // Paper medians: 54–168 m across areas. Anything in tens to a
        // couple hundred meters is the right physics.
        assert!(
            (20.0..300.0).contains(&median),
            "median spread {median} m out of plausible range"
        );
    }

    #[test]
    fn common_aps_decay_with_distance() {
        let s = downtown_survey(6);
        let edges: Vec<f64> = (0..=6).map(|i| i as f64 * 50.0).collect();
        let bins = s.common_aps_by_distance(&edges, 20_000);
        assert_eq!(bins.len(), 6);
        let near = bins[0].p50;
        let far = bins[5].p50;
        assert!(
            near > far,
            "common APs at <50 m ({near}) should exceed those at >250 m ({far})"
        );
        // Paper: "a significant number of common APs beyond 100 m".
        assert!(bins[2].max > 0.0, "some pairs beyond 100 m share APs");
    }

    #[test]
    fn bicycle_covers_more_ground_per_scan() {
        let map = CityArchetype::SurveyResidential.generate(7);
        let walk = Survey::run(&map, &quick_cfg(7));
        let bike = Survey::run(
            &map,
            &SurveyConfig {
                mode: TravelMode::Bicycle,
                ..quick_cfg(7)
            },
        );
        let path_len =
            |s: &Survey| -> f64 { s.scans.windows(2).map(|w| w[0].pos.dist(w[1].pos)).sum() };
        assert!(path_len(&bike) > 1.5 * path_len(&walk));
    }

    #[test]
    fn all_heard_ids_are_valid() {
        let s = downtown_survey(8);
        for scan in &s.scans {
            for id in &scan.heard {
                assert!((*id as usize) < s.bssids.len());
            }
            // heard lists are sorted and deduplicated
            assert!(scan.heard.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
