//! Statistics shared by the measurement figures.

/// An empirical CDF over `f64` samples.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF; non-finite samples are rejected.
    ///
    /// # Panics
    /// Panics when any sample is non-finite (statistics over NaN are
    /// meaningless and always indicate an upstream bug).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|s| s.is_finite()),
            "CDF samples must be finite"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile (nearest-rank on `q ∈ [0, 1]`), or `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// Median shorthand.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// `P(X ≤ x)`.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Evenly spaced `(value, cumulative fraction)` points for
    /// plotting, at most `n` of them.
    pub fn plot_points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let len = self.sorted.len();
        let step = (len.max(n) / n).max(1);
        let mut points: Vec<(f64, f64)> = self
            .sorted
            .iter()
            .enumerate()
            .step_by(step)
            .map(|(i, v)| (*v, (i + 1) as f64 / len as f64))
            .collect();
        // Always include the maximum.
        points.push((self.sorted[len - 1], 1.0));
        points.dedup_by(|a, b| a == b);
        points
    }
}

/// A distance bin with the whisker percentiles Figure 2 reports
/// (10 / 25 / 50 / 75 / 100).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistanceBin {
    /// Lower edge, meters (inclusive).
    pub lo_m: f64,
    /// Upper edge, meters (exclusive).
    pub hi_m: f64,
    /// Number of pairs that fell in the bin.
    pub count: usize,
    /// 10th percentile of the binned values.
    pub p10: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum (the paper's "100%" whisker).
    pub max: f64,
}

/// Bins `(distance, value)` pairs into `edges.len() - 1` bins and
/// computes the whisker percentiles per bin. Pairs outside the edge
/// range are dropped.
///
/// # Panics
/// Panics when `edges` is not strictly increasing or has fewer than
/// two entries.
pub fn bin_by_distance(pairs: &[(f64, f64)], edges: &[f64]) -> Vec<DistanceBin> {
    assert!(edges.len() >= 2, "need at least one bin");
    assert!(
        edges.windows(2).all(|w| w[0] < w[1]),
        "edges must be strictly increasing"
    );
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); edges.len() - 1];
    for (d, v) in pairs {
        if *d < edges[0] {
            continue;
        }
        // partition_point gives the first edge > d; bin = that - 1.
        let idx = edges.partition_point(|e| *e <= *d);
        if idx == 0 || idx >= edges.len() {
            continue;
        }
        buckets[idx - 1].push(*v);
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(i, mut values)| {
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
            let q = |frac: f64| -> f64 {
                if values.is_empty() {
                    return 0.0;
                }
                values[((values.len() - 1) as f64 * frac).round() as usize]
            };
            DistanceBin {
                lo_m: edges[i],
                hi_m: edges[i + 1],
                count: values.len(),
                p10: q(0.10),
                p25: q(0.25),
                p50: q(0.50),
                p75: q(0.75),
                max: values.last().copied().unwrap_or(0.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_quantiles() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0, 5.0, 4.0]);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.median(), Some(3.0));
        assert_eq!(cdf.quantile(1.0), Some(5.0));
    }

    #[test]
    fn cdf_fraction_at_most() {
        let cdf = Cdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(cdf.fraction_at_most(0.5), 0.0);
        assert_eq!(cdf.fraction_at_most(2.0), 0.75);
        assert_eq!(cdf.fraction_at_most(10.0), 1.0);
    }

    #[test]
    fn cdf_empty() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.median(), None);
        assert_eq!(cdf.fraction_at_most(1.0), 0.0);
        assert!(cdf.plot_points(10).is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn cdf_rejects_nan() {
        Cdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn plot_points_monotone_and_bounded() {
        let cdf = Cdf::new((0..1000).map(|i| i as f64).collect());
        let pts = cdf.plot_points(50);
        assert!(pts.len() <= 52);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn binning_assigns_and_summarizes() {
        let pairs: Vec<(f64, f64)> = vec![
            (5.0, 10.0),
            (15.0, 20.0),
            (15.0, 40.0),
            (25.0, 5.0),
            (95.0, 1.0),   // beyond the last edge: dropped
            (-1.0, 100.0), // below the first edge: dropped
        ];
        let bins = bin_by_distance(&pairs, &[0.0, 10.0, 20.0, 30.0]);
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0].count, 1);
        assert_eq!(bins[0].p50, 10.0);
        assert_eq!(bins[1].count, 2);
        assert_eq!(bins[1].max, 40.0);
        assert_eq!(bins[2].count, 1);
    }

    #[test]
    fn bin_edges_are_half_open() {
        // A value exactly on an interior edge goes to the upper bin.
        let bins = bin_by_distance(&[(10.0, 7.0)], &[0.0, 10.0, 20.0]);
        assert_eq!(bins[0].count, 0);
        assert_eq!(bins[1].count, 1);
    }

    #[test]
    fn empty_bin_is_zeroed() {
        let bins = bin_by_distance(&[], &[0.0, 10.0]);
        assert_eq!(bins[0].count, 0);
        assert_eq!(bins[0].p50, 0.0);
        assert_eq!(bins[0].max, 0.0);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn unsorted_edges_panic() {
        bin_by_distance(&[], &[0.0, 10.0, 5.0]);
    }
}
