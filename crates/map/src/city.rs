//! The city model: buildings, obstacles, and the map container.

use citymesh_geo::{GridIndex, Point, Polygon, Rect};

/// A building footprint with its stable ID.
///
/// IDs index into [`CityMap::buildings`] and are what routes are made
/// of: the packet header carries waypoint building IDs, and every AP
/// resolves them through its cached copy of the same map (paper §3).
#[derive(Clone, Debug)]
pub struct Building {
    /// Stable ID, the index into the map's building vector.
    pub id: u32,
    /// The footprint polygon.
    pub footprint: Polygon,
    /// Cached footprint centroid (routing anchor point).
    pub centroid: Point,
    /// Cached footprint area, m².
    pub area: f64,
}

impl Building {
    /// Creates a building, caching centroid and area.
    pub fn new(id: u32, footprint: Polygon) -> Self {
        let centroid = footprint.centroid();
        let area = footprint.area();
        Building {
            id,
            footprint,
            centroid,
            area,
        }
    }
}

/// Category of a connectivity-blocking feature.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObstacleKind {
    /// A river or other water body.
    Water,
    /// A park or other large open green space.
    Park,
    /// A wide highway corridor.
    Highway,
}

/// A large feature with no buildings inside it. Obstacles do not block
/// radio directly — they create gaps in AP coverage by excluding
/// buildings, which is exactly the paper's observed failure mode
/// ("connectivity is occasionally interrupted by large features such
/// as highways, parks, and bodies of water", §4).
#[derive(Clone, Debug)]
pub struct Obstacle {
    /// What kind of feature this is.
    pub kind: ObstacleKind,
    /// The blocked region.
    pub region: Polygon,
}

/// A city: named building and obstacle sets over a bounding box.
#[derive(Clone, Debug)]
pub struct CityMap {
    name: String,
    bounds: Rect,
    buildings: Vec<Building>,
    obstacles: Vec<Obstacle>,
    /// Spatial index over building centroids.
    index: GridIndex,
}

impl CityMap {
    /// Assembles a map. Buildings are re-indexed: they are sorted into
    /// row-major spatial order (centroid y, then x) and assigned
    /// sequential IDs, so nearby buildings get nearby IDs.
    pub fn new(
        name: impl Into<String>,
        footprints: Vec<Polygon>,
        obstacles: Vec<Obstacle>,
    ) -> Self {
        let mut order: Vec<(Point, Polygon)> =
            footprints.into_iter().map(|p| (p.centroid(), p)).collect();
        // Row-major in ~100 m bands: stable spatial locality for IDs.
        order.sort_by(|(a, _), (b, _)| {
            let band_a = (a.y / 100.0).floor();
            let band_b = (b.y / 100.0).floor();
            band_a
                .partial_cmp(&band_b)
                .expect("finite coordinates")
                .then(a.x.partial_cmp(&b.x).expect("finite coordinates"))
        });
        let buildings: Vec<Building> = order
            .into_iter()
            .enumerate()
            .map(|(i, (_, p))| Building::new(i as u32, p))
            .collect();

        let centroids: Vec<Point> = buildings.iter().map(|b| b.centroid).collect();
        let bounds = buildings
            .iter()
            .map(|b| b.footprint.bbox())
            .chain(obstacles.iter().map(|o| o.region.bbox()))
            .reduce(|a, b| a.union(&b))
            .unwrap_or(Rect {
                min: Point::ORIGIN,
                max: Point::ORIGIN,
            });
        let index = GridIndex::build(&centroids, 100.0);

        CityMap {
            name: name.into(),
            bounds,
            buildings,
            obstacles,
            index,
        }
    }

    /// Assembles a map from pre-built buildings **without re-sorting**
    /// — IDs must already equal each building's index. Used by the map
    /// cache codec, where preserving the encoded ID order is the whole
    /// point.
    ///
    /// # Panics
    /// Panics when any building's ID disagrees with its position.
    pub fn from_parts_in_order(
        name: impl Into<String>,
        buildings: Vec<Building>,
        obstacles: Vec<Obstacle>,
    ) -> Self {
        assert!(
            buildings
                .iter()
                .enumerate()
                .all(|(i, b)| b.id as usize == i),
            "building IDs must equal their indices"
        );
        let centroids: Vec<Point> = buildings.iter().map(|b| b.centroid).collect();
        let bounds = buildings
            .iter()
            .map(|b| b.footprint.bbox())
            .chain(obstacles.iter().map(|o| o.region.bbox()))
            .reduce(|a, b| a.union(&b))
            .unwrap_or(Rect {
                min: Point::ORIGIN,
                max: Point::ORIGIN,
            });
        let index = GridIndex::build(&centroids, 100.0);
        CityMap {
            name: name.into(),
            bounds,
            buildings,
            obstacles,
            index,
        }
    }

    /// Returns a new map with `extra` footprints appended **after**
    /// the existing buildings, preserving every existing building ID.
    /// New buildings receive IDs `len()..len() + extra.len()` in the
    /// given order.
    ///
    /// This is how infrastructure additions (e.g. bridge relay huts,
    /// see `citymesh-core::bridge`) are modeled: devices caching the
    /// old map still resolve every old ID; only the appended entries
    /// are new.
    pub fn extended_with(&self, extra: Vec<Polygon>, suffix: &str) -> CityMap {
        let mut buildings = self.buildings.clone();
        for fp in extra {
            buildings.push(Building::new(buildings.len() as u32, fp));
        }
        let centroids: Vec<Point> = buildings.iter().map(|b| b.centroid).collect();
        let bounds = buildings
            .iter()
            .map(|b| b.footprint.bbox())
            .chain(self.obstacles.iter().map(|o| o.region.bbox()))
            .reduce(|a, b| a.union(&b))
            .unwrap_or(Rect {
                min: Point::ORIGIN,
                max: Point::ORIGIN,
            });
        CityMap {
            name: format!("{}{}", self.name, suffix),
            bounds,
            buildings,
            obstacles: self.obstacles.clone(),
            index: GridIndex::build(&centroids, 100.0),
        }
    }

    /// The city's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bounding box of everything in the map.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// All buildings, ordered by ID.
    pub fn buildings(&self) -> &[Building] {
        &self.buildings
    }

    /// Number of buildings.
    pub fn len(&self) -> usize {
        self.buildings.len()
    }

    /// Whether the map has no buildings.
    pub fn is_empty(&self) -> bool {
        self.buildings.is_empty()
    }

    /// The building with `id`, or `None` when out of range.
    pub fn building(&self, id: u32) -> Option<&Building> {
        self.buildings.get(id as usize)
    }

    /// All obstacles.
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// The building whose centroid is nearest `p`.
    pub fn nearest_building(&self, p: Point) -> Option<&Building> {
        self.index
            .nearest(p)
            .map(|(id, _)| &self.buildings[id as usize])
    }

    /// IDs of buildings whose centroid lies within `radius` of `p`.
    pub fn buildings_within(&self, p: Point, radius: f64) -> Vec<u32> {
        self.index.query_circle(p, radius)
    }

    /// The building containing point `p` (checks footprint polygons of
    /// candidates near `p`), or `None`.
    pub fn building_containing(&self, p: Point) -> Option<&Building> {
        // Footprints are small; centroids within 200 m cover any
        // realistic building extent in the generated cities.
        let mut best: Option<&Building> = None;
        for id in self.index.query_circle(p, 200.0) {
            let b = &self.buildings[id as usize];
            if b.footprint.contains(p) {
                match best {
                    Some(prev) if prev.id < b.id => {}
                    _ => best = Some(b),
                }
            }
        }
        best
    }

    /// Whether `p` lies inside any obstacle region.
    pub fn in_obstacle(&self, p: Point) -> bool {
        self.obstacles.iter().any(|o| o.region.contains(p))
    }

    /// Summary statistics for reports and tests.
    pub fn stats(&self) -> MapStats {
        let n = self.buildings.len();
        let total_area: f64 = self.buildings.iter().map(|b| b.area).sum();
        let mut areas: Vec<f64> = self.buildings.iter().map(|b| b.area).collect();
        areas.sort_by(|a, b| a.partial_cmp(b).expect("finite areas"));
        let median_area = if n == 0 { 0.0 } else { areas[n / 2] };
        let extent = self.bounds.area();
        MapStats {
            buildings: n,
            obstacles: self.obstacles.len(),
            total_building_area_m2: total_area,
            median_building_area_m2: median_area,
            built_fraction: if extent > 0.0 {
                total_area / extent
            } else {
                0.0
            },
        }
    }
}

/// Aggregate map statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MapStats {
    /// Number of buildings.
    pub buildings: usize,
    /// Number of obstacle regions.
    pub obstacles: usize,
    /// Sum of footprint areas, m².
    pub total_building_area_m2: f64,
    /// Median footprint area, m².
    pub median_building_area_m2: f64,
    /// Fraction of the bounding box covered by buildings.
    pub built_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_at(x: f64, y: f64, side: f64) -> Polygon {
        Polygon::rect(Rect::from_corners(
            Point::new(x, y),
            Point::new(x + side, y + side),
        ))
    }

    fn small_map() -> CityMap {
        CityMap::new(
            "testville",
            vec![
                square_at(0.0, 0.0, 10.0),
                square_at(200.0, 0.0, 10.0),
                square_at(0.0, 200.0, 10.0),
                square_at(200.0, 200.0, 10.0),
            ],
            vec![Obstacle {
                kind: ObstacleKind::Water,
                region: square_at(90.0, 90.0, 20.0),
            }],
        )
    }

    #[test]
    fn ids_are_sequential_and_spatially_ordered() {
        let m = small_map();
        assert_eq!(m.len(), 4);
        for (i, b) in m.buildings().iter().enumerate() {
            assert_eq!(b.id, i as u32);
        }
        // Row-major: the two y≈0 buildings come before the y≈200 ones,
        // and within a band x ascends.
        assert!(m.building(0).unwrap().centroid.y < 100.0);
        assert!(m.building(1).unwrap().centroid.y < 100.0);
        assert!(m.building(0).unwrap().centroid.x < m.building(1).unwrap().centroid.x);
        assert!(m.building(2).unwrap().centroid.y > 100.0);
    }

    #[test]
    fn lookup_and_bounds() {
        let m = small_map();
        assert!(m.building(4).is_none());
        assert_eq!(m.name(), "testville");
        let b = m.bounds();
        assert_eq!(b.min, Point::new(0.0, 0.0));
        assert_eq!(b.max, Point::new(210.0, 210.0));
    }

    #[test]
    fn nearest_and_containing() {
        let m = small_map();
        let near = m.nearest_building(Point::new(198.0, 4.0)).unwrap();
        assert_eq!(near.centroid, Point::new(205.0, 5.0));
        let inside = m.building_containing(Point::new(5.0, 5.0)).unwrap();
        assert_eq!(inside.centroid, Point::new(5.0, 5.0));
        assert!(m.building_containing(Point::new(100.0, 100.0)).is_none());
    }

    #[test]
    fn obstacle_queries() {
        let m = small_map();
        assert!(m.in_obstacle(Point::new(100.0, 100.0)));
        assert!(!m.in_obstacle(Point::new(5.0, 5.0)));
        assert_eq!(m.obstacles().len(), 1);
        assert_eq!(m.obstacles()[0].kind, ObstacleKind::Water);
    }

    #[test]
    fn stats_are_consistent() {
        let m = small_map();
        let s = m.stats();
        assert_eq!(s.buildings, 4);
        assert_eq!(s.obstacles, 1);
        assert_eq!(s.total_building_area_m2, 400.0);
        assert_eq!(s.median_building_area_m2, 100.0);
        assert!(s.built_fraction > 0.0 && s.built_fraction < 1.0);
    }

    #[test]
    fn empty_map() {
        let m = CityMap::new("ghost town", vec![], vec![]);
        assert!(m.is_empty());
        assert!(m.nearest_building(Point::ORIGIN).is_none());
        assert_eq!(m.stats().buildings, 0);
        assert_eq!(m.stats().median_building_area_m2, 0.0);
    }

    #[test]
    fn buildings_within_radius() {
        let m = small_map();
        let hits = m.buildings_within(Point::new(0.0, 0.0), 50.0);
        assert_eq!(hits.len(), 1);
        let all = m.buildings_within(Point::new(105.0, 105.0), 1000.0);
        assert_eq!(all.len(), 4);
    }
}
