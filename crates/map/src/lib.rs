//! City models for CityMesh: building footprints, obstacles, synthetic
//! city generation, and an OpenStreetMap subset loader.
//!
//! CityMesh routing consumes nothing but **building footprints with
//! stable IDs** (paper §3). This crate produces them two ways:
//!
//! * [`synth`] — a deterministic generator with per-city *archetypes*
//!   (dense downtown grids, sprawling residential blocks, campus
//!   quads) and large-scale obstacles (rivers, parks, highways) that
//!   carve connectivity gaps. This is the workspace's substitute for
//!   the paper's OSM extracts of real cities (DESIGN.md §1): the
//!   routing algorithm sees the same statistical structure — block
//!   sizes, fill fractions, and the island-inducing features the paper
//!   observes in Washington D.C.
//! * [`osm`] — a minimal OSM-XML parser (nodes + building ways) so a
//!   real extract can be dropped in when available.
//!
//! Building IDs are assigned in row-major spatial order, which the
//! delta route encoding in `citymesh-net` exploits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod city;
pub mod codec;
pub mod osm;
pub mod synth;

pub use city::{Building, CityMap, MapStats, Obstacle, ObstacleKind};
pub use codec::{decode_map, encode_map, CodecError, DEFAULT_QUANTUM_MM};
pub use synth::{
    generate_metro, try_generate_metro, CityArchetype, CityParams, MetroParams, MetroParamsError,
    ObstacleSpec, METRO_TILE_M,
};
