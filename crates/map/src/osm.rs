//! Minimal OpenStreetMap XML loader.
//!
//! Parses the subset of OSM XML needed for building routing: `<node>`
//! elements (id, lat, lon) and `<way>` elements that carry a
//! `building=*` tag, whose `<nd ref>` lists form closed footprint
//! rings. Relations (multipolygon buildings with holes) are out of
//! scope — the routing algorithm only needs outer rings.
//!
//! The parser is a small hand-rolled scanner rather than a full XML
//! implementation: OSM extracts are machine-generated with a rigid
//! shape, and the approved offline dependency set contains no XML
//! crate (DESIGN.md §5). It tolerates attribute reordering, both
//! self-closing and paired tags, and unknown elements.

use std::collections::HashMap;

use citymesh_geo::{LatLon, Point, Polygon, Projection};

use crate::city::CityMap;

/// Errors from OSM parsing.
#[derive(Clone, Debug, PartialEq)]
pub enum OsmError {
    /// An element was missing a required attribute.
    MissingAttribute {
        /// Element name, e.g. `node`.
        element: &'static str,
        /// Attribute name, e.g. `lat`.
        attribute: &'static str,
    },
    /// An attribute failed to parse as the expected type.
    BadValue {
        /// Attribute name.
        attribute: &'static str,
        /// The offending text.
        text: String,
    },
    /// A way referenced a node id that was never defined.
    UnknownNodeRef(i64),
    /// No buildings were found in the input.
    NoBuildings,
}

impl std::fmt::Display for OsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsmError::MissingAttribute { element, attribute } => {
                write!(f, "<{element}> missing attribute {attribute}")
            }
            OsmError::BadValue { attribute, text } => {
                write!(f, "bad value for {attribute}: {text:?}")
            }
            OsmError::UnknownNodeRef(id) => write!(f, "way references unknown node {id}"),
            OsmError::NoBuildings => write!(f, "no building ways in input"),
        }
    }
}

impl std::error::Error for OsmError {}

/// Parses OSM XML into building footprint polygons, projected into a
/// local meter plane anchored at the data's bounding-box center.
///
/// Returns the footprints and the projection used (so callers can map
/// results back to lat/lon).
pub fn parse_buildings(xml: &str) -> Result<(Vec<Polygon>, Projection), OsmError> {
    let mut nodes: HashMap<i64, LatLon> = HashMap::new();
    let mut ways: Vec<Vec<i64>> = Vec::new();

    let mut cursor = xml;
    // First pass collects nodes and building ways in document order.
    // OSM files list all nodes before ways, but we do not rely on it:
    // node refs are resolved after the scan completes.
    while let Some(open) = cursor.find('<') {
        cursor = &cursor[open + 1..];
        if cursor.starts_with("node") {
            let (attrs, rest, _) = read_element(cursor);
            cursor = rest;
            let id = parse_attr::<i64>(&attrs, "node", "id")?;
            let lat = parse_attr::<f64>(&attrs, "node", "lat")?;
            let lon = parse_attr::<f64>(&attrs, "node", "lon")?;
            let ll = LatLon::new(lat, lon).ok_or(OsmError::BadValue {
                attribute: "lat/lon",
                text: format!("{lat},{lon}"),
            })?;
            nodes.insert(id, ll);
        } else if cursor.starts_with("way") {
            let (_, rest, self_closing) = read_element(cursor);
            cursor = rest;
            if self_closing {
                continue; // a way with no nds or tags
            }
            // Scan children until </way>.
            let mut refs: Vec<i64> = Vec::new();
            let mut is_building = false;
            while let Some(open) = cursor.find('<') {
                cursor = &cursor[open + 1..];
                if cursor.starts_with("/way") {
                    if let Some(end) = cursor.find('>') {
                        cursor = &cursor[end + 1..];
                    }
                    break;
                } else if cursor.starts_with("nd") {
                    let (attrs, rest, _) = read_element(cursor);
                    cursor = rest;
                    refs.push(parse_attr::<i64>(&attrs, "nd", "ref")?);
                } else if cursor.starts_with("tag") {
                    let (attrs, rest, _) = read_element(cursor);
                    cursor = rest;
                    if attrs.get("k").map(String::as_str) == Some("building") {
                        is_building = true;
                    }
                } else {
                    let (_, rest, _) = read_element(cursor);
                    cursor = rest;
                }
            }
            if is_building && refs.len() >= 3 {
                ways.push(refs);
            }
        } else {
            let (_, rest, _) = read_element(cursor);
            cursor = rest;
        }
    }

    if ways.is_empty() {
        return Err(OsmError::NoBuildings);
    }

    // Anchor the projection at the mean node position of used nodes.
    let mut lat_sum = 0.0;
    let mut lon_sum = 0.0;
    let mut count = 0usize;
    for way in &ways {
        for r in way {
            let ll = nodes.get(r).ok_or(OsmError::UnknownNodeRef(*r))?;
            lat_sum += ll.lat;
            lon_sum += ll.lon;
            count += 1;
        }
    }
    let origin = LatLon::new(lat_sum / count as f64, lon_sum / count as f64)
        .expect("mean of valid coordinates is valid");
    let proj = Projection::new(origin);

    let mut polygons = Vec::with_capacity(ways.len());
    for way in &ways {
        let ring: Vec<Point> = way
            .iter()
            .map(|r| proj.project(*nodes.get(r).expect("checked above")))
            .collect();
        // Degenerate rings (collinear etc.) are skipped, matching how
        // OSM consumers treat broken geometry.
        if let Some(poly) = Polygon::new(ring) {
            if poly.area() > 1.0 {
                polygons.push(poly);
            }
        }
    }
    if polygons.is_empty() {
        return Err(OsmError::NoBuildings);
    }
    Ok((polygons, proj))
}

/// Convenience: parse and wrap into a [`CityMap`] named `name`.
pub fn load_city(name: &str, xml: &str) -> Result<CityMap, OsmError> {
    let (footprints, _) = parse_buildings(xml)?;
    Ok(CityMap::new(name, footprints, Vec::new()))
}

/// Reads one element starting right after `<`: returns its attributes,
/// the remaining input after `>`, and whether it was self-closing.
fn read_element(input: &str) -> (HashMap<String, String>, &str, bool) {
    let end = input.find('>').unwrap_or(input.len().saturating_sub(1));
    let inside = &input[..end];
    let self_closing = inside.ends_with('/');
    let mut attrs = HashMap::new();
    let mut rest = inside;
    // Skip the element name.
    if let Some(sp) = rest.find(|c: char| c.is_whitespace()) {
        rest = &rest[sp..];
        // attr="value" pairs.
        while let Some(eq) = rest.find('=') {
            let key = rest[..eq].trim().trim_end_matches('/').to_string();
            rest = &rest[eq + 1..];
            let Some(q0) = rest.find('"') else { break };
            rest = &rest[q0 + 1..];
            let Some(q1) = rest.find('"') else { break };
            attrs.insert(key, rest[..q1].to_string());
            rest = &rest[q1 + 1..];
        }
    }
    let remaining = if end < input.len() {
        &input[end + 1..]
    } else {
        ""
    };
    (attrs, remaining, self_closing)
}

fn parse_attr<T: std::str::FromStr>(
    attrs: &HashMap<String, String>,
    element: &'static str,
    attribute: &'static str,
) -> Result<T, OsmError> {
    let text = attrs
        .get(attribute)
        .ok_or(OsmError::MissingAttribute { element, attribute })?;
    text.parse::<T>().map_err(|_| OsmError::BadValue {
        attribute,
        text: text.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two square buildings near MIT, one non-building way.
    const SAMPLE: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6" generator="test">
 <node id="1" lat="42.3600" lon="-71.0900"/>
 <node id="2" lat="42.3600" lon="-71.0895"/>
 <node id="3" lat="42.3604" lon="-71.0895"/>
 <node id="4" lat="42.3604" lon="-71.0900"/>
 <node id="5" lat="42.3610" lon="-71.0890"/>
 <node id="6" lat="42.3610" lon="-71.0885"/>
 <node id="7" lat="42.3614" lon="-71.0885"/>
 <node id="8" lat="42.3614" lon="-71.0890"/>
 <way id="100">
  <nd ref="1"/><nd ref="2"/><nd ref="3"/><nd ref="4"/><nd ref="1"/>
  <tag k="building" v="yes"/>
  <tag k="name" v="Test Hall"/>
 </way>
 <way id="101">
  <nd ref="5"/><nd ref="6"/><nd ref="7"/><nd ref="8"/><nd ref="5"/>
  <tag k="building" v="university"/>
 </way>
 <way id="102">
  <nd ref="1"/><nd ref="5"/>
  <tag k="highway" v="footway"/>
 </way>
</osm>"#;

    #[test]
    fn parses_building_ways_only() {
        let (polys, _) = parse_buildings(SAMPLE).unwrap();
        assert_eq!(polys.len(), 2, "the footway must be excluded");
    }

    #[test]
    fn footprint_dimensions_are_plausible() {
        let (polys, _) = parse_buildings(SAMPLE).unwrap();
        // 0.0004° lat ≈ 44.5 m; 0.0005° lon at 42.36° ≈ 41 m.
        for p in &polys {
            let area = p.area();
            assert!(
                (1000.0..4000.0).contains(&area),
                "area {area} m² out of plausible range"
            );
        }
    }

    #[test]
    fn load_city_assigns_ids() {
        let m = load_city("mit", SAMPLE).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.name(), "mit");
        assert_eq!(m.building(0).unwrap().id, 0);
    }

    #[test]
    fn attribute_order_does_not_matter() {
        let xml = r#"<osm>
 <node lon="-71.0" id="1" lat="42.0"/>
 <node lat="42.0" lon="-70.999" id="2"/>
 <node id="3" lat="42.001" lon="-70.999"/>
 <way id="9"><tag v="yes" k="building"/><nd ref="1"/><nd ref="2"/><nd ref="3"/></way>
</osm>"#;
        let (polys, _) = parse_buildings(xml).unwrap();
        assert_eq!(polys.len(), 1);
    }

    #[test]
    fn unknown_node_ref_errors() {
        let xml = r#"<osm>
 <node id="1" lat="42.0" lon="-71.0"/>
 <way id="9"><nd ref="1"/><nd ref="2"/><nd ref="3"/><tag k="building" v="yes"/></way>
</osm>"#;
        assert_eq!(
            parse_buildings(xml).unwrap_err(),
            OsmError::UnknownNodeRef(2)
        );
    }

    #[test]
    fn missing_lat_errors() {
        let xml = r#"<osm><node id="1" lon="-71.0"/></osm>"#;
        assert_eq!(
            parse_buildings(xml).unwrap_err(),
            OsmError::MissingAttribute {
                element: "node",
                attribute: "lat"
            }
        );
    }

    #[test]
    fn bad_coordinate_errors() {
        let xml = r#"<osm><node id="1" lat="ninety" lon="-71.0"/></osm>"#;
        assert!(matches!(
            parse_buildings(xml),
            Err(OsmError::BadValue {
                attribute: "lat",
                ..
            })
        ));
    }

    #[test]
    fn empty_input_reports_no_buildings() {
        assert_eq!(
            parse_buildings("<osm></osm>").unwrap_err(),
            OsmError::NoBuildings
        );
        assert_eq!(parse_buildings("").unwrap_err(), OsmError::NoBuildings);
    }

    #[test]
    fn degenerate_ring_skipped() {
        // A "building" whose ring is a line segment.
        let xml = r#"<osm>
 <node id="1" lat="42.0" lon="-71.0"/>
 <node id="2" lat="42.0001" lon="-71.0"/>
 <way id="9"><nd ref="1"/><nd ref="2"/><nd ref="1"/><tag k="building" v="yes"/></way>
</osm>"#;
        assert_eq!(parse_buildings(xml).unwrap_err(), OsmError::NoBuildings);
    }
}
