//! Compact binary map serialization — the device-side map cache.
//!
//! CityMesh's whole design rests on every device and AP holding the
//! city's building map (paper §2: "today's devices can easily cache
//! the data necessary for building routing in advance and continue to
//! use this infrequently-updated data through the duration of an
//! outage"). This codec makes the premise measurable: it serializes a
//! [`CityMap`] into the compact form such a cache would ship in, so
//! experiments can report bytes-per-city.
//!
//! Format (little-endian, varint = LEB128):
//!
//! ```text
//! magic "CMAP" ‖ version u8 ‖ quantum_mm varint
//! name: len varint ‖ utf-8 bytes
//! buildings: count varint, then per building:
//!   ring length varint, then per vertex:
//!     zigzag varint Δx, zigzag varint Δy   (quantized units,
//!     delta from the previous vertex; first vertex delta from the
//!     previous building's first vertex)
//! obstacles: count varint, then kind u8 + ring (same encoding)
//! fnv1a-64 checksum of everything above (8 bytes LE)
//! ```
//!
//! Coordinates are quantized (default 10 mm); the decoded map is
//! bit-identical across platforms, and building **order — hence every
//! building ID — is preserved exactly**, which is what lets a cached
//! map resolve IDs from packets.

use citymesh_geo::{Point, Polygon};

use crate::city::{Building, CityMap, Obstacle, ObstacleKind};

/// Default quantization: 10 mm per unit, far below construction noise.
pub const DEFAULT_QUANTUM_MM: u32 = 10;

/// Codec errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Missing or wrong magic/version prefix.
    BadHeader,
    /// The trailing checksum did not match.
    BadChecksum,
    /// Input ended early or a varint overflowed.
    Truncated,
    /// A count or value exceeded sanity limits.
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadHeader => write!(f, "bad map header"),
            CodecError::BadChecksum => write!(f, "map checksum mismatch"),
            CodecError::Truncated => write!(f, "map data truncated"),
            CodecError::Corrupt(what) => write!(f, "map data corrupt: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

const MAGIC: &[u8; 4] = b"CMAP";
const VERSION: u8 = 1;
/// Sanity cap well above any metropolitan extract.
const MAX_BUILDINGS: u64 = 16_000_000;
const MAX_RING: u64 = 100_000;

/// Serializes `map` with the given quantization (millimeters per
/// unit; [`DEFAULT_QUANTUM_MM`] is safe for routing).
///
/// ```
/// use citymesh_map::{decode_map, encode_map, CityArchetype, DEFAULT_QUANTUM_MM};
///
/// let map = CityArchetype::SurveyRiver.generate(7);
/// let cache = encode_map(&map, DEFAULT_QUANTUM_MM);
/// let restored = decode_map(&cache).unwrap();
/// assert_eq!(restored.len(), map.len());
/// // Building IDs survive — cached maps resolve packet waypoints.
/// assert_eq!(restored.building(0).unwrap().id, 0);
/// ```
pub fn encode_map(map: &CityMap, quantum_mm: u32) -> Vec<u8> {
    assert!(quantum_mm > 0, "quantum must be positive");
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    push_varint(quantum_mm as u64, &mut out);
    push_varint(map.name().len() as u64, &mut out);
    out.extend_from_slice(map.name().as_bytes());

    let quantum_m = quantum_mm as f64 / 1000.0;
    let q = |v: f64| -> i64 { (v / quantum_m).round() as i64 };

    push_varint(map.len() as u64, &mut out);
    let mut anchor = (0i64, 0i64);
    for b in map.buildings() {
        anchor = push_ring(b.footprint.ring(), anchor, q, &mut out);
    }
    push_varint(map.obstacles().len() as u64, &mut out);
    for o in map.obstacles() {
        out.push(match o.kind {
            ObstacleKind::Water => 0,
            ObstacleKind::Park => 1,
            ObstacleKind::Highway => 2,
        });
        anchor = push_ring(o.region.ring(), anchor, q, &mut out);
    }

    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Parses bytes produced by [`encode_map`]. Building IDs match the
/// encoded map exactly.
pub fn decode_map(bytes: &[u8]) -> Result<CityMap, CodecError> {
    if bytes.len() < MAGIC.len() + 1 + 8 {
        return Err(CodecError::Truncated);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    if fnv1a64(body) != stored {
        return Err(CodecError::BadChecksum);
    }
    if &body[..4] != MAGIC || body[4] != VERSION {
        return Err(CodecError::BadHeader);
    }
    let mut cursor = &body[5..];

    let quantum_mm = take_varint(&mut cursor)?;
    if quantum_mm == 0 || quantum_mm > 100_000 {
        return Err(CodecError::Corrupt("quantum"));
    }
    let quantum_m = quantum_mm as f64 / 1000.0;
    let name_len = take_varint(&mut cursor)? as usize;
    if name_len > cursor.len() {
        return Err(CodecError::Truncated);
    }
    let name = std::str::from_utf8(&cursor[..name_len])
        .map_err(|_| CodecError::Corrupt("name"))?
        .to_string();
    cursor = &cursor[name_len..];

    let n_buildings = take_varint(&mut cursor)?;
    if n_buildings > MAX_BUILDINGS {
        return Err(CodecError::Corrupt("building count"));
    }
    let mut anchor = (0i64, 0i64);
    let mut buildings = Vec::with_capacity(n_buildings as usize);
    for id in 0..n_buildings {
        let (ring, next_anchor) = take_ring(&mut cursor, anchor, quantum_m)?;
        anchor = next_anchor;
        let poly = Polygon::new(ring).ok_or(CodecError::Corrupt("degenerate footprint"))?;
        buildings.push(Building::new(id as u32, poly));
    }
    let n_obstacles = take_varint(&mut cursor)?;
    if n_obstacles > MAX_BUILDINGS {
        return Err(CodecError::Corrupt("obstacle count"));
    }
    let mut obstacles = Vec::with_capacity(n_obstacles as usize);
    for _ in 0..n_obstacles {
        if cursor.is_empty() {
            return Err(CodecError::Truncated);
        }
        let kind = match cursor[0] {
            0 => ObstacleKind::Water,
            1 => ObstacleKind::Park,
            2 => ObstacleKind::Highway,
            _ => return Err(CodecError::Corrupt("obstacle kind")),
        };
        cursor = &cursor[1..];
        let (ring, next_anchor) = take_ring(&mut cursor, anchor, quantum_m)?;
        anchor = next_anchor;
        let region = Polygon::new(ring).ok_or(CodecError::Corrupt("degenerate obstacle"))?;
        obstacles.push(Obstacle { kind, region });
    }
    if !cursor.is_empty() {
        return Err(CodecError::Corrupt("trailing bytes"));
    }
    Ok(CityMap::from_parts_in_order(name, buildings, obstacles))
}

fn push_ring(
    ring: &[Point],
    anchor: (i64, i64),
    q: impl Fn(f64) -> i64,
    out: &mut Vec<u8>,
) -> (i64, i64) {
    push_varint(ring.len() as u64, out);
    let mut prev = anchor;
    let mut first = anchor;
    for (i, p) in ring.iter().enumerate() {
        let cur = (q(p.x), q(p.y));
        push_varint(zigzag(cur.0 - prev.0), out);
        push_varint(zigzag(cur.1 - prev.1), out);
        if i == 0 {
            first = cur;
        }
        prev = cur;
    }
    first
}

fn take_ring(
    cursor: &mut &[u8],
    anchor: (i64, i64),
    quantum_m: f64,
) -> Result<(Vec<Point>, (i64, i64)), CodecError> {
    let len = take_varint(cursor)?;
    if !(3..=MAX_RING).contains(&len) {
        return Err(CodecError::Corrupt("ring length"));
    }
    let mut prev = anchor;
    let mut first = anchor;
    let mut ring = Vec::with_capacity(len as usize);
    for i in 0..len {
        let dx = unzigzag(take_varint(cursor)?);
        let dy = unzigzag(take_varint(cursor)?);
        let cur = (prev.0 + dx, prev.1 + dy);
        ring.push(Point::new(
            cur.0 as f64 * quantum_m,
            cur.1 as f64 * quantum_m,
        ));
        if i == 0 {
            first = cur;
        }
        prev = cur;
    }
    Ok((ring, first))
}

fn push_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn take_varint(cursor: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for i in 0..10 {
        let Some(&byte) = cursor.get(i) else {
            return Err(CodecError::Truncated);
        };
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            *cursor = &cursor[i + 1..];
            return Ok(v);
        }
        shift += 7;
    }
    Err(CodecError::Corrupt("varint"))
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::CityArchetype;

    fn sample() -> CityMap {
        CityArchetype::SurveyRiver.generate(17)
    }

    #[test]
    fn round_trip_preserves_structure_and_ids() {
        let map = sample();
        let bytes = encode_map(&map, DEFAULT_QUANTUM_MM);
        let back = decode_map(&bytes).unwrap();
        assert_eq!(back.name(), map.name());
        assert_eq!(back.len(), map.len());
        assert_eq!(back.obstacles().len(), map.obstacles().len());
        let quantum = DEFAULT_QUANTUM_MM as f64 / 1000.0;
        for (a, b) in map.buildings().iter().zip(back.buildings()) {
            assert_eq!(a.id, b.id, "IDs must survive the cache round trip");
            assert!(
                a.centroid.dist(b.centroid) <= quantum * 2.0,
                "centroid drift beyond quantization"
            );
            assert_eq!(a.footprint.len(), b.footprint.len());
        }
        for (a, b) in map.obstacles().iter().zip(back.obstacles()) {
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn double_round_trip_is_identity() {
        // After one quantization, further round trips are exact.
        let map = sample();
        let once = decode_map(&encode_map(&map, DEFAULT_QUANTUM_MM)).unwrap();
        let twice = decode_map(&encode_map(&once, DEFAULT_QUANTUM_MM)).unwrap();
        for (a, b) in once.buildings().iter().zip(twice.buildings()) {
            assert_eq!(a.centroid, b.centroid);
            assert_eq!(a.footprint.ring(), b.footprint.ring());
        }
    }

    #[test]
    fn cache_size_is_phone_practical() {
        // The §2 premise: a city map cache must be small. Our 800 m
        // survey area should be a few tens of KB; linear scaling puts
        // a 10 km metro in single-digit MB.
        let map = sample();
        let bytes = encode_map(&map, DEFAULT_QUANTUM_MM);
        let per_building = bytes.len() as f64 / map.len() as f64;
        assert!(
            per_building < 64.0,
            "{per_building:.1} bytes/building is too fat for a cache"
        );
        assert!(
            bytes.len() < 100 * 1024,
            "survey-area map {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn corruption_detected_everywhere() {
        let bytes = encode_map(&sample(), DEFAULT_QUANTUM_MM);
        // Flip a byte in a few positions across the span.
        for pos in [0, 5, bytes.len() / 2, bytes.len() - 9, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(decode_map(&bad).is_err(), "flip at {pos} undetected");
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode_map(&sample(), DEFAULT_QUANTUM_MM);
        for cut in [0, 4, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_map(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decoded_map_routes_identically() {
        // The cache must be functionally equivalent for routing.
        let map = sample();
        let back = decode_map(&encode_map(&map, DEFAULT_QUANTUM_MM)).unwrap();
        let p = citymesh_geo::Point::new(400.0, 200.0);
        assert_eq!(
            map.nearest_building(p).unwrap().id,
            back.nearest_building(p).unwrap().id
        );
        assert_eq!(map.in_obstacle(p), back.in_obstacle(p));
    }

    #[test]
    fn coarser_quantum_is_smaller() {
        let map = sample();
        let fine = encode_map(&map, 1);
        let coarse = encode_map(&map, 1000); // 1 m quantum
        assert!(coarse.len() < fine.len());
        // And still decodes.
        let back = decode_map(&coarse).unwrap();
        assert_eq!(back.len(), map.len());
    }
}
