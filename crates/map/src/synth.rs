//! Deterministic synthetic city generation.
//!
//! Substitutes for the paper's OSM extracts of real cities
//! (DESIGN.md §1). A city is a street grid of blocks subdivided into
//! lots, each lot holding a jittered rectangular building with some
//! probability, minus large obstacle regions (rivers, parks, highway
//! corridors) that remove every intersecting building. The obstacles
//! are what give each city its island structure — the feature the
//! paper's evaluation highlights (Washington D.C. fracturing, §4).
//!
//! Every archetype is generated from an explicit parameter set, so
//! ablations can sweep any knob; `generate(params, seed)` is a pure
//! function of its arguments.

use citymesh_geo::{Point, Polygon, Rect, Vec2};
use citymesh_simcore::{split_seed, substream_seed, SimRng};

use crate::city::{CityMap, Obstacle, ObstacleKind};

/// A parametric obstacle.
#[derive(Clone, Debug)]
pub enum ObstacleSpec {
    /// A band crossing the map horizontally (west–east), e.g. a river.
    /// `y_frac` positions its centerline as a fraction of map height;
    /// `meander_m` is the sinusoidal amplitude of the centerline.
    HorizontalBand {
        /// Feature kind.
        kind: ObstacleKind,
        /// Centerline position, fraction of map height in `[0, 1]`.
        y_frac: f64,
        /// Band width, meters.
        width_m: f64,
        /// Meander amplitude, meters.
        meander_m: f64,
        /// Number of bridge crossings: gaps left in the band where a
        /// bridge road crosses (buildings survive near bridgeheads,
        /// carrying connectivity over — as in real cities).
        bridges: usize,
    },
    /// A band crossing the map vertically (south–north).
    VerticalBand {
        /// Feature kind.
        kind: ObstacleKind,
        /// Centerline position, fraction of map width in `[0, 1]`.
        x_frac: f64,
        /// Band width, meters.
        width_m: f64,
        /// Meander amplitude, meters.
        meander_m: f64,
        /// Bridge crossings (see the horizontal variant).
        bridges: usize,
    },
    /// A band along the SW→NE diagonal (e.g. a diagonal avenue).
    DiagonalBand {
        /// Feature kind.
        kind: ObstacleKind,
        /// Band width, meters.
        width_m: f64,
        /// Bridge crossings (see the horizontal variant).
        bridges: usize,
    },
    /// An axis-aligned rectangular region (e.g. a park).
    RectRegion {
        /// Feature kind.
        kind: ObstacleKind,
        /// Left edge, fraction of map width.
        x_frac: f64,
        /// Bottom edge, fraction of map height.
        y_frac: f64,
        /// Width, fraction of map width.
        w_frac: f64,
        /// Height, fraction of map height.
        h_frac: f64,
    },
}

/// Full parameter set for one synthetic city.
#[derive(Clone, Debug)]
pub struct CityParams {
    /// City name (propagates to [`CityMap::name`]).
    pub name: String,
    /// Map extent west–east, meters.
    pub width_m: f64,
    /// Map extent south–north, meters.
    pub height_m: f64,
    /// Block size along x, meters.
    pub block_w: f64,
    /// Block size along y, meters.
    pub block_h: f64,
    /// Street width between blocks, meters.
    pub street_w: f64,
    /// Target building lot side, meters.
    pub lot_size: f64,
    /// Probability a lot receives a building.
    pub fill: f64,
    /// Fractional size noise (0 = all lots identical).
    pub size_jitter: f64,
    /// Positional noise, meters.
    pub pos_jitter: f64,
    /// Rotation noise, radians (σ of a normal).
    pub rotation_jitter: f64,
    /// Obstacles to carve out.
    pub obstacles: Vec<ObstacleSpec>,
}

/// Named city and survey-area archetypes.
///
/// The first eight are full cities for the Figure-6 style evaluation;
/// the last four are the §2 measurement areas (downtown, campus,
/// residential, river).
///
/// ```
/// use citymesh_map::CityArchetype;
///
/// let map = CityArchetype::SurveyDowntown.generate(42);
/// assert!(map.len() > 300, "downtown is dense");
/// // Same seed, same city — everything downstream is reproducible.
/// assert_eq!(map.len(), CityArchetype::SurveyDowntown.generate(42).len());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CityArchetype {
    /// Dense, irregular grid with a meandering river along the north.
    Boston,
    /// Medium-density grid south of a river.
    Cambridge,
    /// Very dense, highly regular grid with a vertical river.
    Chicago,
    /// Medium grid cut by a wide park mall, a diagonal avenue, and a
    /// river — fractures into islands (the paper's highlighted case).
    WashingtonDc,
    /// Sprawling low-density blocks crossed by two wide highways.
    Houston,
    /// Dense grid with a large park strip on the west side.
    SanFrancisco,
    /// Medium density split by a broad north–south waterway.
    Seattle,
    /// Extremely dense small blocks around a large central park.
    NewYork,
    /// §2 survey area: downtown core (highest AP density).
    SurveyDowntown,
    /// §2 survey area: university campus (large buildings, quads).
    SurveyCampus,
    /// §2 survey area: residential neighborhood.
    SurveyResidential,
    /// §2 survey area: river banks (sparsest, tests inter-island links).
    SurveyRiver,
}

impl CityArchetype {
    /// The eight full-city archetypes, in evaluation order.
    pub fn cities() -> [CityArchetype; 8] {
        [
            CityArchetype::Boston,
            CityArchetype::Cambridge,
            CityArchetype::Chicago,
            CityArchetype::WashingtonDc,
            CityArchetype::Houston,
            CityArchetype::SanFrancisco,
            CityArchetype::Seattle,
            CityArchetype::NewYork,
        ]
    }

    /// The four §2 survey areas.
    pub fn survey_areas() -> [CityArchetype; 4] {
        [
            CityArchetype::SurveyDowntown,
            CityArchetype::SurveyCampus,
            CityArchetype::SurveyResidential,
            CityArchetype::SurveyRiver,
        ]
    }

    /// Short lowercase label for tables and filenames.
    pub fn label(self) -> &'static str {
        match self {
            CityArchetype::Boston => "boston",
            CityArchetype::Cambridge => "cambridge",
            CityArchetype::Chicago => "chicago",
            CityArchetype::WashingtonDc => "washington-dc",
            CityArchetype::Houston => "houston",
            CityArchetype::SanFrancisco => "san-francisco",
            CityArchetype::Seattle => "seattle",
            CityArchetype::NewYork => "new-york",
            CityArchetype::SurveyDowntown => "downtown",
            CityArchetype::SurveyCampus => "campus",
            CityArchetype::SurveyResidential => "residential",
            CityArchetype::SurveyRiver => "river",
        }
    }

    /// The generator parameters for this archetype.
    pub fn params(self) -> CityParams {
        use CityArchetype::*;
        use ObstacleKind::*;
        let base = CityParams {
            name: self.label().to_string(),
            width_m: 1500.0,
            height_m: 1500.0,
            block_w: 90.0,
            block_h: 90.0,
            street_w: 15.0,
            lot_size: 28.0,
            fill: 0.8,
            size_jitter: 0.15,
            pos_jitter: 2.0,
            rotation_jitter: 0.0,
            obstacles: vec![],
        };
        match self {
            Boston => CityParams {
                block_w: 80.0,
                block_h: 70.0,
                lot_size: 24.0,
                fill: 0.85,
                pos_jitter: 4.0,
                rotation_jitter: 0.12,
                obstacles: vec![ObstacleSpec::HorizontalBand {
                    kind: Water,
                    y_frac: 0.88,
                    width_m: 170.0,
                    meander_m: 35.0,
                    bridges: 2,
                }],
                ..base
            },
            Cambridge => CityParams {
                block_w: 95.0,
                block_h: 85.0,
                fill: 0.78,
                pos_jitter: 3.0,
                rotation_jitter: 0.06,
                obstacles: vec![ObstacleSpec::HorizontalBand {
                    kind: Water,
                    y_frac: 0.08,
                    width_m: 150.0,
                    meander_m: 25.0,
                    bridges: 2,
                }],
                ..base
            },
            Chicago => CityParams {
                block_w: 75.0,
                block_h: 75.0,
                lot_size: 23.0,
                fill: 0.9,
                pos_jitter: 1.0,
                obstacles: vec![ObstacleSpec::VerticalBand {
                    kind: Water,
                    x_frac: 0.3,
                    width_m: 60.0,
                    meander_m: 20.0,
                    bridges: 3,
                }],
                ..base
            },
            WashingtonDc => CityParams {
                fill: 0.75,
                obstacles: vec![
                    ObstacleSpec::RectRegion {
                        kind: Park,
                        x_frac: 0.1,
                        y_frac: 0.42,
                        w_frac: 0.8,
                        h_frac: 0.14,
                    },
                    ObstacleSpec::DiagonalBand {
                        kind: Highway,
                        width_m: 55.0,
                        bridges: 1,
                    },
                    ObstacleSpec::HorizontalBand {
                        kind: Water,
                        y_frac: 0.06,
                        width_m: 140.0,
                        meander_m: 20.0,
                        bridges: 1,
                    },
                ],
                ..base
            },
            Houston => CityParams {
                block_w: 110.0,
                block_h: 110.0,
                street_w: 18.0,
                lot_size: 32.0,
                fill: 0.72,
                obstacles: vec![
                    ObstacleSpec::HorizontalBand {
                        kind: Highway,
                        y_frac: 0.5,
                        width_m: 70.0,
                        meander_m: 0.0,
                        bridges: 1,
                    },
                    ObstacleSpec::VerticalBand {
                        kind: Highway,
                        x_frac: 0.5,
                        width_m: 70.0,
                        meander_m: 0.0,
                        bridges: 1,
                    },
                ],
                ..base
            },
            SanFrancisco => CityParams {
                block_w: 85.0,
                block_h: 70.0,
                fill: 0.85,
                pos_jitter: 2.5,
                obstacles: vec![ObstacleSpec::RectRegion {
                    kind: Park,
                    x_frac: 0.0,
                    y_frac: 0.35,
                    w_frac: 0.28,
                    h_frac: 0.16,
                }],
                ..base
            },
            Seattle => CityParams {
                fill: 0.75,
                pos_jitter: 3.0,
                obstacles: vec![ObstacleSpec::VerticalBand {
                    kind: Water,
                    x_frac: 0.55,
                    width_m: 230.0,
                    meander_m: 30.0,
                    bridges: 1,
                }],
                ..base
            },
            NewYork => CityParams {
                block_w: 70.0,
                block_h: 60.0,
                street_w: 13.0,
                lot_size: 21.0,
                fill: 0.92,
                pos_jitter: 1.0,
                obstacles: vec![ObstacleSpec::RectRegion {
                    kind: Park,
                    x_frac: 0.38,
                    y_frac: 0.3,
                    w_frac: 0.24,
                    h_frac: 0.4,
                }],
                ..base
            },
            SurveyDowntown => CityParams {
                width_m: 800.0,
                height_m: 800.0,
                block_w: 75.0,
                block_h: 75.0,
                lot_size: 23.0,
                fill: 0.92,
                pos_jitter: 2.0,
                ..base
            },
            SurveyCampus => CityParams {
                width_m: 800.0,
                height_m: 800.0,
                block_w: 160.0,
                block_h: 160.0,
                street_w: 30.0,
                lot_size: 55.0,
                fill: 0.55,
                ..base
            },
            SurveyResidential => CityParams {
                width_m: 800.0,
                height_m: 800.0,
                block_w: 110.0,
                block_h: 95.0,
                lot_size: 30.0,
                fill: 0.72,
                pos_jitter: 3.5,
                rotation_jitter: 0.05,
                ..base
            },
            SurveyRiver => CityParams {
                width_m: 800.0,
                height_m: 800.0,
                block_w: 110.0,
                block_h: 100.0,
                lot_size: 30.0,
                fill: 0.55,
                obstacles: vec![ObstacleSpec::HorizontalBand {
                    kind: Water,
                    y_frac: 0.5,
                    width_m: 220.0,
                    meander_m: 40.0,
                    bridges: 0,
                }],
                ..base
            },
        }
    }

    /// Generates this archetype's map with `seed`.
    pub fn generate(self, seed: u64) -> CityMap {
        generate(&self.params(), seed)
    }
}

/// Generates a city from explicit parameters. Pure in
/// `(params, seed)`.
pub fn generate(params: &CityParams, seed: u64) -> CityMap {
    let mut rng = SimRng::new(split_seed(seed, 0xC171));
    let obstacles = build_obstacles(params, &mut rng);
    let mut footprints = Vec::new();

    let pitch_x = params.block_w + params.street_w;
    let pitch_y = params.block_h + params.street_w;
    let mut oy = params.street_w;
    while oy + params.block_h <= params.height_m {
        let mut ox = params.street_w;
        while ox + params.block_w <= params.width_m {
            fill_block(params, ox, oy, &mut rng, &mut footprints);
            ox += pitch_x;
        }
        oy += pitch_y;
    }

    // Carve obstacles: drop every building that touches one.
    let kept: Vec<Polygon> = footprints
        .into_iter()
        .filter(|fp| {
            let bb = fp.bbox();
            !obstacles
                .iter()
                .any(|o| o.region.bbox().intersects(&bb) && fp.dist_to_polygon(&o.region) == 0.0)
        })
        .collect();

    CityMap::new(params.name.clone(), kept, obstacles)
}

/// Side of one metro tile, meters — the extent of every full-city
/// archetype (see [`CityArchetype::params`]).
pub const METRO_TILE_M: f64 = 1500.0;

/// RNG sub-stream domain for per-tile metro generation.
const DOMAIN_METRO_TILE: u64 = 0x3E70;

/// Parameters for metro-scale generation: a `tiles_x × tiles_y` grid
/// of full-city archetype tiles separated by arterial corridors.
///
/// Each corridor carries a chain of small *relay buildings* (street
/// cabinets, kiosks, transit shelters — urban furniture that hosts
/// APs) so predicted connectivity bridges the inter-tile gap; without
/// them the >40 m gap between tiles would sever every district from
/// its neighbors. Corridors double as the inter-district arterial
/// conduits the hierarchical planner routes over.
#[derive(Clone, Debug)]
pub struct MetroParams {
    /// Metro name (propagates to [`CityMap::name`]).
    pub name: String,
    /// Tile columns (west–east).
    pub tiles_x: usize,
    /// Tile rows (south–north).
    pub tiles_y: usize,
    /// Width of the arterial corridor between adjacent tiles, meters.
    pub arterial_gap_m: f64,
    /// Center-to-center spacing of relay buildings along a corridor,
    /// meters. Must leave an edge-to-edge gap below the building-graph
    /// `max_gap_m` (40 m at the default range) for chains to link.
    pub relay_spacing_m: f64,
    /// Side of the square relay buildings, meters.
    pub relay_size_m: f64,
    /// How deep on-ramp relay chains reach into a tile from its east
    /// and north corridors, meters. Tile street grids start flush
    /// against their west/south edges but can leave up to ~80 m of
    /// empty margin on the east/north (wherever the block pitch
    /// doesn't divide the tile side), so those sides need ramps to
    /// reach the built-up area.
    pub ramp_depth_m: f64,
}

impl MetroParams {
    /// Parameters for a `tiles_x × tiles_y` metro with default
    /// corridor geometry.
    pub fn with_tiles(tiles_x: usize, tiles_y: usize) -> Self {
        MetroParams {
            name: format!("metro-{tiles_x}x{tiles_y}"),
            tiles_x,
            tiles_y,
            arterial_gap_m: 24.0,
            relay_spacing_m: 28.0,
            relay_size_m: 10.0,
            ramp_depth_m: 150.0,
        }
    }

    /// Tile pitch (tile side plus corridor width), meters.
    pub fn pitch_m(&self) -> f64 {
        METRO_TILE_M + self.arterial_gap_m
    }

    /// Rejects degenerate metro parameters — zero tile counts, or
    /// corridor geometry that is zero, negative, or non-finite — with
    /// a typed error before any tile is generated.
    pub fn validate(&self) -> Result<(), MetroParamsError> {
        if self.tiles_x == 0 || self.tiles_y == 0 {
            return Err(MetroParamsError::ZeroTiles {
                tiles_x: self.tiles_x,
                tiles_y: self.tiles_y,
            });
        }
        for (field, value) in [
            ("arterial_gap_m", self.arterial_gap_m),
            ("relay_spacing_m", self.relay_spacing_m),
            ("relay_size_m", self.relay_size_m),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(MetroParamsError::NonPositiveGeometry { field, value });
            }
        }
        if !self.ramp_depth_m.is_finite() || self.ramp_depth_m < 0.0 {
            return Err(MetroParamsError::NonPositiveGeometry {
                field: "ramp_depth_m",
                value: self.ramp_depth_m,
            });
        }
        Ok(())
    }
}

/// Rejected [`MetroParams`]: the generator refuses degenerate grids
/// with a typed error instead of panicking mid-generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetroParamsError {
    /// A zero tile count in either dimension: no city to generate.
    ZeroTiles {
        /// Requested columns.
        tiles_x: usize,
        /// Requested rows.
        tiles_y: usize,
    },
    /// Corridor geometry that is zero, negative, or non-finite —
    /// relay chains could not bridge the inter-tile gaps.
    NonPositiveGeometry {
        /// Offending parameter.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for MetroParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetroParamsError::ZeroTiles { tiles_x, tiles_y } => write!(
                f,
                "metro needs at least one tile in each dimension (got {tiles_x}x{tiles_y})"
            ),
            MetroParamsError::NonPositiveGeometry { field, value } => write!(
                f,
                "metro corridor geometry must be positive: `{field}` = {value}"
            ),
        }
    }
}

impl std::error::Error for MetroParamsError {}

impl Default for MetroParams {
    fn default() -> Self {
        MetroParams::with_tiles(4, 4)
    }
}

/// Generates a metro-scale city: the eight full-city archetypes tiled
/// cyclically into a `tiles_x × tiles_y` grid, stitched by arterial
/// relay chains. Pure in `(params, seed)`.
///
/// Each tile is generated with its own RNG sub-stream
/// (`substream_seed(seed, DOMAIN, tile_ordinal)`), so tile contents
/// are independent of grid dimensions: tile (0,0) of a 2×2 metro and
/// of a 10×10 metro are identical. Obstacles stay per-tile during
/// carving but are not retained in the output map (at 100k+ buildings
/// the routing layers never consult them and the polygons would
/// dominate memory).
///
/// # Panics
/// Panics on zero tile counts or non-positive corridor geometry
/// ([`MetroParams::validate`]). Use [`try_generate_metro`] for a
/// `Result` instead.
pub fn generate_metro(params: &MetroParams, seed: u64) -> CityMap {
    try_generate_metro(params, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// [`generate_metro`] with degenerate parameters as a typed error
/// instead of a panic.
pub fn try_generate_metro(params: &MetroParams, seed: u64) -> Result<CityMap, MetroParamsError> {
    params.validate()?;
    Ok(generate_metro_validated(params, seed))
}

/// The metro generator proper; `params` has already passed
/// [`MetroParams::validate`].
fn generate_metro_validated(params: &MetroParams, seed: u64) -> CityMap {
    let pitch = params.pitch_m();
    let archetypes = CityArchetype::cities();
    let mut footprints = Vec::new();

    for ty in 0..params.tiles_y {
        for tx in 0..params.tiles_x {
            let ordinal = (ty * params.tiles_x + tx) as u64;
            let arch = archetypes[ordinal as usize % archetypes.len()];
            let tile = generate(
                &arch.params(),
                substream_seed(seed, DOMAIN_METRO_TILE, ordinal),
            );
            let offset = Vec2 {
                x: tx as f64 * pitch,
                y: ty as f64 * pitch,
            };
            for b in tile.buildings() {
                footprints.push(translated(&b.footprint, offset));
            }
        }
    }

    // Full extent of the built-up area (last tile has no trailing
    // corridor).
    let total_w = params.tiles_x as f64 * pitch - params.arterial_gap_m;
    let total_h = params.tiles_y as f64 * pitch - params.arterial_gap_m;

    // Arterial corridors: one relay chain down the center of every
    // inter-tile gap, spanning the whole metro. Vertical and
    // horizontal chains cross within relay spacing of each other at
    // intersections, so the arterial grid is itself connected.
    for gx in 1..params.tiles_x {
        let cx = gx as f64 * pitch - params.arterial_gap_m / 2.0;
        relay_chain(
            params,
            Point::new(cx, 0.0),
            Vec2 { x: 0.0, y: 1.0 },
            total_h,
            &mut footprints,
        );
    }
    for gy in 1..params.tiles_y {
        let cy = gy as f64 * pitch - params.arterial_gap_m / 2.0;
        relay_chain(
            params,
            Point::new(0.0, cy),
            Vec2 { x: 1.0, y: 0.0 },
            total_w,
            &mut footprints,
        );
    }

    // On-ramps. A tile's street grid starts `street_w` from its west
    // and south edges — within predicted range of those corridors —
    // but its east/north margins depend on how the block pitch divides
    // the tile side and can exceed the connectivity gap. Three
    // perpendicular ramp chains per served side reach from the
    // corridor into the built-up interior.
    let ramp_fracs = [0.25, 0.5, 0.75];
    for ty in 0..params.tiles_y {
        for tx in 0..params.tiles_x {
            let ox = tx as f64 * pitch;
            let oy = ty as f64 * pitch;
            if tx + 1 < params.tiles_x {
                // East corridor, ramps reaching west into this tile.
                let cx = (tx + 1) as f64 * pitch - params.arterial_gap_m / 2.0;
                for f in ramp_fracs {
                    relay_chain(
                        params,
                        Point::new(cx, oy + f * METRO_TILE_M),
                        Vec2 { x: -1.0, y: 0.0 },
                        params.ramp_depth_m,
                        &mut footprints,
                    );
                }
            }
            if ty + 1 < params.tiles_y {
                // North corridor, ramps reaching south into this tile.
                let cy = (ty + 1) as f64 * pitch - params.arterial_gap_m / 2.0;
                for f in ramp_fracs {
                    relay_chain(
                        params,
                        Point::new(ox + f * METRO_TILE_M, cy),
                        Vec2 { x: 0.0, y: -1.0 },
                        params.ramp_depth_m,
                        &mut footprints,
                    );
                }
            }
        }
    }

    CityMap::new(params.name.clone(), footprints, Vec::new())
}

/// `poly` translated by `offset`.
fn translated(poly: &Polygon, offset: Vec2) -> Polygon {
    Polygon::new(poly.ring().iter().map(|&p| p + offset).collect())
        .expect("translation preserves polygon validity")
}

/// Appends a chain of square relay buildings starting at `start` and
/// marching along unit direction `dir` for `span` meters.
fn relay_chain(params: &MetroParams, start: Point, dir: Vec2, span: f64, out: &mut Vec<Polygon>) {
    let half = params.relay_size_m / 2.0;
    let mut s = half;
    while s + half <= span + 1e-9 {
        let c = start + dir * s;
        out.push(Polygon::rect(Rect::from_corners(
            Point::new(c.x - half, c.y - half),
            Point::new(c.x + half, c.y + half),
        )));
        s += params.relay_spacing_m;
    }
}

/// Fills one block with jittered lot buildings.
fn fill_block(params: &CityParams, ox: f64, oy: f64, rng: &mut SimRng, out: &mut Vec<Polygon>) {
    let nx = (params.block_w / params.lot_size).floor().max(1.0) as usize;
    let ny = (params.block_h / params.lot_size).floor().max(1.0) as usize;
    let lot_w = params.block_w / nx as f64;
    let lot_h = params.block_h / ny as f64;

    for iy in 0..ny {
        for ix in 0..nx {
            if !rng.chance(params.fill) {
                continue;
            }
            // Inset the building within its lot, then jitter.
            let margin = 0.12;
            let jw = 1.0 + params.size_jitter * (rng.uniform() * 2.0 - 1.0);
            let jh = 1.0 + params.size_jitter * (rng.uniform() * 2.0 - 1.0);
            let w = (lot_w * (1.0 - 2.0 * margin) * jw).max(4.0);
            let h = (lot_h * (1.0 - 2.0 * margin) * jh).max(4.0);
            let cx =
                ox + (ix as f64 + 0.5) * lot_w + params.pos_jitter * (rng.uniform() * 2.0 - 1.0);
            let cy =
                oy + (iy as f64 + 0.5) * lot_h + params.pos_jitter * (rng.uniform() * 2.0 - 1.0);
            let rect = Polygon::rect(Rect::from_corners(
                Point::new(cx - w / 2.0, cy - h / 2.0),
                Point::new(cx + w / 2.0, cy + h / 2.0),
            ));
            let poly = if params.rotation_jitter > 0.0 {
                let angle = params.rotation_jitter * rng.std_normal();
                rect.rotated(Point::new(cx, cy), angle)
            } else {
                rect
            };
            out.push(poly);
        }
    }
}

/// Width of the building-bearing corridor left in a band at each
/// bridge crossing, meters. A full block pitch, so at least one column
/// of buildings always survives inside the corridor (real bridgeheads
/// cluster development the same way).
const BRIDGE_GAP_M: f64 = 120.0;

/// Materializes obstacle specs into polygons. Bands with `bridges > 0`
/// become several disjoint polygons with [`BRIDGE_GAP_M`] corridors
/// between them.
fn build_obstacles(params: &CityParams, rng: &mut SimRng) -> Vec<Obstacle> {
    let mut out = Vec::new();
    for spec in &params.obstacles {
        match *spec {
            ObstacleSpec::HorizontalBand {
                kind,
                y_frac,
                width_m,
                meander_m,
                bridges,
            } => {
                let phase = rng.uniform_range(0.0, std::f64::consts::TAU);
                for region in band_polygons(
                    params.width_m,
                    y_frac * params.height_m,
                    width_m,
                    meander_m,
                    phase,
                    false,
                    bridges,
                ) {
                    out.push(Obstacle { kind, region });
                }
            }
            ObstacleSpec::VerticalBand {
                kind,
                x_frac,
                width_m,
                meander_m,
                bridges,
            } => {
                let phase = rng.uniform_range(0.0, std::f64::consts::TAU);
                for region in band_polygons(
                    params.height_m,
                    x_frac * params.width_m,
                    width_m,
                    meander_m,
                    phase,
                    true,
                    bridges,
                ) {
                    out.push(Obstacle { kind, region });
                }
            }
            ObstacleSpec::DiagonalBand {
                kind,
                width_m,
                bridges,
            } => {
                let half = width_m / 2.0;
                // Strip along the SW→NE diagonal, offset perpendicular,
                // extended past the corners so it fully crosses.
                let d = Point::new(params.width_m, params.height_m) - Point::ORIGIN;
                let n = d.normalized().expect("nonzero map extent").perp() * half;
                let start = Point::ORIGIN - d * 0.1;
                let dir = d * 1.2;
                let gap_t = BRIDGE_GAP_M / dir.norm();
                for (t0, t1) in segment_spans(bridges, gap_t) {
                    let a = start + dir * t0;
                    let b = start + dir * t1;
                    out.push(Obstacle {
                        kind,
                        region: Polygon::new(vec![a - n, b - n, b + n, a + n])
                            .expect("strip is a valid quad"),
                    });
                }
            }
            ObstacleSpec::RectRegion {
                kind,
                x_frac,
                y_frac,
                w_frac,
                h_frac,
            } => {
                out.push(Obstacle {
                    kind,
                    region: Polygon::rect(Rect::from_corners(
                        Point::new(x_frac * params.width_m, y_frac * params.height_m),
                        Point::new(
                            (x_frac + w_frac) * params.width_m,
                            (y_frac + h_frac) * params.height_m,
                        ),
                    )),
                });
            }
        }
    }
    out
}

/// Splits the unit parameter range into `bridges + 1` spans separated
/// by gaps of normalized width `gap_t`, returned as `(t0, t1)` pairs.
fn segment_spans(bridges: usize, gap_t: f64) -> Vec<(f64, f64)> {
    let n = bridges + 1;
    let gap_t = gap_t.min(0.5 / n as f64);
    let seg = (1.0 - gap_t * bridges as f64) / n as f64;
    (0..n)
        .map(|i| {
            let t0 = i as f64 * (seg + gap_t);
            (t0, t0 + seg)
        })
        .collect()
}

/// Meandering band polygons crossing the full extent: the centerline
/// is `center + meander · sin(2πs/λ + phase)` sampled every 50 m,
/// split into `bridges + 1` pieces with [`BRIDGE_GAP_M`] corridors.
/// `transpose` swaps axes to make a vertical band.
fn band_polygons(
    span: f64,
    center: f64,
    width: f64,
    meander: f64,
    phase: f64,
    transpose: bool,
    bridges: usize,
) -> Vec<Polygon> {
    let wavelength = 600.0;
    let half = width / 2.0;
    segment_spans(bridges, BRIDGE_GAP_M / span)
        .into_iter()
        .map(|(t0, t1)| {
            let (s0, s1) = (span * t0, span * t1);
            let steps = (((s1 - s0) / 50.0).ceil() as usize).max(2);
            let mut upper = Vec::with_capacity(steps + 1);
            let mut lower = Vec::with_capacity(steps + 1);
            for i in 0..=steps {
                let s = s0 + (s1 - s0) * i as f64 / steps as f64;
                let c = center + meander * (std::f64::consts::TAU * s / wavelength + phase).sin();
                let (u, l) = (c + half, c - half);
                if transpose {
                    upper.push(Point::new(u, s));
                    lower.push(Point::new(l, s));
                } else {
                    upper.push(Point::new(s, u));
                    lower.push(Point::new(s, l));
                }
            }
            lower.reverse();
            upper.extend(lower);
            Polygon::new(upper).expect("band has ≥ 4 vertices")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = CityArchetype::Boston.generate(7);
        let b = CityArchetype::Boston.generate(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.buildings().iter().zip(b.buildings()) {
            assert_eq!(x.centroid, y.centroid);
            assert_eq!(x.area, y.area);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = CityArchetype::Boston.generate(1);
        let b = CityArchetype::Boston.generate(2);
        // Same parameters give similar counts but not identical layout.
        let same = a
            .buildings()
            .iter()
            .zip(b.buildings())
            .filter(|(x, y)| x.centroid == y.centroid)
            .count();
        assert!(same < a.len() / 2, "layouts should differ between seeds");
    }

    #[test]
    fn all_archetypes_generate_nonempty() {
        for arch in CityArchetype::cities()
            .into_iter()
            .chain(CityArchetype::survey_areas())
        {
            let m = arch.generate(42);
            // Full cities are ~1500 m square; survey areas are smaller
            // and the campus archetype is deliberately sparse.
            let min = if CityArchetype::cities().contains(&arch) {
                300
            } else {
                30
            };
            assert!(
                m.len() > min,
                "{} produced only {} buildings",
                arch.label(),
                m.len()
            );
            assert_eq!(m.name(), arch.label());
            // All footprints must lie within the declared extent
            // (small jitter slack allowed).
            let p = arch.params();
            let bounds = m.bounds();
            assert!(bounds.max.x <= p.width_m * 1.15 + 1.0);
            assert!(bounds.max.y <= p.height_m * 1.15 + 1.0);
        }
    }

    #[test]
    fn obstacles_carve_building_free_regions() {
        let m = CityArchetype::SurveyRiver.generate(3);
        assert_eq!(m.obstacles().len(), 1);
        let river = &m.obstacles()[0];
        assert_eq!(river.kind, ObstacleKind::Water);
        for b in m.buildings() {
            assert!(
                b.footprint.dist_to_polygon(&river.region) > 0.0,
                "building {} intersects the river",
                b.id
            );
        }
    }

    #[test]
    fn density_ordering_matches_paper_areas() {
        // Paper §2: downtown is the densest survey area, river the
        // sparsest (Table 1 / Figure 1a orderings).
        let downtown = CityArchetype::SurveyDowntown.generate(9).stats();
        let residential = CityArchetype::SurveyResidential.generate(9).stats();
        let river = CityArchetype::SurveyRiver.generate(9).stats();
        assert!(downtown.built_fraction > residential.built_fraction);
        assert!(residential.built_fraction > river.built_fraction);
        assert!(downtown.buildings > river.buildings);
    }

    #[test]
    fn campus_buildings_are_larger() {
        let campus = CityArchetype::SurveyCampus.generate(5).stats();
        let downtown = CityArchetype::SurveyDowntown.generate(5).stats();
        assert!(campus.median_building_area_m2 > 2.0 * downtown.median_building_area_m2);
    }

    #[test]
    fn dc_has_three_obstacles() {
        let m = CityArchetype::WashingtonDc.generate(11);
        // Park + river (1 bridge -> 2 polygons) + diagonal highway
        // (1 crossing -> 2 polygons).
        assert_eq!(m.obstacles().len(), 5);
        let kinds: Vec<_> = m.obstacles().iter().map(|o| o.kind).collect();
        assert!(kinds.contains(&ObstacleKind::Park));
        assert!(kinds.contains(&ObstacleKind::Highway));
        assert!(kinds.contains(&ObstacleKind::Water));
    }

    #[test]
    fn band_polygon_geometry() {
        let bands = band_polygons(1000.0, 500.0, 100.0, 0.0, 0.0, false, 0);
        assert_eq!(bands.len(), 1);
        let band = &bands[0];
        // Straight band: a 1000 × 100 rectangle-ish strip.
        assert!((band.area() - 100_000.0).abs() < 1.0);
        assert!(band.contains(Point::new(500.0, 500.0)));
        assert!(!band.contains(Point::new(500.0, 600.0)));
        // Transposed version is vertical.
        let v = &band_polygons(1000.0, 500.0, 100.0, 0.0, 0.0, true, 0)[0];
        assert!(v.contains(Point::new(500.0, 500.0)));
        assert!(!v.contains(Point::new(600.0, 500.0)));
    }

    #[test]
    fn meandering_band_stays_within_amplitude() {
        let band = &band_polygons(1000.0, 500.0, 80.0, 30.0, 1.0, false, 0)[0];
        let bb = band.bbox();
        assert!(bb.min.y >= 500.0 - 40.0 - 30.0 - 1e-9);
        assert!(bb.max.y <= 500.0 + 40.0 + 30.0 + 1e-9);
    }

    #[test]
    fn bridges_split_bands_and_leave_corridors() {
        let bands = band_polygons(1000.0, 500.0, 100.0, 0.0, 0.0, false, 2);
        assert_eq!(bands.len(), 3);
        // Total band area shrinks by the two bridge corridors.
        let area: f64 = bands.iter().map(|b| b.area()).sum();
        assert!((area - (1000.0 - 2.0 * BRIDGE_GAP_M) * 100.0).abs() < 1.0);
        // The corridor midpoints are obstacle-free.
        for (t0, t1) in segment_spans(2, BRIDGE_GAP_M / 1000.0)
            .windows(2)
            .map(|w| (w[0].1, w[1].0))
        {
            let mid = Point::new(1000.0 * (t0 + t1) / 2.0, 500.0);
            assert!(
                bands.iter().all(|b| !b.contains(mid)),
                "corridor blocked at {mid:?}"
            );
        }
    }

    #[test]
    fn metro_params_validation_types_every_rejection() {
        // Zero tiles in either dimension.
        for (tx, ty) in [(0usize, 3usize), (3, 0), (0, 0)] {
            let p = MetroParams {
                tiles_x: tx,
                tiles_y: ty,
                ..MetroParams::with_tiles(1, 1)
            };
            assert_eq!(
                p.validate(),
                Err(MetroParamsError::ZeroTiles {
                    tiles_x: tx,
                    tiles_y: ty
                })
            );
            assert!(try_generate_metro(&p, 1).is_err());
        }
        // Zero, negative, and non-finite corridor geometry.
        for (field, mutate) in [
            ("arterial_gap_m", 0usize),
            ("relay_spacing_m", 1),
            ("relay_size_m", 2),
            ("ramp_depth_m", 3),
        ] {
            for bad in [0.0, -3.0, f64::NAN] {
                if field == "ramp_depth_m" && bad == 0.0 {
                    continue; // a zero ramp depth is legal (no ramps)
                }
                let mut p = MetroParams::with_tiles(1, 1);
                match mutate {
                    0 => p.arterial_gap_m = bad,
                    1 => p.relay_spacing_m = bad,
                    2 => p.relay_size_m = bad,
                    _ => p.ramp_depth_m = bad,
                }
                match p.validate() {
                    Err(MetroParamsError::NonPositiveGeometry { field: f, .. }) => {
                        assert_eq!(f, field)
                    }
                    other => panic!("{field} = {bad} must be rejected, got {other:?}"),
                }
            }
        }
        // The defaults validate, and the typed path generates the same
        // city as the panicking one.
        assert_eq!(MetroParams::default().validate(), Ok(()));
        let p = MetroParams::with_tiles(1, 1);
        let a = try_generate_metro(&p, 9).expect("valid params");
        let b = generate_metro(&p, 9);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn metro_zero_tiles_still_panics_on_the_legacy_path() {
        generate_metro(&MetroParams::with_tiles(0, 1), 1);
    }

    #[test]
    fn metro_generation_is_deterministic() {
        let p = MetroParams::with_tiles(2, 2);
        let a = generate_metro(&p, 77);
        let b = generate_metro(&p, 77);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.buildings().iter().zip(b.buildings()) {
            assert_eq!(x.centroid, y.centroid);
            assert_eq!(x.area, y.area);
        }
        assert_eq!(a.name(), "metro-2x2");
    }

    #[test]
    fn metro_tiles_are_independent_of_grid_size() {
        // Tile (0,0) is seeded by its ordinal, so the buildings inside
        // the first tile footprint-match between a 1×1 and a 3×2 metro
        // (relay chains only exist in the larger one).
        let small = generate_metro(&MetroParams::with_tiles(1, 1), 5);
        let large = generate_metro(&MetroParams::with_tiles(3, 2), 5);
        let in_tile0 = |m: &CityMap| {
            let mut pts: Vec<(u64, u64)> = m
                .buildings()
                .iter()
                .filter(|b| b.centroid.x < METRO_TILE_M && b.centroid.y < METRO_TILE_M)
                .map(|b| (b.centroid.x.to_bits(), b.centroid.y.to_bits()))
                .collect();
            pts.sort_unstable();
            pts
        };
        let a = in_tile0(&small);
        let mut b = in_tile0(&large);
        // The larger metro adds ramp relays inside tile 0; every
        // building of the 1×1 metro must appear verbatim.
        b.retain(|p| a.binary_search(p).is_ok());
        assert_eq!(a, b, "tile (0,0) must be grid-size independent");
        assert_eq!(small.len(), a.len(), "1×1 metro is exactly one tile");
    }

    #[test]
    fn metro_scales_with_tile_count() {
        let one = generate_metro(&MetroParams::with_tiles(1, 1), 9);
        let four = generate_metro(&MetroParams::with_tiles(2, 2), 9);
        // Four tiles of differing archetypes plus relay chains: well
        // over 3× one tile.
        assert!(
            four.len() > 3 * one.len(),
            "{} vs {}",
            four.len(),
            one.len()
        );
        // Buildings span all four tile regions.
        let pitch = MetroParams::with_tiles(2, 2).pitch_m();
        for (qx, qy) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let n = four
                .buildings()
                .iter()
                .filter(|b| {
                    (b.centroid.x / pitch) as usize == qx && (b.centroid.y / pitch) as usize == qy
                })
                .count();
            assert!(n > 200, "quadrant ({qx},{qy}) has only {n} buildings");
        }
    }

    #[test]
    fn metro_relay_chains_bridge_corridors() {
        let p = MetroParams::with_tiles(2, 1);
        let m = generate_metro(&p, 3);
        // The vertical corridor centerline carries relays spaced below
        // the 40 m building-graph gap along the full height.
        let cx = p.pitch_m() - p.arterial_gap_m / 2.0;
        let mut ys: Vec<f64> = m
            .buildings()
            .iter()
            .filter(|b| (b.centroid.x - cx).abs() < 1e-6)
            .map(|b| b.centroid.y)
            .collect();
        ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(ys.len() > 40, "corridor has only {} relays", ys.len());
        for w in ys.windows(2) {
            let edge_gap = (w[1] - w[0]) - p.relay_size_m;
            assert!(
                edge_gap < 40.0,
                "relay chain gap {edge_gap} severs the corridor"
            );
        }
        assert!(ys[0] < p.relay_spacing_m, "chain starts at the south edge");
        assert!(
            METRO_TILE_M - ys[ys.len() - 1] < 2.0 * p.relay_spacing_m,
            "chain reaches the north edge"
        );
    }

    #[test]
    fn segment_spans_cover_unit_range() {
        let spans = segment_spans(3, 0.05);
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].0, 0.0);
        assert!((spans[3].1 - 1.0).abs() < 1e-9);
        for w in spans.windows(2) {
            assert!((w[1].0 - w[0].1 - 0.05).abs() < 1e-9, "gap width");
        }
    }
}
