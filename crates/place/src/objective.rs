//! What a deployment is optimized *for*: the metric, the seeded
//! workload it is measured on, and the deterministic [`Score`] an
//! evaluation produces.

use citymesh_core::Deployment;
use citymesh_fleet::{FleetReport, FlowModel};
use citymesh_simcore::Fnv64;

/// The quantity a placement search optimizes. Both are folded into a
/// scalar [`Score::value`] where **higher is better**, so the
/// optimizers are metric-agnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Maximize the fraction of flows delivered (mean across scenario
    /// worlds).
    DeliveryRate,
    /// Minimize the 99th-percentile first-delivery latency of
    /// delivered flows (mean across scenario worlds; the value is the
    /// negated latency in seconds so higher stays better).
    P99LatencyMs,
}

impl Metric {
    /// Stable label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Metric::DeliveryRate => "delivery-rate",
            Metric::P99LatencyMs => "p99-latency-ms",
        }
    }
}

/// The seeded evaluation a [`crate::Evaluator`] runs per candidate:
/// metric, workload shape, and the worker knob (a speed knob only —
/// fleet reports are worker-count invariant, so scores and digests
/// are too).
#[derive(Clone, Debug)]
pub struct Objective {
    /// What to optimize.
    pub metric: Metric,
    /// Flows per evaluation (per scenario world).
    pub flows: usize,
    /// Workload shape the flows are drawn from.
    pub model: FlowModel,
    /// Seed for workload generation and the fleet's simulation
    /// sub-streams.
    pub seed: u64,
    /// Fleet worker threads per evaluation (`0` = one per CPU).
    pub workers: usize,
}

impl Default for Objective {
    fn default() -> Self {
        Objective {
            metric: Metric::DeliveryRate,
            flows: 400,
            model: FlowModel::UniformPairs { rate_hz: 200.0 },
            seed: 0,
            workers: 1,
        }
    }
}

/// One scenario world's contribution to a [`Score`].
#[derive(Clone, Debug, PartialEq)]
pub struct WorldScore {
    /// The scenario's label (e.g. `healthy`, `blackout`).
    pub label: String,
    /// Delivered / total flows in this world.
    pub delivery_rate: f64,
    /// 99th-percentile first-delivery latency among delivered flows,
    /// ms (0 when nothing was delivered).
    pub p99_latency_ms: f64,
    /// Flows delivered.
    pub delivered: u64,
    /// Flows evaluated.
    pub flows: u64,
    /// The underlying [`FleetReport::digest`] — worker-count
    /// invariant, the determinism anchor of the whole search.
    pub fleet_digest: u64,
}

/// A deployment's evaluated quality: the scalar the optimizers
/// compare, the per-world breakdown, and a deterministic FNV digest
/// chaining the deployment identity with every world's fleet digest.
#[derive(Clone, Debug, PartialEq)]
pub struct Score {
    /// Scalar objective value, higher is better (see [`Metric`]).
    pub value: f64,
    /// Mean delivery rate across scenario worlds.
    pub delivery_rate: f64,
    /// Mean p99 first-delivery latency across scenario worlds, ms.
    pub p99_latency_ms: f64,
    /// Per-world breakdown, in scenario order.
    pub worlds: Vec<WorldScore>,
    /// FNV-1a over the metric, the deployment digest, and each world's
    /// fleet digest. Equal digests ⇒ bit-identical evaluations.
    pub digest: u64,
}

impl Score {
    /// Folds per-world reports into a score for `deployment`.
    pub(crate) fn from_worlds(
        metric: Metric,
        deployment: &Deployment,
        worlds: Vec<WorldScore>,
    ) -> Score {
        let n = worlds.len().max(1) as f64;
        let delivery_rate = worlds.iter().map(|w| w.delivery_rate).sum::<f64>() / n;
        let p99_latency_ms = worlds.iter().map(|w| w.p99_latency_ms).sum::<f64>() / n;
        let value = match metric {
            Metric::DeliveryRate => delivery_rate,
            // Negated seconds: higher is better, and deltas land on a
            // scale an annealer temperature of ~1e-2 can reason about.
            Metric::P99LatencyMs => -p99_latency_ms / 1e3,
        };
        let mut h = Fnv64::new();
        h.mix(metric as u64);
        h.mix(deployment.digest());
        h.mix(worlds.len() as u64);
        for w in &worlds {
            h.mix(w.fleet_digest);
        }
        Score {
            value,
            delivery_rate,
            p99_latency_ms,
            worlds,
            digest: h.value(),
        }
    }
}

/// Extracts one world's score row from a fleet report.
pub(crate) fn world_score(label: &str, report: &FleetReport) -> WorldScore {
    WorldScore {
        label: label.to_string(),
        delivery_rate: report.delivery_rate(),
        p99_latency_ms: report.latency_ms.quantile(0.99).unwrap_or(0.0),
        delivered: report.delivered,
        flows: report.flows,
        fleet_digest: report.digest(),
    }
}
