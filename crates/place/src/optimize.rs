//! The placement search itself: a random baseline, a greedy
//! k-medoids-style constructive baseline, and a Metropolis
//! simulated-annealing search — all bit-reproducible from a seed.

use citymesh_core::Deployment;
use citymesh_simcore::{substream_seed, SimRng};

use crate::eval::Evaluator;
use crate::objective::Score;
use crate::{PlaceError, DOMAIN_PLACE_ACCEPT, DOMAIN_PLACE_INIT, DOMAIN_PLACE_MOVE};

/// A finished placement search.
#[derive(Clone, Debug)]
pub struct PlacementResult {
    /// The best deployment found.
    pub deployment: Deployment,
    /// Its evaluated score. The evaluator's worlds are left with this
    /// deployment installed, so the score describes the state the
    /// caller observes.
    pub score: Score,
    /// Full fleet evaluations this search spent.
    pub evaluations: u64,
    /// Proposals actually evaluated (annealer only; equals
    /// `evaluations - 2` there, 0 for the constructive baselines).
    pub proposed_moves: u64,
    /// Proposals accepted by the Metropolis criterion (annealer only).
    pub accepted_moves: u64,
}

/// A deployment search strategy over a prepared [`Evaluator`].
///
/// Implementations must be pure functions of `(evaluator state, k,
/// seed)`: every random draw comes from sub-streams of `seed`, and
/// every candidate is scored through the evaluator's worker-count
/// invariant fleet runs — so the same inputs yield the same
/// deployment and the same [`Score::digest`] on any machine at any
/// worker count.
pub trait PlacementOptimizer {
    /// Stable label for tables and JSON.
    fn name(&self) -> &'static str;

    /// Searches for the best `k`-site deployment.
    fn optimize(
        &self,
        ev: &mut Evaluator,
        k: usize,
        seed: u64,
    ) -> Result<PlacementResult, PlaceError>;
}

fn require_candidates(ev: &Evaluator, k: usize) -> Result<(), PlaceError> {
    if ev.candidates().len() < k || k == 0 {
        return Err(PlaceError::NotEnoughCandidates {
            candidates: ev.candidates().len(),
            k,
        });
    }
    Ok(())
}

/// `k` sites drawn uniformly (without replacement) from the candidate
/// buildings — the baseline every optimizer must beat.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomPlacer;

impl RandomPlacer {
    /// The site set alone, without an evaluation.
    pub fn construct(ev: &Evaluator, k: usize, seed: u64) -> Result<Vec<u32>, PlaceError> {
        require_candidates(ev, k)?;
        let mut rng = SimRng::new(substream_seed(seed, DOMAIN_PLACE_INIT, 0));
        let cands = ev.candidates();
        let mut sites: Vec<u32> = Vec::with_capacity(k);
        while sites.len() < k {
            let b = cands[rng.below(cands.len() as u64) as usize];
            if !sites.contains(&b) {
                sites.push(b);
            }
        }
        Ok(sites)
    }
}

impl PlacementOptimizer for RandomPlacer {
    fn name(&self) -> &'static str {
        "random"
    }

    fn optimize(
        &self,
        ev: &mut Evaluator,
        k: usize,
        seed: u64,
    ) -> Result<PlacementResult, PlaceError> {
        let deployment = Deployment::new(Self::construct(ev, k, seed)?, k)?;
        let score = ev.score(&deployment);
        Ok(PlacementResult {
            deployment,
            score,
            evaluations: 1,
            proposed_moves: 0,
            accepted_moves: 0,
        })
    }
}

/// Greedy k-medoids-style constructive baseline: sites are added one
/// at a time, each minimizing the total building-to-nearest-site
/// centroid distance (the k-median objective) — a pure geometric
/// heuristic that spends exactly one fleet evaluation, on its final
/// answer. Fully deterministic; ties break to the lowest building id.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyPlacer;

impl GreedyPlacer {
    /// The site set alone, without an evaluation.
    pub fn construct(ev: &Evaluator, k: usize) -> Result<Vec<u32>, PlaceError> {
        require_candidates(ev, k)?;
        let map = ev.map();
        let n = map.len();
        let centroid = |b: u32| map.buildings()[b as usize].centroid;
        let mut best_dist = vec![f64::INFINITY; n];
        let mut sites: Vec<u32> = Vec::with_capacity(k);
        for _ in 0..k {
            let mut best: Option<(f64, u32)> = None;
            for &c in ev.candidates() {
                if sites.contains(&c) {
                    continue;
                }
                let cc = centroid(c);
                let mut total = 0.0;
                for (b, &best) in best_dist.iter().enumerate() {
                    let bc = centroid(b as u32);
                    let d = ((bc.x - cc.x).powi(2) + (bc.y - cc.y).powi(2)).sqrt();
                    total += d.min(best);
                }
                if best.map(|(t, _)| total < t).unwrap_or(true) {
                    best = Some((total, c));
                }
            }
            let (_, chosen) = best.expect("candidate pool outlasts k");
            sites.push(chosen);
            let sc = centroid(chosen);
            for (b, best) in best_dist.iter_mut().enumerate() {
                let bc = centroid(b as u32);
                let d = ((bc.x - sc.x).powi(2) + (bc.y - sc.y).powi(2)).sqrt();
                *best = best.min(d);
            }
        }
        Ok(sites)
    }
}

impl PlacementOptimizer for GreedyPlacer {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn optimize(
        &self,
        ev: &mut Evaluator,
        k: usize,
        _seed: u64,
    ) -> Result<PlacementResult, PlaceError> {
        let deployment = Deployment::new(Self::construct(ev, k)?, k)?;
        let score = ev.score(&deployment);
        Ok(PlacementResult {
            deployment,
            score,
            evaluations: 1,
            proposed_moves: 0,
            accepted_moves: 0,
        })
    }
}

/// Metropolis simulated annealing over deployments (after the rural
/// mesh-router placement literature): start from the greedy
/// constructive solution, propose relocating one uniformly chosen
/// site to a uniformly chosen candidate building, accept improving
/// moves always and worsening moves with probability `exp(Δ/T)` under
/// a geometric cooling schedule.
///
/// Proposal draws come from the `DOMAIN_PLACE_MOVE` sub-stream and
/// acceptance draws from `DOMAIN_PLACE_ACCEPT` — separate streams, so
/// the move sequence is independent of how many proposals get
/// accepted. Combined with worker-count invariant scoring, the entire
/// anneal is bit-reproducible.
#[derive(Clone, Copy, Debug)]
pub struct Annealer {
    /// Proposal iterations.
    pub iters: usize,
    /// Initial temperature, in objective-value units (delivery rate
    /// is a fraction in `[0, 1]`, so deltas are a few hundredths).
    pub t0: f64,
    /// Geometric cooling factor applied every iteration.
    pub cooling: f64,
}

impl Default for Annealer {
    fn default() -> Self {
        Annealer {
            iters: 48,
            t0: 0.02,
            cooling: 0.94,
        }
    }
}

impl PlacementOptimizer for Annealer {
    fn name(&self) -> &'static str {
        "annealed"
    }

    fn optimize(
        &self,
        ev: &mut Evaluator,
        k: usize,
        seed: u64,
    ) -> Result<PlacementResult, PlaceError> {
        require_candidates(ev, k)?;
        let mut move_rng = SimRng::new(substream_seed(seed, DOMAIN_PLACE_MOVE, 0));
        let mut acc_rng = SimRng::new(substream_seed(seed, DOMAIN_PLACE_ACCEPT, 0));
        let mut cur = Deployment::new(GreedyPlacer::construct(ev, k)?, k)?;
        let mut cur_score = ev.score(&cur);
        let mut best = cur.clone();
        let mut best_score = cur_score.clone();
        let mut evaluations = 1u64;
        let mut proposed = 0u64;
        let mut accepted = 0u64;
        let mut t = self.t0;
        for _ in 0..self.iters {
            // Cool every iteration — including skipped proposals — so
            // the schedule depends only on the iteration count.
            t *= self.cooling;
            let slot = move_rng.below(cur.sites().len() as u64) as usize;
            let to = ev.candidates()[move_rng.below(ev.candidates().len() as u64) as usize];
            let Some(proposal) = cur.relocated(slot, to) else {
                // `to` is already a site: a null move, skipped without
                // spending an evaluation or an acceptance draw.
                continue;
            };
            proposed += 1;
            let score = ev.score(&proposal);
            evaluations += 1;
            let delta = score.value - cur_score.value;
            let accept = delta >= 0.0 || acc_rng.uniform() < (delta / t.max(1e-12)).exp();
            if accept {
                accepted += 1;
                cur = proposal;
                cur_score = score;
                if cur_score.value > best_score.value {
                    best = cur.clone();
                    best_score = cur_score.clone();
                }
            }
        }
        // Reinstall the winner so the evaluator's worlds describe the
        // returned deployment; the rescore must reproduce the recorded
        // score exactly — a built-in check that incremental cache
        // reuse is digest-equal to the evaluation that found it.
        let score = ev.score(&best);
        evaluations += 1;
        assert_eq!(
            score.digest, best_score.digest,
            "re-evaluating the best deployment must be bit-identical"
        );
        Ok(PlacementResult {
            deployment: best,
            score,
            evaluations,
            proposed_moves: proposed,
            accepted_moves: accepted,
        })
    }
}
