//! # citymesh-place — deployment optimization
//!
//! The paper argues a fallback network lives or dies on where its
//! fixed infrastructure sits. This crate makes that placement a
//! *solved output* instead of a generator accident: it searches over
//! [`Deployment`]s — `k` hardened relay/postbox sites under a budget
//! (see [`citymesh_core::Deployment`]) — scoring each candidate by
//! running the real fleet engine over the real fault machinery.
//!
//! Three pieces:
//!
//! * an [`Objective`]: which metric to optimize (delivery rate up, or
//!   p99 latency down), over which seeded workload, across which
//!   scenario worlds (healthy, blackout, …) — evaluated by
//!   [`Evaluator`], which owns one prepared [`CityExperiment`] and one
//!   shared route cache *per scenario* and re-scores a candidate by
//!   applying only the deployment **diff** (churn-style incremental
//!   cache invalidation when a site moves);
//! * two optimizers behind the [`PlacementOptimizer`] trait: a
//!   greedy/k-medoids-style constructive baseline ([`GreedyPlacer`])
//!   and a Metropolis simulated-annealing search ([`Annealer`], after
//!   the rural mesh-router placement literature) whose proposal moves
//!   and acceptance draws come from dedicated seeded sub-streams;
//! * a [`Score`] carrying a deterministic FNV digest, so an entire
//!   anneal is **bit-reproducible**: same seed, same result, across
//!   any evaluation worker count (candidate scoring runs on the fleet
//!   engine's id-order-merged worker pool, whose reports are
//!   worker-count invariant by construction).
//!
//! [`CityExperiment`]: citymesh_core::CityExperiment

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod objective;
mod optimize;

pub use citymesh_core::{Deployment, DeploymentError};
pub use eval::{Evaluator, ScenarioSpec};
pub use objective::{Metric, Objective, Score, WorldScore};
pub use optimize::{Annealer, GreedyPlacer, PlacementOptimizer, PlacementResult, RandomPlacer};

/// A rejected placement configuration or search.
#[derive(Clone, Debug, PartialEq)]
pub enum PlaceError {
    /// The objective's workload has no flows to score with.
    EmptyWorkload,
    /// No scenario worlds to evaluate against.
    NoScenarios,
    /// A fault scenario plans on the *fresh* (post-disaster) map.
    /// Incremental cache invalidation on site moves relies on routes
    /// being a pure function of the pre-disaster map — the same
    /// restriction the streaming engine enforces for mid-stream churn.
    FreshMap {
        /// Label of the offending scenario.
        scenario: String,
    },
    /// Fewer candidate site buildings (buildings owning at least one
    /// AP) than the requested deployment size.
    NotEnoughCandidates {
        /// Candidate buildings available.
        candidates: usize,
        /// Sites requested.
        k: usize,
    },
    /// The experiment config itself was invalid.
    Config(citymesh_core::ConfigError),
    /// A deployment could not be formed.
    Deployment(DeploymentError),
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::EmptyWorkload => write!(f, "objective workload has zero flows"),
            PlaceError::NoScenarios => write!(f, "objective has no scenario worlds"),
            PlaceError::FreshMap { scenario } => write!(
                f,
                "scenario `{scenario}` plans on the fresh map; site moves need stale-map routing"
            ),
            PlaceError::NotEnoughCandidates { candidates, k } => {
                write!(
                    f,
                    "{candidates} candidate buildings but k = {k} sites requested"
                )
            }
            PlaceError::Config(e) => write!(f, "invalid experiment config: {e}"),
            PlaceError::Deployment(e) => write!(f, "invalid deployment: {e}"),
        }
    }
}

impl std::error::Error for PlaceError {}

impl From<citymesh_core::ConfigError> for PlaceError {
    fn from(e: citymesh_core::ConfigError) -> Self {
        PlaceError::Config(e)
    }
}

impl From<DeploymentError> for PlaceError {
    fn from(e: DeploymentError) -> Self {
        PlaceError::Deployment(e)
    }
}

/// Sub-stream domain for the random initial deployment.
pub const DOMAIN_PLACE_INIT: u64 = 0x7A1C;
/// Sub-stream domain for annealer proposal moves (which site, where).
pub const DOMAIN_PLACE_MOVE: u64 = 0x7A0E;
/// Sub-stream domain for Metropolis acceptance draws.
pub const DOMAIN_PLACE_ACCEPT: u64 = 0x7ACC;

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_core::{ExperimentConfig, FaultScenario};
    use citymesh_fleet::FlowModel;
    use citymesh_map::CityArchetype;

    fn small_objective(workers: usize) -> Objective {
        Objective {
            metric: Metric::DeliveryRate,
            flows: 80,
            model: FlowModel::UniformPairs { rate_hz: 200.0 },
            seed: 11,
            workers,
        }
    }

    fn river_evaluator(workers: usize) -> Evaluator {
        let map = CityArchetype::SurveyRiver.generate(11);
        Evaluator::new(
            map,
            ExperimentConfig {
                seed: 11,
                ..ExperimentConfig::default()
            },
            &[
                ScenarioSpec::healthy(),
                ScenarioSpec::faulted("blackout", FaultScenario::district_blackouts(1, 140.0)),
            ],
            small_objective(workers),
        )
        .unwrap()
    }

    #[test]
    fn construction_rejects_bad_objectives() {
        let map = CityArchetype::SurveyRiver.generate(1);
        let base = ExperimentConfig::default();
        let healthy = [ScenarioSpec::healthy()];
        let err = Evaluator::new(
            map.clone(),
            base,
            &healthy,
            Objective {
                flows: 0,
                ..small_objective(1)
            },
        )
        .unwrap_err();
        assert_eq!(err, PlaceError::EmptyWorkload);
        let err = Evaluator::new(map.clone(), base, &[], small_objective(1)).unwrap_err();
        assert_eq!(err, PlaceError::NoScenarios);
        let fresh = FaultScenario {
            stale_map: false,
            ..FaultScenario::district_blackouts(1, 100.0)
        };
        let err = Evaluator::new(
            map,
            base,
            &[ScenarioSpec::faulted("fresh", fresh)],
            small_objective(1),
        )
        .unwrap_err();
        assert!(matches!(err, PlaceError::FreshMap { .. }));
    }

    #[test]
    fn optimizers_reject_oversized_k() {
        let mut ev = river_evaluator(1);
        let k = ev.candidates().len() + 1;
        assert!(matches!(
            GreedyPlacer.optimize(&mut ev, k, 1),
            Err(PlaceError::NotEnoughCandidates { .. })
        ));
        assert!(matches!(
            RandomPlacer.optimize(&mut ev, 0, 1),
            Err(PlaceError::NotEnoughCandidates { .. })
        ));
    }

    #[test]
    fn scoring_is_deterministic_under_reuse() {
        // Scoring A, then B, then A again must reproduce A's score
        // bit-for-bit: the incremental invalidation on each move keeps
        // the shared cache digest-equal to a fresh world.
        let mut ev = river_evaluator(1);
        let a = Deployment::new(vec![ev.candidates()[0], ev.candidates()[7]], 2).unwrap();
        let b = Deployment::new(vec![ev.candidates()[3], ev.candidates()[11]], 2).unwrap();
        let s1 = ev.score(&a);
        let sb = ev.score(&b);
        let s2 = ev.score(&a);
        assert_eq!(s1, s2);
        assert_ne!(s1.digest, sb.digest);
        assert_eq!(ev.evaluations(), 3);
    }

    #[test]
    fn greedy_is_deterministic_and_spreads_sites() {
        let ev = river_evaluator(1);
        let a = GreedyPlacer::construct(&ev, 4).unwrap();
        let b = GreedyPlacer::construct(&ev, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "greedy sites must be distinct");
    }

    #[test]
    fn anneal_is_bit_reproducible_and_never_worse_than_greedy() {
        let annealer = Annealer {
            iters: 8,
            ..Annealer::default()
        };
        let mut ev = river_evaluator(1);
        let greedy = GreedyPlacer.optimize(&mut ev, 3, 21).unwrap();
        let a = annealer.optimize(&mut ev, 3, 21).unwrap();
        let mut ev2 = river_evaluator(1);
        let b = annealer.optimize(&mut ev2, 3, 21).unwrap();
        assert_eq!(a.deployment, b.deployment);
        assert_eq!(a.score, b.score);
        assert_eq!(a.accepted_moves, b.accepted_moves);
        assert!(
            a.score.value >= greedy.score.value,
            "anneal starts from greedy and keeps the best: {} < {}",
            a.score.value,
            greedy.score.value
        );
    }

    #[test]
    fn random_sites_are_distinct_and_seed_dependent() {
        let ev = river_evaluator(1);
        let a = RandomPlacer::construct(&ev, 5, 1).unwrap();
        let b = RandomPlacer::construct(&ev, 5, 2).unwrap();
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
        assert_ne!(a, b, "different seeds should draw different sites");
    }
}
