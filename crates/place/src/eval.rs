//! The evaluation engine behind every optimizer: one prepared world
//! and one shared route cache per scenario, re-scored per candidate
//! deployment with churn-style incremental cache invalidation.

use std::collections::HashSet;

use citymesh_core::{
    CityExperiment, Deployment, DeploymentTransition, ExperimentConfig, FaultScenario,
};
use citymesh_fleet::{
    generate_flows, try_run_fleet_on_cache, FleetConfig, FlowSpec, RouteCache, WorkloadConfig,
};
use citymesh_map::CityMap;
use citymesh_telemetry::TelemetryConfig;

use crate::objective::{world_score, Objective, Score};
use crate::PlaceError;

/// One scenario world the objective is averaged over.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Label carried into [`crate::WorldScore::label`] and error
    /// messages.
    pub label: String,
    /// The fault scenario; `None` is the healthy world.
    pub faults: Option<FaultScenario>,
}

impl ScenarioSpec {
    /// The healthy world.
    pub fn healthy() -> Self {
        ScenarioSpec {
            label: "healthy".to_string(),
            faults: None,
        }
    }

    /// A labeled fault scenario.
    pub fn faulted(label: &str, scenario: FaultScenario) -> Self {
        ScenarioSpec {
            label: label.to_string(),
            faults: Some(scenario),
        }
    }
}

/// One scenario's long-lived evaluation state.
struct WorldSlot {
    label: String,
    exp: CityExperiment,
    cache: RouteCache,
}

/// Scores candidate [`Deployment`]s by running the seeded fleet
/// workload over every scenario world.
///
/// The worlds and their route caches persist across evaluations:
/// installing a candidate applies only the *diff* against the
/// previously installed deployment
/// ([`CityExperiment::set_deployment`]), and the cache keeps every
/// plan the move did not touch — evicting exactly the plans whose
/// src/dst was touched or retargeted or whose conduits contain a
/// changed AP, the invalidation rule `citymesh-dynamics` proves
/// digest-equal to a full flush. Candidate scoring itself runs on the
/// fleet worker pool with id-ordered merging, so scores (and their
/// digests) are identical at 1, 4, or 8 workers.
pub struct Evaluator {
    worlds: Vec<WorldSlot>,
    flows: Vec<FlowSpec>,
    fleet: FleetConfig,
    objective: Objective,
    candidates: Vec<u32>,
    evaluations: u64,
    routes_evicted: u64,
}

impl std::fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("scenarios", &self.scenario_labels())
            .field("flows", &self.flows.len())
            .field("candidates", &self.candidates.len())
            .field("evaluations", &self.evaluations)
            .field("routes_evicted", &self.routes_evicted)
            .finish_non_exhaustive()
    }
}

impl Evaluator {
    /// Prepares one world per scenario over `map` (all sharing the
    /// base config's seed, hence the same AP placement) and draws the
    /// objective's workload once.
    pub fn new(
        map: CityMap,
        base: ExperimentConfig,
        scenarios: &[ScenarioSpec],
        objective: Objective,
    ) -> Result<Evaluator, PlaceError> {
        if objective.flows == 0 {
            return Err(PlaceError::EmptyWorkload);
        }
        if scenarios.is_empty() {
            return Err(PlaceError::NoScenarios);
        }
        for s in scenarios {
            if let Some(f) = &s.faults {
                if !f.stale_map {
                    return Err(PlaceError::FreshMap {
                        scenario: s.label.clone(),
                    });
                }
            }
        }
        let flows = generate_flows(
            map.len(),
            &WorkloadConfig {
                flows: objective.flows,
                model: objective.model,
                seed: objective.seed,
            },
        );
        let mut worlds = Vec::with_capacity(scenarios.len());
        for s in scenarios {
            let config = ExperimentConfig {
                faults: s.faults,
                ..base
            };
            let exp = CityExperiment::try_prepare(map.clone(), config)?;
            worlds.push(WorldSlot {
                label: s.label.clone(),
                exp,
                cache: RouteCache::new(),
            });
        }
        let candidates = (0..map.len() as u32)
            .filter(|&b| !worlds[0].exp.ap_graph().aps_of_building(b).is_empty())
            .collect();
        Ok(Evaluator {
            worlds,
            flows,
            fleet: FleetConfig {
                workers: objective.workers,
                seed: objective.seed,
                use_hier_planner: false,
                encrypted: false,
            },
            objective,
            candidates,
            evaluations: 0,
            routes_evicted: 0,
        })
    }

    /// Buildings eligible as sites — those owning at least one AP
    /// (hardening an AP-less building does nothing) — in ascending id
    /// order, so index-based draws from seeded sub-streams are
    /// deterministic.
    pub fn candidates(&self) -> &[u32] {
        &self.candidates
    }

    /// The objective being evaluated.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// The city all scenario worlds share.
    pub fn map(&self) -> &CityMap {
        self.worlds[0].exp.map()
    }

    /// The scenario world at `index` (evaluation order) — the state
    /// the most recent [`Evaluator::score`] left installed.
    pub fn world(&self, index: usize) -> &CityExperiment {
        &self.worlds[index].exp
    }

    /// Scenario labels, in evaluation order.
    pub fn scenario_labels(&self) -> Vec<&str> {
        self.worlds.iter().map(|w| w.label.as_str()).collect()
    }

    /// Full fleet evaluations run so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Cached plans evicted by incremental invalidation so far.
    pub fn routes_evicted(&self) -> u64 {
        self.routes_evicted
    }

    /// Scores `deployment`: installs it in every scenario world
    /// (diffing against whatever was installed before), evicts exactly
    /// the stale cached plans, and runs the seeded workload.
    pub fn score(&mut self, deployment: &Deployment) -> Score {
        let mut worlds = Vec::with_capacity(self.worlds.len());
        for slot in &mut self.worlds {
            let t = slot.exp.set_deployment(Some(deployment.clone()));
            self.routes_evicted += evict_stale(&slot.exp, &slot.cache, &t);
            let (report, _) = try_run_fleet_on_cache(
                &slot.exp,
                &self.flows,
                &self.fleet,
                &slot.cache,
                &TelemetryConfig::off(),
            )
            .expect("fleet config is validated at Evaluator construction");
            worlds.push(world_score(&slot.label, &report));
        }
        self.evaluations += 1;
        Score::from_worlds(self.objective.metric, deployment, worlds)
    }
}

/// The churn-style incremental invalidation predicate, applied to one
/// world's cache after a deployment transition: a plan is stale iff
/// its endpoints were touched (AP health flipped at that building) or
/// retargeted (its dark destination's nearest site changed), or its
/// conduits contain an AP whose health the move rewrote.
fn evict_stale(exp: &CityExperiment, cache: &RouteCache, t: &DeploymentTransition) -> u64 {
    if t.epoch.is_none() && t.retargeted_buildings.is_empty() {
        return 0;
    }
    let mut touched: HashSet<u32> = t.retargeted_buildings.iter().copied().collect();
    if let Some(e) = &t.epoch {
        touched.extend(e.touched_buildings.iter().copied());
    }
    let changed_aps: HashSet<u32> = t.changed_aps.iter().copied().collect();
    let apg = exp.ap_graph();
    let mut candidates = Vec::new();
    cache.evict_where(|plan| {
        if touched.contains(&plan.src) || touched.contains(&plan.dst) {
            return true;
        }
        if changed_aps.is_empty() {
            return false;
        }
        let mut hit = false;
        apg.for_each_ap_in_conduits(&plan.conduits, &mut candidates, |id, _| {
            hit |= changed_aps.contains(&id);
        });
        hit
    })
}
