//! Property tests for the placement subsystem's determinism claims.
//!
//! Two invariants, each over random seeds, budgets, and anneal
//! lengths:
//!
//! 1. an entire anneal — proposal moves, acceptance draws, winner,
//!    score digest — is invariant under the fleet evaluation worker
//!    count (1, 4, and 8 workers bit-agree), and
//! 2. scoring a deployment through a *reused* evaluator (after other
//!    deployments were installed and incrementally evicted) matches
//!    scoring it through a fresh evaluator's first-ever evaluation,
//!    field by field.

use std::sync::OnceLock;

use citymesh_core::{ExperimentConfig, FaultScenario};
use citymesh_fleet::FlowModel;
use citymesh_map::{CityArchetype, CityMap};
use citymesh_place::{
    Annealer, Deployment, Evaluator, GreedyPlacer, Metric, Objective, PlacementOptimizer,
    RandomPlacer, ScenarioSpec,
};
use proptest::prelude::*;

/// One river map shared by every case: map synthesis is the only part
/// of evaluator construction the properties do not exercise.
fn shared_map() -> &'static CityMap {
    static MAP: OnceLock<CityMap> = OnceLock::new();
    MAP.get_or_init(|| CityArchetype::SurveyRiver.generate(11))
}

fn evaluator(flows: usize, workers: usize) -> Evaluator {
    Evaluator::new(
        shared_map().clone(),
        ExperimentConfig {
            seed: 11,
            ..ExperimentConfig::default()
        },
        &[
            ScenarioSpec::healthy(),
            ScenarioSpec::faulted("blackout", FaultScenario::district_blackouts(1, 140.0)),
        ],
        Objective {
            metric: Metric::DeliveryRate,
            flows,
            model: FlowModel::UniformPairs { rate_hz: 200.0 },
            seed: 11,
            workers,
        },
    )
    .expect("river evaluator is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The whole anneal is a pure function of `(k, seed)` — the fleet
    /// worker count is a speed knob that changes no bit of the result.
    #[test]
    fn anneal_is_invariant_under_evaluation_workers(
        seed in any::<u64>(),
        k in 2usize..5,
        iters in 4usize..9,
        flows in 50usize..90,
    ) {
        let annealer = Annealer { iters, ..Annealer::default() };
        let runs: Vec<_> = [1usize, 4, 8]
            .iter()
            .map(|&workers| {
                let mut ev = evaluator(flows, workers);
                annealer.optimize(&mut ev, k, seed).expect("k fits the river")
            })
            .collect();
        for (r, label) in [(&runs[1], "4"), (&runs[2], "8")] {
            prop_assert_eq!(
                &runs[0].deployment, &r.deployment,
                "1 vs {} workers picked different sites", label
            );
            prop_assert_eq!(
                &runs[0].score, &r.score,
                "1 vs {} workers scored differently", label
            );
            prop_assert_eq!(runs[0].evaluations, r.evaluations);
            prop_assert_eq!(runs[0].proposed_moves, r.proposed_moves);
            prop_assert_eq!(runs[0].accepted_moves, r.accepted_moves);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Incremental reuse is invisible: scoring a deployment after the
    /// evaluator has installed (and incrementally evicted around)
    /// other deployments reproduces a fresh evaluator's very first
    /// evaluation of that deployment, field by field.
    #[test]
    fn reused_scoring_matches_fresh_experiment_scoring(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        k in 2usize..5,
        flows in 50usize..90,
    ) {
        let mut reused = evaluator(flows, 1);
        let a = Deployment::new(
            RandomPlacer::construct(&reused, k, seed_a).expect("k fits"), k,
        ).expect("distinct sites");
        let b = Deployment::new(
            RandomPlacer::construct(&reused, k, seed_b).expect("k fits"), k,
        ).expect("distinct sites");
        let greedy = Deployment::new(
            GreedyPlacer::construct(&reused, k).expect("k fits"), k,
        ).expect("distinct sites");
        // Drag the reused evaluator through unrelated deployments so
        // its caches carry real history before the measured score.
        reused.score(&b);
        reused.score(&greedy);
        reused.score(&b);
        let via_reuse = reused.score(&a);
        prop_assert!(reused.routes_evicted() > 0, "site moves must evict something");

        let fresh = evaluator(flows, 1).score(&a);
        prop_assert_eq!(via_reuse.value.to_bits(), fresh.value.to_bits());
        prop_assert_eq!(via_reuse.delivery_rate.to_bits(), fresh.delivery_rate.to_bits());
        prop_assert_eq!(via_reuse.p99_latency_ms.to_bits(), fresh.p99_latency_ms.to_bits());
        prop_assert_eq!(via_reuse.digest, fresh.digest);
        prop_assert_eq!(via_reuse.worlds.len(), fresh.worlds.len());
        for (r, f) in via_reuse.worlds.iter().zip(&fresh.worlds) {
            prop_assert_eq!(&r.label, &f.label);
            prop_assert_eq!(r.delivered, f.delivered);
            prop_assert_eq!(r.flows, f.flows);
            prop_assert_eq!(r.delivery_rate.to_bits(), f.delivery_rate.to_bits());
            prop_assert_eq!(r.p99_latency_ms.to_bits(), f.p99_latency_ms.to_bits());
            prop_assert_eq!(r.fleet_digest, f.fleet_digest);
        }
    }
}
