//! Proof that the steady-state per-flow path — route planning *and*
//! delivery simulation — performs zero heap allocations once a
//! worker's [`PlanScratch`] and [`DeliveryScratch`] have warmed up.
//!
//! A counting `#[global_allocator]` wraps the system allocator and
//! tallies every `alloc` / `realloc` / `alloc_zeroed` issued by *this*
//! thread (thread-local counters keep the tally immune to the test
//! harness's other threads). The test runs every flow once to warm the
//! scratch — first-ever touches of AP slots, heap growth to the
//! high-water mark — then replays the identical flow set with counting
//! enabled and asserts the count is exactly zero.
//!
//! This is an integration test (not a unit test in the lib) because a
//! crate can have only one global allocator and the libs are built
//! with `#![forbid(unsafe_code)]`; `GlobalAlloc` is an unsafe trait.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use citymesh_core::{CityExperiment, DeliveryScratch, ExperimentConfig, PlanScratch, PlannedFlow};
use citymesh_fleet::{generate_flows, FlowModel, WorkloadConfig};
use citymesh_map::CityArchetype;
use citymesh_simcore::{substream_seed, SimRng};

thread_local! {
    // `const` initializer: the TLS slot needs no lazy-init bookkeeping,
    // so reading/updating it from inside the allocator cannot recurse
    // into the allocator.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

impl CountingAlloc {
    fn tally() {
        COUNTING.with(|on| {
            if on.get() {
                ALLOCS.with(|n| n.set(n.get() + 1));
            }
        });
    }
}

// SAFETY: defers all memory management to `System`; only adds counter
// updates, which allocate nothing themselves (const-init thread-locals).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::tally();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::tally();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::tally();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with this thread's allocation counter armed and returns
/// how many heap allocations it performed.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.with(|n| n.set(0));
    COUNTING.with(|on| on.set(true));
    let out = f();
    COUNTING.with(|on| on.set(false));
    (ALLOCS.with(|n| n.get()), out)
}

const DOMAIN_SIM: u64 = 0x51D3;
const DOMAIN_MSG: u64 = 0x3564;

#[test]
fn steady_state_flow_loop_allocates_nothing() {
    let map = CityArchetype::SurveyDowntown.generate(11);
    let exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed: 11,
            ..ExperimentConfig::default()
        },
    );
    let flows = generate_flows(
        exp.map().len(),
        &WorkloadConfig {
            flows: 64,
            model: FlowModel::UniformPairs { rate_hz: 200.0 },
            seed: 11,
        },
    );

    // Planning is measured too: a worker's steady-state loop is
    // plan-into-scratch followed by simulate, so the counted region
    // covers both halves with the buffers reused across flows.
    let mut plan_scratch = PlanScratch::new();
    let mut plan = PlannedFlow::empty(0, 0);
    let mut scratch = DeliveryScratch::new();

    // Warm-up: one full pass grows every scratch buffer to its
    // high-water mark for this flow set.
    let mut warm_broadcasts = 0u64;
    for flow in &flows {
        exp.plan_flow_into(flow.src, flow.dst, &mut plan_scratch, &mut plan);
        let msg_id = substream_seed(11, DOMAIN_MSG, flow.id);
        let mut rng = SimRng::new(substream_seed(11, DOMAIN_SIM, flow.id));
        let outcome = exp.simulate_flow_with(&plan, msg_id, &mut rng, &mut scratch);
        warm_broadcasts += outcome.broadcasts;
    }
    assert!(
        warm_broadcasts > 0,
        "workload must actually exercise the simulator"
    );

    // Measured pass: identical flows, identical RNG sub-streams, warm
    // scratch. Per-flow sub-streams make each flow's trace independent
    // of history, so this pass retraces the warm-up exactly and must
    // stay within the warmed capacity everywhere.
    let (allocs, measured_broadcasts) = count_allocs(|| {
        let mut total = 0u64;
        for flow in &flows {
            exp.plan_flow_into(flow.src, flow.dst, &mut plan_scratch, &mut plan);
            let msg_id = substream_seed(11, DOMAIN_MSG, flow.id);
            let mut rng = SimRng::new(substream_seed(11, DOMAIN_SIM, flow.id));
            let outcome = exp.simulate_flow_with(&plan, msg_id, &mut rng, &mut scratch);
            total += outcome.broadcasts;
        }
        total
    });

    assert_eq!(
        measured_broadcasts, warm_broadcasts,
        "measured pass must replay the warm-up exactly"
    );
    assert_eq!(
        allocs,
        0,
        "steady-state plan+simulate path must perform zero heap \
         allocations (counted {allocs} over {} flows)",
        flows.len()
    );
}

#[test]
fn steady_state_hier_flow_loop_allocates_nothing() {
    // The hierarchical planner's steady state must match the flat
    // planner's zero-allocation guarantee: building the hierarchy
    // (`enable_hier`) is prepare-time and may allocate freely, but a
    // warm plan+simulate loop through `plan_flow_hier_into` — overlay
    // Dijkstra, per-district ALT searches, border stitching — must
    // stay inside the warmed `PlanScratch` buffers.
    let map = CityArchetype::SurveyDowntown.generate(19);
    let mut exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed: 19,
            ..ExperimentConfig::default()
        },
    );
    exp.enable_hier(&citymesh_core::HierParams::default());
    let flows = generate_flows(
        exp.map().len(),
        &WorkloadConfig {
            flows: 64,
            model: FlowModel::UniformPairs { rate_hz: 200.0 },
            seed: 19,
        },
    );

    let mut plan_scratch = PlanScratch::new();
    let mut plan = PlannedFlow::empty(0, 0);
    let mut scratch = DeliveryScratch::new();

    let mut warm_broadcasts = 0u64;
    for flow in &flows {
        exp.plan_flow_hier_into(flow.src, flow.dst, &mut plan_scratch, &mut plan);
        let msg_id = substream_seed(19, DOMAIN_MSG, flow.id);
        let mut rng = SimRng::new(substream_seed(19, DOMAIN_SIM, flow.id));
        let outcome = exp.simulate_flow_with(&plan, msg_id, &mut rng, &mut scratch);
        warm_broadcasts += outcome.broadcasts;
    }
    assert!(
        warm_broadcasts > 0,
        "workload must actually exercise the simulator"
    );
    assert!(
        plan_scratch.hier_stats().queries >= flows.len() as u64,
        "every plan must have gone through the hierarchical planner"
    );

    let (allocs, measured_broadcasts) = count_allocs(|| {
        let mut total = 0u64;
        for flow in &flows {
            exp.plan_flow_hier_into(flow.src, flow.dst, &mut plan_scratch, &mut plan);
            let msg_id = substream_seed(19, DOMAIN_MSG, flow.id);
            let mut rng = SimRng::new(substream_seed(19, DOMAIN_SIM, flow.id));
            let outcome = exp.simulate_flow_with(&plan, msg_id, &mut rng, &mut scratch);
            total += outcome.broadcasts;
        }
        total
    });

    assert_eq!(
        measured_broadcasts, warm_broadcasts,
        "measured pass must replay the warm-up exactly"
    );
    assert_eq!(
        allocs,
        0,
        "steady-state hierarchical plan+simulate path must perform zero \
         heap allocations (counted {allocs} over {} flows)",
        flows.len()
    );
}

#[test]
fn steady_state_encrypted_flow_loop_allocates_nothing() {
    // The secure message plane's per-flow hot path — session-key cache
    // hit, deterministic payload fill, AEAD seal into the scratch
    // buffer, header MAC, receiver-side verify + open — must stay
    // zero-alloc once warm. Key *derivation* (X25519 + HKDF) allocates,
    // but it is amortized: the warm-up pass derives every pair's
    // session key into the shared cache, so the counted replay is all
    // cache hits (a shard read-lock plus an `Arc` clone).
    let map = CityArchetype::SurveyDowntown.generate(29);
    let mut exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed: 29,
            ..ExperimentConfig::default()
        },
    );
    exp.enable_encryption();
    let flows = generate_flows(
        exp.map().len(),
        &WorkloadConfig {
            flows: 64,
            model: FlowModel::UniformPairs { rate_hz: 200.0 },
            seed: 29,
        },
    );

    let mut plan_scratch = PlanScratch::new();
    let mut plan = PlannedFlow::empty(0, 0);
    let mut scratch = DeliveryScratch::new();

    // Warm-up: derives each pair's session key (allowed to allocate)
    // and grows the seal/open scratch buffers to their final size.
    let mut warm_opened = 0u64;
    for flow in &flows {
        exp.plan_flow_into(flow.src, flow.dst, &mut plan_scratch, &mut plan);
        let msg_id = substream_seed(29, DOMAIN_MSG, flow.id);
        let mut rng = SimRng::new(substream_seed(29, DOMAIN_SIM, flow.id));
        let outcome = exp.simulate_flow_secure_with(&plan, msg_id, &mut rng, &mut scratch);
        assert!(outcome.sealed, "encrypted path must seal every flow");
        assert!(!outcome.auth_failed, "untampered flows must authenticate");
        warm_opened += outcome.opened as u64;
    }
    assert!(
        warm_opened > 0,
        "workload must deliver and open at least one sealed message"
    );
    let derived_in_warmup = scratch.keys_derived();
    assert!(
        derived_in_warmup > 0,
        "warm-up must have paid the key derivations"
    );

    // Measured pass: every session key is cached, every buffer warm.
    let (allocs, measured_opened) = count_allocs(|| {
        let mut total = 0u64;
        for flow in &flows {
            exp.plan_flow_into(flow.src, flow.dst, &mut plan_scratch, &mut plan);
            let msg_id = substream_seed(29, DOMAIN_MSG, flow.id);
            let mut rng = SimRng::new(substream_seed(29, DOMAIN_SIM, flow.id));
            let outcome = exp.simulate_flow_secure_with(&plan, msg_id, &mut rng, &mut scratch);
            total += outcome.opened as u64;
        }
        total
    });

    assert_eq!(
        measured_opened, warm_opened,
        "measured pass must replay the warm-up exactly"
    );
    assert_eq!(
        scratch.keys_derived(),
        derived_in_warmup,
        "the measured pass must be pure cache hits — no new derivations"
    );
    assert_eq!(
        allocs,
        0,
        "steady-state encrypted plan+seal+simulate+open path must \
         perform zero heap allocations (counted {allocs} over {} flows)",
        flows.len()
    );
}

#[test]
fn steady_state_flow_loop_allocates_nothing_under_faults() {
    // Recovery variants (wide conduits, fallback routes) are
    // materialized lazily, on the first ladder escalation of each
    // plan, then cached inside the plan — so with plans held across
    // passes, the warm-up pays the one-time materialization and the
    // measured replay must allocate nothing even when flows escalate
    // through every rung. (Planning stays outside the counted region
    // here on purpose: re-planning into a reused `PlannedFlow` resets
    // its lazy cell, so each escalation would legitimately re-pay the
    // materialization — the healthy test covers plan+simulate.)
    let mut scenario = citymesh_core::FaultScenario::iid(0.3);
    scenario.retry = citymesh_core::RetryPolicy::ladder();
    let map = CityArchetype::SurveyDowntown.generate(13);
    let exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed: 13,
            faults: Some(scenario),
            ..ExperimentConfig::default()
        },
    );
    let flows = generate_flows(
        exp.map().len(),
        &WorkloadConfig {
            flows: 64,
            model: FlowModel::UniformPairs { rate_hz: 200.0 },
            seed: 13,
        },
    );
    let plans: Vec<_> = flows.iter().map(|f| exp.plan_flow(f.src, f.dst)).collect();

    let mut scratch = DeliveryScratch::new();
    let mut warm_attempts = 0u64;
    for (flow, plan) in flows.iter().zip(&plans) {
        let msg_id = substream_seed(13, DOMAIN_MSG, flow.id);
        let mut rng = SimRng::new(substream_seed(13, DOMAIN_SIM, flow.id));
        let outcome = exp.simulate_flow_with(plan, msg_id, &mut rng, &mut scratch);
        warm_attempts += outcome.attempts as u64;
    }
    assert!(
        warm_attempts > flows.len() as u64,
        "30% AP loss must force the retry ladder to fire at least once \
         ({warm_attempts} attempts over {} flows)",
        flows.len()
    );

    let (allocs, measured_attempts) = count_allocs(|| {
        let mut total = 0u64;
        for (flow, plan) in flows.iter().zip(&plans) {
            let msg_id = substream_seed(13, DOMAIN_MSG, flow.id);
            let mut rng = SimRng::new(substream_seed(13, DOMAIN_SIM, flow.id));
            let outcome = exp.simulate_flow_with(plan, msg_id, &mut rng, &mut scratch);
            total += outcome.attempts as u64;
        }
        total
    });

    assert_eq!(
        measured_attempts, warm_attempts,
        "measured pass must replay the warm-up exactly"
    );
    assert_eq!(
        allocs, 0,
        "fault-injected steady-state path must perform zero heap \
         allocations (counted {allocs})"
    );
}

#[test]
fn steady_state_is_alloc_free_between_churn_events() {
    // The churn engine's epoch model promises that *event application*
    // may allocate (health flips, postbox refresh, lazy RecoveryCell
    // re-materialization at the new epoch) but the steady state
    // between events must stay on the zero-alloc path. With plans held
    // across the event, the sequence is: warm pass at epoch 0, apply
    // a mid-run aftershock (uncounted), one re-warm pass to pay the
    // epoch-keyed recovery recomputation, then a counted replay that
    // must allocate nothing.
    let mut scenario = citymesh_core::FaultScenario::iid(0.15);
    scenario.retry = citymesh_core::RetryPolicy::ladder();
    let map = CityArchetype::SurveyDowntown.generate(17);
    let mut exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed: 17,
            faults: Some(scenario),
            ..ExperimentConfig::default()
        },
    );
    let flows = generate_flows(
        exp.map().len(),
        &WorkloadConfig {
            flows: 64,
            model: FlowModel::UniformPairs { rate_hz: 200.0 },
            seed: 17,
        },
    );
    let plans: Vec<_> = flows.iter().map(|f| exp.plan_flow(f.src, f.dst)).collect();
    let mut scratch = DeliveryScratch::new();

    // Warm pass at the initial epoch.
    for (flow, plan) in flows.iter().zip(&plans) {
        let msg_id = substream_seed(17, DOMAIN_MSG, flow.id);
        let mut rng = SimRng::new(substream_seed(17, DOMAIN_SIM, flow.id));
        exp.simulate_flow_with(plan, msg_id, &mut rng, &mut scratch);
    }

    // A mid-run event: fail a slice of APs outright. Application is
    // allowed to allocate — it happens at an epoch barrier, off the
    // per-flow hot path.
    let changes: Vec<(u32, citymesh_core::ApHealth)> = (0..40)
        .map(|ap| (ap * 7, citymesh_core::ApHealth::Failed))
        .collect();
    let transition = exp.apply_world_event(&changes);
    assert!(
        transition.aps_changed > 0,
        "the event must actually flip APs"
    );

    // Re-warm at the new epoch: each plan's epoch-keyed recovery cell
    // recomputes lazily on first touch and may allocate once.
    let mut warm_attempts = 0u64;
    for (flow, plan) in flows.iter().zip(&plans) {
        let msg_id = substream_seed(17, DOMAIN_MSG, flow.id);
        let mut rng = SimRng::new(substream_seed(17, DOMAIN_SIM, flow.id));
        let outcome = exp.simulate_flow_with(plan, msg_id, &mut rng, &mut scratch);
        warm_attempts += outcome.attempts as u64;
    }

    // Counted replay at the post-event epoch: zero allocations.
    let (allocs, measured_attempts) = count_allocs(|| {
        let mut total = 0u64;
        for (flow, plan) in flows.iter().zip(&plans) {
            let msg_id = substream_seed(17, DOMAIN_MSG, flow.id);
            let mut rng = SimRng::new(substream_seed(17, DOMAIN_SIM, flow.id));
            let outcome = exp.simulate_flow_with(plan, msg_id, &mut rng, &mut scratch);
            total += outcome.attempts as u64;
        }
        total
    });

    assert_eq!(
        measured_attempts, warm_attempts,
        "measured pass must replay the post-event warm-up exactly"
    );
    assert_eq!(
        allocs, 0,
        "steady state between churn events must perform zero heap \
         allocations (counted {allocs})"
    );
}

#[test]
fn streaming_steady_state_allocates_nothing() {
    // The always-on engine's per-flow path adds admission control on
    // top of plan+simulate: retire completions from the ring, decide
    // admit/shed, then (when admitted) plan into the scratch, simulate,
    // and commit the modeled completion. The ring is preallocated at
    // construction, so a warm streaming loop — including the overload
    // sheds and the degradation rungs — must allocate exactly nothing.
    use citymesh_stream::{
        generate_stream_flows, Admission, ArrivalProcess, ServerQueue, StreamConfig, StreamWorkload,
    };

    let map = CityArchetype::SurveyDowntown.generate(23);
    let exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed: 23,
            ..ExperimentConfig::default()
        },
    );
    // ~2000 flows/s against one modeled ~2 ms server: sustained
    // overload, so the counted region exercises admit, backpressure
    // shed, and both degradation rungs.
    let flows = generate_stream_flows(
        exp.map().len(),
        &StreamWorkload {
            flows: 96,
            process: ArrivalProcess::Poisson { rate_hz: 2000.0 },
            seed: 23,
        },
    );
    let cfg = StreamConfig {
        seed: 23,
        queue_capacity: 16,
        deadline_ms: f64::INFINITY,
        ..StreamConfig::default()
    };

    let mut plan_scratch = PlanScratch::new();
    let mut plan = PlannedFlow::empty(0, 0);
    let mut scratch = DeliveryScratch::new();

    // One serial server, exactly the engine's per-server loop body.
    let pass = |q: &mut ServerQueue,
                plan_scratch: &mut PlanScratch,
                plan: &mut PlannedFlow,
                scratch: &mut DeliveryScratch| {
        let (mut admitted, mut shed, mut broadcasts) = (0u64, 0u64, 0u64);
        for flow in &flows {
            match q.offer(flow.arrival_ms) {
                Admission::Shed { .. } => shed += 1,
                Admission::Admit { start_ms, .. } => {
                    exp.plan_flow_into(flow.src, flow.dst, plan_scratch, plan);
                    let msg_id = substream_seed(23, DOMAIN_MSG, flow.id);
                    let mut rng = SimRng::new(substream_seed(23, DOMAIN_SIM, flow.id));
                    let outcome = exp.simulate_flow_with(plan, msg_id, &mut rng, scratch);
                    let service_ms = cfg.service.base_ms
                        + cfg.service.per_broadcast_ms * outcome.broadcasts as f64;
                    q.commit(start_ms, service_ms);
                    admitted += 1;
                    broadcasts += outcome.broadcasts;
                }
            }
        }
        (admitted, shed, broadcasts)
    };

    // Warm pass: scratch buffers grow to their high-water mark.
    let mut warm_queue = ServerQueue::new(&cfg);
    let warm = pass(&mut warm_queue, &mut plan_scratch, &mut plan, &mut scratch);
    assert!(warm.0 > 0, "overloaded stream must still admit flows");
    assert!(warm.1 > 0, "overloaded stream must shed flows");
    assert!(warm.2 > 0, "workload must exercise the simulator");

    // Counted replay: a fresh ring (constructed before counting — the
    // one-time ring allocation is setup, not steady state) and the warm
    // scratches. Per-flow sub-streams make the replay exact.
    let mut queue = ServerQueue::new(&cfg);
    let (allocs, measured) =
        count_allocs(|| pass(&mut queue, &mut plan_scratch, &mut plan, &mut scratch));

    assert_eq!(
        measured, warm,
        "measured pass must replay the warm-up exactly"
    );
    assert_eq!(
        allocs,
        0,
        "steady-state streaming path (admission + plan + simulate + \
         commit) must perform zero heap allocations (counted {allocs} \
         over {} flows)",
        flows.len()
    );
}

#[test]
fn counter_actually_counts() {
    // Guard against the test silently passing because the counter is
    // broken: an obvious allocation must register.
    let (allocs, v) = count_allocs(|| {
        let v: Vec<u64> = Vec::with_capacity(1024);
        std::hint::black_box(&v);
        v.capacity()
    });
    assert_eq!(v, 1024);
    assert!(
        allocs >= 1,
        "Vec::with_capacity must be counted, got {allocs}"
    );
}
