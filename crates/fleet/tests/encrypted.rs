//! Property and invariant tests for the encrypted flow mode.
//!
//! The secure message plane is strictly opt-in and must never perturb
//! the simulation itself: delivery outcomes are decided by the same
//! seeded sub-streams whether or not messages are sealed, the sealed
//! counters join the digest only once nonzero, and the warm session-key
//! cache is a pure performance artifact — a warm replay must match a
//! cold run outcome for outcome, bit for bit.

use std::sync::OnceLock;

use citymesh_core::{
    CityExperiment, DeliveryScratch, ExperimentConfig, PlanScratch, PlannedFlow, TamperMode,
};
use citymesh_fleet::{generate_flows, run_fleet, FleetConfig, FlowModel, WorkloadConfig};
use citymesh_map::CityArchetype;
use citymesh_simcore::{substream_seed, SimRng};
use proptest::prelude::*;

const DOMAIN_SIM: u64 = 0x51D3;
const DOMAIN_MSG: u64 = 0x3564;

/// One encryption-enabled world shared by all digest-invariance cases:
/// preparing the AP fabric (and the keypair registry) dominates each
/// case's cost and the properties are about the engine, not the city.
fn secure_world() -> &'static CityExperiment {
    static WORLD: OnceLock<CityExperiment> = OnceLock::new();
    WORLD.get_or_init(|| {
        let map = CityArchetype::SurveyDowntown.generate(3);
        let mut exp = CityExperiment::prepare(
            map,
            ExperimentConfig {
                seed: 3,
                ..ExperimentConfig::default()
            },
        );
        exp.enable_encryption();
        exp
    })
}

fn workload(exp: &CityExperiment, flows: usize, seed: u64) -> Vec<citymesh_fleet::FlowSpec> {
    generate_flows(
        exp.map().len(),
        &WorkloadConfig {
            flows,
            model: FlowModel::UniformPairs { rate_hz: 200.0 },
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline invariant extended to the encrypted mode: 1, 4, and
    /// 8 workers must produce the same digest for any workload even
    /// though the racing workers share one session-key cache (and may
    /// double-derive a pair on a miss race). Equality proves the cache
    /// affects only *when* keys are derived, never what is delivered.
    #[test]
    fn encrypted_digest_is_invariant_under_worker_count(
        seed in any::<u64>(),
        flows in 24usize..96,
    ) {
        let exp = secure_world();
        let wl = workload(exp, flows, seed);
        let digests: Vec<u64> = [1usize, 4, 8]
            .iter()
            .map(|&workers| {
                run_fleet(
                    exp,
                    &wl,
                    &FleetConfig {
                        workers,
                        seed,
                        encrypted: true,
                        ..FleetConfig::default()
                    },
                )
                .digest()
            })
            .collect();
        prop_assert_eq!(digests[0], digests[1]);
        prop_assert_eq!(digests[1], digests[2]);
    }

    /// Sealing must not perturb the simulation: an encrypted run and a
    /// plaintext run over the same flows agree on every delivery
    /// statistic. Only the sealed counters (and therefore the digest)
    /// may differ.
    #[test]
    fn encryption_never_perturbs_delivery(
        seed in any::<u64>(),
        flows in 24usize..72,
    ) {
        let exp = secure_world();
        let wl = workload(exp, flows, seed);
        let cfg = FleetConfig { workers: 4, seed, ..FleetConfig::default() };
        let plain = run_fleet(exp, &wl, &cfg);
        let sealed = run_fleet(exp, &wl, &FleetConfig { encrypted: true, ..cfg });
        prop_assert_eq!(plain.delivered, sealed.delivered);
        prop_assert_eq!(plain.broadcasts.fingerprint(), sealed.broadcasts.fingerprint());
        prop_assert_eq!(sealed.sealed, wl.len() as u64);
        prop_assert_eq!(sealed.opened, sealed.delivered);
        prop_assert_eq!(sealed.auth_failures, 0);
    }
}

/// A warm session-key cache is invisible to outcomes: replaying the
/// identical flow set against the already-warm cache reproduces the
/// cold run outcome for outcome, and derives no new keys.
#[test]
fn warm_cache_replays_cold_run_outcome_for_outcome() {
    let map = CityArchetype::SurveyDowntown.generate(31);
    let mut exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed: 31,
            ..ExperimentConfig::default()
        },
    );
    exp.enable_encryption();
    let flows = workload(&exp, 64, 31);

    let mut plan_scratch = PlanScratch::new();
    let mut plan = PlannedFlow::empty(0, 0);
    let mut scratch = DeliveryScratch::new();
    let pass = |exp: &CityExperiment,
                plan_scratch: &mut PlanScratch,
                plan: &mut PlannedFlow,
                scratch: &mut DeliveryScratch| {
        flows
            .iter()
            .map(|flow| {
                exp.plan_flow_into(flow.src, flow.dst, plan_scratch, plan);
                let msg_id = substream_seed(31, DOMAIN_MSG, flow.id);
                let mut rng = SimRng::new(substream_seed(31, DOMAIN_SIM, flow.id));
                exp.simulate_flow_secure_with(plan, msg_id, &mut rng, scratch)
            })
            .collect::<Vec<_>>()
    };

    let secure = exp.secure_state().expect("encryption enabled").clone();
    secure.clear_sessions();
    let cold = pass(&exp, &mut plan_scratch, &mut plan, &mut scratch);
    let derived_cold = scratch.keys_derived();
    assert!(derived_cold > 0, "cold pass must derive session keys");

    let warm = pass(&exp, &mut plan_scratch, &mut plan, &mut scratch);
    assert_eq!(
        scratch.keys_derived(),
        derived_cold,
        "warm pass must be pure cache hits"
    );
    assert_eq!(cold, warm, "warm cache must not change any outcome");
}

/// Tampering — with the header or the ciphertext — turns a delivered
/// flow into an authentication failure, never into a delivery. Flows
/// the transport loses stay plain losses (nothing reached the receiver
/// to authenticate).
#[test]
fn tampering_yields_auth_failure_never_delivery() {
    let map = CityArchetype::SurveyDowntown.generate(37);
    let mut exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed: 37,
            ..ExperimentConfig::default()
        },
    );
    exp.enable_encryption();
    let flows = workload(&exp, 48, 37);

    let mut scratch = DeliveryScratch::new();
    let mut plan_scratch = PlanScratch::new();
    let mut plan = PlannedFlow::empty(0, 0);
    let mut tampered_any = 0u32;
    for flow in &flows {
        exp.plan_flow_into(flow.src, flow.dst, &mut plan_scratch, &mut plan);
        let msg_id = substream_seed(37, DOMAIN_MSG, flow.id);

        let mut rng = SimRng::new(substream_seed(37, DOMAIN_SIM, flow.id));
        let honest = exp.simulate_flow_secure_with(&plan, msg_id, &mut rng, &mut scratch);

        for mode in [TamperMode::Header, TamperMode::Ciphertext] {
            let mut rng = SimRng::new(substream_seed(37, DOMAIN_SIM, flow.id));
            let bad = exp.simulate_flow_secure_tampered(
                &plan,
                msg_id,
                &mut rng,
                &mut scratch,
                Some(mode),
            );
            assert!(bad.sealed);
            assert!(!bad.opened, "tampered messages must never open");
            if honest.delivered {
                assert!(bad.auth_failed, "{mode:?}: tampering must be detected");
                assert!(!bad.delivered, "{mode:?}: auth failure is not delivery");
                assert!(bad.latency.is_none() && bad.overhead.is_none());
                tampered_any += 1;
            } else {
                assert!(
                    !bad.auth_failed,
                    "undelivered flows never reach authentication"
                );
            }
        }
    }
    assert!(
        tampered_any > 0,
        "workload must include delivered flows to exercise tamper detection"
    );
}

/// With encryption enabled on the world but `encrypted: false` in the
/// fleet config, the report is field-identical to a run against a world
/// that never heard of the secure plane — the opt-in surface is the
/// config flag, and merely holding a key registry changes nothing.
#[test]
fn encryption_off_is_field_identical_to_a_plain_world() {
    let seed = 41;
    let map = CityArchetype::SurveyDowntown.generate(seed);
    let plain_exp = CityExperiment::prepare(
        map.clone(),
        ExperimentConfig {
            seed,
            ..ExperimentConfig::default()
        },
    );
    let mut keyed_exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed,
            ..ExperimentConfig::default()
        },
    );
    keyed_exp.enable_encryption();

    let flows = workload(&plain_exp, 96, seed);
    let cfg = FleetConfig {
        workers: 4,
        seed,
        ..FleetConfig::default()
    };
    let plain = run_fleet(&plain_exp, &flows, &cfg);
    let keyed = run_fleet(&keyed_exp, &flows, &cfg);

    assert_eq!(plain.digest(), keyed.digest());
    assert_eq!(plain.delivered, keyed.delivered);
    assert_eq!(
        plain.broadcasts.fingerprint(),
        keyed.broadcasts.fingerprint()
    );
    assert_eq!(keyed.sealed, 0);
    assert_eq!(keyed.opened, 0);
    assert_eq!(keyed.auth_failures, 0);
}

/// Plaintext runs never seal, so the sealed block must stay out of the
/// digest — this is what keeps every pre-encryption golden digest
/// (fleet, fault, churn, metro, stream, placement) valid bit for bit.
#[test]
fn plaintext_digest_ignores_sealed_fields() {
    let exp = secure_world();
    let flows = workload(exp, 64, 7);
    let r = run_fleet(
        exp,
        &flows,
        &FleetConfig {
            workers: 2,
            seed: 7,
            ..FleetConfig::default()
        },
    );
    assert_eq!(r.sealed, 0);
    let mut tweaked = r.clone();
    tweaked.opened = 99;
    tweaked.auth_failures = 7;
    assert_eq!(
        r.digest(),
        tweaked.digest(),
        "with zero sealed messages the secure fields must not perturb the digest"
    );
}

/// Key rotation invalidates exactly the rotated building's sessions:
/// the next encrypted run re-derives those pairs (and only those),
/// while outcomes stay bit-identical — rotation is a key-management
/// event, not a simulation event.
#[test]
fn rotation_re_derives_without_changing_outcomes() {
    let map = CityArchetype::SurveyDowntown.generate(43);
    let mut exp = CityExperiment::prepare(
        map,
        ExperimentConfig {
            seed: 43,
            ..ExperimentConfig::default()
        },
    );
    exp.enable_encryption();
    let flows = workload(&exp, 64, 43);
    let cfg = FleetConfig {
        workers: 2,
        seed: 43,
        encrypted: true,
        ..FleetConfig::default()
    };

    let before = run_fleet(&exp, &flows, &cfg);
    let victim = flows[0].src;
    let evicted = exp.rotate_keys(victim);
    assert!(evicted > 0, "the victim building must have had sessions");

    let after = run_fleet(&exp, &flows, &cfg);
    assert_eq!(
        before.digest(),
        after.digest(),
        "rotation must not change what is delivered"
    );
}
