//! Property tests for the fleet engine's determinism machinery.

use citymesh_fleet::{generate_flows, FlowModel, WorkloadConfig};
use citymesh_simcore::substream_seed;
use proptest::prelude::*;

proptest! {
    /// Distinct flow ids must never share an RNG sub-stream — a
    /// collision would correlate two flows' randomness and make the
    /// aggregate depend on which flows co-occur in a workload.
    #[test]
    fn substreams_never_collide_for_distinct_flow_ids(
        root in any::<u64>(),
        domain in any::<u64>(),
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        if a != b {
            prop_assert_ne!(
                substream_seed(root, domain, a),
                substream_seed(root, domain, b),
            );
        }
    }

    /// Sub-streams must also stay distinct across domains for the
    /// same index (workload vs simulation vs message-id draws).
    #[test]
    fn substreams_never_collide_across_domains(
        root in any::<u64>(),
        index in any::<u64>(),
        d1 in 0u64..10_000,
        d2 in 0u64..10_000,
    ) {
        if d1 != d2 {
            prop_assert_ne!(
                substream_seed(root, d1, index),
                substream_seed(root, d2, index),
            );
        }
    }

    /// Workload generation is a pure function of its config: same
    /// `(seed, flows, model)` twice gives identical specs, and flow
    /// `i` does not depend on how many flows follow it.
    #[test]
    fn workload_is_pure_and_prefix_stable(
        seed in any::<u64>(),
        flows in 1usize..60,
        extra in 0usize..60,
        buildings in 2usize..200,
    ) {
        let model = FlowModel::UniformPairs { rate_hz: 50.0 };
        let short = generate_flows(buildings, &WorkloadConfig { flows, model, seed });
        let long = generate_flows(
            buildings,
            &WorkloadConfig { flows: flows + extra, model, seed },
        );
        prop_assert_eq!(short.len(), flows);
        for (a, b) in short.iter().zip(&long) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.src, b.src);
            prop_assert_eq!(a.dst, b.dst);
            prop_assert_eq!(a.arrival_ms, b.arrival_ms);
        }
    }

    /// Every generated flow has valid, distinct endpoints.
    #[test]
    fn generated_endpoints_are_valid(
        seed in any::<u64>(),
        buildings in 2usize..300,
        checkin_fraction in 0.0f64..1.0,
    ) {
        let flows = generate_flows(
            buildings,
            &WorkloadConfig {
                flows: 50,
                model: FlowModel::PostboxMix { checkin_fraction, rate_hz: 10.0 },
                seed,
            },
        );
        for f in &flows {
            prop_assert!(f.src != f.dst);
            prop_assert!((f.src as usize) < buildings);
            prop_assert!((f.dst as usize) < buildings);
            prop_assert!(f.arrival_ms.is_finite() && f.arrival_ms >= 0.0);
        }
    }
}
