//! Property tests for the fleet engine's determinism machinery.

use std::sync::OnceLock;

use citymesh_core::{
    CityExperiment, DeliveryScratch, ExperimentConfig, FaultScenario, RetryPolicy,
};
use citymesh_fleet::{
    generate_flows, run_fleet, run_fleet_traced, FleetConfig, FlowModel, WorkloadConfig,
};
use citymesh_map::CityArchetype;
use citymesh_simcore::{substream_seed, SimRng};
use citymesh_telemetry::{TelemetryConfig, TraceConfig};
use proptest::prelude::*;

/// One prepared world shared by all digest-invariance cases: building
/// the AP fabric dominates each case's cost and the property is about
/// the engine, not the city.
fn shared_world() -> &'static CityExperiment {
    static WORLD: OnceLock<CityExperiment> = OnceLock::new();
    WORLD.get_or_init(|| {
        let map = CityArchetype::SurveyDowntown.generate(3);
        CityExperiment::prepare(
            map,
            ExperimentConfig {
                seed: 3,
                ..ExperimentConfig::default()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The engine's headline invariant, now with per-worker scratch
    /// reuse in the mix: 1, 4, and 8 workers must produce the same
    /// digest for any workload. Worker count changes which scratch
    /// simulates which flow (and how dirty it is when it does), so
    /// equality here proves scratch state cannot leak across flows.
    #[test]
    fn digest_is_invariant_under_worker_count(
        seed in any::<u64>(),
        flows in 24usize..96,
        rate_hz in 10.0..400.0f64,
    ) {
        let exp = shared_world();
        let workload = generate_flows(
            exp.map().len(),
            &WorkloadConfig {
                flows,
                model: FlowModel::UniformPairs { rate_hz },
                seed,
            },
        );
        let digests: Vec<u64> = [1usize, 4, 8]
            .iter()
            .map(|&workers| {
                run_fleet(exp, &workload, &FleetConfig { workers, seed, ..FleetConfig::default() }).digest()
            })
            .collect();
        prop_assert_eq!(digests[0], digests[1], "1 vs 4 workers diverged");
        prop_assert_eq!(digests[0], digests[2], "1 vs 8 workers diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The same invariant with fault injection and the retry ladder
    /// active. Faults add a second RNG consumer (the materialized
    /// outage map) and variable per-flow attempt counts, both of which
    /// must stay schedule-independent: the fault state is drawn once at
    /// prepare time from its own sub-streams and the ladder's geometry
    /// is precomputed per plan, so 1, 4, and 8 workers must agree
    /// bit-for-bit on the full report, retry stats included.
    #[test]
    fn faulted_digest_is_invariant_under_worker_count(
        seed in any::<u64>(),
        flows in 24usize..72,
        failure_p in 0.05f64..0.45,
    ) {
        let mut scenario = FaultScenario::iid(failure_p);
        scenario.retry = RetryPolicy::ladder();
        let map = CityArchetype::SurveyDowntown.generate(3);
        let exp = CityExperiment::prepare(
            map,
            ExperimentConfig {
                seed,
                faults: Some(scenario),
                ..ExperimentConfig::default()
            },
        );
        let workload = generate_flows(
            exp.map().len(),
            &WorkloadConfig {
                flows,
                model: FlowModel::UniformPairs { rate_hz: 100.0 },
                seed,
            },
        );
        let reports: Vec<_> = [1usize, 4, 8]
            .iter()
            .map(|&workers| run_fleet(&exp, &workload, &FleetConfig { workers, seed, ..FleetConfig::default() }))
            .collect();
        prop_assert_eq!(reports[0].digest(), reports[1].digest(), "1 vs 4 workers diverged");
        prop_assert_eq!(reports[0].digest(), reports[2].digest(), "1 vs 8 workers diverged");
        prop_assert_eq!(reports[0].retried, reports[1].retried);
        prop_assert_eq!(reports[0].recovered, reports[2].recovered);
        prop_assert_eq!(
            reports[0].retry_attempts.fingerprint(),
            reports[2].retry_attempts.fingerprint(),
            "attempt histogram diverged across worker counts"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Telemetry's own determinism invariant: per-flow event sequences
    /// (postmortems, complete with their trace events) and the merged
    /// metric fingerprint must be identical across 1, 4, and 8
    /// workers. Worker count changes which tracer records which flow
    /// and how full each ring is when it does, so equality here proves
    /// trace capture is keyed purely by flow identity and ring state
    /// cannot leak across flows.
    #[test]
    fn traces_are_invariant_under_worker_count(
        seed in any::<u64>(),
        flows in 24usize..60,
        failure_p in 0.1f64..0.4,
        sample_every in 1u64..9,
    ) {
        let mut scenario = FaultScenario::iid(failure_p);
        scenario.retry = RetryPolicy::ladder();
        let map = CityArchetype::SurveyDowntown.generate(3);
        let exp = CityExperiment::prepare(
            map,
            ExperimentConfig {
                seed,
                faults: Some(scenario),
                ..ExperimentConfig::default()
            },
        );
        let workload = generate_flows(
            exp.map().len(),
            &WorkloadConfig {
                flows,
                model: FlowModel::UniformPairs { rate_hz: 100.0 },
                seed,
            },
        );
        let tel = TelemetryConfig::full(sample_every);
        let runs: Vec<_> = [1usize, 4, 8]
            .iter()
            .map(|&workers| {
                run_fleet_traced(&exp, &workload, &FleetConfig { workers, seed, ..FleetConfig::default() }, &tel)
                    .1
                    .expect("telemetry requested")
            })
            .collect();
        prop_assert_eq!(
            runs[0].metrics.fingerprint(),
            runs[1].metrics.fingerprint(),
            "metric fingerprint diverged, 1 vs 4 workers"
        );
        prop_assert_eq!(
            runs[0].metrics.fingerprint(),
            runs[2].metrics.fingerprint(),
            "metric fingerprint diverged, 1 vs 8 workers"
        );
        prop_assert_eq!(&runs[0].postmortems, &runs[1].postmortems, "postmortems diverged, 1 vs 4 workers");
        prop_assert_eq!(&runs[0].postmortems, &runs[2].postmortems, "postmortems diverged, 1 vs 8 workers");
    }

    /// A reused traced scratch must capture exactly the trace a fresh
    /// scratch captures: ring reuse, generation-stamped agent slabs,
    /// and leftover postmortem buffers may not bleed one flow's events
    /// into the next. This mirrors the engine's per-flow protocol
    /// (same sub-stream domains) with sample_every=1 so every flow is
    /// captured and compared.
    #[test]
    fn scratch_reuse_does_not_perturb_traces(
        seed in any::<u64>(),
        flows in 8usize..24,
        failure_p in 0.1f64..0.4,
    ) {
        // The engine's sub-stream domains (crates/fleet/src/engine.rs).
        const DOMAIN_SIM: u64 = 0x51D3;
        const DOMAIN_MSG: u64 = 0x3564;
        let mut scenario = FaultScenario::iid(failure_p);
        scenario.retry = RetryPolicy::ladder();
        let map = CityArchetype::SurveyDowntown.generate(3);
        let exp = CityExperiment::prepare(
            map,
            ExperimentConfig {
                seed,
                faults: Some(scenario),
                ..ExperimentConfig::default()
            },
        );
        let workload = generate_flows(
            exp.map().len(),
            &WorkloadConfig {
                flows,
                model: FlowModel::UniformPairs { rate_hz: 100.0 },
                seed,
            },
        );
        let trace = TraceConfig::sampled(1);
        let mut reused = DeliveryScratch::with_tracing(trace);
        for flow in &workload {
            let plan = exp.plan_flow(flow.src, flow.dst);
            let msg_id = substream_seed(seed, DOMAIN_MSG, flow.id);

            let mut rng = SimRng::new(substream_seed(seed, DOMAIN_SIM, flow.id));
            reused.tracer_mut().set_next_key(flow.id);
            let a = exp.simulate_flow_with(&plan, msg_id, &mut rng, &mut reused);

            let mut fresh = DeliveryScratch::with_tracing(trace);
            let mut rng = SimRng::new(substream_seed(seed, DOMAIN_SIM, flow.id));
            fresh.tracer_mut().set_next_key(flow.id);
            let b = exp.simulate_flow_with(&plan, msg_id, &mut rng, &mut fresh);

            prop_assert_eq!(a, b, "outcome diverged between reused and fresh scratch");
            let captured_fresh = fresh.tracer_mut().take_postmortems();
            prop_assert_eq!(captured_fresh.len(), 1, "sample_every=1 captures every flow");
            // The reused tracer accumulates; its newest capture must
            // equal the fresh tracer's only capture, events included.
            let pm_reused = reused.tracer().postmortems().last().expect("capture");
            prop_assert_eq!(pm_reused, &captured_fresh[0]);
        }
        prop_assert_eq!(
            reused.tracer().postmortems().len(),
            workload.len(),
            "one capture per flow"
        );
    }
}

proptest! {
    /// Distinct flow ids must never share an RNG sub-stream — a
    /// collision would correlate two flows' randomness and make the
    /// aggregate depend on which flows co-occur in a workload.
    #[test]
    fn substreams_never_collide_for_distinct_flow_ids(
        root in any::<u64>(),
        domain in any::<u64>(),
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        if a != b {
            prop_assert_ne!(
                substream_seed(root, domain, a),
                substream_seed(root, domain, b),
            );
        }
    }

    /// Sub-streams must also stay distinct across domains for the
    /// same index (workload vs simulation vs message-id draws).
    #[test]
    fn substreams_never_collide_across_domains(
        root in any::<u64>(),
        index in any::<u64>(),
        d1 in 0u64..10_000,
        d2 in 0u64..10_000,
    ) {
        if d1 != d2 {
            prop_assert_ne!(
                substream_seed(root, d1, index),
                substream_seed(root, d2, index),
            );
        }
    }

    /// Workload generation is a pure function of its config: same
    /// `(seed, flows, model)` twice gives identical specs, and flow
    /// `i` does not depend on how many flows follow it.
    #[test]
    fn workload_is_pure_and_prefix_stable(
        seed in any::<u64>(),
        flows in 1usize..60,
        extra in 0usize..60,
        buildings in 2usize..200,
    ) {
        let model = FlowModel::UniformPairs { rate_hz: 50.0 };
        let short = generate_flows(buildings, &WorkloadConfig { flows, model, seed });
        let long = generate_flows(
            buildings,
            &WorkloadConfig { flows: flows + extra, model, seed },
        );
        prop_assert_eq!(short.len(), flows);
        for (a, b) in short.iter().zip(&long) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.src, b.src);
            prop_assert_eq!(a.dst, b.dst);
            prop_assert_eq!(a.arrival_ms, b.arrival_ms);
        }
    }

    /// Every generated flow has valid, distinct endpoints.
    #[test]
    fn generated_endpoints_are_valid(
        seed in any::<u64>(),
        buildings in 2usize..300,
        checkin_fraction in 0.0f64..1.0,
    ) {
        let flows = generate_flows(
            buildings,
            &WorkloadConfig {
                flows: 50,
                model: FlowModel::PostboxMix { checkin_fraction, rate_hz: 10.0 },
                seed,
            },
        );
        for f in &flows {
            prop_assert!(f.src != f.dst);
            prop_assert!((f.src as usize) < buildings);
            prop_assert!((f.dst as usize) < buildings);
            prop_assert!(f.arrival_ms.is_finite() && f.arrival_ms >= 0.0);
        }
    }
}
