//! Traffic workload models: who sends to whom, and when.
//!
//! A workload turns `(root seed, flow count, model)` into a vector of
//! [`FlowSpec`]s. Every per-flow random decision draws from that
//! flow's own SplitMix64 sub-stream
//! ([`citymesh_simcore::substream_seed`]), so the spec of flow `i` is
//! a pure function of `(seed, i)` — generating 10 flows or 10 million
//! yields the same first 10, and generation could itself be sharded
//! across workers without changing a single spec.

use citymesh_simcore::{substream_seed, SimRng};

/// Sub-stream domain for per-flow endpoint sampling.
pub(crate) const DOMAIN_FLOW: u64 = 0xF10A;
/// Sub-stream domain for workload-level structure (hotspot placement).
pub(crate) const DOMAIN_STRUCTURE: u64 = 0x57C7;
/// Sub-stream domain for per-flow arrival jitter.
pub(crate) const DOMAIN_ARRIVAL: u64 = 0xA441;

/// What a flow asks of the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowKind {
    /// A sealed application message routed src → dst.
    Data,
    /// A postbox check-in: the recipient's device polls its postbox
    /// building (routed like data, counted separately).
    PostboxCheckin,
}

/// One generated flow: endpoints, kind, and arrival time.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowSpec {
    /// Dense flow id, `0..flows`; also the sub-stream index.
    pub id: u64,
    /// Source building.
    pub src: u32,
    /// Destination building.
    pub dst: u32,
    /// What the flow is.
    pub kind: FlowKind,
    /// Arrival offset from the start of the run, milliseconds.
    pub arrival_ms: f64,
}

/// How destinations (and arrivals) are distributed.
#[derive(Clone, Copy, Debug)]
pub enum FlowModel {
    /// Independent uniform src/dst pairs, Poisson arrivals at `rate_hz`.
    UniformPairs {
        /// Mean flow arrival rate, flows per second.
        rate_hz: f64,
    },
    /// Zipf-skewed destinations over a set of hotspot buildings
    /// (sources uniform) — the "everyone messages the shelter /
    /// hospital / city hall" disaster pattern.
    Hotspot {
        /// Number of hotspot destination buildings.
        hotspots: usize,
        /// Zipf exponent (1.0 ≈ classic web skew; larger = sharper).
        exponent: f64,
        /// Mean flow arrival rate, flows per second.
        rate_hz: f64,
    },
    /// Poisson bursts: batches arrive as a Poisson process and every
    /// flow in a batch shares one arrival instant (aftershock spikes,
    /// push-notification fan-outs).
    PoissonBatches {
        /// Mean flows per batch.
        mean_batch: f64,
        /// Mean batch arrival rate, batches per second.
        rate_hz: f64,
    },
    /// A postbox-heavy mix: `checkin_fraction` of flows are
    /// [`FlowKind::PostboxCheckin`] polls, the rest data.
    PostboxMix {
        /// Fraction of flows that are check-ins, clamped to [0, 1].
        checkin_fraction: f64,
        /// Mean flow arrival rate, flows per second.
        rate_hz: f64,
    },
}

impl FlowModel {
    /// A short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FlowModel::UniformPairs { .. } => "uniform",
            FlowModel::Hotspot { .. } => "hotspot",
            FlowModel::PoissonBatches { .. } => "poisson-batches",
            FlowModel::PostboxMix { .. } => "postbox-mix",
        }
    }
}

/// A complete workload description.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of flows to generate.
    pub flows: usize,
    /// The traffic model.
    pub model: FlowModel,
    /// Root seed; all workload randomness derives from it.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            flows: 1000,
            model: FlowModel::UniformPairs { rate_hz: 100.0 },
            seed: 0,
        }
    }
}

impl WorkloadConfig {
    /// Rejects degenerate workload parameters (zero or non-finite
    /// arrival rate, empty hotspot set, out-of-range check-in
    /// fraction) before any flow is generated — a zero rate would
    /// otherwise push every arrival to +∞ instead of failing fast.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let rate = match self.model {
            FlowModel::UniformPairs { rate_hz }
            | FlowModel::Hotspot { rate_hz, .. }
            | FlowModel::PoissonBatches { rate_hz, .. }
            | FlowModel::PostboxMix { rate_hz, .. } => rate_hz,
        };
        require_positive_rate("rate_hz", rate)?;
        match self.model {
            FlowModel::Hotspot {
                hotspots, exponent, ..
            } => {
                if hotspots == 0 {
                    return Err(WorkloadError::NoHotspots);
                }
                if !exponent.is_finite() {
                    return Err(WorkloadError::NotFinite {
                        field: "exponent",
                        value: exponent,
                    });
                }
            }
            FlowModel::PoissonBatches { mean_batch, .. } => {
                require_positive_rate("mean_batch", mean_batch)?;
            }
            FlowModel::PostboxMix {
                checkin_fraction, ..
            } => {
                if !(0.0..=1.0).contains(&checkin_fraction) {
                    return Err(WorkloadError::OutOfRange {
                        field: "checkin_fraction",
                        value: checkin_fraction,
                    });
                }
            }
            FlowModel::UniformPairs { .. } => {}
        }
        Ok(())
    }
}

fn require_positive_rate(field: &'static str, value: f64) -> Result<(), WorkloadError> {
    if !value.is_finite() {
        return Err(WorkloadError::NotFinite { field, value });
    }
    if value <= 0.0 {
        return Err(WorkloadError::NotPositive { field, value });
    }
    Ok(())
}

/// A rejected workload description: the generator refuses degenerate
/// parameters with a typed error instead of clamping them silently or
/// producing a workload that hangs downstream engines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadError {
    /// Fewer than two buildings: no distinct src/dst pair exists.
    TooFewBuildings {
        /// The city size that was offered.
        buildings: usize,
    },
    /// A rate or batch-size parameter that must be positive was not.
    NotPositive {
        /// Offending parameter.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A parameter was NaN or infinite.
    NotFinite {
        /// Offending parameter.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A fraction parameter left `[0, 1]`.
    OutOfRange {
        /// Offending parameter.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A hotspot model with zero hotspot buildings.
    NoHotspots,
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::TooFewBuildings { buildings } => write!(
                f,
                "workload needs at least two buildings for traffic (city has {buildings})"
            ),
            WorkloadError::NotPositive { field, value } => {
                write!(
                    f,
                    "workload parameter `{field}` must be positive, got {value}"
                )
            }
            WorkloadError::NotFinite { field, value } => {
                write!(
                    f,
                    "workload parameter `{field}` must be finite, got {value}"
                )
            }
            WorkloadError::OutOfRange { field, value } => {
                write!(
                    f,
                    "workload parameter `{field}` must lie in [0, 1], got {value}"
                )
            }
            WorkloadError::NoHotspots => {
                write!(f, "hotspot workload needs at least one hotspot building")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Generates the flow set for a city of `buildings` buildings.
///
/// # Panics
/// Panics on a rejected workload description — `buildings < 2` (no
/// distinct src/dst pair exists) or degenerate model parameters
/// ([`WorkloadConfig::validate`]). Use [`try_generate_flows`] for a
/// `Result` instead.
pub fn generate_flows(buildings: usize, cfg: &WorkloadConfig) -> Vec<FlowSpec> {
    try_generate_flows(buildings, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// [`generate_flows`] with degenerate inputs as a typed error instead
/// of a panic.
pub fn try_generate_flows(
    buildings: usize,
    cfg: &WorkloadConfig,
) -> Result<Vec<FlowSpec>, WorkloadError> {
    if buildings < 2 {
        return Err(WorkloadError::TooFewBuildings { buildings });
    }
    cfg.validate()?;
    let b = buildings as u64;

    // Workload-level structure comes from its own sub-stream so that
    // changing the flow count never moves the hotspots.
    let hotspot_set: Vec<u32> = match cfg.model {
        FlowModel::Hotspot { hotspots, .. } => {
            let mut rng = SimRng::new(substream_seed(cfg.seed, DOMAIN_STRUCTURE, 0));
            let k = hotspots.clamp(1, buildings);
            rng.sample_indices(buildings, k)
                .into_iter()
                .map(|i| i as u32)
                .collect()
        }
        _ => Vec::new(),
    };
    // Zipf inverse-CDF table over hotspot ranks: cumulative[k] ∝
    // Σ_{j≤k} 1/(j+1)^s.
    let zipf_cdf: Vec<f64> = match cfg.model {
        FlowModel::Hotspot { exponent, .. } => {
            let mut acc = 0.0;
            let mut cdf: Vec<f64> = hotspot_set
                .iter()
                .enumerate()
                .map(|(rank, _)| {
                    acc += 1.0 / ((rank + 1) as f64).powf(exponent);
                    acc
                })
                .collect();
            for v in &mut cdf {
                *v /= acc;
            }
            cdf
        }
        _ => Vec::new(),
    };

    // Arrivals: a Poisson process is a running sum of exponential
    // gaps, so it is inherently sequential. Computing the gap of flow
    // i from sub-stream i keeps every flow's *contribution*
    // id-addressed; the prefix sum below is the only sequential step
    // and costs one add per flow.
    let mut arrivals = Vec::with_capacity(cfg.flows);
    match cfg.model {
        FlowModel::PoissonBatches {
            mean_batch,
            rate_hz,
        } => {
            let mean_batch = mean_batch.max(1.0);
            let rate = rate_hz.max(1e-9);
            let mut t = 0.0_f64;
            let mut batch_idx = 0u64;
            while arrivals.len() < cfg.flows {
                let mut rng = SimRng::new(substream_seed(cfg.seed, DOMAIN_ARRIVAL, batch_idx));
                batch_idx += 1;
                t += -(1.0 - rng.uniform()).ln() / rate;
                // Uniform batch size over [1, 2·mean] — mean ≈ mean_batch.
                let size = 1 + rng.below(((2.0 * mean_batch) as u64).max(1)) as usize;
                for _ in 0..size {
                    if arrivals.len() == cfg.flows {
                        break;
                    }
                    arrivals.push(t * 1e3);
                }
            }
        }
        FlowModel::UniformPairs { rate_hz }
        | FlowModel::Hotspot { rate_hz, .. }
        | FlowModel::PostboxMix { rate_hz, .. } => {
            let rate = rate_hz.max(1e-9);
            let mut t = 0.0_f64;
            for id in 0..cfg.flows as u64 {
                let mut rng = SimRng::new(substream_seed(cfg.seed, DOMAIN_ARRIVAL, id));
                t += -(1.0 - rng.uniform()).ln() / rate;
                arrivals.push(t * 1e3);
            }
        }
    }

    Ok((0..cfg.flows as u64)
        .map(|id| {
            let mut rng = SimRng::new(substream_seed(cfg.seed, DOMAIN_FLOW, id));
            let src = rng.below(b) as u32;
            let (dst, kind) = match cfg.model {
                FlowModel::UniformPairs { .. } | FlowModel::PoissonBatches { .. } => {
                    (distinct_dst(&mut rng, b, src), FlowKind::Data)
                }
                FlowModel::Hotspot { .. } => {
                    let u = rng.uniform();
                    let rank = zipf_cdf.partition_point(|&c| c < u).min(zipf_cdf.len() - 1);
                    let mut dst = hotspot_set[rank];
                    if dst == src {
                        dst = distinct_dst(&mut rng, b, src);
                    }
                    (dst, FlowKind::Data)
                }
                FlowModel::PostboxMix {
                    checkin_fraction, ..
                } => {
                    let kind = if rng.chance(checkin_fraction) {
                        FlowKind::PostboxCheckin
                    } else {
                        FlowKind::Data
                    };
                    (distinct_dst(&mut rng, b, src), kind)
                }
            };
            FlowSpec {
                id,
                src,
                dst,
                kind,
                arrival_ms: arrivals[id as usize],
            }
        })
        .collect())
}

/// Uniform destination ≠ `src`.
fn distinct_dst(rng: &mut SimRng, buildings: u64, src: u32) -> u32 {
    // Sample from the b−1 non-src buildings and shift over the gap:
    // branch-free distinctness without rejection.
    let d = rng.below(buildings - 1) as u32;
    if d >= src {
        d + 1
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(model: FlowModel, flows: usize, seed: u64) -> WorkloadConfig {
        WorkloadConfig { flows, model, seed }
    }

    #[test]
    fn generation_is_deterministic_and_prefix_stable() {
        let model = FlowModel::Hotspot {
            hotspots: 8,
            exponent: 1.2,
            rate_hz: 50.0,
        };
        let a = generate_flows(500, &cfg(model, 100, 9));
        let b = generate_flows(500, &cfg(model, 100, 9));
        let longer = generate_flows(500, &cfg(model, 400, 9));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.src, x.dst, x.kind), (y.src, y.dst, y.kind));
            assert_eq!(x.arrival_ms, y.arrival_ms);
        }
        // The first 100 flows of a 400-flow workload are the same 100.
        for (x, y) in a.iter().zip(&longer) {
            assert_eq!((x.src, x.dst), (y.src, y.dst));
        }
    }

    #[test]
    fn src_and_dst_are_always_distinct_and_in_range() {
        for model in [
            FlowModel::UniformPairs { rate_hz: 10.0 },
            FlowModel::Hotspot {
                hotspots: 4,
                exponent: 1.0,
                rate_hz: 10.0,
            },
            FlowModel::PoissonBatches {
                mean_batch: 5.0,
                rate_hz: 2.0,
            },
            FlowModel::PostboxMix {
                checkin_fraction: 0.5,
                rate_hz: 10.0,
            },
        ] {
            for f in generate_flows(37, &cfg(model, 300, 3)) {
                assert_ne!(f.src, f.dst, "{model:?}");
                assert!(f.src < 37 && f.dst < 37);
                assert!(f.arrival_ms >= 0.0);
            }
        }
    }

    #[test]
    fn hotspot_skew_concentrates_destinations() {
        let flows = generate_flows(
            1000,
            &cfg(
                FlowModel::Hotspot {
                    hotspots: 10,
                    exponent: 1.5,
                    rate_hz: 10.0,
                },
                2000,
                4,
            ),
        );
        let mut counts = std::collections::HashMap::new();
        for f in &flows {
            *counts.entry(f.dst).or_insert(0usize) += 1;
        }
        // ≤ 10 hotspots absorb everything (modulo src-collision shifts),
        // and the hottest sees far more than a uniform share.
        let max = *counts.values().max().unwrap();
        assert!(
            counts.len() <= 10 + 20,
            "too many distinct destinations: {}",
            counts.len()
        );
        assert!(max > 2000 / 10, "no skew: max={max}");
    }

    #[test]
    fn arrivals_are_nondecreasing() {
        for model in [
            FlowModel::UniformPairs { rate_hz: 25.0 },
            FlowModel::PoissonBatches {
                mean_batch: 4.0,
                rate_hz: 5.0,
            },
        ] {
            let flows = generate_flows(50, &cfg(model, 500, 7));
            for w in flows.windows(2) {
                assert!(w[0].arrival_ms <= w[1].arrival_ms);
            }
        }
    }

    #[test]
    fn postbox_mix_fraction_is_respected() {
        let flows = generate_flows(
            100,
            &cfg(
                FlowModel::PostboxMix {
                    checkin_fraction: 0.3,
                    rate_hz: 10.0,
                },
                4000,
                11,
            ),
        );
        let checkins = flows
            .iter()
            .filter(|f| f.kind == FlowKind::PostboxCheckin)
            .count();
        let frac = checkins as f64 / flows.len() as f64;
        assert!((frac - 0.3).abs() < 0.05, "checkin fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "at least two buildings")]
    fn rejects_degenerate_city() {
        generate_flows(1, &WorkloadConfig::default());
    }

    #[test]
    fn try_generate_flows_types_every_rejection() {
        // Degenerate city.
        assert_eq!(
            try_generate_flows(1, &WorkloadConfig::default()),
            Err(WorkloadError::TooFewBuildings { buildings: 1 })
        );
        // Zero and negative arrival rates (a zero rate would push
        // every arrival to +∞, i.e. a hang downstream, not a panic).
        for bad_rate in [0.0, -5.0] {
            assert_eq!(
                try_generate_flows(
                    10,
                    &cfg(FlowModel::UniformPairs { rate_hz: bad_rate }, 10, 0)
                ),
                Err(WorkloadError::NotPositive {
                    field: "rate_hz",
                    value: bad_rate
                })
            );
        }
        // Non-finite rate.
        assert!(matches!(
            try_generate_flows(
                10,
                &cfg(FlowModel::UniformPairs { rate_hz: f64::NAN }, 10, 0)
            ),
            Err(WorkloadError::NotFinite {
                field: "rate_hz",
                ..
            })
        ));
        // Hotspot model with no hotspots or a NaN exponent.
        assert_eq!(
            try_generate_flows(
                10,
                &cfg(
                    FlowModel::Hotspot {
                        hotspots: 0,
                        exponent: 1.0,
                        rate_hz: 10.0
                    },
                    10,
                    0
                )
            ),
            Err(WorkloadError::NoHotspots)
        );
        assert!(matches!(
            try_generate_flows(
                10,
                &cfg(
                    FlowModel::Hotspot {
                        hotspots: 3,
                        exponent: f64::INFINITY,
                        rate_hz: 10.0
                    },
                    10,
                    0
                )
            ),
            Err(WorkloadError::NotFinite {
                field: "exponent",
                ..
            })
        ));
        // Zero batch size.
        assert_eq!(
            try_generate_flows(
                10,
                &cfg(
                    FlowModel::PoissonBatches {
                        mean_batch: 0.0,
                        rate_hz: 10.0
                    },
                    10,
                    0
                )
            ),
            Err(WorkloadError::NotPositive {
                field: "mean_batch",
                value: 0.0
            })
        );
        // Check-in fraction outside [0, 1].
        assert_eq!(
            try_generate_flows(
                10,
                &cfg(
                    FlowModel::PostboxMix {
                        checkin_fraction: 1.5,
                        rate_hz: 10.0
                    },
                    10,
                    0
                )
            ),
            Err(WorkloadError::OutOfRange {
                field: "checkin_fraction",
                value: 1.5
            })
        );
        // And the happy path still generates.
        let flows = try_generate_flows(10, &cfg(FlowModel::UniformPairs { rate_hz: 10.0 }, 25, 0))
            .expect("valid workload");
        assert_eq!(flows.len(), 25);
    }
}
