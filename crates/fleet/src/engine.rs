//! The parallel flow-execution engine.
//!
//! [`run_fleet`] drives a generated workload through a prepared
//! [`CityExperiment`] on a pool of worker threads and aggregates the
//! outcomes into a [`FleetReport`]. The headline property is
//! **schedule-independent determinism**: for a fixed world and root
//! seed, the aggregate report (histograms, counters, digest) is
//! byte-identical whether the flows run on 1 worker or 8, in any
//! interleaving. Three mechanisms deliver it:
//!
//! 1. every flow's stochastic choices come from its own RNG
//!    sub-stream, `substream_seed(seed, DOMAIN_SIM, flow.id)` — no
//!    shared RNG state to race on;
//! 2. route planning is RNG-free and memoized in a shared
//!    [`RouteCache`]; racing planners compute identical values, so
//!    insertion order cannot matter;
//! 3. workers only *record* `(flow id, outcome)`; aggregation happens
//!    after the pool joins, folding outcomes in ascending flow-id
//!    order so floating-point sums see one canonical operand order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use citymesh_core::{CityExperiment, DeliveryScratch, PairOutcome, PlanScratch, PlannedFlow};
use citymesh_simcore::stats::Histogram;
use citymesh_simcore::{substream_seed, Fnv64, SimRng};
use citymesh_telemetry::{metrics as tm, MetricSet, Postmortem, Rung, TelemetryConfig};

use crate::cache::RouteCache;
use crate::workload::{FlowKind, FlowSpec};

/// Sub-stream domain for per-flow delivery simulation randomness.
/// Public so engines layered on top (the churn engine's
/// reactive-repair strategy, the zero-alloc guard tests) replay the
/// exact per-flow streams this engine uses.
pub const DOMAIN_SIM: u64 = 0x51D3;
/// Sub-stream domain for per-flow message ids (public for the same
/// reason as [`DOMAIN_SIM`]).
pub const DOMAIN_MSG: u64 = 0x3564;

/// How many flows a worker claims per counter increment. Large enough
/// to amortize the atomic, small enough to balance tail stragglers.
const CLAIM_CHUNK: usize = 32;

/// Engine parameters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FleetConfig {
    /// Worker threads. `0` means one per available CPU.
    pub workers: usize,
    /// Root seed for all simulation sub-streams (typically the same
    /// seed the workload was generated from).
    pub seed: u64,
    /// Plan cache misses with the district-overlay hierarchical
    /// planner ([`CityExperiment::plan_flow_hier_into`]) instead of
    /// the flat ALT/A* path. Requires `CityExperiment::enable_hier`
    /// to have run on the experiment. Route-cache keys are unchanged
    /// (`(src, dst)`), and because hierarchical routes are
    /// cost-optimal with the same canonical tie-break, reports and
    /// digests are expected to match the flat planner's bit for bit
    /// whenever route costs are untied. Defaults to `false`.
    pub use_hier_planner: bool,
    /// Run every flow through the secure message plane: payloads are
    /// sealed with the per-pair session key (ChaCha20-Poly1305 +
    /// HMAC-authenticated header) before the delivery simulation and
    /// opened by the receiver afterwards. Requires
    /// `CityExperiment::enable_encryption` to have run on the
    /// experiment. Delivery outcomes (and therefore the plaintext
    /// digest fields) are unchanged — encryption adds work, not
    /// randomness — but the report's sealed/opened counters join the
    /// digest once nonzero. Defaults to `false`.
    pub encrypted: bool,
}

impl FleetConfig {
    /// The effective worker count (resolves `0` to the CPU count).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Checks this config against the experiment it is about to run
    /// on. The `try_run_fleet*` entry points call this; the panicking
    /// entry points panic with the same error's message.
    pub fn validate(&self, exp: &CityExperiment) -> Result<(), FleetError> {
        if self.use_hier_planner && exp.hier_planner().is_none() {
            return Err(FleetError::HierPlannerNotEnabled);
        }
        if self.encrypted && exp.secure_state().is_none() {
            return Err(FleetError::EncryptionNotEnabled);
        }
        Ok(())
    }
}

/// A rejected fleet configuration: the engine refuses to start rather
/// than panicking mid-run deep inside a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetError {
    /// [`FleetConfig::use_hier_planner`] was set but
    /// [`CityExperiment::enable_hier`] never ran on the experiment, so
    /// there is no district overlay to query.
    HierPlannerNotEnabled,
    /// [`FleetConfig::encrypted`] was set but
    /// `CityExperiment::enable_encryption` never ran on the experiment,
    /// so there is no key registry or session cache to seal with.
    EncryptionNotEnabled,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::HierPlannerNotEnabled => write!(
                f,
                "FleetConfig::use_hier_planner requires CityExperiment::enable_hier \
                 to have run on the experiment"
            ),
            FleetError::EncryptionNotEnabled => write!(
                f,
                "FleetConfig::encrypted requires CityExperiment::enable_encryption \
                 to have run on the experiment"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// Aggregated results of one fleet run.
///
/// Everything except the wall-clock fields ([`elapsed_secs`] and the
/// cache counters, which depend on scheduling) is deterministic in
/// `(world, workload, seed)` and covered by [`digest`].
///
/// **Conditional digest mixing for retry statistics.** The three
/// retry fields ([`retried`], [`recovered`], [`retry_attempts`]) join
/// the digest **only when `retried > 0`** — i.e. only on runs where
/// the recovery ladder actually fired. Fault-free runs never retry,
/// so their digests are computed exactly as before the retry fields
/// existed, which keeps golden digests pinned prior to fault
/// injection (the CI 500-flow pin among them) valid forever. The
/// corollary: on a fault-free run, mutating the retry fields does not
/// perturb the digest (see `fault_free_digest_ignores_retry_fields`).
///
/// [`elapsed_secs`]: FleetReport::elapsed_secs
/// [`digest`]: FleetReport::digest
/// [`retried`]: FleetReport::retried
/// [`recovered`]: FleetReport::recovered
/// [`retry_attempts`]: FleetReport::retry_attempts
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Flows executed.
    pub flows: u64,
    /// Flows whose endpoints are reachable through the AP graph.
    pub reachable: u64,
    /// Flows for which the building graph produced a route.
    pub route_found: u64,
    /// Flows whose packet the event simulation delivered.
    pub delivered: u64,
    /// Flows that were postbox check-ins.
    pub checkins: u64,
    /// First-delivery latency, milliseconds (delivered flows).
    pub latency_ms: Histogram,
    /// Broadcast count per flow (delivered flows).
    pub broadcasts: Histogram,
    /// Ideal-unicast hop count (reachable flows with a source AP).
    pub hops: Histogram,
    /// Compressed source-route header size, bits (routed flows).
    pub header_bits: Histogram,
    /// Flows that needed more than one send attempt (fault runs only;
    /// always `0` when the experiment has no fault scenario).
    ///
    /// Joins [`FleetReport::digest`] only when nonzero — see the
    /// struct docs for the conditional digest-mixing rule.
    pub retried: u64,
    /// Retried flows that were ultimately delivered by a later rung of
    /// the recovery ladder.
    ///
    /// Joins the digest only when `retried > 0` (see the struct docs).
    pub recovered: u64,
    /// Send attempts per flow (flows that were actually simulated).
    /// Degenerate (all-ones) on fault-free runs.
    ///
    /// Joins the digest only when `retried > 0` (see the struct docs).
    pub retry_attempts: Histogram,
    /// Flows whose payload was sealed before transmission (encrypted
    /// runs only; always `0` when [`FleetConfig::encrypted`] is off).
    ///
    /// Joins [`FleetReport::digest`] only when nonzero, exactly like
    /// the retry fields — plaintext runs keep their historical digests.
    pub sealed: u64,
    /// Sealed flows that were delivered *and* opened successfully by
    /// the receiver (tag verified, payload decrypted).
    ///
    /// Joins the digest only when `sealed > 0`.
    pub opened: u64,
    /// Sealed flows whose header or ciphertext failed authentication at
    /// the receiver. Always `0` outside tamper-injection tests: the
    /// simulation itself never corrupts a sealed message.
    ///
    /// Joins the digest only when `sealed > 0`.
    pub auth_failures: u64,
    /// Workload span: the last flow's arrival offset, ms.
    pub span_ms: f64,
    /// Wall-clock run time, seconds. **Not** covered by the digest.
    pub elapsed_secs: f64,
    /// Worker threads used. **Not** covered by the digest.
    pub workers: usize,
    /// Route-cache hits. **Not** covered by the digest (racing
    /// planners may double-plan a pair).
    pub cache_hits: u64,
    /// Route-cache misses. **Not** covered by the digest.
    pub cache_misses: u64,
}

impl FleetReport {
    /// An all-zero report with empty histograms: the accumulator that
    /// engines layered on top of this crate (the churn engine's
    /// reactive-repair strategy) fold their own outcome streams into
    /// via [`FleetReport::absorb_outcome`], producing digests on the
    /// same footing as [`run_fleet`]'s.
    pub fn empty() -> Self {
        Self::new()
    }

    fn new() -> Self {
        FleetReport {
            flows: 0,
            reachable: 0,
            route_found: 0,
            delivered: 0,
            checkins: 0,
            // Latencies in ms: 10 µs floor, ~10 % resolution.
            latency_ms: Histogram::new(1e-2, 1.1),
            broadcasts: Histogram::new(1.0, 1.2),
            hops: Histogram::new(1.0, 1.2),
            header_bits: Histogram::new(8.0, 1.1),
            retried: 0,
            recovered: 0,
            retry_attempts: Histogram::new(1.0, 1.2),
            sealed: 0,
            opened: 0,
            auth_failures: 0,
            span_ms: 0.0,
            elapsed_secs: 0.0,
            workers: 0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Folds one flow's outcome in. Must be called in ascending
    /// flow-id order to keep floating-point accumulation canonical —
    /// external engines sort their merged `(id, outcome)` records
    /// exactly like [`run_fleet`] does before folding.
    pub fn absorb_outcome(&mut self, spec: &FlowSpec, outcome: &PairOutcome) {
        self.absorb(spec, outcome);
    }

    fn absorb(&mut self, spec: &FlowSpec, outcome: &PairOutcome) {
        self.flows += 1;
        if spec.kind == FlowKind::PostboxCheckin {
            self.checkins += 1;
        }
        if outcome.reachable {
            self.reachable += 1;
        }
        if outcome.route_found {
            self.route_found += 1;
            self.header_bits.record(outcome.route_bits as f64);
        }
        if let Some(h) = outcome.ideal_hops {
            self.hops.record(h as f64);
        }
        if outcome.delivered {
            self.delivered += 1;
            self.broadcasts.record(outcome.broadcasts as f64);
            if let Some(t) = outcome.latency {
                self.latency_ms.record(t.as_millis_f64());
            }
        }
        if outcome.attempts > 0 {
            self.retry_attempts.record(outcome.attempts as f64);
        }
        if outcome.attempts > 1 {
            self.retried += 1;
            if outcome.delivered {
                self.recovered += 1;
            }
        }
        if outcome.sealed {
            self.sealed += 1;
            if outcome.opened {
                self.opened += 1;
            }
            if outcome.auth_failed {
                self.auth_failures += 1;
            }
        }
        self.span_ms = self.span_ms.max(spec.arrival_ms);
    }

    /// Delivered fraction over all flows.
    pub fn delivery_rate(&self) -> f64 {
        if self.flows == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.flows as f64
    }

    /// Flows executed per wall-clock second.
    pub fn flows_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            return 0.0;
        }
        self.flows as f64 / self.elapsed_secs
    }

    /// A 64-bit digest over every deterministic field: the counters,
    /// the span, and the full state of all four histograms. Equal
    /// digests ⇒ byte-identical aggregate results; the engine's
    /// "N workers == serial" invariant is checked by comparing these.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.mix(self.flows);
        h.mix(self.reachable);
        h.mix(self.route_found);
        h.mix(self.delivered);
        h.mix(self.checkins);
        h.mix(self.span_ms.to_bits());
        h.mix(self.latency_ms.fingerprint());
        h.mix(self.broadcasts.fingerprint());
        h.mix(self.hops.fingerprint());
        h.mix(self.header_bits.fingerprint());
        // Retry statistics join the digest only once a retry actually
        // happened: fault-free runs (where the ladder never fires and
        // `retry_attempts` is degenerate) keep their historical digests,
        // so golden values pinned before fault injection stay valid.
        if self.retried > 0 {
            h.mix(self.retried);
            h.mix(self.recovered);
            h.mix(self.retry_attempts.fingerprint());
        }
        // Sealed-message statistics join only when encryption actually
        // ran, by the same rule: plaintext runs digest exactly as they
        // did before the secure message plane existed.
        if self.sealed > 0 {
            h.mix(self.sealed);
            h.mix(self.opened);
            h.mix(self.auth_failures);
        }
        h.value()
    }

    /// Fraction of retried flows that a later ladder rung recovered.
    pub fn recovery_rate(&self) -> f64 {
        if self.retried == 0 {
            return 0.0;
        }
        self.recovered as f64 / self.retried as f64
    }
}

/// Telemetry harvested from one traced fleet run: the merged metric
/// set plus every captured postmortem, both schedule-independent.
///
/// Per-worker metric sets are merged in worker-id order, and all
/// metric values are integers (addition commutes), so the merged set —
/// and its [`MetricSet::fingerprint`] — is identical across worker
/// counts. Postmortems are sorted by flow id, and each flow's capture
/// decision depends only on the flow itself, so the postmortem vector
/// is identical too.
#[derive(Clone, Debug)]
pub struct FleetTelemetry {
    /// The merged metric registry snapshot.
    pub metrics: MetricSet,
    /// Every captured flow trace, ascending flow id.
    pub postmortems: Vec<Postmortem>,
}

/// What one worker brings home: outcome records, its metric set (when
/// metrics are on), and the postmortems its tracer captured.
#[derive(Default)]
struct WorkerYield {
    records: Vec<(u64, PairOutcome)>,
    metrics: Option<MetricSet>,
    postmortems: Vec<Postmortem>,
}

/// Executes `flows` against `exp` on a worker pool and aggregates.
///
/// Workers claim chunks of the flow vector from an atomic cursor,
/// plan through the shared route cache, simulate with per-flow RNG
/// sub-streams, and stash `(id, outcome)` records locally. After the
/// pool joins, records are merged and folded in flow-id order.
///
/// Telemetry is fully off on this path — byte-identical behavior and
/// allocations to the pre-telemetry engine. Use [`run_fleet_traced`]
/// to also collect metrics and flow traces.
///
/// # Panics
/// Panics on a rejected configuration ([`FleetConfig::validate`] — use
/// [`try_run_fleet`] for a `Result` instead) or when a worker thread
/// panics (the underlying simulation asserted), propagating the
/// failure rather than reporting a truncated aggregate.
pub fn run_fleet(exp: &CityExperiment, flows: &[FlowSpec], cfg: &FleetConfig) -> FleetReport {
    try_run_fleet(exp, flows, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_fleet`] with the config misuse panic turned into a typed
/// error: returns [`FleetError`] instead of starting the pool when the
/// configuration cannot run against this experiment.
///
/// # Panics
/// Still panics when a worker thread panics mid-run.
pub fn try_run_fleet(
    exp: &CityExperiment,
    flows: &[FlowSpec],
    cfg: &FleetConfig,
) -> Result<FleetReport, FleetError> {
    Ok(try_run_fleet_traced(exp, flows, cfg, &TelemetryConfig::off())?.0)
}

/// [`run_fleet`] with observability: per-worker metric sets merged in
/// worker-id order plus flow-trace postmortems, per `tel`.
///
/// The [`FleetReport`] (and its digest) is **bit-identical** to the
/// untraced run — telemetry draws no randomness and feeds nothing
/// back — and the returned [`FleetTelemetry`] is itself deterministic
/// across worker counts. Returns `None` telemetry when `tel` is fully
/// off.
///
/// # Panics
/// Panics on a rejected configuration or when a worker thread panics,
/// as [`run_fleet`] does.
pub fn run_fleet_traced(
    exp: &CityExperiment,
    flows: &[FlowSpec],
    cfg: &FleetConfig,
    tel: &TelemetryConfig,
) -> (FleetReport, Option<FleetTelemetry>) {
    try_run_fleet_traced(exp, flows, cfg, tel).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_fleet_traced`] with configuration misuse as a typed error.
///
/// # Panics
/// Still panics when a worker thread panics mid-run.
pub fn try_run_fleet_traced(
    exp: &CityExperiment,
    flows: &[FlowSpec],
    cfg: &FleetConfig,
    tel: &TelemetryConfig,
) -> Result<(FleetReport, Option<FleetTelemetry>), FleetError> {
    try_run_fleet_on_cache(exp, flows, cfg, &RouteCache::new(), tel)
}

/// [`run_fleet_traced`] against a caller-owned [`RouteCache`] instead
/// of a run-private one — the churn engine's building block: the cache
/// (and its warm plans) persists across epochs while the world mutates
/// between them, with invalidation handled by the caller
/// ([`RouteCache::evict_where`] / [`RouteCache::clear`]).
///
/// `flows` must be sorted by ascending flow id (every generated
/// workload is, and any contiguous epoch slice of one stays so); the
/// report's cache counters are the cache's *cumulative* totals, so
/// per-epoch deltas are the caller's bookkeeping.
///
/// # Panics
/// Panics on a rejected configuration or when a worker thread panics,
/// as [`run_fleet`] does.
pub fn run_fleet_on_cache(
    exp: &CityExperiment,
    flows: &[FlowSpec],
    cfg: &FleetConfig,
    cache: &RouteCache,
    tel: &TelemetryConfig,
) -> (FleetReport, Option<FleetTelemetry>) {
    try_run_fleet_on_cache(exp, flows, cfg, cache, tel).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_fleet_on_cache`] with configuration misuse as a typed error:
/// the config is checked against the experiment before any worker
/// spawns, so a bad combination never panics mid-pool.
///
/// # Panics
/// Still panics when a worker thread panics mid-run.
pub fn try_run_fleet_on_cache(
    exp: &CityExperiment,
    flows: &[FlowSpec],
    cfg: &FleetConfig,
    cache: &RouteCache,
    tel: &TelemetryConfig,
) -> Result<(FleetReport, Option<FleetTelemetry>), FleetError> {
    cfg.validate(exp)?;
    let workers = cfg.effective_workers().max(1);
    let started = Instant::now();

    let yields: Vec<WorkerYield> = if workers == 1 {
        // Serial reference path: no threads, same per-flow code.
        vec![execute_range(
            exp,
            flows,
            cfg,
            cache,
            &AtomicUsize::new(0),
            tel,
        )]
    } else {
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<WorkerYield> = Vec::new();
        slots.resize_with(workers, WorkerYield::default);
        crossbeam::thread::scope(|s| {
            for slot in slots.iter_mut() {
                let cursor = &cursor;
                s.spawn(move |_| {
                    *slot = execute_range(exp, flows, cfg, cache, cursor, tel);
                });
            }
        })
        .expect("fleet worker panicked");
        slots
    };

    // Telemetry merge, in worker-id (slot) order. Counter/bucket adds
    // commute and gauges take max, so the result does not depend on
    // which worker claimed which chunk.
    let telemetry = (!tel.is_off()).then(|| {
        let mut metrics = MetricSet::new();
        let mut postmortems = Vec::new();
        for y in &yields {
            if let Some(m) = &y.metrics {
                metrics.merge(m);
            }
        }
        for y in &yields {
            postmortems.extend(y.postmortems.iter().cloned());
        }
        // Flow ids are unique, so this is a total order.
        postmortems.sort_by_key(|p: &Postmortem| (p.key, p.summary.src, p.summary.dst));
        FleetTelemetry {
            metrics,
            postmortems,
        }
    });

    // Deterministic merge: flatten, order by flow id, fold serially.
    // Every flow yields exactly one record, so the sorted records zip
    // 1:1 with the (ascending-id) flow slice — which keeps the fold
    // correct for epoch sub-slices whose ids don't start at zero.
    let mut merged: Vec<(u64, PairOutcome)> = yields.into_iter().flat_map(|y| y.records).collect();
    merged.sort_unstable_by_key(|(id, _)| *id);

    let mut report = FleetReport::new();
    for ((id, outcome), spec) in merged.iter().zip(flows) {
        debug_assert_eq!(*id, spec.id, "flows must be sorted by ascending id");
        report.absorb(spec, outcome);
    }
    report.elapsed_secs = started.elapsed().as_secs_f64();
    report.workers = workers;
    report.cache_hits = cache.hits();
    report.cache_misses = cache.misses();
    Ok((report, telemetry))
}

/// Folds one flow's outcome into a worker's metric set. Pure per-flow
/// arithmetic on integers, so per-worker sums merge deterministically.
/// Public so custom per-flow engines (the churn engine's reactive
/// strategy) feed the same registry the same way, keeping the
/// traced-vs-untraced digest-equality invariant intact for them too.
pub fn record_flow_metrics(m: &mut MetricSet, o: &PairOutcome) {
    m.inc(tm::FLOWS);
    m.add(tm::BROADCASTS, o.broadcasts);
    if o.attempts == 0 {
        // Never reached the simulator: no route, or the source
        // building went dark.
        m.inc(tm::UNROUTABLE);
    } else {
        m.add(tm::ATTEMPTS, u64::from(o.attempts));
        m.observe(tm::ATTEMPTS_PER_FLOW, u64::from(o.attempts));
        m.gauge_max(tm::MAX_ATTEMPTS, u64::from(o.attempts));
    }
    if o.attempts > 1 {
        m.inc(tm::RETRIED);
        if o.delivered {
            m.inc(tm::RECOVERED);
        }
    }
    if o.delivered {
        m.inc(tm::DELIVERED);
        let rung = o.recovered_by.map(|s| s.rung()).unwrap_or(Rung::First);
        m.inc(tm::rung_delivery_counter(rung));
        if let Some(t) = o.latency {
            m.observe(tm::rung_latency_histogram(rung), t.as_nanos() / 1_000);
        }
        if let Some(ov) = o.overhead {
            m.observe(
                tm::rung_overhead_histogram(rung),
                (ov * 1000.0).round() as u64,
            );
        }
    } else {
        m.inc(tm::FAILED);
        if o.attempts > 0 {
            m.inc(tm::EXHAUSTED);
        }
    }
    if o.sealed {
        m.inc(tm::MSGS_SEALED);
        if o.opened {
            m.inc(tm::MSGS_OPENED);
        }
        if o.auth_failed {
            m.inc(tm::AUTH_FAILURES);
        }
    }
}

/// One worker's loop: claim chunks until the cursor passes the end.
///
/// Each worker owns one [`DeliveryScratch`] reused across every flow
/// it claims, so the steady-state per-flow path performs no heap
/// allocations (the scratch's slabs warm up over the first few flows
/// and are retained after that). Because per-flow RNG sub-streams make
/// outcomes independent of which worker simulates which flow, the
/// scratch reuse is invisible in the fleet digest.
fn execute_range(
    exp: &CityExperiment,
    flows: &[FlowSpec],
    cfg: &FleetConfig,
    cache: &RouteCache,
    cursor: &AtomicUsize,
    tel: &TelemetryConfig,
) -> WorkerYield {
    let seed = cfg.seed;
    let mut out = Vec::with_capacity(flows.len().min(CLAIM_CHUNK * 4));
    let mut scratch = if tel.trace.enabled {
        DeliveryScratch::with_tracing(tel.trace)
    } else {
        DeliveryScratch::new()
    };
    // Planner scratch for cache misses: the search buffers warm up on
    // the first few unseen pairs and are reused for every miss after
    // that (only the cached `PlannedFlow`'s own vectors still
    // allocate — they outlive the worker inside the shared cache).
    let mut plan_scratch = PlanScratch::new();
    let mut metrics = tel.metrics.then(MetricSet::new);
    loop {
        let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
        if start >= flows.len() {
            break;
        }
        let end = (start + CLAIM_CHUNK).min(flows.len());
        out.reserve(end - start);
        for flow in &flows[start..end] {
            let plan = cache.get_or_plan(flow.src, flow.dst, || {
                let mut plan = PlannedFlow::empty(flow.src, flow.dst);
                if cfg.use_hier_planner {
                    exp.plan_flow_hier_into(flow.src, flow.dst, &mut plan_scratch, &mut plan);
                } else {
                    exp.plan_flow_into(flow.src, flow.dst, &mut plan_scratch, &mut plan);
                }
                plan
            });
            let msg_id = substream_seed(seed, DOMAIN_MSG, flow.id);
            let mut rng = SimRng::new(substream_seed(seed, DOMAIN_SIM, flow.id));
            // Key the trace by the flow's workload identity (not the
            // derived msg_id) so sampling and captures are stable and
            // schedule-independent.
            scratch.tracer_mut().set_next_key(flow.id);
            let outcome = if cfg.encrypted {
                exp.simulate_flow_secure_with(&plan, msg_id, &mut rng, &mut scratch)
            } else {
                exp.simulate_flow_with(&plan, msg_id, &mut rng, &mut scratch)
            };
            if let Some(m) = metrics.as_mut() {
                record_flow_metrics(m, &outcome);
            }
            out.push((flow.id, outcome));
        }
    }
    // Fold tracer bookkeeping into this worker's metric set: the
    // captured/dropped totals are sums of per-flow values and the
    // high-water mark is a max over flows, so both stay schedule-
    // independent after the worker-order merge.
    let keys_derived = scratch.keys_derived();
    let tracer = scratch.tracer_mut();
    if let Some(m) = metrics.as_mut() {
        m.add(tm::POSTMORTEMS, tracer.captured());
        m.add(tm::TRACE_DROPPED, tracer.dropped_total());
        m.gauge_max(tm::TRACE_HIGH_WATER, tracer.high_water() as u64);
        // Hier planner work counters. Like the route cache's hit/miss
        // totals these are schedule-dependent (racing workers may
        // double-plan a pair), so they are informational only and
        // excluded from digests. All zero when the flat planner runs.
        let h = plan_scratch.hier_stats();
        m.add(tm::HIER_QUERIES, h.queries);
        m.add(tm::HIER_DIRECT_ROUTES, h.direct_routes);
        m.add(tm::HIER_OVERLAY_SETTLED, h.overlay_settled);
        m.add(tm::HIER_EXPANSIONS, h.expansions);
        // Session-key derivations this worker performed on cache
        // misses. Schedule-dependent for the same reason as the route
        // cache's counters (racing workers may double-derive a pair),
        // so informational only and excluded from digests.
        m.add(tm::KEYS_DERIVED, keys_derived);
    }
    WorkerYield {
        records: out,
        metrics,
        postmortems: tracer.take_postmortems(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_flows, FlowModel, WorkloadConfig};
    use citymesh_core::{ExperimentConfig, FaultScenario, RetryPolicy};
    use citymesh_map::CityArchetype;

    fn world(seed: u64) -> CityExperiment {
        let map = CityArchetype::SurveyDowntown.generate(seed);
        CityExperiment::prepare(
            map,
            ExperimentConfig {
                seed,
                ..ExperimentConfig::default()
            },
        )
    }

    fn faulted_world(seed: u64, scenario: FaultScenario) -> CityExperiment {
        let map = CityArchetype::SurveyDowntown.generate(seed);
        CityExperiment::prepare(
            map,
            ExperimentConfig {
                seed,
                faults: Some(scenario),
                ..ExperimentConfig::default()
            },
        )
    }

    fn workload(exp: &CityExperiment, flows: usize, seed: u64) -> Vec<FlowSpec> {
        generate_flows(
            exp.map().len(),
            &WorkloadConfig {
                flows,
                model: FlowModel::Hotspot {
                    hotspots: 6,
                    exponent: 1.2,
                    rate_hz: 200.0,
                },
                seed,
            },
        )
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let exp = world(1);
        let flows = workload(&exp, 120, 1);
        let serial = run_fleet(
            &exp,
            &flows,
            &FleetConfig {
                workers: 1,
                seed: 1,
                ..FleetConfig::default()
            },
        );
        let parallel = run_fleet(
            &exp,
            &flows,
            &FleetConfig {
                workers: 4,
                seed: 1,
                ..FleetConfig::default()
            },
        );
        assert_eq!(serial.digest(), parallel.digest());
        assert_eq!(serial.flows, 120);
        assert_eq!(serial.delivered, parallel.delivered);
        assert_eq!(
            serial.latency_ms.fingerprint(),
            parallel.latency_ms.fingerprint()
        );
    }

    #[test]
    fn different_seed_changes_digest() {
        let exp = world(2);
        let flows = workload(&exp, 60, 2);
        let a = run_fleet(
            &exp,
            &flows,
            &FleetConfig {
                workers: 2,
                seed: 2,
                ..FleetConfig::default()
            },
        );
        let b = run_fleet(
            &exp,
            &flows,
            &FleetConfig {
                workers: 2,
                seed: 3,
                ..FleetConfig::default()
            },
        );
        assert_ne!(
            a.digest(),
            b.digest(),
            "simulation seed must reach the outcomes"
        );
    }

    #[test]
    fn report_counters_are_coherent() {
        let exp = world(3);
        let flows = workload(&exp, 100, 3);
        let r = run_fleet(
            &exp,
            &flows,
            &FleetConfig {
                workers: 2,
                seed: 3,
                ..FleetConfig::default()
            },
        );
        assert_eq!(r.flows, 100);
        assert!(r.delivered <= r.route_found);
        assert!(r.route_found <= r.flows);
        assert!(r.reachable <= r.flows);
        assert!(r.delivered > 0, "downtown should deliver something");
        assert_eq!(r.broadcasts.len(), r.delivered);
        assert_eq!(r.header_bits.len(), r.route_found);
        assert!(r.delivery_rate() > 0.0 && r.delivery_rate() <= 1.0);
        assert!(r.span_ms > 0.0);
        assert!(r.elapsed_secs > 0.0 && r.flows_per_sec() > 0.0);
    }

    #[test]
    fn repeated_pairs_hit_the_route_cache() {
        let exp = world(4);
        // 200 flows cycling through 10 distinct pairs: the cache must
        // plan each pair once and serve the rest as hits.
        let flows: Vec<FlowSpec> = (0..200u64)
            .map(|id| FlowSpec {
                id,
                src: (id % 10) as u32,
                dst: 10 + (id % 10) as u32,
                kind: crate::workload::FlowKind::Data,
                arrival_ms: id as f64,
            })
            .collect();
        let r = run_fleet(
            &exp,
            &flows,
            &FleetConfig {
                workers: 2,
                seed: 4,
                ..FleetConfig::default()
            },
        );
        assert_eq!(r.cache_hits + r.cache_misses, 200);
        assert!(
            r.cache_misses <= 10 * 2,
            "at most one plan per pair (plus benign races): {} misses",
            r.cache_misses
        );
        assert!(r.cache_hits >= 180, "{} hits", r.cache_hits);
    }

    #[test]
    fn faulted_fleet_is_worker_count_invariant() {
        let mut scenario = FaultScenario::iid(0.25);
        scenario.retry = RetryPolicy::ladder();
        let exp = faulted_world(6, scenario);
        let flows = workload(&exp, 150, 6);
        let digests: Vec<u64> = [1usize, 4, 8]
            .iter()
            .map(|&w| {
                run_fleet(
                    &exp,
                    &flows,
                    &FleetConfig {
                        workers: w,
                        seed: 6,
                        ..FleetConfig::default()
                    },
                )
                .digest()
            })
            .collect();
        assert_eq!(digests[0], digests[1], "1 vs 4 workers");
        assert_eq!(digests[0], digests[2], "1 vs 8 workers");
    }

    #[test]
    fn faulted_run_records_retries_in_digest() {
        let mut scenario = FaultScenario::iid(0.3);
        scenario.retry = RetryPolicy::ladder();
        let exp = faulted_world(7, scenario);
        let flows = workload(&exp, 150, 7);
        let r = run_fleet(
            &exp,
            &flows,
            &FleetConfig {
                workers: 2,
                seed: 7,
                ..FleetConfig::default()
            },
        );
        assert!(
            r.retried > 0,
            "a quarter of APs dark must force some retries"
        );
        assert!(r.recovered <= r.retried);
        assert!(r.recovery_rate() >= 0.0 && r.recovery_rate() <= 1.0);
        assert!(
            r.retry_attempts.len() <= flows.len() as u64 && r.retry_attempts.len() >= r.retried,
            "attempt histogram covers simulated flows: {} entries",
            r.retry_attempts.len()
        );
        // The conditional digest block must actually fire.
        let mut clean = r.clone();
        clean.retried = 0;
        assert_ne!(
            r.digest(),
            clean.digest(),
            "retry stats must reach the digest when retries happened"
        );
    }

    #[test]
    fn fault_free_digest_ignores_retry_fields() {
        // Fault-free runs never retry, so the retry block must stay out
        // of the digest — this is what keeps pre-fault golden digests
        // (e.g. the CI 500-flow pin) valid.
        let exp = world(8);
        let flows = workload(&exp, 80, 8);
        let r = run_fleet(
            &exp,
            &flows,
            &FleetConfig {
                workers: 2,
                seed: 8,
                ..FleetConfig::default()
            },
        );
        assert_eq!(r.retried, 0);
        let mut tweaked = r.clone();
        tweaked.recovered = 99;
        assert_eq!(
            r.digest(),
            tweaked.digest(),
            "with zero retries the retry fields must not perturb the digest"
        );
    }

    #[test]
    fn telemetry_never_perturbs_the_digest() {
        // Healthy world: traced and untraced digests must be equal.
        let exp = world(1);
        let flows = workload(&exp, 120, 1);
        let cfg = FleetConfig {
            workers: 2,
            seed: 1,
            ..FleetConfig::default()
        };
        let plain = run_fleet(&exp, &flows, &cfg);
        let (traced, telem) = run_fleet_traced(&exp, &flows, &cfg, &TelemetryConfig::full(5));
        assert_eq!(plain.digest(), traced.digest(), "healthy world");
        let telem = telem.expect("telemetry requested");
        assert_eq!(telem.metrics.counter(tm::FLOWS), 120);
        assert_eq!(telem.metrics.counter(tm::DELIVERED), traced.delivered);

        // Faulted world: same invariant under the full retry ladder.
        let mut scenario = FaultScenario::iid(0.25);
        scenario.retry = RetryPolicy::ladder();
        let fexp = faulted_world(6, scenario);
        let fflows = workload(&fexp, 150, 6);
        let fcfg = FleetConfig {
            workers: 4,
            seed: 6,
            ..FleetConfig::default()
        };
        let fplain = run_fleet(&fexp, &fflows, &fcfg);
        let (ftraced, ftel) = run_fleet_traced(&fexp, &fflows, &fcfg, &TelemetryConfig::full(7));
        assert_eq!(fplain.digest(), ftraced.digest(), "faulted world");
        let ftel = ftel.expect("telemetry requested");
        assert_eq!(ftel.metrics.counter(tm::RETRIED), ftraced.retried);
        assert_eq!(ftel.metrics.counter(tm::RECOVERED), ftraced.recovered);
        assert!(
            !ftel.postmortems.is_empty(),
            "a faulted run must capture failed/retried flows"
        );
    }

    #[test]
    fn telemetry_is_worker_count_invariant() {
        let mut scenario = FaultScenario::iid(0.25);
        scenario.retry = RetryPolicy::ladder();
        let exp = faulted_world(6, scenario);
        let flows = workload(&exp, 150, 6);
        let runs: Vec<FleetTelemetry> = [1usize, 4, 8]
            .iter()
            .map(|&w| {
                run_fleet_traced(
                    &exp,
                    &flows,
                    &FleetConfig {
                        workers: w,
                        seed: 6,
                        ..FleetConfig::default()
                    },
                    &TelemetryConfig::full(5),
                )
                .1
                .expect("telemetry requested")
            })
            .collect();
        for (i, t) in runs.iter().enumerate().skip(1) {
            assert_eq!(
                runs[0].metrics.fingerprint(),
                t.metrics.fingerprint(),
                "metric fingerprint, 1 vs {} workers",
                [1, 4, 8][i]
            );
            assert_eq!(
                runs[0].postmortems,
                t.postmortems,
                "postmortems, 1 vs {} workers",
                [1, 4, 8][i]
            );
        }
        // Registry coherence on the merged set.
        let m = &runs[0].metrics;
        assert_eq!(
            m.counter(tm::DELIVERED) + m.counter(tm::FAILED),
            m.counter(tm::FLOWS)
        );
        assert_eq!(
            m.counter(tm::RUNG_FIRST)
                + m.counter(tm::RUNG_RESEND)
                + m.counter(tm::RUNG_WIDEN)
                + m.counter(tm::RUNG_REPLAN),
            m.counter(tm::DELIVERED)
        );
        assert_eq!(m.counter(tm::POSTMORTEMS), runs[0].postmortems.len() as u64);
    }

    #[test]
    fn postmortem_json_names_the_resolving_rung() {
        let mut scenario = FaultScenario::iid(0.3);
        scenario.retry = RetryPolicy::ladder();
        let exp = faulted_world(7, scenario);
        let flows = workload(&exp, 150, 7);
        let (report, telem) = run_fleet_traced(
            &exp,
            &flows,
            &FleetConfig {
                workers: 2,
                seed: 7,
                ..FleetConfig::default()
            },
            &TelemetryConfig::full(0),
        );
        assert!(report.retried > 0, "scenario must force retries");
        let telem = telem.expect("telemetry requested");
        // Prefer a complete (no-eviction) recovered trace; every run of
        // this scenario has many.
        let recovered = telem
            .postmortems
            .iter()
            .find(|p| p.summary.recovered_by.is_some() && p.dropped_events == 0)
            .expect("some retried flow recovered with a complete trace");
        let json = recovered.to_json();
        let rung = recovered.summary.recovered_by.unwrap().label();
        assert!(
            json.contains(&format!("\"outcome\":\"recovered-{rung}\"")),
            "postmortem must name the recovering rung: {json}"
        );
        assert!(json.contains("\"type\":\"attempt\""));
        if let Some(exhausted) = telem
            .postmortems
            .iter()
            .find(|p| !p.summary.delivered && p.summary.attempts > 0)
        {
            assert!(
                exhausted.to_json().contains("\"outcome\":\"exhausted\""),
                "an exhausted flow must say so"
            );
        }
    }

    #[test]
    fn metrics_only_config_skips_tracing() {
        let exp = world(3);
        let flows = workload(&exp, 60, 3);
        let (_, telem) = run_fleet_traced(
            &exp,
            &flows,
            &FleetConfig {
                workers: 2,
                seed: 3,
                ..FleetConfig::default()
            },
            &TelemetryConfig::metrics_only(),
        );
        let telem = telem.expect("metrics requested");
        assert_eq!(telem.metrics.counter(tm::FLOWS), 60);
        assert!(telem.postmortems.is_empty());
        assert_eq!(telem.metrics.counter(tm::POSTMORTEMS), 0);
    }

    #[test]
    fn hier_planner_matches_flat_digest() {
        use citymesh_core::HierParams;
        let mut exp = world(9);
        exp.enable_hier(&HierParams::default());
        let flows = workload(&exp, 150, 9);
        let flat = run_fleet_traced(
            &exp,
            &flows,
            &FleetConfig {
                workers: 1,
                seed: 9,
                ..FleetConfig::default()
            },
            &TelemetryConfig::metrics_only(),
        );
        let hier = run_fleet_traced(
            &exp,
            &flows,
            &FleetConfig {
                workers: 1,
                seed: 9,
                use_hier_planner: true,
                ..FleetConfig::default()
            },
            &TelemetryConfig::metrics_only(),
        );
        // The hierarchical planner is exact, so swapping it in changes
        // no route and no outcome: the reports are bit-identical.
        assert_eq!(flat.0.digest(), hier.0.digest());
        let fm = flat.1.expect("metrics requested").metrics;
        let hm = hier.1.expect("metrics requested").metrics;
        assert_eq!(fm.counter(tm::HIER_QUERIES), 0, "flat run plans flat");
        assert!(hm.counter(tm::HIER_QUERIES) > 0, "hier run must use hier");
        assert!(hm.counter(tm::HIER_EXPANSIONS) > 0);
        // Parallel hier runs still merge to the same digest.
        let par = run_fleet(
            &exp,
            &flows,
            &FleetConfig {
                workers: 4,
                seed: 9,
                use_hier_planner: true,
                ..FleetConfig::default()
            },
        );
        assert_eq!(par.digest(), hier.0.digest());
    }

    #[test]
    #[should_panic(expected = "enable_hier")]
    fn hier_flag_without_enable_hier_panics() {
        let exp = world(10);
        let flows = workload(&exp, 4, 10);
        run_fleet(
            &exp,
            &flows,
            &FleetConfig {
                workers: 1,
                seed: 10,
                use_hier_planner: true,
                ..FleetConfig::default()
            },
        );
    }

    #[test]
    fn hier_flag_without_enable_hier_is_a_typed_error() {
        let exp = world(10);
        let flows = workload(&exp, 4, 10);
        let cfg = FleetConfig {
            workers: 1,
            seed: 10,
            use_hier_planner: true,
            ..FleetConfig::default()
        };
        assert_eq!(cfg.validate(&exp), Err(FleetError::HierPlannerNotEnabled));
        let err = try_run_fleet(&exp, &flows, &cfg).unwrap_err();
        assert_eq!(err, FleetError::HierPlannerNotEnabled);
        assert!(
            err.to_string().contains("enable_hier"),
            "the error message must name the missing prerequisite"
        );
        // The same config runs fine once the overlay exists, and the
        // typed path returns the same report as the panicking one.
        let mut hier_exp = world(10);
        hier_exp.enable_hier(&citymesh_core::HierParams::default());
        assert_eq!(cfg.validate(&hier_exp), Ok(()));
        let ok = try_run_fleet(&hier_exp, &flows, &cfg).expect("hier enabled");
        assert_eq!(ok.digest(), run_fleet(&hier_exp, &flows, &cfg).digest());
    }

    #[test]
    fn zero_workers_resolves_to_available_parallelism() {
        let cfg = FleetConfig::default();
        assert!(cfg.effective_workers() >= 1);
    }

    #[test]
    fn empty_workload_yields_empty_report() {
        let exp = world(5);
        let r = run_fleet(
            &exp,
            &[],
            &FleetConfig {
                workers: 3,
                seed: 5,
                ..FleetConfig::default()
            },
        );
        assert_eq!(r.flows, 0);
        assert_eq!(r.delivery_rate(), 0.0);
        assert!(r.latency_ms.is_empty());
    }
}
