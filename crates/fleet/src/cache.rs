//! Sharded concurrent route cache.
//!
//! Route planning (Dijkstra + conduit compression) dominates per-flow
//! cost, yet is a pure function of the `(src, dst)` pair — hotspot
//! workloads repeat pairs constantly. [`RouteCache`] memoizes
//! [`PlannedFlow`]s behind `parking_lot::RwLock`-guarded shards so
//! concurrent workers mostly take uncontended read locks, and two
//! workers racing to plan the same missing pair both succeed (last
//! write wins — the value is identical by purity, so the race is
//! benign and determinism is unaffected).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use citymesh_core::PlannedFlow;
use parking_lot::RwLock;

/// Number of independently locked shards. A small power of two:
/// enough to keep a handful of workers off each other's locks,
/// cheap enough to be irrelevant at one.
const SHARDS: usize = 16;

/// One shard: a plain map behind its own lock.
type Shard = RwLock<HashMap<(u32, u32), Arc<PlannedFlow>>>;

/// A concurrent `(src, dst) → Arc<PlannedFlow>` map.
pub struct RouteCache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for RouteCache {
    fn default() -> Self {
        Self::new()
    }
}

impl RouteCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        RouteCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, key: (u32, u32)) -> &Shard {
        // SplitMix-style scramble of the pair; low bits pick the shard.
        let mut z = (((key.0 as u64) << 32) | key.1 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 29;
        &self.shards[(z as usize) % SHARDS]
    }

    /// Returns the plan for `(src, dst)`, computing it with `plan` on
    /// a miss. The planner runs *outside* any lock, so a slow Dijkstra
    /// never blocks readers of the same shard.
    pub fn get_or_plan(
        &self,
        src: u32,
        dst: u32,
        plan: impl FnOnce() -> PlannedFlow,
    ) -> Arc<PlannedFlow> {
        let shard = self.shard((src, dst));
        if let Some(found) = shard.read().get(&(src, dst)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let planned = Arc::new(plan());
        let mut guard = shard.write();
        // A racing worker may have inserted meanwhile; keep whichever
        // is present so all callers share one allocation.
        Arc::clone(
            guard
                .entry((src, dst))
                .or_insert_with(|| Arc::clone(&planned)),
        )
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= distinct pairs planned, absent races).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evicts every cached plan matching `pred` and returns how many
    /// were dropped — the incremental-invalidation primitive for world
    /// churn: after an event, only plans whose geometry the event
    /// could have touched need to go; everything else stays warm.
    ///
    /// Shards are drained one at a time under their own write locks,
    /// so concurrent readers of other shards are unaffected. Callers
    /// running between parallel epochs (the churn engine's barrier)
    /// see a fully quiesced cache anyway, which is what makes the
    /// eviction count deterministic.
    pub fn evict_where(&self, mut pred: impl FnMut(&PlannedFlow) -> bool) -> u64 {
        let mut evicted = 0u64;
        for shard in &self.shards {
            let mut guard = shard.write();
            let before = guard.len();
            guard.retain(|_, plan| !pred(plan));
            evicted += (before - guard.len()) as u64;
        }
        evicted
    }

    /// Drops every cached plan and returns how many there were — the
    /// blunt full-flush invalidation baseline that
    /// [`RouteCache::evict_where`] is measured against.
    pub fn clear(&self) -> u64 {
        let mut evicted = 0u64;
        for shard in &self.shards {
            let mut guard = shard.write();
            evicted += guard.len() as u64;
            guard.clear();
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_plan(src: u32, dst: u32) -> PlannedFlow {
        let mut plan = PlannedFlow::empty(src, dst);
        plan.reachable = true;
        plan.route_len = 2;
        plan.waypoints = vec![src, dst];
        plan.route_bits = 64;
        plan
    }

    #[test]
    fn caches_and_counts() {
        let cache = RouteCache::new();
        let mut planned = 0;
        for _ in 0..3 {
            let p = cache.get_or_plan(1, 2, || {
                planned += 1;
                dummy_plan(1, 2)
            });
            assert_eq!((p.src, p.dst), (1, 2));
        }
        assert_eq!(planned, 1, "planner must run once per pair");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_pairs_get_distinct_entries() {
        let cache = RouteCache::new();
        for src in 0..20u32 {
            for dst in 0..20u32 {
                if src != dst {
                    cache.get_or_plan(src, dst, || dummy_plan(src, dst));
                }
            }
        }
        assert_eq!(cache.len(), 20 * 19);
        assert_eq!(cache.misses(), 20 * 19);
        // Directionality matters: (a, b) and (b, a) are separate.
        let p = cache.get_or_plan(3, 4, || unreachable!("must be cached"));
        assert_eq!((p.src, p.dst), (3, 4));
    }

    #[test]
    fn eviction_is_targeted_and_counted() {
        let cache = RouteCache::new();
        for src in 0..10u32 {
            for dst in 0..10u32 {
                if src != dst {
                    cache.get_or_plan(src, dst, || dummy_plan(src, dst));
                }
            }
        }
        let total = 10 * 9;
        assert_eq!(cache.len(), total);

        // Evict everything touching building 3 (as src or dst).
        let evicted = cache.evict_where(|p| p.src == 3 || p.dst == 3);
        assert_eq!(evicted, 18, "9 routes out of 3 plus 9 routes into 3");
        assert_eq!(cache.len(), total - 18);
        // Survivors are still served from cache; victims re-plan.
        cache.get_or_plan(1, 2, || unreachable!("must have survived"));
        let mut replanned = false;
        cache.get_or_plan(3, 4, || {
            replanned = true;
            dummy_plan(3, 4)
        });
        assert!(replanned, "evicted pair must be planned again");

        let flushed = cache.clear();
        assert_eq!(flushed as usize, total - 18 + 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_access_shares_one_allocation() {
        let cache = Arc::new(RouteCache::new());
        let ptrs: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    s.spawn(move || {
                        let p = cache.get_or_plan(7, 9, || dummy_plan(7, 9));
                        Arc::as_ptr(&p) as usize
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            ptrs.windows(2).all(|w| w[0] == w[1]),
            "all threads must share the winning insertion"
        );
        assert_eq!(cache.len(), 1);
    }
}
