//! citymesh-fleet: a parallel city-scale traffic engine with
//! deterministic sharded workloads.
//!
//! The paper's evaluation (§4) simulates 50 pairs per city — enough
//! for Figure 6, far from the "heavy traffic from millions of users"
//! a real disaster brings. This crate closes that gap: it generates
//! large synthetic flow sets from configurable traffic models and
//! pushes them through the full CityMesh routing + delivery
//! simulation on a pool of worker threads, producing aggregate
//! latency / broadcast / hop / header-size distributions.
//!
//! The design constraint everything else bends around is
//! **schedule-independent determinism**: the same `(world, workload,
//! seed)` triple yields a byte-identical [`FleetReport`] on 1 worker
//! or 8 (see [`FleetReport::digest`]). Workloads get it from per-flow
//! RNG sub-streams ([`citymesh_simcore::substream_seed`]); execution
//! gets it by keeping shared state RNG-free (the memoized route
//! cache) and aggregating in canonical flow-id order after the pool
//! joins.
//!
//! ```
//! use citymesh_core::{CityExperiment, ExperimentConfig};
//! use citymesh_fleet::{run_fleet, FleetConfig, FlowModel, WorkloadConfig};
//! use citymesh_map::CityArchetype;
//!
//! let map = CityArchetype::SurveyDowntown.generate(1);
//! let exp = CityExperiment::prepare(map, ExperimentConfig::default());
//! let flows = citymesh_fleet::generate_flows(
//!     exp.map().len(),
//!     &WorkloadConfig {
//!         flows: 200,
//!         model: FlowModel::Hotspot { hotspots: 6, exponent: 1.2, rate_hz: 100.0 },
//!         seed: 42,
//!     },
//! );
//! let serial = run_fleet(&exp, &flows, &FleetConfig { workers: 1, seed: 42, ..FleetConfig::default() });
//! let parallel = run_fleet(&exp, &flows, &FleetConfig { workers: 4, seed: 42, ..FleetConfig::default() });
//! assert_eq!(serial.digest(), parallel.digest());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod workload;

pub use cache::RouteCache;
pub use engine::{
    record_flow_metrics, run_fleet, run_fleet_on_cache, run_fleet_traced, try_run_fleet,
    try_run_fleet_on_cache, try_run_fleet_traced, FleetConfig, FleetError, FleetReport,
    FleetTelemetry, DOMAIN_MSG, DOMAIN_SIM,
};
pub use workload::{
    generate_flows, try_generate_flows, FlowKind, FlowModel, FlowSpec, WorkloadConfig,
    WorkloadError,
};
