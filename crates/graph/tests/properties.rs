//! Property-based tests for the graph crate.

use citymesh_graph::{
    astar, astar_path_into, bfs, bfs_distance_to, connected_components, dijkstra,
    dijkstra_path_into, Graph, PlannerScratch, UnionFind,
};
use proptest::prelude::*;

/// A random undirected graph as (n, edge list).
fn random_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.0..100.0f64), 0..120);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut g = Graph::new(n);
    for &(u, v, w) in edges {
        g.add_edge(u, v, w);
    }
    g
}

proptest! {
    /// On unit weights, Dijkstra and BFS agree everywhere.
    #[test]
    fn dijkstra_equals_bfs_on_unit_weights((n, edges) in random_graph()) {
        let mut g = Graph::new(n);
        for &(u, v, _) in &edges {
            g.add_edge(u, v, 1.0);
        }
        let d = dijkstra(&g, 0);
        let b = bfs(&g, 0);
        for v in 0..n {
            prop_assert_eq!(d.dist[v], b.dist[v], "vertex {}", v);
        }
    }

    /// Dijkstra distances satisfy the triangle inequality over edges:
    /// dist[v] ≤ dist[u] + w(u,v) for every edge.
    #[test]
    fn dijkstra_relaxed_fixpoint((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let r = dijkstra(&g, 0);
        for u in 0..n as u32 {
            if !r.dist[u as usize].is_finite() { continue; }
            for e in g.neighbors(u) {
                prop_assert!(
                    r.dist[e.to as usize] <= r.dist[u as usize] + e.weight + 1e-9,
                    "edge {}->{} violates fixpoint", u, e.to
                );
            }
        }
    }

    /// Reconstructed path edge weights sum to the reported distance.
    #[test]
    fn dijkstra_path_cost_matches_distance((n, edges) in random_graph(), target in 0u32..40) {
        let g = build(n, &edges);
        let target = target % n as u32;
        let r = dijkstra(&g, 0);
        if let Some(path) = r.path_to(target) {
            let mut cost = 0.0;
            for w in path.windows(2) {
                // Minimum-weight parallel edge is what Dijkstra used.
                let best = g
                    .neighbors(w[0])
                    .iter()
                    .filter(|e| e.to == w[1])
                    .map(|e| e.weight)
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(best.is_finite(), "path uses a non-edge");
                cost += best;
            }
            prop_assert!((cost - r.dist[target as usize]).abs() < 1e-6);
        }
    }

    /// A* with the zero heuristic returns a path of the same cost as
    /// Dijkstra whenever one exists.
    #[test]
    fn astar_zero_heuristic_cost_matches((n, edges) in random_graph(), target in 0u32..40) {
        let g = build(n, &edges);
        let target = target % n as u32;
        let d = dijkstra(&g, 0);
        let a = astar(&g, 0, target, |_| 0.0);
        prop_assert_eq!(a.is_some(), d.dist[target as usize].is_finite());
    }

    /// Union-find component structure matches BFS components.
    #[test]
    fn union_find_matches_components((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let mut uf = UnionFind::new(n);
        for u in 0..n as u32 {
            for e in g.neighbors(u) {
                uf.union(u, e.to);
            }
        }
        let (labels, count) = connected_components(&g);
        prop_assert_eq!(uf.num_components(), count);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                prop_assert_eq!(
                    labels[u as usize] == labels[v as usize],
                    uf.connected(u, v),
                    "u={} v={}", u, v
                );
            }
        }
    }

    /// A synthetic city: random building centroids joined within a gap
    /// radius with cubed-distance weights (exactly how `BuildingGraph`
    /// weighs edges). Goal-directed A* with the Euclidean heuristic
    /// must return paths *bit-identical* to Dijkstra — same vertices in
    /// the same order — for every reachable pair, and `None`-equivalent
    /// otherwise. One shared scratch serves every query.
    #[test]
    fn astar_bit_identical_to_dijkstra_on_synthetic_cities(
        pts in proptest::collection::vec((0.0..400.0f64, 0.0..400.0f64), 2..40),
        exponent in 1.0..4.0f64,
        pairs in proptest::collection::vec((0usize..40, 0usize..40), 1..12),
    ) {
        let n = pts.len();
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = ((pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2)).sqrt();
                if d <= 120.0 {
                    g.add_edge(i as u32, j as u32, d.max(1.0).powf(exponent));
                }
            }
        }
        let mut scratch = PlannerScratch::new();
        let mut d_path = Vec::new();
        let mut a_path = Vec::new();
        for (s, t) in pairs {
            let (s, t) = ((s % n) as u32, (t % n) as u32);
            let found = dijkstra_path_into(&g, s, t, &mut scratch, &mut d_path);
            // Euclidean straight-line distance: admissible and strictly
            // consistent for exponent ≥ 1 (weights are max(d,1)^e ≥ d).
            let (tx, ty) = pts[t as usize];
            let h = |v: u32| {
                let (x, y) = pts[v as usize];
                ((x - tx).powi(2) + (y - ty).powi(2)).sqrt()
            };
            let a_found = astar_path_into(&g, s, t, h, &mut scratch, &mut a_path);
            prop_assert_eq!(found, a_found, "reachability diverged for {}->{}", s, t);
            prop_assert_eq!(&d_path, &a_path, "path diverged for {}->{}", s, t);
        }
    }

    /// The scratch kernels agree with the allocating baselines on
    /// arbitrary graphs (parallel edges, self-loops, zero weights):
    /// same path cost and same reachability, and `bfs_distance_to`
    /// equals the full-BFS minimum over the accepting set.
    #[test]
    fn scratch_kernels_match_allocating_baselines(
        (n, edges) in random_graph(),
        target in 0u32..40,
        accept_mod in 2u32..5,
    ) {
        let g = build(n, &edges);
        let target = target % n as u32;
        let d = dijkstra(&g, 0);
        let mut scratch = PlannerScratch::new();
        let mut path = Vec::new();
        let found = dijkstra_path_into(&g, 0, target, &mut scratch, &mut path);
        prop_assert_eq!(found, d.dist[target as usize].is_finite());
        if found {
            let mut cost = 0.0;
            for w in path.windows(2) {
                let best = g
                    .neighbors(w[0])
                    .iter()
                    .filter(|e| e.to == w[1])
                    .map(|e| e.weight)
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(best.is_finite(), "path uses a non-edge");
                cost += best;
            }
            prop_assert!((cost - d.dist[target as usize]).abs() < 1e-6);
        }
        let b = bfs(&g, 0);
        let expected = (0..n as u32)
            .filter(|v| v % accept_mod == 0 && b.dist[*v as usize].is_finite())
            .map(|v| b.dist[v as usize] as u64)
            .min();
        prop_assert_eq!(
            bfs_distance_to(&g, 0, |v| v % accept_mod == 0, &mut scratch),
            expected
        );
    }

    /// BFS distance from the source to itself is 0 and every reachable
    /// vertex has a parent chain back to the source.
    #[test]
    fn bfs_parent_chains_terminate((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let r = bfs(&g, 0);
        prop_assert_eq!(r.dist[0], 0.0);
        for v in 0..n as u32 {
            if r.dist[v as usize].is_finite() {
                let path = r.path_to(v).expect("reachable");
                prop_assert_eq!(path[0], 0);
                prop_assert_eq!(*path.last().unwrap(), v);
                prop_assert_eq!(path.len() as f64 - 1.0, r.dist[v as usize]);
            }
        }
    }
}
