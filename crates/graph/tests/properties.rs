//! Property-based tests for the graph crate.

use citymesh_graph::{astar, bfs, connected_components, dijkstra, Graph, UnionFind};
use proptest::prelude::*;

/// A random undirected graph as (n, edge list).
fn random_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.0..100.0f64), 0..120);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut g = Graph::new(n);
    for &(u, v, w) in edges {
        g.add_edge(u, v, w);
    }
    g
}

proptest! {
    /// On unit weights, Dijkstra and BFS agree everywhere.
    #[test]
    fn dijkstra_equals_bfs_on_unit_weights((n, edges) in random_graph()) {
        let mut g = Graph::new(n);
        for &(u, v, _) in &edges {
            g.add_edge(u, v, 1.0);
        }
        let d = dijkstra(&g, 0);
        let b = bfs(&g, 0);
        for v in 0..n {
            prop_assert_eq!(d.dist[v], b.dist[v], "vertex {}", v);
        }
    }

    /// Dijkstra distances satisfy the triangle inequality over edges:
    /// dist[v] ≤ dist[u] + w(u,v) for every edge.
    #[test]
    fn dijkstra_relaxed_fixpoint((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let r = dijkstra(&g, 0);
        for u in 0..n as u32 {
            if !r.dist[u as usize].is_finite() { continue; }
            for e in g.neighbors(u) {
                prop_assert!(
                    r.dist[e.to as usize] <= r.dist[u as usize] + e.weight + 1e-9,
                    "edge {}->{} violates fixpoint", u, e.to
                );
            }
        }
    }

    /// Reconstructed path edge weights sum to the reported distance.
    #[test]
    fn dijkstra_path_cost_matches_distance((n, edges) in random_graph(), target in 0u32..40) {
        let g = build(n, &edges);
        let target = target % n as u32;
        let r = dijkstra(&g, 0);
        if let Some(path) = r.path_to(target) {
            let mut cost = 0.0;
            for w in path.windows(2) {
                // Minimum-weight parallel edge is what Dijkstra used.
                let best = g
                    .neighbors(w[0])
                    .iter()
                    .filter(|e| e.to == w[1])
                    .map(|e| e.weight)
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(best.is_finite(), "path uses a non-edge");
                cost += best;
            }
            prop_assert!((cost - r.dist[target as usize]).abs() < 1e-6);
        }
    }

    /// A* with the zero heuristic returns a path of the same cost as
    /// Dijkstra whenever one exists.
    #[test]
    fn astar_zero_heuristic_cost_matches((n, edges) in random_graph(), target in 0u32..40) {
        let g = build(n, &edges);
        let target = target % n as u32;
        let d = dijkstra(&g, 0);
        let a = astar(&g, 0, target, |_| 0.0);
        prop_assert_eq!(a.is_some(), d.dist[target as usize].is_finite());
    }

    /// Union-find component structure matches BFS components.
    #[test]
    fn union_find_matches_components((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let mut uf = UnionFind::new(n);
        for u in 0..n as u32 {
            for e in g.neighbors(u) {
                uf.union(u, e.to);
            }
        }
        let (labels, count) = connected_components(&g);
        prop_assert_eq!(uf.num_components(), count);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                prop_assert_eq!(
                    labels[u as usize] == labels[v as usize],
                    uf.connected(u, v),
                    "u={} v={}", u, v
                );
            }
        }
    }

    /// BFS distance from the source to itself is 0 and every reachable
    /// vertex has a parent chain back to the source.
    #[test]
    fn bfs_parent_chains_terminate((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let r = bfs(&g, 0);
        prop_assert_eq!(r.dist[0], 0.0);
        for v in 0..n as u32 {
            if r.dist[v as usize].is_finite() {
                let path = r.path_to(v).expect("reachable");
                prop_assert_eq!(path[0], 0);
                prop_assert_eq!(*path.last().unwrap(), v);
                prop_assert_eq!(path.len() as f64 - 1.0, r.dist[v as usize]);
            }
        }
    }
}
