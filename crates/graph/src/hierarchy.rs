//! District partition + border-node overlay: hierarchical routing.
//!
//! Flat point-to-point search is linear in the searched corridor, and
//! the corridor grows with the city. At metro scale (100k+ buildings)
//! even a well-guided A* touches tens of thousands of vertices per
//! query. This module collapses that cost the way Netsukuku's fractal
//! levels collapse routing state: split the graph into **districts**,
//! precompute how each district is crossed, and answer queries on a
//! much smaller **overlay** of district border nodes.
//!
//! # Construction
//!
//! * [`Partition::grid`] deterministically assigns every vertex to a
//!   grid cell ("district") of roughly `target_district_size` members.
//! * [`Hierarchy::build`] finds the **border nodes** — vertices with at
//!   least one edge into another district — and connects them with two
//!   kinds of overlay arcs:
//!   * **crossing arcs**: the original inter-district edges, verbatim;
//!   * **intra arcs**: for every pair of borders of one district, the
//!     shortest-path cost *restricted to that district*, precomputed by
//!     one bounded Dijkstra per border.
//!
//! # Exactness
//!
//! Any shortest path decomposes at its district crossings into maximal
//! in-district segments. Each segment's endpoints are the query
//! endpoints or border nodes, each segment is a restricted path (no
//! crossing edge inside it, so it never leaves the district), and the
//! precomputed intra arc can only be cheaper or equal. Conversely every
//! overlay arc expands into a real path of exactly its weight. Hence
//!
//! ```text
//! d(s, t) = min( d_restricted(s, t)            — same district only,
//!                min over borders b_s of D(s), b_t of D(t) of
//!                  d_restricted(s, b_s) + d_overlay(b_s, b_t)
//!                                      + d_restricted(b_t, t) )
//! ```
//!
//! and hierarchical cost **equals** flat-optimal cost (the proptests in
//! `citymesh-core` assert this, healthy and faulted).
//!
//! # Goal direction
//!
//! The overlay search is an ALT A*: overlay distances between border
//! nodes equal *true graph distances* (by the argument above), so
//! farthest-point landmarks over the overlay yield the classic
//! triangle-inequality bound. The landmark-to-target values are
//! assembled per query from the target-side restricted distances
//! (`L̂_k(t) = min over borders b of D(t) of L_k(b) + d(b, t)`), which
//! is exact when healthy and a valid lower bound under faults (blocked
//! vertices only lengthen true distances). Intra-district expansions
//! use **per-district landmarks** the same way; because those landmarks
//! are chosen among the district's borders and expansions always target
//! a border, the heuristic is frequently exact and the expansion
//! settles little more than the path itself.
//!
//! # Canonical tie-breaks
//!
//! All sub-searches (restricted Dijkstras, the overlay A*, expansions)
//! use the crate-wide canonical rule: pop by *(key, vertex id)*
//! ascending, update on strict improvement or an exact tie with a
//! smaller-id parent, never update settled vertices. Two further rules
//! are specific to this module and documented on
//! [`Hierarchy::plan_path_into`]: an exact cost tie between the direct
//! same-district route and an overlay route resolves to the **direct**
//! route, and ties between overlay terminal candidates resolve to the
//! candidate settled first (smallest key, then smallest node id).
//!
//! # Faults
//!
//! Blocked vertices are handled exactly, not approximately: the caller
//! names the **dirty districts** (those containing a blocked vertex);
//! precomputed intra arcs of dirty districts are ignored and replaced,
//! at the moment a border of that district is settled, by an on-the-fly
//! filtered restricted Dijkstra. Clean districts — the vast majority —
//! keep their precomputed arcs.

use crate::scratch::PlannerScratch;
use crate::search::HeapItem;
use crate::{Adjacency, INFINITY};

/// Upper bound on [`HierParams::overlay_landmarks`] (a per-query
/// stack-array of landmark-to-target bounds is sized by it).
pub const MAX_OVERLAY_LANDMARKS: usize = 16;

/// Upper bound on [`HierParams::district_landmarks`].
pub const MAX_DISTRICT_LANDMARKS: usize = 8;

/// Tuning knobs for [`Partition::grid`] and [`Hierarchy::build`].
#[derive(Clone, Copy, Debug)]
pub struct HierParams {
    /// Rough vertex count per district. Districts trade endpoint-search
    /// cost (grows with size) against overlay size (shrinks with it).
    pub target_district_size: usize,
    /// Farthest-point ALT landmarks over the overlay graph
    /// (≤ [`MAX_OVERLAY_LANDMARKS`]).
    pub overlay_landmarks: usize,
    /// Farthest-point landmarks per district, chosen among its borders,
    /// guiding intra-district expansions (≤ [`MAX_DISTRICT_LANDMARKS`]).
    pub district_landmarks: usize,
}

impl Default for HierParams {
    fn default() -> Self {
        HierParams {
            target_district_size: 192,
            overlay_landmarks: 8,
            district_landmarks: 4,
        }
    }
}

/// A deterministic assignment of vertices to districts, with CSR
/// member lists and per-vertex local indices (the key into per-district
/// landmark tables).
#[derive(Clone, Debug, Default)]
pub struct Partition {
    num_districts: u32,
    district_of: Vec<u32>,
    member_start: Vec<u32>,
    members: Vec<u32>,
    local_index: Vec<u32>,
}

impl Partition {
    /// Grid partition over vertex positions: the bounding box is split
    /// into `cx × cy` cells whose aspect follows the box and whose
    /// count targets `n / target_district_size` districts. Cell ids are
    /// row-major; the construction is a pure function of the inputs.
    ///
    /// # Panics
    /// Panics when `target_district_size` is zero or any coordinate is
    /// non-finite.
    pub fn grid(positions: &[(f64, f64)], target_district_size: usize) -> Partition {
        assert!(target_district_size > 0, "district size must be positive");
        let n = positions.len();
        if n == 0 {
            return Partition::default();
        }
        let (mut min_x, mut max_x) = (INFINITY, -INFINITY);
        let (mut min_y, mut max_y) = (INFINITY, -INFINITY);
        for &(x, y) in positions {
            assert!(x.is_finite() && y.is_finite(), "non-finite position");
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        let want = n.div_ceil(target_district_size);
        let w = (max_x - min_x).max(1e-9);
        let h = (max_y - min_y).max(1e-9);
        let cx = ((want as f64 * w / h).sqrt().round() as usize).max(1);
        let cy = want.div_ceil(cx).max(1);
        let mut district_of = Vec::with_capacity(n);
        for &(x, y) in positions {
            let ix = ((((x - min_x) / w) * cx as f64) as usize).min(cx - 1);
            let iy = ((((y - min_y) / h) * cy as f64) as usize).min(cy - 1);
            district_of.push((iy * cx + ix) as u32);
        }
        Partition::from_assignment(district_of, (cx * cy) as u32)
    }

    /// Builds the CSR member lists from an explicit assignment
    /// (vertices keep ascending order within each district).
    fn from_assignment(district_of: Vec<u32>, num_districts: u32) -> Partition {
        let n = district_of.len();
        let nd = num_districts as usize;
        let mut member_start = vec![0u32; nd + 1];
        for &d in &district_of {
            member_start[d as usize + 1] += 1;
        }
        for i in 0..nd {
            member_start[i + 1] += member_start[i];
        }
        let mut cursor = member_start.clone();
        let mut members = vec![0u32; n];
        let mut local_index = vec![0u32; n];
        for (v, &d) in district_of.iter().enumerate() {
            let slot = cursor[d as usize];
            members[slot as usize] = v as u32;
            local_index[v] = slot - member_start[d as usize];
            cursor[d as usize] += 1;
        }
        Partition {
            num_districts,
            district_of,
            member_start,
            members,
            local_index,
        }
    }

    /// Number of districts (grid cells; some may be empty).
    #[inline]
    pub fn num_districts(&self) -> usize {
        self.num_districts as usize
    }

    /// The district containing vertex `v`.
    #[inline]
    pub fn district_of(&self, v: u32) -> u32 {
        self.district_of[v as usize]
    }

    /// The member vertices of district `d`, ascending.
    #[inline]
    pub fn members(&self, d: u32) -> &[u32] {
        let i = d as usize;
        &self.members[self.member_start[i] as usize..self.member_start[i + 1] as usize]
    }

    /// Heap bytes held by the partition tables.
    pub fn memory_bytes(&self) -> usize {
        (self.district_of.capacity()
            + self.member_start.capacity()
            + self.members.capacity()
            + self.local_index.capacity())
            * std::mem::size_of::<u32>()
    }
}

/// Cumulative counters a [`HierScratch`] keeps across queries — the
/// telemetry feed for the hierarchical planner (overlay work, landmark
/// expansions, fault rescans).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierStats {
    /// Queries answered (including trivial `src == dst`).
    pub queries: u64,
    /// Queries won by the direct same-district route.
    pub direct_routes: u64,
    /// Overlay nodes settled across all queries.
    pub overlay_settled: u64,
    /// Intra-district arc expansions performed (per-district-landmark
    /// A* runs while reconstructing winning routes).
    pub expansions: u64,
    /// On-the-fly filtered rescans of dirty (faulted) districts.
    pub dirty_rescans: u64,
}

/// Reusable buffers for [`Hierarchy::plan_path_into`]: four
/// [`PlannerScratch`]es (endpoint searches, overlay search, expansion),
/// a dirty-district stamp table, and path-assembly buffers. Warm
/// queries allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct HierScratch {
    src_side: PlannerScratch,
    dst_side: PlannerScratch,
    overlay: PlannerScratch,
    expand: PlannerScratch,
    dirty_stamp: Vec<u32>,
    dirty_gen: u32,
    node_seq: Vec<u32>,
    leg: Vec<u32>,
    /// Cumulative query counters (never reset by the planner).
    pub stats: HierStats,
}

impl HierScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Invalidates all dirty marks and sizes the table for `nd`
    /// districts (O(1) amortized via generation stamps).
    fn begin_dirty(&mut self, nd: usize) {
        if self.dirty_stamp.len() < nd {
            self.dirty_stamp.resize(nd, 0);
        }
        self.dirty_gen = self.dirty_gen.wrapping_add(1);
        if self.dirty_gen == 0 {
            self.dirty_stamp.fill(0);
            self.dirty_gen = 1;
        }
    }

    #[inline]
    fn mark_dirty(&mut self, d: u32) {
        self.dirty_stamp[d as usize] = self.dirty_gen;
    }

    #[inline]
    fn is_dirty(&self, d: u32) -> bool {
        self.dirty_stamp[d as usize] == self.dirty_gen
    }
}

/// The hierarchical routing structure: a [`Partition`] plus the border
/// overlay (nodes, arcs, overlay landmarks, per-district landmarks).
///
/// Built once per graph by [`Hierarchy::build`]; queries run through
/// [`Hierarchy::plan_path_into`] against a reusable [`HierScratch`].
#[derive(Clone, Debug)]
pub struct Hierarchy {
    part: Partition,
    /// vertex → overlay node id, or `u32::MAX` for non-borders.
    node_of: Vec<u32>,
    /// overlay node id → vertex id, ascending.
    node_vertex: Vec<u32>,
    /// overlay node id → district.
    node_district: Vec<u32>,
    /// CSR arc ranges per node: `arc_start[n]..arc_mid[n]` are crossing
    /// arcs, `arc_mid[n]..arc_start[n + 1]` are precomputed intra arcs.
    arc_start: Vec<u32>,
    arc_mid: Vec<u32>,
    arc_to: Vec<u32>,
    arc_weight: Vec<f64>,
    /// CSR of border node ids per district, ascending.
    border_start: Vec<u32>,
    border_nodes: Vec<u32>,
    /// Overlay ALT landmarks: `lm_dist[node * lm_count + k]`.
    lm_count: usize,
    lm_dist: Vec<f64>,
    /// Per-district landmarks: district `d` stores `dlm_k[d]` rows of
    /// `|members(d)|` distances at
    /// `dlm_dist[dlm_start[d] + row * |members| + local_index]`.
    dlm_start: Vec<u32>,
    dlm_k: Vec<u32>,
    dlm_dist: Vec<f64>,
}

/// Single-source Dijkstra restricted to district `d` (all members, no
/// early exit), with the crate's canonical tie-break. `exempt_a` /
/// `exempt_b` bypass `allowed`, mirroring the flat kernels' endpoint
/// exemption. Results stay in `scratch` for the caller to read.
#[allow(clippy::too_many_arguments)]
fn district_dijkstra<G: Adjacency + ?Sized>(
    g: &G,
    district_of: &[u32],
    d: u32,
    source: u32,
    exempt_a: u32,
    exempt_b: u32,
    allowed: &impl Fn(u32) -> bool,
    scratch: &mut PlannerScratch,
) {
    scratch.begin(g.num_vertices());
    scratch.write(source, 0.0, u32::MAX);
    scratch.heap.push(HeapItem {
        dist: 0.0,
        vertex: source,
    });
    while let Some(HeapItem { vertex: u, .. }) = scratch.heap.pop() {
        if scratch.is_settled(u) {
            continue;
        }
        scratch.settle(u);
        let (du, _) = scratch.entry(u);
        for e in g.neighbors(u) {
            if district_of[e.to as usize] != d || scratch.is_settled(e.to) {
                continue;
            }
            if e.to != exempt_a && e.to != exempt_b && !allowed(e.to) {
                continue;
            }
            let nd = du + e.weight;
            let (cur, cur_parent) = scratch.entry(e.to);
            if nd < cur {
                scratch.write(e.to, nd, u);
                scratch.heap.push(HeapItem {
                    dist: nd,
                    vertex: e.to,
                });
            } else if nd == cur && u < cur_parent {
                scratch.write(e.to, nd, u);
            }
        }
    }
}

/// Single-source Dijkstra over the overlay arc arrays (build-time
/// helper for overlay landmark tables).
fn overlay_sssp(
    arc_start: &[u32],
    arc_to: &[u32],
    arc_weight: &[f64],
    num_nodes: usize,
    source: u32,
    scratch: &mut PlannerScratch,
) {
    scratch.begin(num_nodes);
    scratch.write(source, 0.0, u32::MAX);
    scratch.heap.push(HeapItem {
        dist: 0.0,
        vertex: source,
    });
    while let Some(HeapItem { vertex: u, .. }) = scratch.heap.pop() {
        if scratch.is_settled(u) {
            continue;
        }
        scratch.settle(u);
        let (du, _) = scratch.entry(u);
        let (s, e) = (
            arc_start[u as usize] as usize,
            arc_start[u as usize + 1] as usize,
        );
        for i in s..e {
            let to = arc_to[i];
            if scratch.is_settled(to) {
                continue;
            }
            let nd = du + arc_weight[i];
            let (cur, cur_parent) = scratch.entry(to);
            if nd < cur {
                scratch.write(to, nd, u);
                scratch.heap.push(HeapItem {
                    dist: nd,
                    vertex: to,
                });
            } else if nd == cur && u < cur_parent {
                scratch.write(to, nd, u);
            }
        }
    }
}

impl Hierarchy {
    /// Builds the overlay for `g` under `part`.
    ///
    /// Costs one restricted Dijkstra per border node (intra arcs), one
    /// overlay Dijkstra per overlay landmark, and one restricted
    /// Dijkstra per district landmark. This is prepare-time work; the
    /// query path allocates nothing once warm.
    ///
    /// # Panics
    /// Panics when `part` does not cover `g`'s vertices or `params`
    /// exceed the landmark maxima.
    pub fn build<G: Adjacency + ?Sized>(g: &G, part: Partition, params: &HierParams) -> Hierarchy {
        let n = g.num_vertices();
        assert_eq!(part.district_of.len(), n, "partition does not cover graph");
        assert!(
            params.overlay_landmarks <= MAX_OVERLAY_LANDMARKS,
            "at most {MAX_OVERLAY_LANDMARKS} overlay landmarks"
        );
        assert!(
            params.district_landmarks <= MAX_DISTRICT_LANDMARKS,
            "at most {MAX_DISTRICT_LANDMARKS} district landmarks"
        );
        let nd = part.num_districts();

        // Border nodes, ascending by vertex id.
        let mut node_of = vec![u32::MAX; n];
        let mut node_vertex = Vec::new();
        for v in 0..n as u32 {
            let d = part.district_of[v as usize];
            if g.neighbors(v)
                .iter()
                .any(|e| part.district_of[e.to as usize] != d)
            {
                node_of[v as usize] = node_vertex.len() as u32;
                node_vertex.push(v);
            }
        }
        let nodes = node_vertex.len();
        let node_district: Vec<u32> = node_vertex
            .iter()
            .map(|&v| part.district_of[v as usize])
            .collect();

        // Borders per district (stable counting sort keeps node ids
        // ascending within each district).
        let mut border_start = vec![0u32; nd + 1];
        for &d in &node_district {
            border_start[d as usize + 1] += 1;
        }
        for i in 0..nd {
            border_start[i + 1] += border_start[i];
        }
        let mut cursor = border_start.clone();
        let mut border_nodes = vec![0u32; nodes];
        for (nb, &d) in node_district.iter().enumerate() {
            border_nodes[cursor[d as usize] as usize] = nb as u32;
            cursor[d as usize] += 1;
        }
        let borders = |d: u32| {
            &border_nodes[border_start[d as usize] as usize..border_start[d as usize + 1] as usize]
        };

        // Arcs: crossing edges verbatim, then precomputed intra arcs
        // (one restricted Dijkstra per border, early-terminated by the
        // district boundary itself).
        let mut arc_start = vec![0u32; nodes + 1];
        let mut arc_mid = vec![0u32; nodes];
        let mut arc_to = Vec::new();
        let mut arc_weight = Vec::new();
        let mut scratch = PlannerScratch::new();
        for nb in 0..nodes {
            let v = node_vertex[nb];
            let d = node_district[nb];
            arc_start[nb] = arc_to.len() as u32;
            for e in g.neighbors(v) {
                if part.district_of[e.to as usize] != d {
                    debug_assert_ne!(node_of[e.to as usize], u32::MAX);
                    arc_to.push(node_of[e.to as usize]);
                    arc_weight.push(e.weight);
                }
            }
            arc_mid[nb] = arc_to.len() as u32;
            district_dijkstra(
                g,
                &part.district_of,
                d,
                v,
                u32::MAX,
                u32::MAX,
                &|_| true,
                &mut scratch,
            );
            for &b2 in borders(d) {
                if b2 as usize == nb {
                    continue;
                }
                let (dist, _) = scratch.entry(node_vertex[b2 as usize]);
                if dist.is_finite() {
                    arc_to.push(b2);
                    arc_weight.push(dist);
                }
            }
        }
        arc_start[nodes] = arc_to.len() as u32;

        // Overlay ALT landmarks: farthest-point over overlay nodes,
        // seeded at node 0, first-maximum ties — the same discipline as
        // the flat planner's global landmarks.
        let lm_count = params.overlay_landmarks.min(nodes);
        let mut lm_dist = vec![INFINITY; nodes * lm_count];
        if lm_count > 0 {
            let mut min_seen = vec![INFINITY; nodes];
            let mut next = 0u32;
            for ki in 0..lm_count {
                overlay_sssp(&arc_start, &arc_to, &arc_weight, nodes, next, &mut scratch);
                for nb in 0..nodes {
                    let (dist, _) = scratch.entry(nb as u32);
                    lm_dist[nb * lm_count + ki] = dist;
                    if dist < min_seen[nb] {
                        min_seen[nb] = dist;
                    }
                }
                let mut best = -INFINITY;
                for (nb, &m) in min_seen.iter().enumerate() {
                    if m > best {
                        best = m;
                        next = nb as u32;
                    }
                }
            }
        }

        // Per-district landmarks among each district's borders.
        let mut dlm_start = vec![0u32; nd + 1];
        let mut dlm_k = vec![0u32; nd];
        for d in 0..nd {
            let k_d = params.district_landmarks.min(borders(d as u32).len());
            dlm_k[d] = k_d as u32;
            let block = k_d * part.members(d as u32).len();
            dlm_start[d + 1] = dlm_start[d] + block as u32;
        }
        let mut dlm_dist = vec![INFINITY; dlm_start[nd] as usize];
        let mut score = Vec::new();
        for d in 0..nd as u32 {
            let k_d = dlm_k[d as usize] as usize;
            if k_d == 0 {
                continue;
            }
            let bs = borders(d);
            let ms = part.members(d);
            let base = dlm_start[d as usize] as usize;
            score.clear();
            score.resize(bs.len(), INFINITY);
            let mut chosen = node_vertex[bs[0] as usize];
            for j in 0..k_d {
                district_dijkstra(
                    g,
                    &part.district_of,
                    d,
                    chosen,
                    u32::MAX,
                    u32::MAX,
                    &|_| true,
                    &mut scratch,
                );
                let row = base + j * ms.len();
                for (li, &m) in ms.iter().enumerate() {
                    let (dist, _) = scratch.entry(m);
                    dlm_dist[row + li] = dist;
                }
                let mut best = -INFINITY;
                let mut next = chosen;
                for (bi, &b) in bs.iter().enumerate() {
                    let v = node_vertex[b as usize];
                    let (dist, _) = scratch.entry(v);
                    if dist < score[bi] {
                        score[bi] = dist;
                    }
                    if score[bi] > best {
                        best = score[bi];
                        next = v;
                    }
                }
                chosen = next;
            }
        }

        Hierarchy {
            part,
            node_of,
            node_vertex,
            node_district,
            arc_start,
            arc_mid,
            arc_to,
            arc_weight,
            border_start,
            border_nodes,
            lm_count,
            lm_dist,
            dlm_start,
            dlm_k,
            dlm_dist,
        }
    }

    /// The partition the overlay was built over.
    #[inline]
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// Number of overlay (border) nodes.
    #[inline]
    pub fn num_border_nodes(&self) -> usize {
        self.node_vertex.len()
    }

    /// Total overlay arcs (crossing + precomputed intra).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.arc_to.len()
    }

    /// Heap bytes held by the overlay (partition included).
    pub fn memory_bytes(&self) -> usize {
        let u32s = self.node_of.capacity()
            + self.node_vertex.capacity()
            + self.node_district.capacity()
            + self.arc_start.capacity()
            + self.arc_mid.capacity()
            + self.arc_to.capacity()
            + self.border_start.capacity()
            + self.border_nodes.capacity()
            + self.dlm_start.capacity()
            + self.dlm_k.capacity();
        let f64s = self.arc_weight.capacity() + self.lm_dist.capacity() + self.dlm_dist.capacity();
        self.part.memory_bytes()
            + u32s * std::mem::size_of::<u32>()
            + f64s * std::mem::size_of::<f64>()
    }

    #[inline]
    fn borders(&self, d: u32) -> &[u32] {
        let i = d as usize;
        &self.border_nodes[self.border_start[i] as usize..self.border_start[i + 1] as usize]
    }

    /// Expands one intra arc `from → to` inside district `d` into the
    /// actual vertex path, via per-district-landmark A* (filtered the
    /// same way the arc weight was computed, so a path always exists
    /// and costs exactly the arc weight).
    #[allow(clippy::too_many_arguments)]
    fn expand_arc<G: Adjacency + ?Sized>(
        &self,
        g: &G,
        d: u32,
        from: u32,
        to: u32,
        exempt_a: u32,
        exempt_b: u32,
        allowed: &impl Fn(u32) -> bool,
        lb: &impl Fn(u32, u32) -> f64,
        scratch: &mut PlannerScratch,
        out: &mut Vec<u32>,
    ) {
        let ms_len = self.part.members(d).len();
        let k_d = self.dlm_k[d as usize] as usize;
        let base = self.dlm_start[d as usize] as usize;
        let lt = self.part.local_index[to as usize] as usize;
        let mut tvals = [INFINITY; MAX_DISTRICT_LANDMARKS];
        for (j, tv) in tvals.iter_mut().take(k_d).enumerate() {
            *tv = self.dlm_dist[base + j * ms_len + lt];
        }
        let district_of = &self.part.district_of;
        let local_index = &self.part.local_index;
        let h = |v: u32| {
            let mut best = lb(v, to).max(0.0);
            let lv = local_index[v as usize] as usize;
            for (j, tv) in tvals.iter().take(k_d).enumerate() {
                let a = self.dlm_dist[base + j * ms_len + lv];
                if a.is_finite() && tv.is_finite() {
                    let diff = (a - tv).abs();
                    if diff > best {
                        best = diff;
                    }
                }
            }
            best
        };
        let ok = crate::scratch::astar_path_filtered_into(
            g,
            from,
            to,
            h,
            |v| district_of[v as usize] == d && (v == exempt_a || v == exempt_b || allowed(v)),
            scratch,
            out,
        );
        assert!(ok, "overlay intra arc without an expandable path");
    }

    /// Hierarchical point-to-point search: writes the path into `out`
    /// and returns `false` (with `out` cleared) when `dst` is
    /// unreachable. The returned route's cost equals the flat-optimal
    /// cost exactly (see the module docs for the argument; the exact
    /// vertex sequence may differ from the flat planner's on cost
    /// ties).
    ///
    /// * `lb(a, b)` must be an admissible lower bound on the true cost
    ///   between any two vertices (`|_, _| 0.0` is always valid; the
    ///   building graph passes its Euclidean bound).
    /// * `allowed` filters intermediate vertices; `src`/`dst` are
    ///   exempt, mirroring the flat filtered kernels.
    /// * `dirty_districts` must contain the district of **every**
    ///   vertex `allowed` rejects (duplicates and extra districts are
    ///   harmless; omissions are not — precomputed arcs of unlisted
    ///   districts are trusted).
    ///
    /// Tie-breaks: an exact cost tie between the direct same-district
    /// route and any overlay route resolves to the direct route; ties
    /// between overlay candidates resolve to the one settled first
    /// (smallest key, then smallest node id); every sub-search uses the
    /// crate's canonical (key, id, min-parent) rule.
    ///
    /// # Panics
    /// Panics when `src` or `dst` is out of range.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_path_into<G: Adjacency + ?Sized>(
        &self,
        g: &G,
        src: u32,
        dst: u32,
        lb: impl Fn(u32, u32) -> f64,
        allowed: impl Fn(u32) -> bool,
        dirty_districts: &[u32],
        scratch: &mut HierScratch,
        out: &mut Vec<u32>,
    ) -> bool {
        let n = g.num_vertices();
        assert!(
            (src as usize) < n && (dst as usize) < n,
            "vertex out of range"
        );
        out.clear();
        scratch.stats.queries += 1;
        if src == dst {
            out.push(src);
            scratch.stats.direct_routes += 1;
            return true;
        }
        let ds = self.part.district_of[src as usize];
        let dt = self.part.district_of[dst as usize];
        scratch.begin_dirty(self.part.num_districts());
        for &d in dirty_districts {
            scratch.mark_dirty(d);
        }

        // Endpoint searches: filtered Dijkstra over each endpoint's
        // whole district.
        district_dijkstra(
            g,
            &self.part.district_of,
            ds,
            src,
            src,
            dst,
            &allowed,
            &mut scratch.src_side,
        );
        district_dijkstra(
            g,
            &self.part.district_of,
            dt,
            dst,
            src,
            dst,
            &allowed,
            &mut scratch.dst_side,
        );

        let mut best = INFINITY;
        let mut best_node = u32::MAX;
        if ds == dt {
            let (direct, _) = scratch.src_side.entry(dst);
            best = direct; // may be INFINITY; overlay must beat it strictly
        }

        // Per-query landmark-to-target bounds:
        // L̂_k(dst) = min over target-side borders of L_k(b) + d(b, dst).
        let k = self.lm_count;
        let mut lm_t = [INFINITY; MAX_OVERLAY_LANDMARKS];
        for &bt in self.borders(dt) {
            let v = self.node_vertex[bt as usize];
            if v != src && v != dst && !allowed(v) {
                continue;
            }
            let (dtv, _) = scratch.dst_side.entry(v);
            if !dtv.is_finite() {
                continue;
            }
            for (ki, slot) in lm_t.iter_mut().take(k).enumerate() {
                let l = self.lm_dist[bt as usize * k + ki];
                if l.is_finite() && l + dtv < *slot {
                    *slot = l + dtv;
                }
            }
        }
        let h = |nb: u32| -> f64 {
            let v = self.node_vertex[nb as usize];
            let mut best_h = lb(v, dst).max(0.0);
            let base = nb as usize * k;
            for (ki, &t) in lm_t.iter().take(k).enumerate() {
                let l = self.lm_dist[base + ki];
                if l.is_finite() && t.is_finite() {
                    let diff = (l - t).abs();
                    if diff > best_h {
                        best_h = diff;
                    }
                }
            }
            best_h
        };

        // Overlay A*, seeded with every reachable source-side border.
        scratch.overlay.begin(self.node_vertex.len());
        for &b in self.borders(ds) {
            let v = self.node_vertex[b as usize];
            if v != src && v != dst && !allowed(v) {
                continue;
            }
            let (d0, _) = scratch.src_side.entry(v);
            if d0.is_finite() {
                scratch.overlay.write(b, d0, u32::MAX);
                scratch.overlay.heap.push(HeapItem {
                    dist: d0 + h(b),
                    vertex: b,
                });
            }
        }
        while let Some(HeapItem {
            dist: key,
            vertex: nb,
        }) = scratch.overlay.heap.pop()
        {
            if scratch.overlay.is_settled(nb) {
                continue;
            }
            if key >= best {
                // The heuristic is consistent, so keys pop in
                // nondecreasing order and no later candidate can beat
                // the incumbent.
                break;
            }
            scratch.overlay.settle(nb);
            scratch.stats.overlay_settled += 1;
            let (dnb, _) = scratch.overlay.entry(nb);
            let d_here = self.node_district[nb as usize];
            if d_here == dt {
                let v = self.node_vertex[nb as usize];
                let (dtv, _) = scratch.dst_side.entry(v);
                if dtv.is_finite() && dnb + dtv < best {
                    best = dnb + dtv;
                    best_node = nb;
                }
            }
            let dirty = scratch.is_dirty(d_here);
            let s = self.arc_start[nb as usize] as usize;
            let e = if dirty {
                self.arc_mid[nb as usize] as usize // skip stale intra arcs
            } else {
                self.arc_start[nb as usize + 1] as usize
            };
            for i in s..e {
                let to = self.arc_to[i];
                if scratch.overlay.is_settled(to) {
                    continue;
                }
                let v2 = self.node_vertex[to as usize];
                if v2 != src && v2 != dst && !allowed(v2) {
                    continue;
                }
                let nd2 = dnb + self.arc_weight[i];
                let (cur, cur_parent) = scratch.overlay.entry(to);
                if nd2 < cur {
                    scratch.overlay.write(to, nd2, nb);
                    scratch.overlay.heap.push(HeapItem {
                        dist: nd2 + h(to),
                        vertex: to,
                    });
                } else if nd2 == cur && nb < cur_parent {
                    scratch.overlay.write(to, nd2, nb);
                }
            }
            if dirty {
                // Replace this district's precomputed arcs with a
                // filtered restricted search from the settled border.
                scratch.stats.dirty_rescans += 1;
                let v = self.node_vertex[nb as usize];
                district_dijkstra(
                    g,
                    &self.part.district_of,
                    d_here,
                    v,
                    src,
                    dst,
                    &allowed,
                    &mut scratch.expand,
                );
                for &b2 in self.borders(d_here) {
                    if b2 == nb || scratch.overlay.is_settled(b2) {
                        continue;
                    }
                    let v2 = self.node_vertex[b2 as usize];
                    if v2 != src && v2 != dst && !allowed(v2) {
                        continue;
                    }
                    let (dd, _) = scratch.expand.entry(v2);
                    if !dd.is_finite() {
                        continue;
                    }
                    let nd2 = dnb + dd;
                    let (cur, cur_parent) = scratch.overlay.entry(b2);
                    if nd2 < cur {
                        scratch.overlay.write(b2, nd2, nb);
                        scratch.overlay.heap.push(HeapItem {
                            dist: nd2 + h(b2),
                            vertex: b2,
                        });
                    } else if nd2 == cur && nb < cur_parent {
                        scratch.overlay.write(b2, nd2, nb);
                    }
                }
            }
        }

        if best_node == u32::MAX {
            // Overlay never beat the direct candidate (or found
            // nothing). Cost ties resolve here, to the direct route.
            if best.is_finite() {
                scratch.src_side.trace_into(dst, out);
                scratch.stats.direct_routes += 1;
                return true;
            }
            out.clear();
            return false;
        }

        // Reconstruct: source leg, overlay node sequence (crossing
        // arcs verbatim, intra arcs expanded), target leg.
        scratch.node_seq.clear();
        let mut cur = best_node;
        loop {
            scratch.node_seq.push(cur);
            let (_, p) = scratch.overlay.entry(cur);
            if p == u32::MAX {
                break;
            }
            cur = p;
        }
        scratch.node_seq.reverse();
        scratch
            .src_side
            .trace_into(self.node_vertex[scratch.node_seq[0] as usize], out);
        for i in 1..scratch.node_seq.len() {
            let a = scratch.node_seq[i - 1];
            let b = scratch.node_seq[i];
            let (va, vb) = (self.node_vertex[a as usize], self.node_vertex[b as usize]);
            if self.node_district[a as usize] != self.node_district[b as usize] {
                out.push(vb); // a crossing arc is one original edge
            } else {
                scratch.stats.expansions += 1;
                self.expand_arc(
                    g,
                    self.node_district[a as usize],
                    va,
                    vb,
                    src,
                    dst,
                    &allowed,
                    &lb,
                    &mut scratch.expand,
                    &mut scratch.leg,
                );
                out.extend_from_slice(&scratch.leg[1..]);
            }
        }
        scratch
            .dst_side
            .trace_into(self.node_vertex[best_node as usize], &mut scratch.leg);
        for &v in scratch.leg.iter().rev().skip(1) {
            out.push(v);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra_path_filtered_into, dijkstra_path_into, Graph};

    /// Path cost under `g`'s weights.
    fn path_cost(g: &Graph, path: &[u32]) -> f64 {
        path.windows(2)
            .map(|w| {
                g.neighbors(w[0])
                    .iter()
                    .filter(|e| e.to == w[1])
                    .map(|e| e.weight)
                    .fold(INFINITY, f64::min)
            })
            .sum()
    }

    /// A deterministic pseudo-random lattice: `nx × ny` grid positions
    /// with 4-neighbor edges whose weights vary by a hash, plus a few
    /// long chords to make districts non-trivial.
    fn lattice(nx: u32, ny: u32) -> (Graph, Vec<(f64, f64)>) {
        let n = (nx * ny) as usize;
        let mut g = Graph::new(n);
        let mut pos = Vec::with_capacity(n);
        let w = |a: u32, b: u32| {
            let mut z = ((a as u64) << 32 | b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z ^= z >> 29;
            1.0 + (z % 97) as f64
        };
        for y in 0..ny {
            for x in 0..nx {
                let v = y * nx + x;
                pos.push((x as f64 * 10.0, y as f64 * 10.0));
                if x + 1 < nx {
                    g.add_edge(v, v + 1, w(v, v + 1));
                }
                if y + 1 < ny {
                    g.add_edge(v, v + nx, w(v, v + nx));
                }
            }
        }
        (g, pos)
    }

    fn assert_same_cost(g: &Graph, hier: &[u32], flat: &[u32], what: &str) {
        let (hc, fc) = (path_cost(g, hier), path_cost(g, flat));
        assert!(
            (hc - fc).abs() <= 1e-9 * fc.max(1.0),
            "{what}: hier cost {hc} != flat cost {fc}"
        );
    }

    #[test]
    fn grid_partition_is_deterministic_and_covers() {
        let (_, pos) = lattice(12, 9);
        let p1 = Partition::grid(&pos, 10);
        let p2 = Partition::grid(&pos, 10);
        let mut seen = 0usize;
        for d in 0..p1.num_districts() as u32 {
            for (i, &m) in p1.members(d).iter().enumerate() {
                assert_eq!(p1.district_of(m), d);
                assert_eq!(p1.local_index[m as usize] as usize, i);
                seen += 1;
            }
            assert_eq!(p1.members(d), p2.members(d));
        }
        assert_eq!(seen, pos.len());
        assert!(p1.num_districts() >= pos.len() / 10);
    }

    #[test]
    fn hier_matches_flat_cost_on_lattice() {
        let (g, pos) = lattice(16, 12);
        let part = Partition::grid(&pos, 20);
        let hier = Hierarchy::build(&g, part, &HierParams::default());
        let mut hs = HierScratch::new();
        let mut ps = PlannerScratch::new();
        let (mut hp, mut fp) = (Vec::new(), Vec::new());
        for (src, dst) in [
            (0u32, 191u32),
            (5, 186),
            (0, 15),
            (100, 101),
            (37, 37),
            (191, 0),
        ] {
            let hok =
                hier.plan_path_into(&g, src, dst, |_, _| 0.0, |_| true, &[], &mut hs, &mut hp);
            let fok = dijkstra_path_into(&g, src, dst, &mut ps, &mut fp);
            assert_eq!(hok, fok, "({src},{dst}) reachability");
            assert_eq!(hp.first(), Some(&src));
            assert_eq!(hp.last(), Some(&dst));
            assert_same_cost(&g, &hp, &fp, "healthy");
        }
    }

    #[test]
    fn hier_matches_flat_cost_with_blocked_vertices() {
        let (g, pos) = lattice(16, 12);
        let part = Partition::grid(&pos, 20);
        let hier = Hierarchy::build(&g, part, &HierParams::default());
        let mut hs = HierScratch::new();
        let mut ps = PlannerScratch::new();
        let (mut hp, mut fp) = (Vec::new(), Vec::new());
        // Block a diagonal band of vertices.
        let blocked = |v: u32| v % 17 == 3;
        let mut dirty = Vec::new();
        for v in 0..g.num_vertices() as u32 {
            if blocked(v) {
                dirty.push(hier.partition().district_of(v));
            }
        }
        for (src, dst) in [(0u32, 191u32), (3, 188), (20, 160), (54, 54)] {
            let hok = hier.plan_path_into(
                &g,
                src,
                dst,
                |_, _| 0.0,
                |v| !blocked(v),
                &dirty,
                &mut hs,
                &mut hp,
            );
            let fok = dijkstra_path_filtered_into(&g, src, dst, |v| !blocked(v), &mut ps, &mut fp);
            assert_eq!(hok, fok, "({src},{dst}) reachability under faults");
            if hok {
                for &v in hp.iter().filter(|&&v| v != src && v != dst) {
                    assert!(!blocked(v), "hier route crosses blocked vertex {v}");
                }
                assert_same_cost(&g, &hp, &fp, "faulted");
            }
        }
    }

    #[test]
    fn disconnected_pairs_fail_honestly() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        let pos = vec![(0.0, 0.0), (1.0, 0.0), (50.0, 50.0), (51.0, 50.0)];
        let part = Partition::grid(&pos, 2);
        let hier = Hierarchy::build(&g, part, &HierParams::default());
        let mut hs = HierScratch::new();
        let mut out = vec![9];
        assert!(!hier.plan_path_into(&g, 0, 3, |_, _| 0.0, |_| true, &[], &mut hs, &mut out));
        assert!(out.is_empty());
        assert!(hier.plan_path_into(&g, 0, 1, |_, _| 0.0, |_| true, &[], &mut hs, &mut out));
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh() {
        let (g, pos) = lattice(10, 10);
        let part = Partition::grid(&pos, 15);
        let hier = Hierarchy::build(&g, part, &HierParams::default());
        let mut warm = HierScratch::new();
        let mut warm_path = Vec::new();
        // Warm the scratch on unrelated pairs.
        for (s, d) in [(0u32, 99u32), (42, 57), (7, 93)] {
            hier.plan_path_into(
                &g,
                s,
                d,
                |_, _| 0.0,
                |_| true,
                &[],
                &mut warm,
                &mut warm_path,
            );
        }
        for (s, d) in [(0u32, 99u32), (13, 88), (99, 0), (50, 55)] {
            let mut fresh = HierScratch::new();
            let mut fresh_path = Vec::new();
            let a = hier.plan_path_into(
                &g,
                s,
                d,
                |_, _| 0.0,
                |_| true,
                &[],
                &mut warm,
                &mut warm_path,
            );
            let b = hier.plan_path_into(
                &g,
                s,
                d,
                |_, _| 0.0,
                |_| true,
                &[],
                &mut fresh,
                &mut fresh_path,
            );
            assert_eq!(a, b);
            assert_eq!(warm_path, fresh_path, "({s},{d}) reuse changed the route");
        }
    }

    #[test]
    fn stats_accumulate() {
        let (g, pos) = lattice(12, 12);
        let part = Partition::grid(&pos, 16);
        let hier = Hierarchy::build(&g, part, &HierParams::default());
        let mut hs = HierScratch::new();
        let mut out = Vec::new();
        hier.plan_path_into(&g, 0, 143, |_, _| 0.0, |_| true, &[], &mut hs, &mut out);
        hier.plan_path_into(&g, 5, 5, |_, _| 0.0, |_| true, &[], &mut hs, &mut out);
        assert_eq!(hs.stats.queries, 2);
        assert!(hs.stats.direct_routes >= 1);
        assert!(hs.stats.overlay_settled > 0);
    }

    #[test]
    fn overlay_shape_is_sane() {
        let (g, pos) = lattice(12, 12);
        let part = Partition::grid(&pos, 16);
        let hier = Hierarchy::build(&g, part, &HierParams::default());
        assert!(hier.num_border_nodes() > 0);
        assert!(hier.num_border_nodes() < g.num_vertices());
        assert!(hier.num_arcs() > 0);
        assert!(hier.memory_bytes() > 0);
        // Every border node really has a cross-district edge.
        for nb in 0..hier.num_border_nodes() {
            let v = hier.node_vertex[nb];
            let d = hier.partition().district_of(v);
            assert!(g
                .neighbors(v)
                .iter()
                .any(|e| hier.partition().district_of(e.to) != d));
        }
    }
}
