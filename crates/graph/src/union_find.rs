//! Disjoint-set forest (union-find).

/// A union-find structure over `0..n` with path halving and union by
/// size.
///
/// Used for incremental connectivity while AP graphs are built edge by
/// edge: the reachability experiment (paper §4, Figure 6) only needs
/// "same component?" answers, which union-find gives in near-constant
/// amortized time without materializing adjacency.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// The canonical representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            // Path halving.
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets containing `a` and `b`; returns `true` when they
    /// were previously disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }

    /// Size of the largest set (0 when empty).
    pub fn largest_component_size(&mut self) -> usize {
        (0..self.parent.len() as u32)
            .map(|i| {
                let r = self.find(i);
                self.size[r as usize] as usize
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially_disjoint() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.component_size(2), 1);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.component_size(1), 3);
        assert_eq!(uf.largest_component_size(), 3);
    }

    #[test]
    fn transitive_chain_fully_connected() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n as u32 - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert!(uf.connected(0, n as u32 - 1));
        assert_eq!(uf.largest_component_size(), n);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
        assert_eq!(uf.largest_component_size(), 0);
    }
}
