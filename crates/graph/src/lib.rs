//! Graph algorithms for CityMesh.
//!
//! Two graphs drive the system (paper §3–§4):
//!
//! * the **building graph** — vertices are buildings, edges are
//!   predicted inter-building AP connectivity, weighted by
//!   *cubed* distance; routes are computed with [`dijkstra`];
//! * the **AP graph** — vertices are access points, edges connect APs
//!   within transmission range; reachability is answered with
//!   [`connected_components`] / [`bfs`], and the *ideal unicast*
//!   denominator of the paper's transmission-overhead metric is the
//!   BFS hop count.
//!
//! The [`Graph`] type is a compact adjacency-list structure with `u32`
//! vertex ids, sized for the millions-of-nodes scale the paper targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjacency;
mod hierarchy;
mod scratch;
mod search;
mod union_find;

pub use adjacency::{Adjacency, CsrGraph, Edge, Graph};
pub use hierarchy::{
    HierParams, HierScratch, HierStats, Hierarchy, Partition, MAX_DISTRICT_LANDMARKS,
    MAX_OVERLAY_LANDMARKS,
};
pub use scratch::{
    astar_path_filtered_into, astar_path_into, bfs_distance_to, dijkstra_path_filtered_into,
    dijkstra_path_into, PlannerScratch,
};
pub use search::{
    astar, bfs, bfs_path, connected_components, dijkstra, dijkstra_path, dijkstra_path_filtered,
    largest_component, PathResult, INFINITY,
};
pub use union_find::UnionFind;
