//! Compact adjacency-list graph, its frozen CSR form, and the
//! [`Adjacency`] trait every search kernel is generic over.

/// A weighted edge out of some vertex.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Target vertex.
    pub to: u32,
    /// Non-negative weight. For the building graph this is the *cubed*
    /// centroid distance (paper §3 step 2); for the AP graph it is 1.
    pub weight: f64,
}

/// An undirected-by-default weighted graph with `u32` vertex ids.
///
/// Vertices are implicit: `0..num_vertices`. Edges are stored per
/// vertex in insertion order. Parallel edges are permitted (search
/// algorithms simply consider all of them); self-loops are ignored by
/// `add_edge`.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<Vec<Edge>>,
    num_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges added via [`Graph::add_edge`]
    /// (directed arcs added via [`Graph::add_arc`] count once each).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds an undirected edge `u — v` with `weight`.
    ///
    /// Self-loops are silently ignored: neither graph in CityMesh is
    /// meaningful with them, and the synthetic generators occasionally
    /// produce coincident endpoints.
    ///
    /// # Panics
    /// Panics when either endpoint is out of range or the weight is
    /// negative/non-finite.
    pub fn add_edge(&mut self, u: u32, v: u32, weight: f64) {
        if u == v {
            return;
        }
        self.check(u, v, weight);
        self.adj[u as usize].push(Edge { to: v, weight });
        self.adj[v as usize].push(Edge { to: u, weight });
        self.num_edges += 1;
    }

    /// Adds a directed arc `u → v` with `weight`.
    pub fn add_arc(&mut self, u: u32, v: u32, weight: f64) {
        if u == v {
            return;
        }
        self.check(u, v, weight);
        self.adj[u as usize].push(Edge { to: v, weight });
        self.num_edges += 1;
    }

    fn check(&self, u: u32, v: u32, weight: f64) {
        assert!(
            (u as usize) < self.adj.len() && (v as usize) < self.adj.len(),
            "vertex out of range: {u} or {v} (n = {})",
            self.adj.len()
        );
        assert!(
            weight.is_finite() && weight >= 0.0,
            "edge weight must be finite and non-negative, got {weight}"
        );
    }

    /// The outgoing edges of `u`.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[Edge] {
        &self.adj[u as usize]
    }

    /// Degree (number of outgoing edges) of `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// Mean degree across all vertices (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        let total: usize = self.adj.iter().map(Vec::len).sum();
        total as f64 / self.adj.len() as f64
    }

    /// Whether an edge/arc `u → v` exists.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].iter().any(|e| e.to == v)
    }
}

/// Read-only adjacency access: the interface every search kernel in
/// this crate is generic over.
///
/// Two implementations exist: [`Graph`] (growable, one `Vec` per
/// vertex — the build-time form) and [`CsrGraph`] (frozen, two flat
/// arrays — the query-time form). Both present identical neighbor
/// *order*, so a search over a frozen graph is bit-identical to the
/// same search over the graph it was frozen from.
pub trait Adjacency {
    /// Number of vertices (`0..n` are the valid ids).
    fn num_vertices(&self) -> usize;
    /// The outgoing edges of `u`, in insertion order.
    fn neighbors(&self, u: u32) -> &[Edge];
}

impl Adjacency for Graph {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.adj.len()
    }
    #[inline]
    fn neighbors(&self, u: u32) -> &[Edge] {
        &self.adj[u as usize]
    }
}

/// A frozen compressed-sparse-row graph: per-vertex edge lists packed
/// into one flat array behind an offsets table.
///
/// [`Graph`] spends one heap allocation (and a 24-byte `Vec` header)
/// per vertex — at metro scale (100k buildings, ~1M APs) that
/// per-vertex fan-out dominates memory and shreds cache locality.
/// Freezing to CSR keeps exactly two allocations regardless of vertex
/// count while preserving per-vertex edge *order*, so every search
/// result (including tie-breaks) is bit-identical to the source graph.
#[derive(Clone, Debug, Default)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `edges` for vertex `v`.
    offsets: Vec<u32>,
    edges: Vec<Edge>,
    num_edges: usize,
}

impl CsrGraph {
    /// Freezes `g` into CSR form, preserving per-vertex edge order.
    ///
    /// # Panics
    /// Panics when `g` has ≥ `u32::MAX` directed edges (far beyond any
    /// city this system models).
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.adj.len();
        let total: usize = g.adj.iter().map(Vec::len).sum();
        assert!(
            total < u32::MAX as usize,
            "graph too large to freeze: {total} directed edges"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(total);
        offsets.push(0u32);
        for adj in &g.adj {
            edges.extend_from_slice(adj);
            offsets.push(edges.len() as u32);
        }
        CsrGraph {
            offsets,
            edges,
            num_edges: g.num_edges,
        }
    }

    /// Number of undirected edges in the source graph (directed arcs
    /// counted once each), mirroring [`Graph::num_edges`].
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The outgoing edges of `u`, in the source graph's order.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[Edge] {
        let i = u as usize;
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree (number of outgoing edges) of `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        self.neighbors(u).len()
    }

    /// Mean degree across all vertices (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        let n = self.num_vertices();
        if n == 0 {
            return 0.0;
        }
        self.edges.len() as f64 / n as f64
    }

    /// Whether an edge/arc `u → v` exists.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).iter().any(|e| e.to == v)
    }

    /// Heap bytes held by the structure (capacity, not length) — the
    /// metro sweep's memory accounting.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.edges.capacity() * std::mem::size_of::<Edge>()
    }
}

impl Adjacency for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }
    #[inline]
    fn neighbors(&self, u: u32) -> &[Edge] {
        CsrGraph::neighbors(self, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    fn undirected_edges_visible_from_both_ends() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 3.0);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(0), &[Edge { to: 1, weight: 2.0 }]);
    }

    #[test]
    fn directed_arc_is_one_way() {
        let mut g = Graph::new(2);
        g.add_arc(0, 1, 1.0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1, 5.0);
        g.add_arc(0, 0, 5.0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 9.0);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "vertex out of range")]
    fn out_of_range_vertex_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn negative_weight_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, -1.0);
    }

    #[test]
    fn mean_degree_counts_both_directions() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        assert_eq!(g.mean_degree(), 1.0);
    }

    #[test]
    fn csr_freeze_preserves_everything() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 3.0);
        g.add_edge(0, 1, 9.0); // parallel edge, later in order
        g.add_arc(3, 4, 1.0);
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        assert_eq!(c.mean_degree(), g.mean_degree());
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(c.neighbors(v), g.neighbors(v), "vertex {v} order");
            assert_eq!(c.degree(v), g.degree(v));
        }
        assert!(c.has_edge(3, 4));
        assert!(!c.has_edge(4, 3));
        assert!(c.memory_bytes() > 0);
    }

    #[test]
    fn csr_empty_graph() {
        let c = CsrGraph::from_graph(&Graph::new(0));
        assert_eq!(c.num_vertices(), 0);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.mean_degree(), 0.0);
        let d = CsrGraph::default();
        assert_eq!(d.num_vertices(), 0);
    }
}
