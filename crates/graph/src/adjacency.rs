//! Compact adjacency-list graph.

/// A weighted edge out of some vertex.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Target vertex.
    pub to: u32,
    /// Non-negative weight. For the building graph this is the *cubed*
    /// centroid distance (paper §3 step 2); for the AP graph it is 1.
    pub weight: f64,
}

/// An undirected-by-default weighted graph with `u32` vertex ids.
///
/// Vertices are implicit: `0..num_vertices`. Edges are stored per
/// vertex in insertion order. Parallel edges are permitted (search
/// algorithms simply consider all of them); self-loops are ignored by
/// `add_edge`.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<Vec<Edge>>,
    num_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges added via [`Graph::add_edge`]
    /// (directed arcs added via [`Graph::add_arc`] count once each).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds an undirected edge `u — v` with `weight`.
    ///
    /// Self-loops are silently ignored: neither graph in CityMesh is
    /// meaningful with them, and the synthetic generators occasionally
    /// produce coincident endpoints.
    ///
    /// # Panics
    /// Panics when either endpoint is out of range or the weight is
    /// negative/non-finite.
    pub fn add_edge(&mut self, u: u32, v: u32, weight: f64) {
        if u == v {
            return;
        }
        self.check(u, v, weight);
        self.adj[u as usize].push(Edge { to: v, weight });
        self.adj[v as usize].push(Edge { to: u, weight });
        self.num_edges += 1;
    }

    /// Adds a directed arc `u → v` with `weight`.
    pub fn add_arc(&mut self, u: u32, v: u32, weight: f64) {
        if u == v {
            return;
        }
        self.check(u, v, weight);
        self.adj[u as usize].push(Edge { to: v, weight });
        self.num_edges += 1;
    }

    fn check(&self, u: u32, v: u32, weight: f64) {
        assert!(
            (u as usize) < self.adj.len() && (v as usize) < self.adj.len(),
            "vertex out of range: {u} or {v} (n = {})",
            self.adj.len()
        );
        assert!(
            weight.is_finite() && weight >= 0.0,
            "edge weight must be finite and non-negative, got {weight}"
        );
    }

    /// The outgoing edges of `u`.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[Edge] {
        &self.adj[u as usize]
    }

    /// Degree (number of outgoing edges) of `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// Mean degree across all vertices (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        let total: usize = self.adj.iter().map(Vec::len).sum();
        total as f64 / self.adj.len() as f64
    }

    /// Whether an edge/arc `u → v` exists.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].iter().any(|e| e.to == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    fn undirected_edges_visible_from_both_ends() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 3.0);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(0), &[Edge { to: 1, weight: 2.0 }]);
    }

    #[test]
    fn directed_arc_is_one_way() {
        let mut g = Graph::new(2);
        g.add_arc(0, 1, 1.0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1, 5.0);
        g.add_arc(0, 0, 5.0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 9.0);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "vertex out of range")]
    fn out_of_range_vertex_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn negative_weight_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, -1.0);
    }

    #[test]
    fn mean_degree_counts_both_directions() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        assert_eq!(g.mean_degree(), 1.0);
    }
}
