//! Reusable planner scratch: zero-allocation point-to-point search.
//!
//! [`dijkstra_path`] allocates `dist`/`parent`/`settled` vectors sized
//! `|V|` plus a fresh binary heap on every call. A route planner that
//! serves millions of flows pays that cost per flow even though almost
//! every call touches only a tiny corridor of the graph. This module
//! provides the steady-state alternative: a [`PlannerScratch`] that
//! owns every buffer a search needs and clears them in O(touched) via
//! generation stamps, plus `_into` kernels that write the path into a
//! caller-owned buffer. After a warm-up call, planning performs **zero
//! heap allocations**.
//!
//! # Deterministic tie-breaking (the A* ≡ Dijkstra contract)
//!
//! The `_into` kernels share one canonical tie-breaking rule:
//!
//! 1. the heap pops by *(key ascending, vertex id ascending)* — key is
//!    `dist` for Dijkstra and `dist + h` for A*;
//! 2. a relaxation `u → v` updates `v` when it strictly improves
//!    `dist[v]`, **or** when it exactly ties `dist[v]` and `u` has a
//!    smaller id than the current parent;
//! 3. settled vertices are never updated.
//!
//! Under rule 2 the final parent of every settled vertex is the
//! minimum-id optimal predecessor among those settled before it — a
//! quantity independent of settle *order*. Dijkstra and A* settle
//! vertices in different orders, but with a *strictly consistent*
//! heuristic (`h(u) − h(v) < w(u,v)` on every edge, which includes
//! `h ≡ 0` on graphs with positive weights) every optimal predecessor
//! of a vertex has a strictly smaller heap key and therefore settles
//! first in **both** algorithms. Both parent trees then agree on every
//! vertex they share, so [`astar_path_into`] returns paths
//! **bit-identical** to [`dijkstra_path_into`]. The building graph's
//! cubed-distance weights satisfy strict consistency for the Euclidean
//! heuristic because every weight is `max(d, 1)^e ≥ max(d, 1) > h`-drop
//! for exponents `e ≥ 1` (see `citymesh-core`'s route planner).
//!
//! [`dijkstra_path`]: crate::dijkstra_path

use std::collections::BinaryHeap;
use std::collections::VecDeque;

use crate::search::HeapItem;
use crate::{Adjacency, INFINITY};

/// Reusable buffers for point-to-point search over any [`Adjacency`]
/// implementation ([`Graph`](crate::Graph) or [`CsrGraph`](crate::CsrGraph)).
///
/// One scratch serves searches over graphs of *different* sizes (the
/// route planner shares one between the building graph and the AP
/// graph): buffers grow to the largest vertex count seen and are
/// logically cleared per run by bumping a generation counter, so a
/// warm scratch performs no allocation and no O(|V|) clearing.
///
/// ```
/// use citymesh_graph::{dijkstra_path_into, Graph, PlannerScratch};
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 1.0);
/// g.add_edge(0, 2, 10.0);
/// let mut scratch = PlannerScratch::new();
/// let mut path = Vec::new();
/// assert!(dijkstra_path_into(&g, 0, 2, &mut scratch, &mut path));
/// assert_eq!(path, vec![0, 1, 2]);
/// // Reuse: the second call allocates nothing.
/// assert!(dijkstra_path_into(&g, 2, 0, &mut scratch, &mut path));
/// assert_eq!(path, vec![2, 1, 0]);
/// ```
///
/// # Deterministic tie-breaking (the A* ≡ Dijkstra contract)
///
/// All kernels taking a `PlannerScratch` share one canonical rule:
/// the heap pops by *(key ascending, vertex id ascending)*; a
/// relaxation `u → v` updates `v` when it strictly improves `dist[v]`
/// **or** exactly ties it with `u` smaller than the current parent;
/// settled vertices are never updated. The final parent of every
/// vertex is then the minimum-id optimal predecessor among those
/// settled before it. With a *strictly consistent* heuristic
/// (`h(u) − h(v) < w(u, v)` on every edge — which includes `h ≡ 0` on
/// positive-weight graphs) every optimal predecessor settles first in
/// both A* and Dijkstra, so [`astar_path_into`] returns paths
/// bit-identical to [`dijkstra_path_into`]. DESIGN.md §10 carries the
/// full argument.
#[derive(Clone, Debug, Default)]
pub struct PlannerScratch {
    /// Slot `v` is valid for this run iff `stamp[v] == gen`.
    stamp: Vec<u32>,
    gen: u32,
    dist: Vec<f64>,
    parent: Vec<u32>,
    settled: Vec<bool>,
    pub(crate) heap: BinaryHeap<HeapItem>,
    queue: VecDeque<u32>,
}

impl PlannerScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Largest vertex count the buffers currently cover.
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }

    /// Prepares for a search over `n` vertices: grows buffers if this
    /// is the largest graph seen, invalidates every slot by bumping
    /// the generation (O(1); a full re-stamp happens only when the
    /// `u32` generation wraps, once per ~4 billion searches), and
    /// clears the retained heap/queue without releasing capacity.
    pub(crate) fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, INFINITY);
            self.parent.resize(n, u32::MAX);
            self.settled.resize(n, false);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.fill(0);
            self.gen = 1;
        }
        self.heap.clear();
        self.queue.clear();
    }

    /// `(dist, parent)` of `v`, defaulting to (∞, MAX) when untouched
    /// this run.
    #[inline]
    pub(crate) fn entry(&self, v: u32) -> (f64, u32) {
        let i = v as usize;
        if self.stamp[i] == self.gen {
            (self.dist[i], self.parent[i])
        } else {
            (INFINITY, u32::MAX)
        }
    }

    /// Writes `(dist, parent)` for `v`, stamping the slot.
    #[inline]
    pub(crate) fn write(&mut self, v: u32, dist: f64, parent: u32) {
        let i = v as usize;
        if self.stamp[i] != self.gen {
            self.stamp[i] = self.gen;
            self.settled[i] = false;
        }
        self.dist[i] = dist;
        self.parent[i] = parent;
    }

    #[inline]
    pub(crate) fn is_settled(&self, v: u32) -> bool {
        let i = v as usize;
        self.stamp[i] == self.gen && self.settled[i]
    }

    #[inline]
    pub(crate) fn settle(&mut self, v: u32) {
        // Popped vertices were always written first, so the slot is
        // already stamped.
        debug_assert_eq!(self.stamp[v as usize], self.gen);
        self.settled[v as usize] = true;
    }

    /// Whether `v` was touched this run (BFS visited-set).
    #[inline]
    pub(crate) fn is_visited(&self, v: u32) -> bool {
        self.stamp[v as usize] == self.gen
    }

    /// Traces the parent chain from `target` into `out` (reversed into
    /// source→target order). The chain was written this generation.
    pub(crate) fn trace_into(&self, target: u32, out: &mut Vec<u32>) {
        out.clear();
        out.push(target);
        let mut cur = target;
        loop {
            let p = self.parent[cur as usize];
            if p == u32::MAX {
                break;
            }
            out.push(p);
            cur = p;
            debug_assert!(out.len() <= self.stamp.len(), "parent cycle");
        }
        out.reverse();
    }
}

/// A* from `source` to `target` restricted to vertices `allowed`
/// admits (endpoints are always allowed), writing the path into `out`.
/// Returns `false` — with `out` cleared — when no path exists.
///
/// This is the master kernel behind [`dijkstra_path_into`],
/// [`dijkstra_path_filtered_into`], and [`astar_path_into`]; see the
/// [`PlannerScratch`] docs for the canonical tie-breaking rule and the
/// conditions under which all of them return bit-identical paths.
///
/// `h` must be admissible (`h(v) ≤` cheapest remaining cost) for the
/// result to be a shortest path, and strictly consistent for the
/// cross-kernel bit-identity guarantee. `h(target)` is ignored (taken
/// as 0).
///
/// # Panics
/// Panics when `source` or `target` is out of range.
pub fn astar_path_filtered_into<G: Adjacency + ?Sized>(
    g: &G,
    source: u32,
    target: u32,
    h: impl Fn(u32) -> f64,
    allowed: impl Fn(u32) -> bool,
    scratch: &mut PlannerScratch,
    out: &mut Vec<u32>,
) -> bool {
    let n = g.num_vertices();
    assert!(
        (source as usize) < n && (target as usize) < n,
        "vertex out of range"
    );
    out.clear();
    if source == target {
        out.push(source);
        return true;
    }
    scratch.begin(n);
    scratch.write(source, 0.0, u32::MAX);
    scratch.heap.push(HeapItem {
        dist: h(source),
        vertex: source,
    });
    while let Some(HeapItem { vertex: u, .. }) = scratch.heap.pop() {
        if scratch.is_settled(u) {
            continue; // stale lazy-deleted entry
        }
        scratch.settle(u);
        if u == target {
            scratch.trace_into(target, out);
            return true;
        }
        let (d, _) = scratch.entry(u);
        for e in g.neighbors(u) {
            if scratch.is_settled(e.to) {
                continue;
            }
            if e.to != target && e.to != source && !allowed(e.to) {
                continue;
            }
            let nd = d + e.weight;
            let (cur, cur_parent) = scratch.entry(e.to);
            if nd < cur {
                scratch.write(e.to, nd, u);
                scratch.heap.push(HeapItem {
                    dist: nd + h(e.to),
                    vertex: e.to,
                });
            } else if nd == cur && u < cur_parent {
                // Canonical tie-break: equal-cost predecessors resolve
                // to the smallest id. The key is unchanged, so no new
                // heap entry is needed.
                scratch.write(e.to, nd, u);
            }
        }
    }
    out.clear();
    false
}

/// [`dijkstra_path`](crate::dijkstra_path) against reusable scratch
/// buffers: writes the path into `out`, returns `false` when
/// unreachable, allocates nothing once warm.
pub fn dijkstra_path_into<G: Adjacency + ?Sized>(
    g: &G,
    source: u32,
    target: u32,
    scratch: &mut PlannerScratch,
    out: &mut Vec<u32>,
) -> bool {
    astar_path_filtered_into(g, source, target, |_| 0.0, |_| true, scratch, out)
}

/// [`dijkstra_path_filtered`](crate::dijkstra_path_filtered) against
/// reusable scratch buffers (endpoints exempt from the filter).
pub fn dijkstra_path_filtered_into<G: Adjacency + ?Sized>(
    g: &G,
    source: u32,
    target: u32,
    allowed: impl Fn(u32) -> bool,
    scratch: &mut PlannerScratch,
    out: &mut Vec<u32>,
) -> bool {
    astar_path_filtered_into(g, source, target, |_| 0.0, allowed, scratch, out)
}

/// Goal-directed A* against reusable scratch buffers. With a strictly
/// consistent heuristic the result is bit-identical to
/// [`dijkstra_path_into`] (see [`PlannerScratch`]).
pub fn astar_path_into<G: Adjacency + ?Sized>(
    g: &G,
    source: u32,
    target: u32,
    h: impl Fn(u32) -> f64,
    scratch: &mut PlannerScratch,
    out: &mut Vec<u32>,
) -> bool {
    astar_path_filtered_into(g, source, target, h, |_| true, scratch, out)
}

/// Breadth-first hop count from `source` to the nearest vertex for
/// which `found` returns `true`, or `None` when no such vertex is
/// reachable. `found` is probed in nondecreasing hop order, so the
/// first hit is minimal — the search stops there instead of exploring
/// the whole component, and a warm scratch allocates nothing.
///
/// This is the ideal-unicast query (paper §4's overhead denominator)
/// in its early-exit form: "hops from this AP to any AP of the
/// destination building".
///
/// # Panics
/// Panics when `source` is out of range.
pub fn bfs_distance_to<G: Adjacency + ?Sized>(
    g: &G,
    source: u32,
    mut found: impl FnMut(u32) -> bool,
    scratch: &mut PlannerScratch,
) -> Option<u64> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    scratch.begin(n);
    scratch.write(source, 0.0, u32::MAX);
    if found(source) {
        return Some(0);
    }
    scratch.queue.push_back(source);
    while let Some(u) = scratch.queue.pop_front() {
        let (d, _) = scratch.entry(u);
        for e in g.neighbors(u) {
            if !scratch.is_visited(e.to) {
                scratch.write(e.to, d + 1.0, u);
                // Vertices are discovered in nondecreasing hop order,
                // so the first match is the minimum.
                if found(e.to) {
                    return Some(d as u64 + 1);
                }
                scratch.queue.push_back(e.to);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, dijkstra_path, dijkstra_path_filtered, Graph};

    fn diamond() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 10.0);
        g
    }

    #[test]
    fn into_matches_allocating_dijkstra() {
        let g = diamond();
        let mut s = PlannerScratch::new();
        let mut path = Vec::new();
        assert!(dijkstra_path_into(&g, 0, 2, &mut s, &mut path));
        assert_eq!(Some(path.clone()), dijkstra_path(&g, 0, 2));
        assert!(!dijkstra_path_into(&g, 0, 3, &mut s, &mut path));
        assert!(path.is_empty());
        assert_eq!(dijkstra_path(&g, 0, 3), None);
    }

    #[test]
    fn scratch_reuse_across_runs_and_graph_sizes() {
        let g = diamond();
        let mut big = Graph::new(100);
        for i in 0..99 {
            big.add_edge(i, i + 1, 1.0);
        }
        let mut s = PlannerScratch::new();
        let mut path = Vec::new();
        for _ in 0..5 {
            assert!(dijkstra_path_into(&big, 0, 99, &mut s, &mut path));
            assert_eq!(path.len(), 100);
            assert!(dijkstra_path_into(&g, 0, 2, &mut s, &mut path));
            assert_eq!(path, vec![0, 1, 2]);
        }
        assert_eq!(s.capacity(), 100);
    }

    #[test]
    fn source_equals_target() {
        let g = diamond();
        let mut s = PlannerScratch::new();
        let mut path = vec![9, 9];
        assert!(dijkstra_path_into(&g, 3, 3, &mut s, &mut path));
        assert_eq!(path, vec![3]);
    }

    #[test]
    fn filtered_matches_allocating_filtered() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 3, 5.0);
        g.add_edge(3, 2, 5.0);
        let mut s = PlannerScratch::new();
        let mut path = Vec::new();
        assert!(dijkstra_path_filtered_into(
            &g,
            0,
            2,
            |v| v != 1,
            &mut s,
            &mut path
        ));
        assert_eq!(
            Some(path.clone()),
            dijkstra_path_filtered(&g, 0, 2, |v| v != 1)
        );
        assert!(!dijkstra_path_filtered_into(
            &g,
            0,
            2,
            |v| v != 1 && v != 3,
            &mut s,
            &mut path
        ));
        // Endpoints exempt from the filter, like the allocating kernel.
        assert!(dijkstra_path_filtered_into(
            &g,
            0,
            2,
            |v| v != 0 && v != 2 && v != 1,
            &mut s,
            &mut path
        ));
        assert_eq!(path, vec![0, 3, 2]);
    }

    #[test]
    fn equal_cost_ties_resolve_to_smallest_parent_id() {
        // Two equal-cost two-hop paths 0→{1,2}→3. The canonical rule
        // must pick the via-1 path regardless of relaxation order.
        let mut g = Graph::new(4);
        g.add_edge(0, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 3, 1.0);
        let mut s = PlannerScratch::new();
        let mut d_path = Vec::new();
        let mut a_path = Vec::new();
        assert!(dijkstra_path_into(&g, 0, 3, &mut s, &mut d_path));
        assert_eq!(d_path, vec![0, 1, 3]);
        // A* with an admissible, strictly consistent heuristic (h ≡ 0
        // is strictly consistent here: all weights positive).
        assert!(astar_path_into(&g, 0, 3, |_| 0.0, &mut s, &mut a_path));
        assert_eq!(a_path, d_path);
    }

    #[test]
    fn astar_euclidean_matches_dijkstra_on_a_lattice_with_ties() {
        // 8×8 unit lattice, cubed weights (w = 8 per edge): many exact
        // equal-cost Manhattan paths between far corners. Strict
        // consistency holds (8 > 1 ≥ h-drop per edge), so A* must be
        // bit-identical to Dijkstra, including on ties.
        let nx = 8u32;
        let pos = |v: u32| ((v % nx) as f64, (v / nx) as f64);
        let mut g = Graph::new((nx * nx) as usize);
        for y in 0..nx {
            for x in 0..nx {
                let v = y * nx + x;
                if x + 1 < nx {
                    g.add_edge(v, v + 1, 2.0f64.powi(3));
                }
                if y + 1 < nx {
                    g.add_edge(v, v + nx, 2.0f64.powi(3));
                }
            }
        }
        let mut s = PlannerScratch::new();
        let mut d_path = Vec::new();
        let mut a_path = Vec::new();
        for (src, dst) in [(0, nx * nx - 1), (3, 60), (7, 56), (0, 63), (21, 42)] {
            let (tx, ty) = pos(dst);
            assert!(dijkstra_path_into(&g, src, dst, &mut s, &mut d_path));
            assert!(astar_path_into(
                &g,
                src,
                dst,
                |v| {
                    let (x, y) = pos(v);
                    ((x - tx).powi(2) + (y - ty).powi(2)).sqrt()
                },
                &mut s,
                &mut a_path
            ));
            assert_eq!(a_path, d_path, "pair ({src},{dst}) diverged");
        }
    }

    #[test]
    fn bfs_distance_to_matches_full_bfs() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(4, 5, 1.0); // disconnected pair
        let mut s = PlannerScratch::new();
        let full = bfs(&g, 0);
        assert_eq!(
            bfs_distance_to(&g, 0, |v| v == 3, &mut s),
            Some(full.dist[3] as u64)
        );
        assert_eq!(bfs_distance_to(&g, 0, |v| v == 0, &mut s), Some(0));
        assert_eq!(bfs_distance_to(&g, 0, |v| v >= 4, &mut s), None);
        // Predicate over a set: nearest of {2, 3} is 2 hops away.
        assert_eq!(
            bfs_distance_to(&g, 0, |v| v == 2 || v == 3, &mut s),
            Some(2)
        );
    }
}
