//! Shortest-path and connectivity algorithms.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use crate::Adjacency;

/// Distance value for unreachable vertices.
pub const INFINITY: f64 = f64::INFINITY;

/// The result of a single-source search: per-vertex distance and the
/// predecessor tree for path reconstruction.
#[derive(Clone, Debug)]
pub struct PathResult {
    /// `dist[v]` is the shortest distance from the source, or
    /// [`INFINITY`] when unreachable.
    pub dist: Vec<f64>,
    /// `parent[v]` is the predecessor of `v` on a shortest path, or
    /// `u32::MAX` for the source and unreachable vertices.
    pub parent: Vec<u32>,
}

impl PathResult {
    /// Reconstructs the path from the search source to `target`, or
    /// `None` when `target` is unreachable. The path includes both
    /// endpoints.
    pub fn path_to(&self, target: u32) -> Option<Vec<u32>> {
        if !self.dist[target as usize].is_finite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while self.parent[cur as usize] != u32::MAX {
            cur = self.parent[cur as usize];
            path.push(cur);
            debug_assert!(path.len() <= self.dist.len(), "parent cycle");
        }
        path.reverse();
        Some(path)
    }
}

/// A heap entry ordered by *smallest* distance first.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct HeapItem {
    pub(crate) dist: f64,
    pub(crate) vertex: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap. Distances are finite,
        // non-NaN by construction (weights validated by Graph).
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra's algorithm from `source`.
///
/// With cubed-distance weights (paper §3 step 2) this computes the
/// *building route*: short inter-building hops are strongly preferred
/// because they are the hops most likely to have actual AP coverage.
///
/// `O((V + E) log V)` with a binary heap and lazy deletion.
///
/// ```
/// use citymesh_graph::{dijkstra, Graph};
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 1.0);
/// g.add_edge(0, 2, 10.0); // expensive direct hop
/// let result = dijkstra(&g, 0);
/// assert_eq!(result.dist[2], 2.0);
/// assert_eq!(result.path_to(2), Some(vec![0, 1, 2]));
/// ```
pub fn dijkstra<G: Adjacency + ?Sized>(g: &G, source: u32) -> PathResult {
    dijkstra_bounded(g, source, None)
}

/// Like [`dijkstra`] but may stop early once `target` is settled,
/// which is the common case for point-to-point route planning.
pub fn dijkstra_path<G: Adjacency + ?Sized>(g: &G, source: u32, target: u32) -> Option<Vec<u32>> {
    dijkstra_bounded(g, source, Some(target)).path_to(target)
}

/// Dijkstra restricted to vertices for which `allowed` returns `true`
/// (the source and target are always allowed). Used for detour
/// planning around failed or compromised regions: blocked vertices are
/// simply invisible to the search.
pub fn dijkstra_path_filtered<G: Adjacency + ?Sized>(
    g: &G,
    source: u32,
    target: u32,
    allowed: impl Fn(u32) -> bool,
) -> Option<Vec<u32>> {
    let n = g.num_vertices();
    assert!(
        (source as usize) < n && (target as usize) < n,
        "vertex out of range"
    );
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![u32::MAX; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        vertex: source,
    });

    while let Some(HeapItem { dist: d, vertex: u }) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        if u == target {
            return PathResult { dist, parent }.path_to(target);
        }
        for e in g.neighbors(u) {
            if e.to != target && e.to != source && !allowed(e.to) {
                continue;
            }
            let nd = d + e.weight;
            if nd < dist[e.to as usize] {
                dist[e.to as usize] = nd;
                parent[e.to as usize] = u;
                heap.push(HeapItem {
                    dist: nd,
                    vertex: e.to,
                });
            }
        }
    }
    None
}

fn dijkstra_bounded<G: Adjacency + ?Sized>(g: &G, source: u32, target: Option<u32>) -> PathResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![u32::MAX; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        vertex: source,
    });

    while let Some(HeapItem { dist: d, vertex: u }) = heap.pop() {
        if settled[u as usize] {
            continue; // stale lazy-deleted entry
        }
        settled[u as usize] = true;
        if target == Some(u) {
            break;
        }
        for e in g.neighbors(u) {
            let nd = d + e.weight;
            if nd < dist[e.to as usize] {
                dist[e.to as usize] = nd;
                parent[e.to as usize] = u;
                heap.push(HeapItem {
                    dist: nd,
                    vertex: e.to,
                });
            }
        }
    }
    PathResult { dist, parent }
}

/// Breadth-first search from `source`: hop counts ignoring weights.
///
/// The BFS hop count over the AP graph is the paper's "minimum number
/// of transmissions necessary" — the denominator of the transmission-
/// overhead metric (§4).
pub fn bfs<G: Adjacency + ?Sized>(g: &G, source: u32) -> PathResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0.0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let d = dist[u as usize];
        for e in g.neighbors(u) {
            if !dist[e.to as usize].is_finite() {
                dist[e.to as usize] = d + 1.0;
                parent[e.to as usize] = u;
                queue.push_back(e.to);
            }
        }
    }
    PathResult { dist, parent }
}

/// Hop-minimal path from `source` to `target`, or `None` when
/// disconnected.
pub fn bfs_path<G: Adjacency + ?Sized>(g: &G, source: u32, target: u32) -> Option<Vec<u32>> {
    bfs(g, source).path_to(target)
}

/// A* from `source` to `target` with an admissible heuristic
/// `h(v) ≤ true remaining cost`. Returns the path, or `None` when
/// disconnected.
///
/// Used by route planning over large building graphs where the
/// Euclidean lower bound prunes most of the city.
pub fn astar<G: Adjacency + ?Sized>(
    g: &G,
    source: u32,
    target: u32,
    h: impl Fn(u32) -> f64,
) -> Option<Vec<u32>> {
    let n = g.num_vertices();
    assert!(
        (source as usize) < n && (target as usize) < n,
        "vertex out of range"
    );
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![u32::MAX; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(HeapItem {
        dist: h(source),
        vertex: source,
    });

    while let Some(HeapItem { vertex: u, .. }) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        if u == target {
            return PathResult { dist, parent }.path_to(target);
        }
        let d = dist[u as usize];
        for e in g.neighbors(u) {
            let nd = d + e.weight;
            if nd < dist[e.to as usize] {
                dist[e.to as usize] = nd;
                parent[e.to as usize] = u;
                heap.push(HeapItem {
                    dist: nd + h(e.to),
                    vertex: e.to,
                });
            }
        }
    }
    None
}

/// Labels each vertex with its connected-component id (0-based,
/// assigned in order of discovery) and returns `(labels, count)`.
///
/// The paper's *reachability* metric is "source and destination share
/// a component of the AP graph" (§4).
pub fn connected_components<G: Adjacency + ?Sized>(g: &G) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for e in g.neighbors(u) {
                if labels[e.to as usize] == u32::MAX {
                    labels[e.to as usize] = count;
                    queue.push_back(e.to);
                }
            }
        }
        count += 1;
    }
    (labels, count as usize)
}

/// Returns `(component_label, size)` of the largest connected
/// component, or `None` for an empty graph. Used to report how badly a
/// city fractures into islands (paper §4: the Washington D.C. case).
pub fn largest_component<G: Adjacency + ?Sized>(g: &G) -> Option<(u32, usize)> {
    let (labels, count) = connected_components(g);
    if count == 0 {
        return None;
    }
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| **s)
        .map(|(i, s)| (i as u32, *s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// A small weighted graph with a known shortest-path structure:
    ///
    /// ```text
    ///   0 --1-- 1 --1-- 2
    ///    \             /
    ///     ----10------
    ///   3 (isolated)
    /// ```
    fn diamond() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 10.0);
        g
    }

    #[test]
    fn dijkstra_prefers_cheap_two_hop_path() {
        let r = dijkstra(&diamond(), 0);
        assert_eq!(r.dist[2], 2.0);
        assert_eq!(r.path_to(2), Some(vec![0, 1, 2]));
        assert_eq!(r.dist[3], INFINITY);
        assert_eq!(r.path_to(3), None);
    }

    #[test]
    fn dijkstra_source_path_is_itself() {
        let r = dijkstra(&diamond(), 0);
        assert_eq!(r.dist[0], 0.0);
        assert_eq!(r.path_to(0), Some(vec![0]));
    }

    #[test]
    fn dijkstra_path_early_exit_matches_full_run() {
        let g = diamond();
        assert_eq!(dijkstra_path(&g, 0, 2), Some(vec![0, 1, 2]));
        assert_eq!(dijkstra_path(&g, 0, 3), None);
    }

    #[test]
    fn filtered_dijkstra_detours_and_fails_honestly() {
        // 0 — 1 — 2 with an expensive bypass 0 — 3 — 2.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 3, 5.0);
        g.add_edge(3, 2, 5.0);
        // Unfiltered: takes the cheap middle.
        assert_eq!(
            dijkstra_path_filtered(&g, 0, 2, |_| true),
            Some(vec![0, 1, 2])
        );
        // Vertex 1 blocked: detours through 3.
        assert_eq!(
            dijkstra_path_filtered(&g, 0, 2, |v| v != 1),
            Some(vec![0, 3, 2])
        );
        // Both intermediates blocked: no path.
        assert_eq!(dijkstra_path_filtered(&g, 0, 2, |v| v != 1 && v != 3), None);
        // Blocking the endpoints themselves is ignored.
        assert_eq!(
            dijkstra_path_filtered(&g, 0, 2, |v| v != 0 && v != 2 && v != 1),
            Some(vec![0, 3, 2])
        );
    }

    #[test]
    fn bfs_counts_hops_not_weights() {
        let r = bfs(&diamond(), 0);
        // One hop via the heavy direct edge.
        assert_eq!(r.dist[2], 1.0);
        assert_eq!(bfs_path(&diamond(), 0, 2), Some(vec![0, 2]));
    }

    #[test]
    fn astar_with_zero_heuristic_matches_dijkstra() {
        let g = diamond();
        assert_eq!(astar(&g, 0, 2, |_| 0.0), Some(vec![0, 1, 2]));
        assert_eq!(astar(&g, 0, 3, |_| 0.0), None);
    }

    #[test]
    fn astar_on_line_graph_with_admissible_heuristic() {
        // Vertices 0..10 in a line, weight 1 each; heuristic = remaining
        // count, which is exactly admissible.
        let n = 10u32;
        let mut g = Graph::new(n as usize);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 1.0);
        }
        let path = astar(&g, 0, n - 1, |v| (n - 1 - v) as f64).unwrap();
        assert_eq!(path.len(), n as usize);
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), n - 1);
    }

    #[test]
    fn components_and_largest() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(3, 4, 1.0);
        // 5 isolated.
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[5]);
        let (label, size) = largest_component(&g).unwrap();
        assert_eq!(size, 3);
        assert_eq!(label, labels[0]);
    }

    #[test]
    fn empty_graph_components() {
        let g = Graph::new(0);
        let (labels, count) = connected_components(&g);
        assert!(labels.is_empty());
        assert_eq!(count, 0);
        assert!(largest_component(&g).is_none());
    }

    #[test]
    fn zero_weight_edges_are_legal() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 0.0);
        g.add_edge(1, 2, 0.0);
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist[2], 0.0);
        assert_eq!(r.path_to(2).unwrap().len(), 3);
    }

    #[test]
    fn directed_arcs_respected_by_search() {
        let mut g = Graph::new(3);
        g.add_arc(0, 1, 1.0);
        g.add_arc(1, 2, 1.0);
        assert_eq!(dijkstra(&g, 0).dist[2], 2.0);
        assert_eq!(dijkstra(&g, 2).dist[0], INFINITY);
    }
}
