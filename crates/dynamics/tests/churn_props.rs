//! Property tests for the churn engine's determinism claims.
//!
//! Three invariants, each over *random event timelines* (counts,
//! radii, drain probabilities, horizon) and random workloads:
//!
//! 1. incremental cache invalidation is digest-equal to a full flush
//!    (and never evicts more),
//! 2. worker count does not change any churn digest,
//! 3. telemetry does not perturb churn outcomes.

use std::sync::OnceLock;

use citymesh_core::{CityExperiment, ExperimentConfig, FaultScenario};
use citymesh_dynamics::{
    run_churn, ChurnConfig, ChurnEngineConfig, InvalidationPolicy, Strategy as Churn, Timeline,
};
use citymesh_fleet::{generate_flows, FlowModel, FlowSpec, WorkloadConfig};
use citymesh_map::CityArchetype;
use citymesh_telemetry::TelemetryConfig;
use proptest::prelude::*;

/// One blacked-out world shared by every case: preparing the AP
/// fabric dominates each case's cost and the properties are about the
/// churn engine, not the city.
fn shared_world() -> &'static CityExperiment {
    static WORLD: OnceLock<CityExperiment> = OnceLock::new();
    WORLD.get_or_init(|| {
        let map = CityArchetype::SurveyDowntown.generate(5);
        CityExperiment::prepare(
            map,
            ExperimentConfig {
                seed: 5,
                faults: Some(FaultScenario::district_blackouts(1, 100.0)),
                ..ExperimentConfig::default()
            },
        )
    })
}

fn workload(exp: &CityExperiment, flows: usize, seed: u64) -> Vec<FlowSpec> {
    generate_flows(
        exp.map().len(),
        &WorkloadConfig {
            flows,
            model: FlowModel::UniformPairs { rate_hz: 150.0 },
            seed,
        },
    )
}

/// A random timeline whose events actually land inside the workload's
/// arrival span (so epochs are non-trivial partitions).
fn random_timeline(
    exp: &CityExperiment,
    flows: &[FlowSpec],
    seed: u64,
    counts: (usize, usize, usize),
    radius_m: f64,
    drain_p: f64,
) -> Timeline {
    let (aftershocks, battery_waves, crew_repairs) = counts;
    Timeline::materialize(
        exp,
        &ChurnConfig {
            aftershocks,
            battery_waves,
            crew_repairs,
            horizon_ms: flows.last().expect("non-empty workload").arrival_ms,
            aftershock_radius_m: radius_m,
            drain_p,
            repair_radius_m: radius_m * 1.25,
            seed,
        },
    )
}

fn engine_cfg(workers: usize, seed: u64, invalidation: InvalidationPolicy) -> ChurnEngineConfig {
    ChurnEngineConfig {
        workers,
        seed,
        invalidation,
        reactive_max_attempts: 4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole equivalence: over random event timelines,
    /// evicting only what an event could touch produces bit-identical
    /// outcome digests to flushing the whole cache — while never
    /// evicting more entries.
    #[test]
    fn incremental_eviction_matches_full_flush(
        seed in any::<u64>(),
        flows in 80usize..200,
        aftershocks in 0usize..4,
        battery_waves in 0usize..3,
        crew_repairs in 0usize..3,
        radius_m in 60.0..180.0f64,
        drain_p in 0.0..0.25f64,
        strategy in prop_oneof![
            Just(Churn::StaticPlan),
            Just(Churn::RetryLadder),
            Just(Churn::ReactiveRepair),
        ],
    ) {
        let exp = shared_world();
        let workload = workload(exp, flows, seed);
        let tl = random_timeline(
            exp, &workload, seed, (aftershocks, battery_waves, crew_repairs), radius_m, drain_p,
        );
        let (incremental, _) = run_churn(
            exp, &workload, &tl, strategy,
            &engine_cfg(2, seed, InvalidationPolicy::Incremental),
            &TelemetryConfig::off(),
        );
        let (flush, _) = run_churn(
            exp, &workload, &tl, strategy,
            &engine_cfg(2, seed, InvalidationPolicy::FullFlush),
            &TelemetryConfig::off(),
        );
        prop_assert_eq!(
            incremental.digest(), flush.digest(),
            "invalidation policy changed outcomes ({})", strategy.label()
        );
        prop_assert!(
            incremental.routes_evicted <= flush.routes_evicted,
            "incremental evicted more than a flush ({} vs {})",
            incremental.routes_evicted, flush.routes_evicted
        );
        prop_assert!(
            incremental.routes_planned <= flush.routes_planned,
            "fewer evictions cannot mean more replans"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Worker-count invariance survives a mutating world: 1 and 4
    /// workers (and the serial reference) agree on the churn digest
    /// and on the deterministic work accounting for every strategy.
    #[test]
    fn churn_digest_is_invariant_under_worker_count(
        seed in any::<u64>(),
        flows in 80usize..180,
        aftershocks in 1usize..4,
        crew_repairs in 0usize..3,
        strategy in prop_oneof![
            Just(Churn::StaticPlan),
            Just(Churn::RetryLadder),
            Just(Churn::ReactiveRepair),
        ],
    ) {
        let exp = shared_world();
        let workload = workload(exp, flows, seed);
        let tl = random_timeline(exp, &workload, seed, (aftershocks, 1, crew_repairs), 120.0, 0.1);
        let runs: Vec<_> = [1usize, 4]
            .iter()
            .map(|&workers| {
                run_churn(
                    exp, &workload, &tl, strategy,
                    &engine_cfg(workers, seed, InvalidationPolicy::Incremental),
                    &TelemetryConfig::off(),
                ).0
            })
            .collect();
        prop_assert_eq!(
            runs[0].digest(), runs[1].digest(),
            "1 vs 4 workers diverged ({})", strategy.label()
        );
        prop_assert_eq!(runs[0].routes_evicted, runs[1].routes_evicted);
        prop_assert_eq!(runs[0].repairs, runs[1].repairs);
        prop_assert_eq!(runs[0].repair_buildings, runs[1].repair_buildings);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Telemetry must observe churn without perturbing it, and its
    /// churn counters must agree with the report's own accounting.
    #[test]
    fn telemetry_does_not_perturb_churn(
        seed in any::<u64>(),
        flows in 60usize..140,
        aftershocks in 1usize..3,
        strategy in prop_oneof![Just(Churn::RetryLadder), Just(Churn::ReactiveRepair)],
    ) {
        let exp = shared_world();
        let workload = workload(exp, flows, seed);
        let tl = random_timeline(exp, &workload, seed, (aftershocks, 1, 1), 120.0, 0.1);
        let cfg = engine_cfg(2, seed, InvalidationPolicy::Incremental);
        let (untraced, _) =
            run_churn(exp, &workload, &tl, strategy, &cfg, &TelemetryConfig::off());
        let (traced, telemetry) =
            run_churn(exp, &workload, &tl, strategy, &cfg, &TelemetryConfig::metrics_only());
        prop_assert_eq!(
            untraced.digest(), traced.digest(),
            "telemetry perturbed churn outcomes ({})", strategy.label()
        );
        let telemetry = telemetry.expect("metrics were requested");
        prop_assert_eq!(
            telemetry.metrics.counter(citymesh_telemetry::metrics::EVENTS_APPLIED),
            traced.events_applied
        );
        prop_assert_eq!(
            telemetry.metrics.counter(citymesh_telemetry::metrics::ROUTES_EVICTED),
            traced.routes_evicted
        );
        prop_assert_eq!(
            telemetry.metrics.counter(citymesh_telemetry::metrics::FLOWS),
            traced.flows
        );
    }
}
