//! The epoch-barrier churn engine.
//!
//! [`run_churn`] drives one workload through a mutating world. The
//! flow set is partitioned by arrival time against the timeline's
//! event instants; each partition (an *epoch*) runs on the fleet
//! engine's worker pool against a frozen fault state, then the next
//! event is applied serially at the barrier — health flips, blocked
//! set, postbox table, fault-state epoch counter — and the shared
//! route cache is invalidated before the next epoch starts. Because
//! events are pre-materialized ([`Timeline`]) and flows carry per-flow
//! RNG sub-streams keyed by their global workload id, the whole run is
//! schedule-independent: 1 worker and 8 fold to the same
//! [`ChurnReport::digest`].
//!
//! # Invalidation
//!
//! The cache survives the barrier; the [`InvalidationPolicy`] decides
//! what must go:
//!
//! * [`InvalidationPolicy::FullFlush`] — drop everything, the safe
//!   baseline: every post-event flow replans.
//! * [`InvalidationPolicy::Incremental`] — evict only plans the event
//!   could observably touch: those whose source or destination
//!   building changed state (the sender's postbox uplink is baked into
//!   the cached plan), plus those with a changed AP inside one of
//!   their conduit rectangles (found through the AP graph's spatial
//!   bucket index, not a city scan). Everything else stays warm.
//!
//! Incremental eviction is digest-equal to a full flush — asserted by
//! proptests and the churn bench — because a kept plan's simulation
//! only consults the *live* fault state: route geometry is planned on
//! the stale pre-disaster map (the paper's assumption, enforced here),
//! per-AP health is read at delivery time, and the lazy retry-ladder
//! geometry is keyed by fault-state epoch inside the plan itself. The
//! only fault-dependent value a plan caches is its source postbox
//! uplink, and any event that changes it touches the source building —
//! which is exactly the first eviction criterion. The conduit-overlap
//! criterion is a deliberate conservative superset (it keeps the
//! policy honest if delivery ever grows a plan-time dependence on
//! conduit AP health), and the bench verifies it still evicts strictly
//! less than a flush.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

use citymesh_baselines::deliver_with_local_repair;
use citymesh_core::{CityExperiment, DeliveryScratch, PairOutcome, RetryPolicy};
use citymesh_fleet::{
    record_flow_metrics, run_fleet_on_cache, FleetConfig, FleetReport, FleetTelemetry, FlowSpec,
    RouteCache, DOMAIN_MSG, DOMAIN_SIM,
};
use citymesh_simcore::{substream_seed, SimRng};
use citymesh_telemetry::{metrics as tm, MetricSet, TelemetryConfig};

use crate::timeline::Timeline;

/// How the sender population reacts to failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// One send over the pre-planned conduits; no reaction at all.
    /// The paper's static plan, the floor every reactive scheme must
    /// beat under churn.
    StaticPlan,
    /// The sender's full retry ladder: resend, widen, end-to-end
    /// replan (the PR-5 graceful-degradation machinery, unchanged).
    RetryLadder,
    /// Babel/QSPN-style reactive local repair
    /// ([`citymesh_baselines::deliver_with_local_repair`]): splice a
    /// detour around the first dark building on each failure
    /// notification instead of re-planning end to end.
    ReactiveRepair,
}

impl Strategy {
    /// Stable lowercase label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::StaticPlan => "static",
            Strategy::RetryLadder => "ladder",
            Strategy::ReactiveRepair => "reactive",
        }
    }
}

/// What to evict from the route cache when an event lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InvalidationPolicy {
    /// Evict only plans the event could observably touch (see the
    /// module docs for the exact criteria).
    Incremental,
    /// Drop the whole cache at every event.
    FullFlush,
}

/// Churn-engine execution knobs.
#[derive(Clone, Copy, Debug)]
pub struct ChurnEngineConfig {
    /// Worker threads per epoch (the fleet pool size).
    pub workers: usize,
    /// Root seed for per-flow message-id and simulation sub-streams —
    /// use the same seed as the plain fleet runs you compare against.
    pub seed: u64,
    /// Cache invalidation policy at event barriers.
    pub invalidation: InvalidationPolicy,
    /// Send attempts for [`Strategy::ReactiveRepair`] (the other
    /// strategies take their attempt budget from the fault state's
    /// retry policy).
    pub reactive_max_attempts: u32,
}

impl Default for ChurnEngineConfig {
    fn default() -> Self {
        ChurnEngineConfig {
            workers: 1,
            seed: 0,
            invalidation: InvalidationPolicy::Incremental,
            reactive_max_attempts: 4,
        }
    }
}

/// One epoch's summary inside a [`ChurnReport`].
#[derive(Clone, Debug)]
pub struct EpochStat {
    /// Fault-state epoch the flows of this slice simulated against.
    pub epoch: u64,
    /// Flows simulated in this epoch.
    pub flows: u64,
    /// Aggregate digest of this epoch's flow outcomes.
    pub fleet_digest: u64,
    /// Fault-state fingerprint *after* the event closing this epoch
    /// (equal to the pre-event fingerprint for the final epoch, which
    /// no event closes).
    pub fault_fingerprint: u64,
    /// APs whose health the closing event actually flipped (0 for the
    /// final epoch).
    pub aps_changed: u64,
    /// Cached routes evicted at the closing barrier (0 for the final
    /// epoch).
    pub evicted: u64,
}

/// Aggregate result of one churn run.
///
/// The digest-bearing fields describe *outcomes* (what was delivered,
/// under which world) and are identical across worker counts and
/// invalidation policies; the cost fields (evictions, planner
/// invocations, repair bills) describe *work* and are exactly what the
/// policies trade off.
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// Flows simulated across all epochs.
    pub flows: u64,
    /// Flows delivered.
    pub delivered: u64,
    /// Flows that needed more than one send attempt.
    pub retried: u64,
    /// Retried flows ultimately delivered.
    pub recovered: u64,
    /// Epochs executed (`timeline.len() + 1`).
    pub epochs: u64,
    /// World events applied.
    pub events_applied: u64,
    /// Total per-AP health flips across all events.
    pub aps_changed: u64,
    /// Cached routes evicted across all barriers. **Not** covered by
    /// the digest (it is the policy cost being measured).
    pub routes_evicted: u64,
    /// Planner invocations (cumulative route-cache misses). **Not**
    /// covered by the digest.
    pub routes_planned: u64,
    /// Cumulative route-cache hits. **Not** covered by the digest.
    pub cache_hits: u64,
    /// Reactive strategy: local splices performed.
    pub repairs: u64,
    /// Reactive strategy: full re-discoveries performed.
    pub full_replans: u64,
    /// Reactive strategy: buildings recomputed across all repairs —
    /// the locality dividend against the ladder's end-to-end replans.
    pub repair_buildings: u64,
    /// Fingerprint of the timeline this run replayed.
    pub timeline_fingerprint: u64,
    /// Per-epoch summaries, in execution order.
    pub epoch_stats: Vec<EpochStat>,
}

impl ChurnReport {
    /// Delivered fraction over all flows.
    pub fn delivery_rate(&self) -> f64 {
        if self.flows == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.flows as f64
    }

    /// FNV-1a over the outcome-bearing state: per-epoch fleet digests
    /// and fault fingerprints in order, the timeline fingerprint, and
    /// the aggregate outcome counters. Work-accounting fields
    /// (evictions, planner invocations, repair bills) are excluded —
    /// equal digests across invalidation policies is the correctness
    /// claim, differing work is the point.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(self.flows);
        mix(self.delivered);
        mix(self.retried);
        mix(self.recovered);
        mix(self.epochs);
        mix(self.events_applied);
        mix(self.aps_changed);
        mix(self.timeline_fingerprint);
        for e in &self.epoch_stats {
            mix(e.epoch);
            mix(e.flows);
            mix(e.fleet_digest);
            mix(e.fault_fingerprint);
        }
        h
    }
}

/// Runs `flows` through the mutating world described by `timeline`.
///
/// `exp` must carry a fault state (prepare it with a scenario — the
/// engine mutates a private clone, the caller's world is untouched)
/// whose map is stale ([`FaultScenario::stale_map`]), because the
/// incremental-invalidation equivalence argument relies on route
/// geometry being a pure function of the pre-disaster map. `flows`
/// must be sorted by ascending id with nondecreasing `arrival_ms`
/// (every generated workload is).
///
/// An event at time `t` is applied before flows with `arrival_ms ≥ t`;
/// ties go to the event (the flow sees the post-event world).
///
/// Returns the report plus merged telemetry when `tel` asks for any —
/// per-epoch metric sets merge commutatively, then the engine adds its
/// own churn counters (`churn_events_total`, `routes_evicted_total`,
/// `epoch_transitions_total`). The report digest is identical traced
/// or untraced, exactly like the fleet engine's.
///
/// [`FaultScenario::stale_map`]: citymesh_core::FaultScenario
///
/// # Panics
/// Panics when `exp` has no fault state, when its map is not stale
/// (use [`try_run_churn`] for a `Result` instead), or when a worker
/// thread panics.
pub fn run_churn(
    exp: &CityExperiment,
    flows: &[FlowSpec],
    timeline: &Timeline,
    strategy: Strategy,
    cfg: &ChurnEngineConfig,
    tel: &TelemetryConfig,
) -> (ChurnReport, Option<FleetTelemetry>) {
    try_run_churn(exp, flows, timeline, strategy, cfg, tel).unwrap_or_else(|e| panic!("{e}"))
}

/// A churn run rejected before any epoch started: the experiment is
/// missing a prerequisite the engine's correctness argument needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnError {
    /// The experiment carries no fault state, so there is nothing for
    /// world events to mutate.
    MissingFaultState,
    /// The fault scenario plans on the live map; incremental
    /// invalidation relies on routes being a pure function of the
    /// pre-disaster (stale) map.
    FreshMap,
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::MissingFaultState => write!(
                f,
                "run_churn requires a fault state; prepare the experiment with a scenario"
            ),
            ChurnError::FreshMap => write!(
                f,
                "run_churn requires stale-map planning (incremental invalidation \
                 relies on routes being a pure function of the pre-disaster map)"
            ),
        }
    }
}

impl std::error::Error for ChurnError {}

/// [`run_churn`] with the missing-fault-state and fresh-map panics
/// turned into typed [`ChurnError`]s.
///
/// # Panics
/// Still panics when a worker thread panics mid-run.
pub fn try_run_churn(
    exp: &CityExperiment,
    flows: &[FlowSpec],
    timeline: &Timeline,
    strategy: Strategy,
    cfg: &ChurnEngineConfig,
    tel: &TelemetryConfig,
) -> Result<(ChurnReport, Option<FleetTelemetry>), ChurnError> {
    let state = exp.fault_state().ok_or(ChurnError::MissingFaultState)?;
    if !state.stale_map() {
        return Err(ChurnError::FreshMap);
    }
    debug_assert!(
        flows.windows(2).all(|w| w[0].id < w[1].id),
        "flows must be sorted by ascending id"
    );
    debug_assert!(
        flows.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms),
        "flow arrivals must be nondecreasing"
    );

    // The engine's private world; the sender population's reaction is
    // the fault state's retry policy (reactive does its own retrying).
    let mut fs = state.clone();
    fs.set_retry(match strategy {
        Strategy::StaticPlan | Strategy::ReactiveRepair => RetryPolicy::none(),
        Strategy::RetryLadder => RetryPolicy::ladder(),
    });
    let mut world = exp.clone().with_fault_state(fs);

    let cache = RouteCache::new();
    let fleet_cfg = FleetConfig {
        workers: cfg.workers,
        seed: cfg.seed,
        ..FleetConfig::default()
    };
    let mut report = ChurnReport {
        flows: 0,
        delivered: 0,
        retried: 0,
        recovered: 0,
        epochs: 0,
        events_applied: 0,
        aps_changed: 0,
        routes_evicted: 0,
        routes_planned: 0,
        cache_hits: 0,
        repairs: 0,
        full_replans: 0,
        repair_buildings: 0,
        timeline_fingerprint: timeline.fingerprint(),
        epoch_stats: Vec::with_capacity(timeline.len() + 1),
    };
    let mut metrics = (!tel.is_off()).then(MetricSet::new);
    let mut postmortems = Vec::new();

    let mut next = 0usize;
    for k in 0..=timeline.len() {
        let end = match timeline.events().get(k) {
            Some(ev) => next + flows[next..].partition_point(|f| f.arrival_ms < ev.at_ms),
            None => flows.len(),
        };
        let slice = &flows[next..end];
        next = end;

        let epoch = world
            .fault_state()
            .expect("world was prepared with a fault state")
            .epoch();
        let (fleet, epoch_tel) = match strategy {
            Strategy::StaticPlan | Strategy::RetryLadder => {
                run_fleet_on_cache(&world, slice, &fleet_cfg, &cache, tel)
            }
            Strategy::ReactiveRepair => {
                run_reactive_epoch(&world, slice, cfg, &cache, tel, &mut report)
            }
        };
        if let (Some(m), Some(t)) = (metrics.as_mut(), epoch_tel.as_ref()) {
            m.merge(&t.metrics);
        }
        if let Some(t) = epoch_tel {
            postmortems.extend(t.postmortems);
        }
        report.flows += fleet.flows;
        report.delivered += fleet.delivered;
        report.retried += fleet.retried;
        report.recovered += fleet.recovered;
        report.epochs += 1;

        let mut stat = EpochStat {
            epoch,
            flows: fleet.flows,
            fleet_digest: fleet.digest(),
            fault_fingerprint: world
                .fault_state()
                .expect("world was prepared with a fault state")
                .fingerprint(),
            aps_changed: 0,
            evicted: 0,
        };

        if let Some(ev) = timeline.events().get(k) {
            let transition = world.apply_world_event(&ev.changes);
            let evicted = match cfg.invalidation {
                InvalidationPolicy::FullFlush => cache.clear(),
                InvalidationPolicy::Incremental => {
                    let touched: HashSet<u32> =
                        transition.touched_buildings.iter().copied().collect();
                    let changed_aps: HashSet<u32> = ev.changes.iter().map(|&(ap, _)| ap).collect();
                    let apg = world.ap_graph();
                    let mut candidates = Vec::new();
                    cache.evict_where(|plan| {
                        if touched.contains(&plan.src) || touched.contains(&plan.dst) {
                            return true;
                        }
                        let mut hit = false;
                        apg.for_each_ap_in_conduits(&plan.conduits, &mut candidates, |id, _| {
                            hit |= changed_aps.contains(&id);
                        });
                        hit
                    })
                }
            };
            report.events_applied += 1;
            report.aps_changed += transition.aps_changed as u64;
            report.routes_evicted += evicted;
            stat.aps_changed = transition.aps_changed as u64;
            stat.evicted = evicted;
            stat.fault_fingerprint = transition.fingerprint;
            if let Some(m) = metrics.as_mut() {
                m.inc(tm::EVENTS_APPLIED);
                m.inc(tm::EPOCH_TRANSITIONS);
                m.add(tm::ROUTES_EVICTED, evicted);
            }
        }
        report.epoch_stats.push(stat);
    }

    report.routes_planned = cache.misses();
    report.cache_hits = cache.hits();
    let telemetry = metrics.map(|metrics| FleetTelemetry {
        metrics,
        postmortems,
    });
    Ok((report, telemetry))
}

/// Flow chunk claimed per cursor fetch in the reactive worker loop.
const CLAIM_CHUNK: usize = 32;

/// One epoch of [`Strategy::ReactiveRepair`]: the fleet engine's
/// claim-chunk worker loop, but each flow is delivered through
/// [`deliver_with_local_repair`] instead of the pipeline's ladder.
/// Outcomes are merged and folded in ascending flow-id order, repair
/// bills are summed (order-free `u64` adds), and per-flow RNG
/// sub-streams come from the same `(seed, domain, flow id)` scheme the
/// fleet uses — so the epoch digest is worker-count independent on the
/// same grounds.
fn run_reactive_epoch(
    world: &CityExperiment,
    slice: &[FlowSpec],
    cfg: &ChurnEngineConfig,
    cache: &RouteCache,
    tel: &TelemetryConfig,
    report: &mut ChurnReport,
) -> (FleetReport, Option<FleetTelemetry>) {
    struct Yield {
        records: Vec<(u64, PairOutcome)>,
        metrics: Option<MetricSet>,
        repairs: u64,
        full_replans: u64,
        repair_buildings: u64,
    }
    let run_range = |cursor: &AtomicUsize| -> Yield {
        let mut y = Yield {
            records: Vec::new(),
            metrics: tel.metrics.then(MetricSet::new),
            repairs: 0,
            full_replans: 0,
            repair_buildings: 0,
        };
        let mut scratch = DeliveryScratch::new();
        loop {
            let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
            if start >= slice.len() {
                break;
            }
            for flow in &slice[start..(start + CLAIM_CHUNK).min(slice.len())] {
                let plan =
                    cache.get_or_plan(flow.src, flow.dst, || world.plan_flow(flow.src, flow.dst));
                let msg_id = substream_seed(cfg.seed, DOMAIN_MSG, flow.id);
                let mut rng = SimRng::new(substream_seed(cfg.seed, DOMAIN_SIM, flow.id));
                let out = deliver_with_local_repair(
                    world,
                    &plan,
                    msg_id,
                    cfg.reactive_max_attempts,
                    &mut rng,
                    &mut scratch,
                );
                if let Some(m) = y.metrics.as_mut() {
                    record_flow_metrics(m, &out.outcome);
                }
                y.repairs += out.repairs;
                y.full_replans += out.full_replans;
                y.repair_buildings += out.replanned_buildings;
                y.records.push((flow.id, out.outcome));
            }
        }
        y
    };

    let workers = cfg.workers.max(1).min(slice.len().max(1));
    let yields: Vec<Yield> = if workers == 1 {
        vec![run_range(&AtomicUsize::new(0))]
    } else {
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<Yield>> = Vec::new();
        slots.resize_with(workers, || None);
        crossbeam::thread::scope(|s| {
            for slot in slots.iter_mut() {
                let cursor = &cursor;
                s.spawn(move |_| {
                    *slot = Some(run_range(cursor));
                });
            }
        })
        .expect("reactive churn worker panicked");
        slots.into_iter().flatten().collect()
    };

    let metrics = tel.metrics.then(|| {
        let mut m = MetricSet::new();
        for y in &yields {
            if let Some(ym) = &y.metrics {
                m.merge(ym);
            }
        }
        m
    });
    for y in &yields {
        report.repairs += y.repairs;
        report.full_replans += y.full_replans;
        report.repair_buildings += y.repair_buildings;
    }
    let mut merged: Vec<(u64, PairOutcome)> = yields.into_iter().flat_map(|y| y.records).collect();
    merged.sort_unstable_by_key(|(id, _)| *id);
    let mut fleet = FleetReport::empty();
    for ((id, outcome), spec) in merged.iter().zip(slice) {
        debug_assert_eq!(*id, spec.id, "flows must be sorted by ascending id");
        fleet.absorb_outcome(spec, outcome);
    }
    fleet.workers = workers;
    let telemetry = metrics.map(|metrics| FleetTelemetry {
        metrics,
        // Reactive delivery does not feed the flow tracer; failure
        // forensics under churn come from the fleet strategies.
        postmortems: Vec::new(),
    });
    (fleet, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::ChurnConfig;
    use citymesh_core::{ExperimentConfig, FaultScenario};
    use citymesh_fleet::{generate_flows, FlowModel, WorkloadConfig};
    use citymesh_map::CityArchetype;

    fn world(seed: u64) -> CityExperiment {
        CityExperiment::prepare(
            CityArchetype::SurveyDowntown.generate(seed),
            ExperimentConfig {
                seed,
                faults: Some(FaultScenario::district_blackouts(1, 100.0)),
                ..ExperimentConfig::default()
            },
        )
    }

    fn workload(exp: &CityExperiment, flows: usize, seed: u64) -> Vec<FlowSpec> {
        generate_flows(
            exp.map().len(),
            &WorkloadConfig {
                flows,
                model: FlowModel::Hotspot {
                    hotspots: 6,
                    exponent: 1.2,
                    rate_hz: 150.0,
                },
                seed,
            },
        )
    }

    fn run(
        exp: &CityExperiment,
        flows: &[FlowSpec],
        tl: &Timeline,
        strategy: Strategy,
        workers: usize,
        invalidation: InvalidationPolicy,
    ) -> ChurnReport {
        run_churn(
            exp,
            flows,
            tl,
            strategy,
            &ChurnEngineConfig {
                workers,
                seed: 33,
                invalidation,
                reactive_max_attempts: 4,
            },
            &TelemetryConfig::off(),
        )
        .0
    }

    #[test]
    fn epochs_partition_the_workload_and_events_apply() {
        let exp = world(33);
        let flows = workload(&exp, 300, 33);
        let tl = Timeline::materialize(
            &exp,
            &ChurnConfig {
                seed: 33,
                horizon_ms: flows.last().unwrap().arrival_ms,
                ..ChurnConfig::default()
            },
        );
        assert!(!tl.is_empty());
        for strategy in [
            Strategy::StaticPlan,
            Strategy::RetryLadder,
            Strategy::ReactiveRepair,
        ] {
            let r = run(
                &exp,
                &flows,
                &tl,
                strategy,
                1,
                InvalidationPolicy::Incremental,
            );
            assert_eq!(r.flows, flows.len() as u64, "{}", strategy.label());
            assert_eq!(r.epochs, tl.len() as u64 + 1);
            assert_eq!(r.events_applied, tl.len() as u64);
            assert!(r.aps_changed > 0, "events must flip some APs");
            assert_eq!(
                r.epoch_stats.iter().map(|e| e.flows).sum::<u64>(),
                r.flows,
                "epochs partition the workload"
            );
            assert!(r.delivered > 0);
        }
    }

    #[test]
    fn digests_are_worker_count_invariant() {
        let exp = world(34);
        let flows = workload(&exp, 240, 34);
        let tl = Timeline::materialize(
            &exp,
            &ChurnConfig {
                seed: 34,
                horizon_ms: flows.last().unwrap().arrival_ms,
                ..ChurnConfig::default()
            },
        );
        for strategy in [
            Strategy::StaticPlan,
            Strategy::RetryLadder,
            Strategy::ReactiveRepair,
        ] {
            let serial = run(
                &exp,
                &flows,
                &tl,
                strategy,
                1,
                InvalidationPolicy::Incremental,
            );
            let parallel = run(
                &exp,
                &flows,
                &tl,
                strategy,
                4,
                InvalidationPolicy::Incremental,
            );
            assert_eq!(
                serial.digest(),
                parallel.digest(),
                "{}: serial and 4-worker churn runs must agree",
                strategy.label()
            );
            assert_eq!(serial.routes_evicted, parallel.routes_evicted);
        }
    }

    #[test]
    fn incremental_eviction_is_digest_equal_and_cheaper() {
        let exp = world(35);
        let flows = workload(&exp, 300, 35);
        let tl = Timeline::materialize(
            &exp,
            &ChurnConfig {
                aftershocks: 2,
                battery_waves: 1,
                crew_repairs: 1,
                seed: 35,
                horizon_ms: flows.last().unwrap().arrival_ms,
                ..ChurnConfig::default()
            },
        );
        for strategy in [Strategy::RetryLadder, Strategy::ReactiveRepair] {
            let incremental = run(
                &exp,
                &flows,
                &tl,
                strategy,
                2,
                InvalidationPolicy::Incremental,
            );
            let flush = run(
                &exp,
                &flows,
                &tl,
                strategy,
                2,
                InvalidationPolicy::FullFlush,
            );
            assert_eq!(
                incremental.digest(),
                flush.digest(),
                "{}: invalidation policy must not change outcomes",
                strategy.label()
            );
            assert!(
                incremental.routes_evicted < flush.routes_evicted,
                "{}: incremental must evict strictly fewer ({} vs {})",
                strategy.label(),
                incremental.routes_evicted,
                flush.routes_evicted
            );
            assert!(
                incremental.routes_planned <= flush.routes_planned,
                "{}: fewer evictions cannot mean more replans",
                strategy.label()
            );
        }
    }

    #[test]
    fn reactive_repairs_are_counted_and_ladder_free() {
        let exp = world(36);
        let flows = workload(&exp, 300, 36);
        let tl = Timeline::materialize(
            &exp,
            &ChurnConfig {
                aftershocks: 3,
                seed: 36,
                horizon_ms: flows.last().unwrap().arrival_ms,
                ..ChurnConfig::default()
            },
        );
        let reactive = run(
            &exp,
            &flows,
            &tl,
            Strategy::ReactiveRepair,
            2,
            InvalidationPolicy::Incremental,
        );
        assert!(
            reactive.repairs + reactive.full_replans > 0,
            "aftershocks on a blacked-out downtown must trigger repairs"
        );
        assert!(reactive.repair_buildings > 0);
        let ladder = run(
            &exp,
            &flows,
            &tl,
            Strategy::RetryLadder,
            2,
            InvalidationPolicy::Incremental,
        );
        assert_eq!(ladder.repairs, 0, "only reactive fills the repair bill");
        assert_eq!(ladder.repair_buildings, 0);
        let r#static = run(
            &exp,
            &flows,
            &tl,
            Strategy::StaticPlan,
            2,
            InvalidationPolicy::Incremental,
        );
        assert_eq!(r#static.retried, 0, "static never retries");
        assert!(
            ladder.delivered >= r#static.delivered,
            "the ladder can only help"
        );
    }

    #[test]
    fn traced_runs_keep_the_digest_and_count_churn() {
        let exp = world(37);
        let flows = workload(&exp, 200, 37);
        let tl = Timeline::materialize(
            &exp,
            &ChurnConfig {
                seed: 37,
                horizon_ms: flows.last().unwrap().arrival_ms,
                ..ChurnConfig::default()
            },
        );
        let cfg = ChurnEngineConfig {
            workers: 2,
            seed: 37,
            invalidation: InvalidationPolicy::Incremental,
            reactive_max_attempts: 4,
        };
        for strategy in [Strategy::RetryLadder, Strategy::ReactiveRepair] {
            let (untraced, none) =
                run_churn(&exp, &flows, &tl, strategy, &cfg, &TelemetryConfig::off());
            assert!(none.is_none());
            let (traced, telemetry) = run_churn(
                &exp,
                &flows,
                &tl,
                strategy,
                &cfg,
                &TelemetryConfig::metrics_only(),
            );
            assert_eq!(
                untraced.digest(),
                traced.digest(),
                "{}: telemetry must not perturb churn outcomes",
                strategy.label()
            );
            let telemetry = telemetry.expect("metrics were requested");
            let m = &telemetry.metrics;
            assert_eq!(m.counter(tm::EVENTS_APPLIED), untraced.events_applied);
            assert_eq!(m.counter(tm::EPOCH_TRANSITIONS), untraced.events_applied);
            assert_eq!(m.counter(tm::ROUTES_EVICTED), untraced.routes_evicted);
            assert_eq!(m.counter(tm::FLOWS), untraced.flows);
        }
    }

    #[test]
    fn try_run_churn_types_every_rejection() {
        let flows = {
            let exp = world(40);
            workload(&exp, 20, 40)
        };
        // No fault state at all.
        let healthy = CityExperiment::prepare(
            CityArchetype::SurveyDowntown.generate(40),
            ExperimentConfig {
                seed: 40,
                ..ExperimentConfig::default()
            },
        );
        let tl = Timeline::materialize(&healthy, &ChurnConfig::default());
        let err = try_run_churn(
            &healthy,
            &flows,
            &tl,
            Strategy::RetryLadder,
            &ChurnEngineConfig::default(),
            &TelemetryConfig::off(),
        )
        .unwrap_err();
        assert_eq!(err, ChurnError::MissingFaultState);
        assert!(err.to_string().contains("fault state"));

        // A fault state that plans on the live (fresh) map.
        let mut scenario = FaultScenario::district_blackouts(1, 100.0);
        scenario.stale_map = false;
        let fresh = CityExperiment::prepare(
            CityArchetype::SurveyDowntown.generate(40),
            ExperimentConfig {
                seed: 40,
                faults: Some(scenario),
                ..ExperimentConfig::default()
            },
        );
        let err = try_run_churn(
            &fresh,
            &flows,
            &tl,
            Strategy::RetryLadder,
            &ChurnEngineConfig::default(),
            &TelemetryConfig::off(),
        )
        .unwrap_err();
        assert_eq!(err, ChurnError::FreshMap);
        assert!(err.to_string().contains("stale-map"));
    }

    #[test]
    fn empty_timeline_ladder_matches_plain_fleet() {
        // With no events, the churn engine is the fleet engine: one
        // epoch, same digest as run_fleet on the same world/workload.
        let exp = world(38);
        let flows = workload(&exp, 200, 38);
        let tl = Timeline::materialize(
            &exp,
            &ChurnConfig {
                aftershocks: 0,
                battery_waves: 0,
                crew_repairs: 0,
                seed: 38,
                ..ChurnConfig::default()
            },
        );
        let churn = run(
            &exp,
            &flows,
            &tl,
            Strategy::RetryLadder,
            2,
            InvalidationPolicy::Incremental,
        );
        assert_eq!(churn.epochs, 1);
        let fleet = citymesh_fleet::run_fleet(
            &exp,
            &flows,
            &FleetConfig {
                workers: 2,
                seed: 33,
                ..FleetConfig::default()
            },
        );
        assert_eq!(
            churn.epoch_stats[0].fleet_digest,
            fleet.digest(),
            "an event-free churn run is exactly a fleet run"
        );
    }
}
