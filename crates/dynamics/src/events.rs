//! World events: what can happen to the mesh mid-run.
//!
//! A [`WorldEvent`] is one scheduled mutation of the live fault state,
//! carrying both its *mechanism* (the [`WorldEventKind`]) and its
//! fully materialized effect: the exact per-AP health flips the event
//! performs when it lands. Materialization happens once, serially, in
//! [`Timeline::materialize`](crate::Timeline::materialize) — by the
//! time the churn engine sees an event, every stochastic draw has
//! already been spent, so applying the event is pure bookkeeping and
//! identical no matter how many workers are simulating flows around
//! it.

use citymesh_core::ApHealth;
use citymesh_geo::Point;

/// The mechanism behind one scheduled world event.
#[derive(Clone, Debug, PartialEq)]
pub enum WorldEventKind {
    /// An aftershock: every AP inside the disc fails outright — the
    /// correlated-damage mechanism, a mid-run sibling of the initial
    /// scenario's district blackouts.
    Aftershock {
        /// Disc center.
        center: Point,
        /// Disc radius, meters.
        radius_m: f64,
    },
    /// A battery-drain wave: each currently healthy AP independently
    /// drops to [`ApHealth::Degraded`] with probability `drain_p` —
    /// the uncorrelated, city-wide decay mechanism (backup batteries
    /// giving out hours into the outage).
    BatteryWave {
        /// Independent per-AP drain probability.
        drain_p: f64,
    },
    /// A repair crew sweeps one district: every non-healthy AP inside
    /// the disc comes back [`ApHealth::Up`] — the only mechanism that
    /// *revives* capacity, which is what makes churn different from
    /// monotone decay.
    CrewRepair {
        /// Disc center.
        center: Point,
        /// Disc radius, meters.
        radius_m: f64,
    },
}

impl WorldEventKind {
    /// Stable lowercase label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            WorldEventKind::Aftershock { .. } => "aftershock",
            WorldEventKind::BatteryWave { .. } => "battery-wave",
            WorldEventKind::CrewRepair { .. } => "crew-repair",
        }
    }

    /// A stable small integer used as the same-instant tiebreaker in
    /// timeline ordering and as the kind tag in fingerprints.
    pub fn code(&self) -> u8 {
        match self {
            WorldEventKind::Aftershock { .. } => 0,
            WorldEventKind::BatteryWave { .. } => 1,
            WorldEventKind::CrewRepair { .. } => 2,
        }
    }
}

/// One materialized world event: when it lands, what mechanism it is,
/// and the exact health flips it performs.
///
/// `changes` is computed against the world state *as evolved by every
/// earlier event on the timeline*, so events compose: a crew repair
/// scheduled after an aftershock revives the APs that aftershock
/// killed. Changes list APs in ascending id order and never contain a
/// no-op flip (the AP already held the target health when the event
/// was materialized).
#[derive(Clone, Debug)]
pub struct WorldEvent {
    /// When the event lands, milliseconds from the start of the run.
    /// Flows arriving strictly before this instant simulate against
    /// the pre-event world; flows at or after it see the post-event
    /// world.
    pub at_ms: f64,
    /// The mechanism.
    pub kind: WorldEventKind,
    /// The materialized per-AP health flips, ascending AP id.
    pub changes: Vec<(u32, ApHealth)>,
}

impl WorldEvent {
    /// Folds this event into an FNV-1a accumulator: arrival time bits,
    /// kind code, and every `(ap, health)` flip. Used by the timeline
    /// fingerprint that CI pins.
    pub(crate) fn mix_into(&self, mix: &mut impl FnMut(u64)) {
        mix(self.at_ms.to_bits());
        mix(u64::from(self.kind.code()));
        mix(self.changes.len() as u64);
        for &(ap, health) in &self.changes {
            let tag = match health {
                ApHealth::Up => 0u64,
                ApHealth::Degraded => 1,
                ApHealth::Failed => 2,
            };
            mix((u64::from(ap) << 2) | tag);
        }
    }
}
