//! citymesh-dynamics: the dynamic-world churn engine.
//!
//! Every layer below this crate evaluates CityMesh against a world
//! that fails *once*: a fault scenario is materialized before the
//! first flow and never changes. Real disasters churn — aftershocks
//! take more districts down mid-run, backup batteries drain in waves,
//! repair crews bring access points back — and a routing scheme's
//! worth under churn is exactly what the paper's static-plan critique
//! is about. This crate makes the world move:
//!
//! * [`events`] / [`Timeline`] — a deterministic schedule of world
//!   events inside the simulation horizon, materialized from seeded
//!   sub-streams into exact per-AP health flips before any flow runs,
//!   so any worker count replays the identical event sequence.
//! * [`run_churn`] — the epoch-barrier engine: flows partitioned by
//!   arrival time run in parallel against a frozen world, events apply
//!   serially at the barriers, and the shared route cache survives
//!   with [`InvalidationPolicy::Incremental`] eviction (only plans the
//!   event could observably touch, found through the spatial conduit
//!   index) proven digest-equal to a [`InvalidationPolicy::FullFlush`].
//! * [`Strategy`] — the three sender populations the churn bench
//!   compares: the paper's static plan, the retry ladder, and the
//!   Babel/QSPN-style reactive local repair from
//!   [`citymesh_baselines::reactive`].
//!
//! ```
//! use citymesh_core::{CityExperiment, ExperimentConfig, FaultScenario};
//! use citymesh_dynamics::{
//!     run_churn, ChurnConfig, ChurnEngineConfig, Strategy, Timeline,
//! };
//! use citymesh_fleet::{generate_flows, WorkloadConfig};
//! use citymesh_map::CityArchetype;
//! use citymesh_telemetry::TelemetryConfig;
//!
//! let exp = CityExperiment::prepare(
//!     CityArchetype::SurveyDowntown.generate(7),
//!     ExperimentConfig {
//!         seed: 7,
//!         faults: Some(FaultScenario::district_blackouts(1, 100.0)),
//!         ..ExperimentConfig::default()
//!     },
//! );
//! let flows = generate_flows(
//!     exp.map().len(),
//!     &WorkloadConfig { flows: 120, seed: 7, ..WorkloadConfig::default() },
//! );
//! let timeline = Timeline::materialize(
//!     &exp,
//!     &ChurnConfig { seed: 7, ..ChurnConfig::default() },
//! );
//! let (serial, _) = run_churn(
//!     &exp, &flows, &timeline, Strategy::RetryLadder,
//!     &ChurnEngineConfig { workers: 1, seed: 7, ..ChurnEngineConfig::default() },
//!     &TelemetryConfig::off(),
//! );
//! let (parallel, _) = run_churn(
//!     &exp, &flows, &timeline, Strategy::RetryLadder,
//!     &ChurnEngineConfig { workers: 4, seed: 7, ..ChurnEngineConfig::default() },
//!     &TelemetryConfig::off(),
//! );
//! assert_eq!(serial.digest(), parallel.digest());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod timeline;

pub use engine::{
    run_churn, try_run_churn, ChurnEngineConfig, ChurnError, ChurnReport, EpochStat,
    InvalidationPolicy, Strategy,
};
pub use events::{WorldEvent, WorldEventKind};
pub use timeline::{
    ChurnConfig, Timeline, DOMAIN_CHURN_AFTERSHOCK, DOMAIN_CHURN_BATTERY, DOMAIN_CHURN_REPAIR,
};
