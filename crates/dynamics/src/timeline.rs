//! Deterministic event timelines.
//!
//! A [`Timeline`] is the complete, pre-materialized schedule of world
//! events inside one simulation horizon. Every stochastic decision —
//! when each event lands, where its disc sits, which APs a battery
//! wave drains — is drawn from dedicated sub-streams of the churn
//! seed during [`Timeline::materialize`], *before* any flow is
//! simulated. The churn engine then replays the schedule as pure
//! bookkeeping between its epoch barriers, which is what lets a run
//! with 8 workers see bit-identical events (and therefore bit-identical
//! outcomes) to a serial one.
//!
//! Materialization is sequential by construction: events are first
//! scheduled (time + geometry drawn per mechanism from that
//! mechanism's own sub-stream), then sorted into their canonical
//! order, then walked once while an evolving scratch copy of the
//! per-AP health vector turns each event into the concrete
//! `(ap, health)` flips it will perform. Later events therefore see
//! the world as earlier ones left it — a crew repair revives exactly
//! what the preceding aftershock killed — and the whole timeline
//! reduces to one [`Timeline::fingerprint`] that CI pins.

use citymesh_core::{ApHealth, CityExperiment};
use citymesh_simcore::{substream_seed, SimRng};

use crate::events::{WorldEvent, WorldEventKind};

/// Sub-stream domain for aftershock scheduling (time + disc).
pub const DOMAIN_CHURN_AFTERSHOCK: u64 = 0xA57E;
/// Sub-stream domain for battery-wave scheduling (time + per-AP draws).
pub const DOMAIN_CHURN_BATTERY: u64 = 0xBA77;
/// Sub-stream domain for crew-repair scheduling (time + disc).
pub const DOMAIN_CHURN_REPAIR: u64 = 0xC4E3;

/// How much churn to schedule inside one horizon.
///
/// Event *counts* are the sweep knob (the bench's "churn rate" is
/// events per horizon); radii and probabilities shape each mechanism.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Aftershock discs to schedule.
    pub aftershocks: usize,
    /// Battery-drain waves to schedule.
    pub battery_waves: usize,
    /// Crew-repair sweeps to schedule.
    pub crew_repairs: usize,
    /// Simulation horizon: events land uniformly in `(0, horizon_ms)`.
    pub horizon_ms: f64,
    /// Aftershock disc radius, meters.
    pub aftershock_radius_m: f64,
    /// Battery-wave per-AP drain probability.
    pub drain_p: f64,
    /// Crew-repair disc radius, meters.
    pub repair_radius_m: f64,
    /// Root seed; every timeline draw derives from it through the
    /// `DOMAIN_CHURN_*` sub-streams.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            aftershocks: 2,
            battery_waves: 2,
            crew_repairs: 1,
            horizon_ms: 2_000.0,
            aftershock_radius_m: 120.0,
            drain_p: 0.05,
            repair_radius_m: 150.0,
            seed: 0,
        }
    }
}

impl ChurnConfig {
    /// Total events this config schedules.
    pub fn events(&self) -> usize {
        self.aftershocks + self.battery_waves + self.crew_repairs
    }
}

/// A materialized, canonically ordered schedule of world events.
#[derive(Clone, Debug)]
pub struct Timeline {
    events: Vec<WorldEvent>,
}

impl Timeline {
    /// Materializes a timeline for `exp` under `cfg`.
    ///
    /// Scheduling draws come from per-mechanism sub-streams indexed by
    /// event ordinal, so adding a third aftershock does not move the
    /// first two, and the three mechanisms never perturb each other —
    /// the same nested-stream discipline the fault scenarios use.
    /// Events are ordered by `(arrival time, kind code, ordinal)`; the
    /// float time is compared by bit pattern, which is a total order
    /// here because every drawn time is finite and non-negative.
    ///
    /// The effect lists are computed against a scratch health vector
    /// seeded from the experiment's *current* fault state (or a fully
    /// healthy vector when it has none), evolved event by event.
    pub fn materialize(exp: &CityExperiment, cfg: &ChurnConfig) -> Timeline {
        let aps = exp.aps();
        let mut scratch: Vec<ApHealth> = match exp.fault_state() {
            Some(f) => (0..aps.len()).map(|i| f.health(i as u32)).collect(),
            None => vec![ApHealth::Up; aps.len()],
        };
        let bounds = exp.map().bounds();

        // Phase 1: schedule. Each mechanism draws (time, geometry)
        // skeletons from its own sub-stream; battery waves keep their
        // RNG alive for the per-AP draws in phase 2 (the draw count is
        // fixed at one per AP, independent of world state, so the
        // stream stays aligned no matter what earlier events did).
        struct Skeleton {
            at_ms: f64,
            kind: WorldEventKind,
            ordinal: u64,
            rng: Option<SimRng>,
        }
        let mut skeletons: Vec<Skeleton> = Vec::with_capacity(cfg.events());
        for i in 0..cfg.aftershocks {
            let mut rng = SimRng::new(substream_seed(cfg.seed, DOMAIN_CHURN_AFTERSHOCK, i as u64));
            let at_ms = rng.uniform_range(0.0, cfg.horizon_ms);
            let center = citymesh_geo::Point::new(
                rng.uniform_range(bounds.min.x, bounds.max.x),
                rng.uniform_range(bounds.min.y, bounds.max.y),
            );
            skeletons.push(Skeleton {
                at_ms,
                kind: WorldEventKind::Aftershock {
                    center,
                    radius_m: cfg.aftershock_radius_m,
                },
                ordinal: i as u64,
                rng: None,
            });
        }
        for i in 0..cfg.battery_waves {
            let mut rng = SimRng::new(substream_seed(cfg.seed, DOMAIN_CHURN_BATTERY, i as u64));
            let at_ms = rng.uniform_range(0.0, cfg.horizon_ms);
            skeletons.push(Skeleton {
                at_ms,
                kind: WorldEventKind::BatteryWave {
                    drain_p: cfg.drain_p,
                },
                ordinal: i as u64,
                rng: Some(rng),
            });
        }
        for i in 0..cfg.crew_repairs {
            let mut rng = SimRng::new(substream_seed(cfg.seed, DOMAIN_CHURN_REPAIR, i as u64));
            let at_ms = rng.uniform_range(0.0, cfg.horizon_ms);
            let center = citymesh_geo::Point::new(
                rng.uniform_range(bounds.min.x, bounds.max.x),
                rng.uniform_range(bounds.min.y, bounds.max.y),
            );
            skeletons.push(Skeleton {
                at_ms,
                kind: WorldEventKind::CrewRepair {
                    center,
                    radius_m: cfg.repair_radius_m,
                },
                ordinal: i as u64,
                rng: None,
            });
        }
        skeletons.sort_by_key(|s| (s.at_ms.to_bits(), s.kind.code(), s.ordinal));

        // Phase 2: materialize effects against the evolving scratch
        // health, in canonical order.
        let events = skeletons
            .into_iter()
            .map(|mut s| {
                let mut changes: Vec<(u32, ApHealth)> = Vec::new();
                match &s.kind {
                    WorldEventKind::Aftershock { center, radius_m } => {
                        let r2 = radius_m * radius_m;
                        for ap in aps {
                            if ap.pos.dist2(*center) <= r2
                                && scratch[ap.id as usize] != ApHealth::Failed
                            {
                                changes.push((ap.id, ApHealth::Failed));
                            }
                        }
                    }
                    WorldEventKind::BatteryWave { drain_p } => {
                        let rng = s.rng.as_mut().expect("battery waves carry their stream");
                        for ap in aps {
                            // One draw per AP regardless of state keeps
                            // the stream aligned with the schedule.
                            let drained = rng.chance(*drain_p);
                            if drained && scratch[ap.id as usize] == ApHealth::Up {
                                changes.push((ap.id, ApHealth::Degraded));
                            }
                        }
                    }
                    WorldEventKind::CrewRepair { center, radius_m } => {
                        let r2 = radius_m * radius_m;
                        for ap in aps {
                            if ap.pos.dist2(*center) <= r2
                                && scratch[ap.id as usize] != ApHealth::Up
                            {
                                changes.push((ap.id, ApHealth::Up));
                            }
                        }
                    }
                }
                for &(ap, next) in &changes {
                    scratch[ap as usize] = next;
                }
                WorldEvent {
                    at_ms: s.at_ms,
                    kind: s.kind,
                    changes,
                }
            })
            .collect();
        Timeline { events }
    }

    /// The schedule, in canonical (time, kind, ordinal) order.
    pub fn events(&self) -> &[WorldEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// FNV-1a over every event's time, kind, and materialized effect
    /// list — the single value CI pins to detect any drift in churn
    /// scheduling or materialization.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(self.events.len() as u64);
        for ev in &self.events {
            ev.mix_into(&mut mix);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_core::{ExperimentConfig, FaultScenario};
    use citymesh_map::CityArchetype;

    fn world(seed: u64) -> CityExperiment {
        CityExperiment::prepare(
            CityArchetype::SurveyDowntown.generate(seed),
            ExperimentConfig {
                seed,
                faults: Some(FaultScenario::district_blackouts(1, 100.0)),
                ..ExperimentConfig::default()
            },
        )
    }

    #[test]
    fn materialization_is_deterministic_and_ordered() {
        let exp = world(7);
        let cfg = ChurnConfig {
            seed: 7,
            ..ChurnConfig::default()
        };
        let a = Timeline::materialize(&exp, &cfg);
        let b = Timeline::materialize(&exp, &cfg);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.len(), cfg.events());
        assert!(a
            .events()
            .windows(2)
            .all(|w| w[0].at_ms.to_bits() <= w[1].at_ms.to_bits()));
        for ev in a.events() {
            assert!(ev.at_ms >= 0.0 && ev.at_ms <= cfg.horizon_ms);
            assert!(
                ev.changes.windows(2).all(|w| w[0].0 < w[1].0),
                "changes must list APs in ascending order"
            );
        }
    }

    #[test]
    fn events_compose_against_the_evolving_world() {
        // A repair disc covering the whole city scheduled *after* the
        // aftershocks must revive every AP they killed (and the ones
        // the initial blackout killed), never a no-op flip.
        let exp = world(9);
        let bounds = exp.map().bounds();
        let diag = bounds.min.dist(bounds.max);
        let cfg = ChurnConfig {
            aftershocks: 2,
            battery_waves: 0,
            crew_repairs: 0,
            seed: 9,
            ..ChurnConfig::default()
        };
        let quakes_only = Timeline::materialize(&exp, &cfg);
        let killed: usize = quakes_only.events().iter().map(|e| e.changes.len()).sum();
        assert!(killed > 0, "two 120 m discs must kill some APs");

        // Same quakes + one city-wide repair. The repair lands at some
        // drawn time; whatever is dead *at that point* comes back.
        let with_repair = Timeline::materialize(
            &exp,
            &ChurnConfig {
                crew_repairs: 1,
                repair_radius_m: diag,
                ..cfg
            },
        );
        let repair = with_repair
            .events()
            .iter()
            .find(|e| matches!(e.kind, WorldEventKind::CrewRepair { .. }))
            .expect("one repair scheduled");
        assert!(
            repair.changes.iter().all(|&(_, h)| h == ApHealth::Up),
            "repairs only revive"
        );
        assert!(
            !repair.changes.is_empty(),
            "a city-wide repair after a blackout must revive something"
        );
    }

    #[test]
    fn adding_events_does_not_move_existing_ones() {
        let exp = world(11);
        let base = ChurnConfig {
            aftershocks: 1,
            battery_waves: 1,
            crew_repairs: 0,
            seed: 11,
            ..ChurnConfig::default()
        };
        let small = Timeline::materialize(&exp, &base);
        let big = Timeline::materialize(
            &exp,
            &ChurnConfig {
                aftershocks: 3,
                ..base
            },
        );
        // Every event of the small schedule appears at the same time
        // in the big one (sub-streams are indexed, not sequential).
        for ev in small.events() {
            assert!(
                big.events()
                    .iter()
                    .any(|e| e.at_ms == ev.at_ms && e.kind == ev.kind),
                "schedule times must be stable under event-count growth"
            );
        }
    }
}
