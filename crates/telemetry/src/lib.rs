//! # citymesh-telemetry
//!
//! Deterministic, zero-overhead-when-disabled observability for the
//! citymesh stack: a static metric registry, a per-worker flow tracer
//! with postmortem capture, and JSON / Prometheus exporters.
//!
//! Three invariants govern the whole crate:
//!
//! 1. **Zero overhead when off.** A disabled [`FlowTracer`] allocates
//!    nothing and every call on it is a branch; the metric paths live
//!    outside the delivery kernel entirely. The fleet's counting-
//!    allocator tests pass with telemetry compiled in but disabled.
//! 2. **Observation only.** Telemetry never draws randomness and never
//!    feeds back into routing or simulation, so every RNG sub-stream,
//!    flow outcome, and fleet digest is bit-identical with tracing on
//!    or off.
//! 3. **Schedule independence.** All metric values are integers merged
//!    in worker-id order, and trace capture/sampling is keyed by flow
//!    identity — aggregate metrics, fingerprints, and postmortem sets
//!    are identical across 1, 4, or 8 workers.
//!
//! The crate sits at the bottom of the workspace dependency graph (no
//! dependencies), so simcore, core, fleet, and bench can all use it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod trace;

pub use metrics::{
    rung_delivery_counter, rung_latency_histogram, rung_overhead_histogram, CounterDef, CounterId,
    GaugeDef, GaugeId, HistogramDef, HistogramId, MetricSet, COUNTERS, GAUGES, HISTOGRAMS,
};
pub use trace::{
    FlowSummary, FlowTracer, Postmortem, Rung, TelemetryConfig, TraceConfig, TraceEvent,
    DEFAULT_RING_CAPACITY,
};
