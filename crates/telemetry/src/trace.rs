//! The flow tracer: a fixed-capacity ring buffer of structured events
//! plus the postmortem capture policy.
//!
//! One [`FlowTracer`] lives inside each delivery scratch (one per
//! fleet worker). The simulation kernel and the retry ladder push
//! [`TraceEvent`]s into it as a flow executes; when the flow finishes,
//! the tracer decides whether to *capture* the trace as a
//! [`Postmortem`] — always for failed or retried flows, plus an
//! every-Nth-flow steady-state sample. Capture is keyed off the flow's
//! deterministic identity (its workload flow id), never off worker
//! scheduling, so the captured set is identical on 1 worker or 8.
//!
//! Cost model:
//!
//! * **disabled** (the default): [`FlowTracer::begin_flow`] and
//!   [`FlowTracer::record`] are a load + branch; no memory is ever
//!   allocated. The steady-state zero-allocation guarantee of the
//!   delivery kernel is preserved bit for bit.
//! * **enabled**: the ring is allocated once at construction and
//!   recording is an indexed write — steady-state tracing allocates
//!   nothing. Only a *capture* (failed / retried / sampled flow)
//!   copies the ring out, and those are the flows worth paying for.
//!
//! Tracing is observation only: it draws no randomness and feeds
//! nothing back into the simulation, so every RNG sub-stream and every
//! fleet digest is bit-identical with tracing on or off.

/// Default ring capacity when a [`TraceConfig`] constructor does not
/// specify one. City-scale conduits generate thousands of broadcast +
/// duplicate events per attempt (every reception in the conduit is an
/// event), and a full retry ladder multiplies that by up to four
/// attempts — 32Ki events (~768 KiB per worker, allocated once) keeps
/// virtually every postmortem complete. Flows that still overflow
/// keep their newest events and report the eviction count in
/// [`Postmortem::dropped_events`].
pub const DEFAULT_RING_CAPACITY: usize = 32 * 1024;

/// Which rung of the sender's recovery ladder an attempt rode.
///
/// Mirrors the core crate's `RecoveryStage` (telemetry sits below the
/// routing crates in the dependency graph, so it spells its own copy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rung {
    /// The first send (no recovery involved).
    First,
    /// A plain re-send over the original conduit.
    Resend,
    /// The widened-conduit variant.
    Widen,
    /// The replanned detour around known-dark buildings.
    Replan,
}

impl Rung {
    /// All rungs, ladder order.
    pub const ALL: [Rung; 4] = [Rung::First, Rung::Resend, Rung::Widen, Rung::Replan];

    /// Stable lowercase label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Rung::First => "first",
            Rung::Resend => "resend",
            Rung::Widen => "widen",
            Rung::Replan => "replan",
        }
    }
}

/// One structured event in a flow's trace. All variants are `Copy` and
/// fixed-size so the ring buffer never allocates per event.
///
/// Times are simulation nanoseconds within the current attempt (each
/// attempt restarts the simulated clock at zero; the `attempt` field
/// of the preceding [`TraceEvent::Attempt`] disambiguates).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The RNG-free planning half of the flow, recorded once at start.
    Plan {
        /// Source building.
        src: u32,
        /// Destination building.
        dst: u32,
        /// Buildings on the planned route (0 = no route).
        route_len: u32,
        /// Waypoints after conduit compression.
        waypoints: u32,
        /// Compressed source-route header size, bits.
        route_bits: u32,
        /// Conduit rectangles covering the route.
        conduits: u32,
    },
    /// One send attempt begins on the given ladder rung.
    Attempt {
        /// 1-based attempt number.
        attempt: u32,
        /// The ladder rung this attempt rides.
        rung: Rung,
        /// Conduit width of this attempt, decimeters.
        width_dm: u32,
        /// Conduit rectangles of this attempt's geometry.
        conduits: u32,
    },
    /// An AP transmitted the packet.
    Broadcast {
        /// Transmitting AP id.
        ap: u32,
        /// Simulation time of the transmission, ns.
        at_ns: u64,
    },
    /// An AP suppressed a duplicate reception.
    Duplicate {
        /// Suppressing AP id.
        ap: u32,
        /// Simulation time of the reception, ns.
        at_ns: u64,
    },
    /// A destination-building AP received the packet (first delivery
    /// of the current attempt).
    Delivered {
        /// Receiving AP id.
        ap: u32,
        /// Simulation time of the reception, ns.
        at_ns: u64,
    },
    /// An attempt ran to its horizon without delivering.
    AttemptFailed {
        /// 1-based attempt number that failed.
        attempt: u32,
        /// Broadcasts spent by this attempt alone.
        broadcasts: u64,
    },
}

/// Flow-level outcome handed to [`FlowTracer::finish_flow`]; becomes
/// the header of a captured [`Postmortem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSummary {
    /// Source building.
    pub src: u32,
    /// Destination building.
    pub dst: u32,
    /// Whether any attempt delivered.
    pub delivered: bool,
    /// Attempts actually simulated (0 = never reached the simulator).
    pub attempts: u32,
    /// The rung that finally delivered, when delivery needed more than
    /// one attempt.
    pub recovered_by: Option<Rung>,
    /// Total broadcasts across all attempts.
    pub broadcasts: u64,
    /// End-to-end latency (timeout penalties included), ns.
    pub latency_ns: Option<u64>,
}

impl FlowSummary {
    /// Stable outcome label: `delivered`, `recovered-<rung>`,
    /// `exhausted` (simulated but never delivered), or `unroutable`
    /// (never reached the simulator — no route or dark source).
    pub fn outcome_label(&self) -> &'static str {
        match (self.delivered, self.recovered_by, self.attempts) {
            (true, Some(Rung::Resend), _) => "recovered-resend",
            (true, Some(Rung::Widen), _) => "recovered-widen",
            (true, Some(Rung::Replan), _) => "recovered-replan",
            (true, Some(Rung::First), _) | (true, None, _) => "delivered",
            (false, _, 0) => "unroutable",
            (false, _, _) => "exhausted",
        }
    }
}

/// A captured flow trace: the summary plus every ring event, exported
/// for post-hoc analysis of *why* a flow failed or which rung saved it.
#[derive(Clone, Debug, PartialEq)]
pub struct Postmortem {
    /// Deterministic flow identity (the workload flow id under the
    /// fleet engine; the message id elsewhere).
    pub key: u64,
    /// Why this trace was kept.
    pub summary: FlowSummary,
    /// Events that fell off the ring (oldest-first eviction) before
    /// capture; 0 means `events` is the complete trace.
    pub dropped_events: u64,
    /// The event trace, oldest first.
    pub events: Vec<TraceEvent>,
}

impl Postmortem {
    /// Serializes the full postmortem as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let s = &self.summary;
        let mut out = String::with_capacity(256 + self.events.len() * 64);
        out.push_str(&format!(
            "{{\"flow\":{},\"src\":{},\"dst\":{},\"outcome\":\"{}\",\"delivered\":{},\
             \"attempts\":{},\"recovered_by\":{},\"broadcasts\":{},\"latency_ms\":{},\
             \"dropped_events\":{},\"events\":[",
            self.key,
            s.src,
            s.dst,
            s.outcome_label(),
            s.delivered,
            s.attempts,
            match s.recovered_by {
                Some(r) => format!("\"{}\"", r.label()),
                None => "null".into(),
            },
            s.broadcasts,
            match s.latency_ns {
                Some(ns) => format!("{:?}", ns as f64 / 1e6),
                None => "null".into(),
            },
            self.dropped_events,
        ));
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event_json(ev));
        }
        out.push_str("]}");
        out
    }
}

fn event_json(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::Plan {
            src,
            dst,
            route_len,
            waypoints,
            route_bits,
            conduits,
        } => format!(
            "{{\"type\":\"plan\",\"src\":{src},\"dst\":{dst},\"route_len\":{route_len},\
             \"waypoints\":{waypoints},\"route_bits\":{route_bits},\"conduits\":{conduits}}}"
        ),
        TraceEvent::Attempt {
            attempt,
            rung,
            width_dm,
            conduits,
        } => format!(
            "{{\"type\":\"attempt\",\"attempt\":{attempt},\"rung\":\"{}\",\
             \"width_dm\":{width_dm},\"conduits\":{conduits}}}",
            rung.label()
        ),
        TraceEvent::Broadcast { ap, at_ns } => {
            format!("{{\"type\":\"broadcast\",\"ap\":{ap},\"t_ns\":{at_ns}}}")
        }
        TraceEvent::Duplicate { ap, at_ns } => {
            format!("{{\"type\":\"duplicate\",\"ap\":{ap},\"t_ns\":{at_ns}}}")
        }
        TraceEvent::Delivered { ap, at_ns } => {
            format!("{{\"type\":\"delivered\",\"ap\":{ap},\"t_ns\":{at_ns}}}")
        }
        TraceEvent::AttemptFailed {
            attempt,
            broadcasts,
        } => format!(
            "{{\"type\":\"attempt_failed\",\"attempt\":{attempt},\"broadcasts\":{broadcasts}}}"
        ),
    }
}

/// Tracer configuration. The default is fully disabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch; `false` makes every tracer call a no-op branch.
    pub enabled: bool,
    /// Steady-state sampling: capture every flow whose key is a
    /// multiple of this (0 = capture failures/retries only).
    pub sample_every: u64,
    /// Ring capacity in events; allocated once at tracer construction.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

impl TraceConfig {
    /// Tracing fully disabled (the zero-overhead default).
    pub fn off() -> Self {
        TraceConfig {
            enabled: false,
            sample_every: 0,
            ring_capacity: 0,
        }
    }

    /// Capture failed and retried flows only.
    pub fn failures_only() -> Self {
        TraceConfig {
            enabled: true,
            sample_every: 0,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Capture failures/retries plus every `n`-th flow by key
    /// (`n == 0` degrades to [`TraceConfig::failures_only`]).
    pub fn sampled(n: u64) -> Self {
        TraceConfig {
            enabled: true,
            sample_every: n,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

/// Top-level telemetry switchboard consumed by the fleet engine:
/// metric recording and flow tracing toggle independently.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record per-flow metrics into the worker's metric set.
    pub metrics: bool,
    /// Flow tracer configuration.
    pub trace: TraceConfig,
}

impl TelemetryConfig {
    /// Everything off — byte-for-byte the legacy engine behavior.
    pub fn off() -> Self {
        TelemetryConfig::default()
    }

    /// Metrics only, no tracing.
    pub fn metrics_only() -> Self {
        TelemetryConfig {
            metrics: true,
            trace: TraceConfig::off(),
        }
    }

    /// Metrics plus tracing with an every-`n`-th-flow sample.
    pub fn full(sample_every: u64) -> Self {
        TelemetryConfig {
            metrics: true,
            trace: TraceConfig::sampled(sample_every),
        }
    }

    /// Whether every subsystem is disabled.
    pub fn is_off(&self) -> bool {
        !self.metrics && !self.trace.enabled
    }
}

/// The per-scratch flow tracer. See the module docs for the cost
/// model; see [`FlowTracer::begin_flow`] / [`FlowTracer::record`] /
/// [`FlowTracer::finish_flow`] for the per-flow protocol.
#[derive(Debug)]
pub struct FlowTracer {
    cfg: TraceConfig,
    /// Ring storage; grows by `push` up to `cfg.ring_capacity` on the
    /// first flows, then is written in place forever after.
    ring: Vec<TraceEvent>,
    /// Index of the oldest live event.
    start: usize,
    /// Live event count (≤ capacity).
    len: usize,
    /// Events evicted from the ring during the current flow.
    dropped_flow: u64,
    dropped_total: u64,
    high_water: usize,
    /// A flow is being traced (between `begin_flow` and `finish_flow`).
    active: bool,
    sampled: bool,
    key: u64,
    next_key: Option<u64>,
    postmortems: Vec<Postmortem>,
    captured: u64,
    flows: u64,
}

impl Default for FlowTracer {
    fn default() -> Self {
        FlowTracer::disabled()
    }
}

impl FlowTracer {
    /// A tracer that never records and never allocates.
    pub fn disabled() -> Self {
        FlowTracer::new(TraceConfig::off())
    }

    /// Builds a tracer, pre-allocating the ring when enabled so that
    /// recording is allocation-free from the first event on.
    pub fn new(cfg: TraceConfig) -> Self {
        let capacity = if cfg.enabled { cfg.ring_capacity } else { 0 };
        FlowTracer {
            cfg: TraceConfig {
                ring_capacity: capacity,
                ..cfg
            },
            ring: Vec::with_capacity(capacity),
            start: 0,
            len: 0,
            dropped_flow: 0,
            dropped_total: 0,
            high_water: 0,
            active: false,
            sampled: false,
            key: 0,
            next_key: None,
            postmortems: Vec::new(),
            captured: 0,
            flows: 0,
        }
    }

    /// Whether this tracer can ever record.
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled && self.cfg.ring_capacity > 0
    }

    /// The configuration this tracer was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Overrides the key of the *next* `begin_flow` (the fleet engine
    /// sets the workload flow id here so captures and sampling are
    /// keyed by flow identity, not by the message id).
    pub fn set_next_key(&mut self, key: u64) {
        if self.cfg.enabled {
            self.next_key = Some(key);
        }
    }

    /// Starts tracing one flow under `fallback_key` (used when no
    /// [`FlowTracer::set_next_key`] is pending). No-op when disabled.
    pub fn begin_flow(&mut self, fallback_key: u64) {
        if !self.is_enabled() {
            return;
        }
        self.key = self.next_key.take().unwrap_or(fallback_key);
        self.sampled = self.cfg.sample_every > 0 && self.key.is_multiple_of(self.cfg.sample_every);
        self.start = 0;
        self.len = 0;
        self.dropped_flow = 0;
        self.active = true;
        self.flows += 1;
    }

    /// Appends one event to the active flow's ring; evicts the oldest
    /// event when full. No-op (a branch) when no flow is active.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if !self.active {
            return;
        }
        let cap = self.cfg.ring_capacity;
        if self.len < cap {
            let pos = (self.start + self.len) % cap;
            if pos == self.ring.len() {
                self.ring.push(ev); // first fill only; capacity reserved
            } else {
                self.ring[pos] = ev;
            }
            self.len += 1;
            self.high_water = self.high_water.max(self.len);
        } else {
            self.ring[self.start] = ev;
            self.start = (self.start + 1) % cap;
            self.dropped_flow += 1;
        }
    }

    /// Ends the active flow and captures a [`Postmortem`] when the
    /// retention policy says so: the flow failed, needed more than one
    /// attempt, or fell on the every-Nth sample. Returns whether a
    /// capture happened. No-op when no flow is active.
    pub fn finish_flow(&mut self, summary: FlowSummary) -> bool {
        if !self.active {
            return false;
        }
        self.active = false;
        self.dropped_total += self.dropped_flow;
        let keep = self.sampled || !summary.delivered || summary.attempts > 1;
        if !keep {
            return false;
        }
        let events = (0..self.len)
            .map(|i| self.ring[(self.start + i) % self.cfg.ring_capacity])
            .collect();
        self.postmortems.push(Postmortem {
            key: self.key,
            summary,
            dropped_events: self.dropped_flow,
            events,
        });
        self.captured += 1;
        true
    }

    /// Drains every postmortem captured so far.
    pub fn take_postmortems(&mut self) -> Vec<Postmortem> {
        std::mem::take(&mut self.postmortems)
    }

    /// Captured postmortems awaiting [`FlowTracer::take_postmortems`].
    pub fn postmortems(&self) -> &[Postmortem] {
        &self.postmortems
    }

    /// Total captures over the tracer's lifetime.
    pub fn captured(&self) -> u64 {
        self.captured
    }

    /// Flows traced over the tracer's lifetime.
    pub fn flows_traced(&self) -> u64 {
        self.flows
    }

    /// Total events evicted from the ring over the tracer's lifetime.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Highest ring occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(delivered: bool, attempts: u32) -> FlowSummary {
        FlowSummary {
            src: 1,
            dst: 2,
            delivered,
            attempts,
            recovered_by: None,
            broadcasts: 10,
            latency_ns: delivered.then_some(5_000_000),
        }
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = FlowTracer::disabled();
        t.begin_flow(7);
        t.record(TraceEvent::Broadcast { ap: 1, at_ns: 0 });
        assert!(!t.finish_flow(summary(false, 3)));
        assert!(t.postmortems().is_empty());
        assert_eq!(t.high_water(), 0);
        assert_eq!(t.ring.capacity(), 0, "disabled tracer must not allocate");
    }

    #[test]
    fn failures_and_retries_are_always_captured() {
        let mut t = FlowTracer::new(TraceConfig::failures_only());
        // Clean first-try delivery: not captured.
        t.begin_flow(1);
        t.record(TraceEvent::Broadcast { ap: 0, at_ns: 0 });
        assert!(!t.finish_flow(summary(true, 1)));
        // Failure: captured.
        t.begin_flow(2);
        t.record(TraceEvent::AttemptFailed {
            attempt: 1,
            broadcasts: 4,
        });
        assert!(t.finish_flow(summary(false, 1)));
        // Retried delivery: captured.
        t.begin_flow(3);
        assert!(t.finish_flow(summary(true, 2)));
        assert_eq!(t.captured(), 2);
        assert_eq!(t.postmortems()[0].key, 2);
        assert_eq!(t.postmortems()[1].key, 3);
    }

    #[test]
    fn sampling_is_keyed_not_scheduled() {
        let mut t = FlowTracer::new(TraceConfig::sampled(10));
        for key in [5u64, 10, 15, 20, 25] {
            t.begin_flow(key);
            t.record(TraceEvent::Broadcast { ap: 0, at_ns: 0 });
            t.finish_flow(summary(true, 1));
        }
        let keys: Vec<u64> = t.postmortems().iter().map(|p| p.key).collect();
        assert_eq!(keys, vec![10, 20], "keys divisible by 10 are sampled");
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut t = FlowTracer::new(TraceConfig {
            enabled: true,
            sample_every: 1,
            ring_capacity: 4,
        });
        t.begin_flow(0);
        for i in 0..10u32 {
            t.record(TraceEvent::Broadcast {
                ap: i,
                at_ns: i as u64,
            });
        }
        assert!(t.finish_flow(summary(true, 1)));
        let p = &t.postmortems()[0];
        assert_eq!(p.dropped_events, 6);
        assert_eq!(p.events.len(), 4);
        // The ring keeps the newest events, oldest first.
        let aps: Vec<u32> = p
            .events
            .iter()
            .map(|e| match e {
                TraceEvent::Broadcast { ap, .. } => *ap,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(aps, vec![6, 7, 8, 9]);
        assert_eq!(t.dropped_total(), 6);
        assert_eq!(t.high_water(), 4);
    }

    #[test]
    fn ring_storage_never_regrows_after_first_fill() {
        let mut t = FlowTracer::new(TraceConfig {
            enabled: true,
            sample_every: 0,
            ring_capacity: 8,
        });
        for flow in 0..5u64 {
            t.begin_flow(flow);
            for i in 0..20u32 {
                t.record(TraceEvent::Duplicate {
                    ap: i,
                    at_ns: i as u64,
                });
            }
            t.finish_flow(summary(true, 1));
        }
        assert_eq!(t.ring.len(), 8);
        assert_eq!(t.ring.capacity(), 8, "ring must stay at its reservation");
    }

    #[test]
    fn next_key_overrides_fallback_once() {
        let mut t = FlowTracer::new(TraceConfig::sampled(1));
        t.set_next_key(42);
        t.begin_flow(999);
        t.finish_flow(summary(true, 1));
        t.begin_flow(1000);
        t.finish_flow(summary(true, 1));
        let keys: Vec<u64> = t.postmortems().iter().map(|p| p.key).collect();
        assert_eq!(keys, vec![42, 1000]);
    }

    #[test]
    fn postmortem_json_names_the_recovering_rung() {
        let mut s = summary(true, 3);
        s.recovered_by = Some(Rung::Widen);
        let p = Postmortem {
            key: 17,
            summary: s,
            dropped_events: 0,
            events: vec![
                TraceEvent::Plan {
                    src: 1,
                    dst: 2,
                    route_len: 5,
                    waypoints: 3,
                    route_bits: 96,
                    conduits: 2,
                },
                TraceEvent::Attempt {
                    attempt: 3,
                    rung: Rung::Widen,
                    width_dm: 1000,
                    conduits: 2,
                },
                TraceEvent::Delivered { ap: 9, at_ns: 123 },
            ],
        };
        let json = p.to_json();
        assert!(json.contains("\"outcome\":\"recovered-widen\""), "{json}");
        assert!(json.contains("\"recovered_by\":\"widen\""));
        assert!(json.contains("\"type\":\"plan\""));
        assert!(json.contains("\"rung\":\"widen\""));
        assert!(json.contains("\"type\":\"delivered\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn exhausted_and_unroutable_labels() {
        assert_eq!(summary(false, 4).outcome_label(), "exhausted");
        assert_eq!(summary(false, 0).outcome_label(), "unroutable");
        assert_eq!(summary(true, 1).outcome_label(), "delivered");
    }
}
